/**
 * @file
 * Sec.II-B / Fig.3: the slack look-up table — the 5-bit address
 * {SIMD, Arith/Logic, Shift, Width/Type} collapses to exactly 14
 * populated buckets with conservative per-bucket computation times.
 */

#include "bench_common.h"
#include "timing/slack_lut.h"

using namespace redsoc;

int
main()
{
    bench::printHeader("slack LUT buckets", "Sec.II-B / Fig.3");
    const TimingModel tm;
    const SubCycleClock clock(3, tm.clockPeriodPs());
    const SlackLut lut(tm, clock);

    Table t({"#", "bucket", "worst-case (ps)", "estimate (ticks/8)",
             "estimate (ps)", "recyclable slack"});
    unsigned idx = 0;
    for (const SlackBucket &b : lut.buckets()) {
        const double est_ps = clock.ticksToPs(b.ticks);
        t.addRow({std::to_string(idx++), b.name,
                  std::to_string(b.worst_case_ps),
                  std::to_string(b.ticks), Table::num(est_ps, 1),
                  Table::pct(1.0 - est_ps / tm.clockPeriodPs())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("%u buckets total (paper: 14). Estimates quantize up "
                "at 3-bit\nCI precision, so recycling is never "
                "timing-speculative.\n",
                SlackLut::kNumBuckets);
    return 0;
}

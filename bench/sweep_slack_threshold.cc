/**
 * @file
 * Sec.IV-C / VI-C: the slack-threshold design sweep — aggressive
 * recycling (high threshold) accumulates more slack but over-books
 * functional units with 2-cycle holds; the balance is tuned per
 * application class.
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("slack-threshold sweep", "Sec.IV-C step 10");
    SimDriver driver;

    std::vector<SimDriver::Point> points;
    for (const std::string &core : {std::string("big"),
                                    std::string("small")}) {
        for (Suite suite : bench::allSuites()) {
            for (const std::string &name :
                 bench::suiteWorkloads(suite, fast)) {
                points.push_back(
                    {name, configFor(core, SchedMode::Baseline)});
                for (Tick thr = 0; thr <= 8; thr += 2) {
                    CoreConfig red = configFor(core, SchedMode::ReDSOC);
                    red.slack_threshold_ticks = thr;
                    points.push_back({name, red});
                }
            }
        }
    }
    driver.prefetch(points);

    for (const std::string &core : {std::string("big"),
                                    std::string("small")}) {
        Table t({"threshold", "SPEC mean", "MiBench mean", "ML mean",
                 "FU stall (MiB)"});
        for (Tick thr = 0; thr <= 8; thr += 2) {
            std::vector<std::string> row = {std::to_string(thr) + "/8"};
            double mib_stall = 0.0;
            for (Suite suite : bench::allSuites()) {
                const double mean = bench::suiteMean(
                    suite, fast, [&](const std::string &name) {
                        CoreConfig red = configFor(core,
                                                   SchedMode::ReDSOC);
                        red.slack_threshold_ticks = thr;
                        const double s = driver.speedup(
                            name, configFor(core, SchedMode::Baseline),
                            red);
                        if (suite == Suite::MiBench)
                            mib_stall +=
                                driver.run(name, red).fuStallRate();
                        return s - 1.0;
                    });
                row.push_back(Table::pct(mean));
            }
            const size_t mib_count =
                bench::suiteWorkloads(Suite::MiBench, fast).size();
            row.push_back(
                Table::pct(mib_stall / asDouble(mib_count)));
            t.addRow(row);
        }
        std::printf("--- %s core ---\n%s\n", core.c_str(),
                    t.render().c_str());
    }
    std::printf("paper shape: higher thresholds recycle more "
                "aggressively; FU\nover-allocation (2-cycle holds) "
                "pushes stall rates up, bounding\nthe benefit on "
                "FU-constrained small cores.\n");
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * predictors, cache accesses, select arbitration, the functional
 * interpreter and the full core loop.
 */

#include <benchmark/benchmark.h>

#include "core/ooo_core.h"
#include "func/interpreter.h"
#include "isa/builder.h"
#include "mem/hierarchy.h"
#include "predictors/width_predictor.h"
#include "redsoc/skewed_select.h"
#include "workloads/registry.h"

namespace {

using namespace redsoc;

void
BM_WidthPredictor(benchmark::State &state)
{
    WidthPredictor wp;
    u64 pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wp.predict(pc));
        wp.update(pc, WidthClass::W16);
        pc = (pc + 17) & 0xFFFF;
    }
}
BENCHMARK(BM_WidthPredictor);

void
BM_CacheAccess(benchmark::State &state)
{
    MemHierarchy mem{HierarchyConfig{}};
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(3, addr, false).latency);
        addr = (addr + 64) & 0xFFFFF;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SkewedSelect(benchmark::State &state)
{
    SkewedSelectArbiter arb(64);
    std::vector<unsigned> ages(64);
    for (unsigned i = 0; i < 64; ++i)
        ages[i] = (i * 37) % 64;
    arb.setAgeOrder(ages);
    u64 wake = 0x0F0F0F0F0F0F0F0Full;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arb.arbitrateSkewed(wake, wake & 0x3333333333333333ull, 6));
        wake = (wake << 1) | (wake >> 63);
    }
}
BENCHMARK(BM_SkewedSelect);

void
BM_Interpreter(benchmark::State &state)
{
    ProgramBuilder b("spin");
    b.movImm(x(1), 1000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.alui(Opcode::EOR, x(2), x(2), 0x35);
    b.alui(Opcode::ADD, x(3), x(3), 7);
    b.alui(Opcode::SUB, x(1), x(1), 1);
    b.bnez(x(1), loop);
    b.halt();
    auto program = std::make_shared<const Program>(b.build());
    for (auto _ : state) {
        MemoryImage mem;
        Interpreter interp(program, mem);
        benchmark::DoNotOptimize(interp.run().size());
    }
    state.SetItemsProcessed(state.iterations() * 4002);
}
BENCHMARK(BM_Interpreter);

void
BM_CoreSimulation(benchmark::State &state)
{
    // Full crc run (~100k dynamic ops) as a representative trace.
    const Trace trace = traceWorkload("crc");
    const auto mode = static_cast<SchedMode>(state.range(0));
    CoreConfig cfg = mediumCore();
    cfg.mode = mode;
    for (auto _ : state) {
        OooCore core(cfg);
        benchmark::DoNotOptimize(core.run(trace).cycles);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_CoreSimulation)
    ->Arg(static_cast<int>(SchedMode::Baseline))
    ->Arg(static_cast<int>(SchedMode::ReDSOC))
    ->Arg(static_cast<int>(SchedMode::MOS));

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Fig.1: computation time (ps) for ALU operations on the synthesized
 * 2 GHz ALU model, in the paper's presentation order — logical ops,
 * moves/shifts, arithmetic, and shifted-operand arithmetic.
 */

#include "bench_common.h"
#include "timing/timing_model.h"

using namespace redsoc;

int
main()
{
    bench::printHeader("ALU computation times", "Fig.1");
    const TimingModel tm;

    struct Row
    {
        const char *name;
        Opcode op;
        ShiftKind shift;
    };
    const Row rows[] = {
        {"BIC", Opcode::BIC, ShiftKind::None},
        {"MVN", Opcode::MVN, ShiftKind::None},
        {"AND", Opcode::AND, ShiftKind::None},
        {"EOR", Opcode::EOR, ShiftKind::None},
        {"TST", Opcode::TST, ShiftKind::None},
        {"TEQ", Opcode::TEQ, ShiftKind::None},
        {"ORR", Opcode::ORR, ShiftKind::None},
        {"MOV", Opcode::MOV, ShiftKind::None},
        {"LSR", Opcode::LSR, ShiftKind::None},
        {"ASR", Opcode::ASR, ShiftKind::None},
        {"LSL", Opcode::LSL, ShiftKind::None},
        {"ROR", Opcode::ROR, ShiftKind::None},
        {"RRX", Opcode::RRX, ShiftKind::None},
        {"RSB", Opcode::RSB, ShiftKind::None},
        {"RSC", Opcode::RSC, ShiftKind::None},
        {"SUB", Opcode::SUB, ShiftKind::None},
        {"CMP", Opcode::CMP, ShiftKind::None},
        {"ADD", Opcode::ADD, ShiftKind::None},
        {"CMN", Opcode::CMN, ShiftKind::None},
        {"ADDC", Opcode::ADC, ShiftKind::None},
        {"SUBC", Opcode::SBC, ShiftKind::None},
        {"ADD-LSR", Opcode::ADD, ShiftKind::Lsr},
        {"SUB-ROR", Opcode::SUB, ShiftKind::Ror},
    };

    Table t({"operation", "computation time (ps)", "slack @500ps"});
    for (const Row &row : rows) {
        const Picos ps = tm.scalarFullWidthPs(row.op, row.shift);
        t.addRow({row.name, std::to_string(ps),
                  Table::pct(1.0 - double(ps) / tm.clockPeriodPs())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: logical ~95-130ps, moves/shifts "
                "~140-210ps,\narithmetic ~305-345ps, shifted-operand "
                "arithmetic ~450-470ps.\n");
    return 0;
}

/**
 * @file
 * Shared plumbing for the figure/table regeneration harnesses: suite
 * iteration, a process-wide SimDriver, and mean helpers. Pass "fast"
 * as the first argument to any harness to run a reduced workload
 * subset (one benchmark per suite).
 */

#ifndef REDSOC_BENCH_BENCH_COMMON_H
#define REDSOC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/driver.h"

namespace redsoc {
namespace bench {

inline bool
fastMode(int argc, char **argv)
{
    return argc > 1 && std::strcmp(argv[1], "fast") == 0;
}

/** Workloads to sweep, honoring fast mode. */
inline std::vector<std::string>
suiteWorkloads(Suite suite, bool fast)
{
    std::vector<std::string> names = workloadNames(suite);
    if (fast)
        names.resize(1);
    return names;
}

inline const std::vector<Suite> &
allSuites()
{
    static const std::vector<Suite> suites = {Suite::Spec,
                                              Suite::MiBench, Suite::Ml};
    return suites;
}

inline const std::vector<std::string> &
allCores()
{
    static const std::vector<std::string> cores = {"big", "medium",
                                                   "small"};
    return cores;
}

/** Mean of a per-workload metric over a suite. */
template <typename Fn>
double
suiteMean(Suite suite, bool fast, Fn &&metric)
{
    std::vector<double> values;
    for (const std::string &name : suiteWorkloads(suite, fast))
        values.push_back(metric(name));
    return SimDriver::mean(values);
}

inline void
printHeader(const char *title, const char *paper_ref)
{
    std::printf("=== %s ===\n(reproduces %s)\n\n", title, paper_ref);
}

/**
 * Sec.VI-C methodology: the slack threshold is tuned via a design
 * sweep per application set (suite) and core. The driver's run cache
 * makes the sweep cheap across harnesses in the same process.
 */
inline Tick
tunedThreshold(SimDriver &driver, Suite suite, const std::string &core,
               bool fast)
{
    Tick best = 6;
    double best_mean = -1e9;
    for (Tick thr : {Tick{2}, Tick{4}, Tick{6}, Tick{8}}) {
        const CoreConfig base = configFor(core, SchedMode::Baseline);
        const double mean =
            suiteMean(suite, fast, [&](const std::string &name) {
                CoreConfig red = configFor(core, SchedMode::ReDSOC);
                red.slack_threshold_ticks = thr;
                return driver.speedup(name, base, red);
            });
        if (mean > best_mean) {
            best_mean = mean;
            best = thr;
        }
    }
    return best;
}

/** The ReDSOC configuration with the suite-tuned slack threshold. */
inline CoreConfig
tunedRedsoc(SimDriver &driver, Suite suite, const std::string &core,
            bool fast)
{
    CoreConfig red = configFor(core, SchedMode::ReDSOC);
    red.slack_threshold_ticks = tunedThreshold(driver, suite, core, fast);
    return red;
}

} // namespace bench
} // namespace redsoc

#endif // REDSOC_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared plumbing for the figure/table regeneration harnesses: suite
 * iteration, a process-wide SimDriver, matrix enumeration + parallel
 * prefetch helpers, and mean helpers. Pass "fast" as the first
 * argument to any harness to run a reduced workload subset (one
 * benchmark per suite).
 *
 * The harness pattern is enumerate-then-print: a main first collects
 * every (workload, config) point its tables will touch into a
 * SimDriver::Point matrix and hands it to SimDriver::prefetch(),
 * which fans the points out across the global thread pool (and the
 * REDSOC_CACHE_DIR disk cache, when set). The printing loops below
 * then only ever hit warm in-memory results, so table layout code
 * stays serial and simple while all simulation happens in parallel.
 */

#ifndef REDSOC_BENCH_BENCH_COMMON_H
#define REDSOC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "sim/driver.h"
#include "trace/exporters.h"

namespace redsoc {
namespace bench {

inline bool
fastMode(int argc, char **argv)
{
    // Every harness funnels through here at startup: piggyback the
    // end-of-process reduction report, so alongside the "[fast] ...
    // dropping N workloads" lines a harness also tallies any traced
    // runs whose export ring wrapped (REDSOC_TRACE_DIR sweeps must
    // never truncate silently).
    static const bool registered = [] {
        std::atexit([] {
            const u64 runs = TraceEnv::truncatedRuns();
            if (runs != 0) {
                std::fprintf(
                    stderr,
                    "[trace] %llu traced run%s truncated (%llu events "
                    "dropped); raise REDSOC_TRACE_CAP for complete "
                    "exports\n",
                    static_cast<unsigned long long>(runs),
                    runs == 1 ? "" : "s",
                    static_cast<unsigned long long>(
                        TraceEnv::truncatedEvents()));
            }
        });
        return true;
    }();
    (void)registered;
    return argc > 1 && std::strcmp(argv[1], "fast") == 0;
}

/**
 * Workloads to sweep, honoring fast mode. An empty suite would
 * silently collapse the whole simulation matrix, so it is fatal; the
 * first fast-mode reduction of each suite logs what was dropped (to
 * stderr, keeping table output on stdout byte-stable).
 */
inline std::vector<std::string>
suiteWorkloads(Suite suite, bool fast)
{
    std::vector<std::string> names = workloadNames(suite);
    fatal_if(names.empty(), "suite ", suiteName(suite),
             " has no workloads: the simulation matrix would be empty");
    if (fast && names.size() > 1) {
        static bool logged[3] = {false, false, false};
        bool &done = logged[static_cast<unsigned>(suite)];
        if (!done) {
            done = true;
            std::fprintf(stderr,
                         "[fast] %s: keeping '%s', dropping %zu other "
                         "workloads\n",
                         suiteName(suite), names.front().c_str(),
                         names.size() - 1);
        }
        names.resize(1);
    }
    return names;
}

inline const std::vector<Suite> &
allSuites()
{
    static const std::vector<Suite> suites = {Suite::Spec,
                                              Suite::MiBench, Suite::Ml};
    return suites;
}

inline const std::vector<std::string> &
allCores()
{
    static const std::vector<std::string> cores = {"big", "medium",
                                                   "small"};
    return cores;
}

/** The Sec.VI-C candidate thresholds of the per-suite tuning sweep. */
inline const std::vector<Tick> &
tuningThresholds()
{
    static const std::vector<Tick> ticks = {2, 4, 6, 8};
    return ticks;
}

/**
 * Every (workload, config) point the slack-threshold tuning sweep of
 * one (suite, core) touches: the baseline plus each candidate
 * threshold, over the suite's workloads.
 */
inline void
appendTuningPoints(std::vector<SimDriver::Point> &out, Suite suite,
                   const std::string &core, bool fast)
{
    for (const std::string &name : suiteWorkloads(suite, fast)) {
        out.push_back({name, configFor(core, SchedMode::Baseline)});
        for (Tick thr : tuningThresholds()) {
            CoreConfig red = configFor(core, SchedMode::ReDSOC);
            red.slack_threshold_ticks = thr;
            out.push_back({name, red});
        }
    }
}

/** Enumerate + simulate the whole tuning matrix of a set of suites
 *  and cores across the thread pool. */
inline void
prefetchTuning(SimDriver &driver, const std::vector<Suite> &suites,
               const std::vector<std::string> &cores, bool fast)
{
    std::vector<SimDriver::Point> points;
    for (Suite suite : suites)
        for (const std::string &core : cores)
            appendTuningPoints(points, suite, core, fast);
    driver.prefetch(points);
}

/** Mean of a per-workload metric over a suite. */
template <typename Fn>
double
suiteMean(Suite suite, bool fast, Fn &&metric)
{
    std::vector<double> values;
    for (const std::string &name : suiteWorkloads(suite, fast))
        values.push_back(metric(name));
    return SimDriver::mean(values);
}

inline void
printHeader(const char *title, const char *paper_ref)
{
    std::printf("=== %s ===\n(reproduces %s)\n\n", title, paper_ref);
}

/**
 * Sec.VI-C methodology: the slack threshold is tuned via a design
 * sweep per application set (suite) and core. The sweep's matrix is
 * prefetched through the thread pool up front, so the argmax scan
 * below only reads warm results; across harnesses the driver's
 * in-memory and REDSOC_CACHE_DIR caches make repeat sweeps free.
 */
inline Tick
tunedThreshold(SimDriver &driver, Suite suite, const std::string &core,
               bool fast)
{
    std::vector<SimDriver::Point> points;
    appendTuningPoints(points, suite, core, fast);
    driver.prefetch(points);

    Tick best = 6;
    double best_mean = -1e9;
    for (Tick thr : tuningThresholds()) {
        const CoreConfig base = configFor(core, SchedMode::Baseline);
        const double mean =
            suiteMean(suite, fast, [&](const std::string &name) {
                CoreConfig red = configFor(core, SchedMode::ReDSOC);
                red.slack_threshold_ticks = thr;
                return driver.speedup(name, base, red);
            });
        if (mean > best_mean) {
            best_mean = mean;
            best = thr;
        }
    }
    return best;
}

/** The ReDSOC configuration with the suite-tuned slack threshold. */
inline CoreConfig
tunedRedsoc(SimDriver &driver, Suite suite, const std::string &core,
            bool fast)
{
    CoreConfig red = configFor(core, SchedMode::ReDSOC);
    red.slack_threshold_ticks = tunedThreshold(driver, suite, core, fast);
    return red;
}

} // namespace bench
} // namespace redsoc

#endif // REDSOC_BENCH_BENCH_COMMON_H

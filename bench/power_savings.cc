/**
 * @file
 * Sec.VI-C: power savings at baseline performance — convert ReDSOC
 * speedups into V/F-scaling power savings on the A57-style DVFS
 * curve.
 */

#include "bench_common.h"
#include "power/dvfs.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("iso-performance power savings", "Sec.VI-C");
    SimDriver driver;
    bench::prefetchTuning(driver, bench::allSuites(), bench::allCores(),
                          fast);
    const DvfsModel dvfs;

    Table t({"suite", "core", "min", "mean", "max"});
    for (Suite suite : bench::allSuites()) {
        for (const std::string &core : bench::allCores()) {
            double lo = 1.0, hi = 0.0, total = 0.0;
            const auto names = bench::suiteWorkloads(suite, fast);
            const CoreConfig red =
                bench::tunedRedsoc(driver, suite, core, fast);
            for (const std::string &name : names) {
                const double s = driver.speedup(
                    name, configFor(core, SchedMode::Baseline), red);
                const double saving = dvfs.powerSavingForSpeedup(s);
                lo = std::min(lo, saving);
                hi = std::max(hi, saving);
                total += saving / asDouble(names.size());
            }
            t.addRow({suiteName(suite), core, Table::pct(lo),
                      Table::pct(total), Table::pct(hi)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: mean savings of 8-15%% (SPEC), 12-36%% "
                "(MiBench)\nand 8-18%% (ML) across the cores, via "
                "application-level V/F\nscaling modeled on an ARM "
                "A57.\n");
    return 0;
}

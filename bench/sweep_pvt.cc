/**
 * @file
 * Sec.V "Influence of PVT variation": the headline results use the
 * worst-case design corner (pure data slack). Under nominal PVT
 * conditions every combinational path speeds up; CPM-guided LUT
 * recalibration lets ReDSOC recycle that additional guard band too.
 * This sweep derates all path delays and re-runs the recycling stack
 * (slack LUT and true delays recalibrate together, as the on-line
 * CPM recalibration of the paper would).
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("PVT guard-band sweep",
                       "Sec.V (worst-case corner vs nominal PVT)");
    SimDriver driver;

    std::vector<SimDriver::Point> points;
    for (double derate : {1.0, 0.95, 0.9, 0.85}) {
        for (Suite suite : bench::allSuites()) {
            for (const std::string &name :
                 bench::suiteWorkloads(suite, fast)) {
                CoreConfig base = configFor("big", SchedMode::Baseline);
                CoreConfig red = configFor("big", SchedMode::ReDSOC);
                base.timing.pvt_derate = derate;
                red.timing.pvt_derate = derate;
                points.push_back({name, base});
                points.push_back({name, red});
            }
        }
    }
    driver.prefetch(points);

    Table t({"PVT derate", "SPEC mean", "MiBench mean", "ML mean"});
    for (double derate : {1.0, 0.95, 0.9, 0.85}) {
        std::vector<std::string> row = {Table::num(derate, 2)};
        for (Suite suite : bench::allSuites()) {
            const double mean = bench::suiteMean(
                suite, fast, [&](const std::string &name) {
                    CoreConfig base = configFor("big",
                                                SchedMode::Baseline);
                    CoreConfig red = configFor("big", SchedMode::ReDSOC);
                    // Both timing models see the same silicon; only
                    // ReDSOC can exploit the extra slack.
                    base.timing.pvt_derate = derate;
                    red.timing.pvt_derate = derate;
                    return driver.speedup(name, base, red) - 1.0;
                });
            row.push_back(Table::pct(mean));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: speedups grow as the PVT guard band opens "
                "up —\nnominal-corner paths finish earlier, so every "
                "LUT bucket gains\nrecyclable ticks (1.0 = worst-case "
                "corner, the paper's default).\n");
    return 0;
}

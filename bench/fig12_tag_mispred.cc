/**
 * @file
 * Fig.12: last-arriving parent/grandparent tag misprediction rate of
 * the Operational RSE design, by benchmark class and core size.
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("P/GP tag misprediction", "Fig.12");
    SimDriver driver;
    bench::prefetchTuning(driver, bench::allSuites(), bench::allCores(),
                          fast);
    Table t({"suite", "BIG", "MEDIUM", "SMALL"});
    for (Suite suite : bench::allSuites()) {
        std::vector<std::string> row = {
            std::string(suiteName(suite)) + "-MEAN"};
        for (const std::string &core : bench::allCores()) {
            const CoreConfig red =
                bench::tunedRedsoc(driver, suite, core, fast);
            const double rate = bench::suiteMean(
                suite, fast, [&](const std::string &name) {
                    return driver.run(name, red).laMispredictRate();
                });
            row.push_back(Table::pct(rate, 2));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: around 1%% misprediction, slightly "
                "higher on larger\ncores (more scheduling traffic).\n");
    return 0;
}

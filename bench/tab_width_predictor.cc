/**
 * @file
 * Sec.II-B overheads/accuracy: the Loh resetting-counter data-width
 * predictor — aggressive/conservative misprediction rates per
 * workload plus the state-budget comparison the paper makes.
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("data-width predictor accuracy and cost",
                       "Sec.II-B");
    SimDriver driver;
    const CoreConfig cfg = configFor("medium", SchedMode::ReDSOC);

    std::vector<SimDriver::Point> points;
    for (Suite suite : bench::allSuites())
        for (const std::string &name : bench::suiteWorkloads(suite, fast))
            points.push_back({name, cfg});
    driver.prefetch(points);

    Table t({"benchmark", "predictions", "aggressive", "conservative"});
    double worst_aggressive = 0.0;
    for (Suite suite : bench::allSuites()) {
        for (const std::string &name :
             bench::suiteWorkloads(suite, fast)) {
            const CoreStats &stats = driver.run(name, cfg);
            const double aggr = stats.widthAggressiveRate();
            worst_aggressive = std::max(worst_aggressive, aggr);
            const double cons = ratioOf(stats.width_conservative,
                                        stats.width_predictions);
            t.addRow({name, std::to_string(stats.width_predictions),
                      Table::pct(aggr, 3), Table::pct(cons, 2)});
        }
    }
    std::printf("%s\n", t.render().c_str());

    WidthPredictor wp(cfg.width_pred);
    LastArrivalPredictor la(cfg.last_arrival);
    std::printf("predictor state: %llu bytes (4K-entry resetting "
                "counter table)\n",
                static_cast<unsigned long long>(wp.stateBytes()));
    std::printf("last-arrival table: %llu bytes (1K x 1 bit)\n",
                static_cast<unsigned long long>(la.stateBytes()));
    std::printf("worst aggressive misprediction observed: %.3f%%\n",
                worst_aggressive * 100.0);
    std::printf("paper: aggressive mispredictions ~0.3-0.4%% with a "
                "4K-entry,\n~1.5KB table (vs 64KB branch predictors).\n");
    return 0;
}

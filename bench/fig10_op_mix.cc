/**
 * @file
 * Fig.10: benchmark operation-distribution characteristics —
 * high/low-latency memory, SIMD, other multi-cycle, and high/low
 * slack single-cycle ALU fractions, per benchmark and per suite.
 */

#include "bench_common.h"
#include "workloads/op_mix.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("benchmark operation characteristics", "Fig.10");

    SimDriver driver;
    // No timing simulation here, but the functional traces are still
    // expensive: build them all in parallel first.
    std::vector<std::string> all_names;
    for (Suite suite : bench::allSuites())
        for (const std::string &name : bench::suiteWorkloads(suite, fast))
            all_names.push_back(name);
    driver.prefetchTraces(all_names);
    const TimingModel timing;
    Table t({"benchmark", "MEM-HL", "MEM-LL", "SIMD", "OtherMulti",
             "ALU-LS", "ALU-HS"});

    auto add_row = [&](const std::string &label, const OpMix &mix) {
        t.addRow({label, Table::pct(mix.mem_hl), Table::pct(mix.mem_ll),
                  Table::pct(mix.simd), Table::pct(mix.other_multi),
                  Table::pct(mix.alu_ls), Table::pct(mix.alu_hs)});
    };

    for (Suite suite : bench::allSuites()) {
        OpMix mean{};
        const auto names = bench::suiteWorkloads(suite, fast);
        const double n = asDouble(names.size());
        for (const std::string &name : names) {
            const OpMix mix = computeOpMix(driver.trace(name), timing);
            add_row(name, mix);
            mean.mem_hl += mix.mem_hl / n;
            mean.mem_ll += mix.mem_ll / n;
            mean.simd += mix.simd / n;
            mean.other_multi += mix.other_multi / n;
            mean.alu_ls += mix.alu_ls / n;
            mean.alu_hs += mix.alu_hs / n;
        }
        add_row(std::string(suiteName(suite)) + "-MEAN", mean);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: MiBench averages ~60%% high-slack ALU "
                "ops vs ~30%%\nfor SPEC; ML kernels carry large SIMD "
                "fractions; bitcnt has <5%%\nmemory ops.\n");
    return 0;
}

/**
 * @file
 * Mechanism ablations (DESIGN.md §3): how much of ReDSOC's gain each
 * scheduler component is responsible for — eager grandparent wakeup,
 * skewed selection, the Operational vs Illustrative RSE design — and
 * the Sec.IV-C dynamic-threshold extension versus the static tuned
 * value.
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("ReDSOC mechanism ablations",
                       "Sec.IV design choices");
    SimDriver driver;
    const std::vector<std::string> cores = {"big", "small"};

    // Two-phase prefetch: the tuning sweep first (it decides each
    // suite's threshold), then every ablation variant of the tuned
    // configuration in one parallel batch.
    bench::prefetchTuning(driver, bench::allSuites(), cores, fast);
    std::vector<SimDriver::Point> points;
    for (const std::string &core : cores) {
        for (Suite suite : bench::allSuites()) {
            const CoreConfig full =
                bench::tunedRedsoc(driver, suite, core, fast);
            CoreConfig no_egpw = full;
            no_egpw.egpw = false;
            CoreConfig no_skew = full;
            no_skew.skewed_select = false;
            CoreConfig illus = full;
            illus.rs_design = RsDesign::Illustrative;
            CoreConfig dyn = configFor(core, SchedMode::ReDSOC);
            dyn.dynamic_threshold = true;
            for (const std::string &name :
                 bench::suiteWorkloads(suite, fast)) {
                points.push_back({name, no_egpw});
                points.push_back({name, no_skew});
                points.push_back({name, illus});
                points.push_back({name, dyn});
            }
        }
    }
    driver.prefetch(points);

    for (const std::string &core : cores) {
        Table t({"suite", "full", "-EGPW", "-skewed sel",
                 "illustrative RSE", "dynamic threshold"});
        for (Suite suite : bench::allSuites()) {
            const CoreConfig base = configFor(core, SchedMode::Baseline);
            const CoreConfig full =
                bench::tunedRedsoc(driver, suite, core, fast);

            auto mean_speedup = [&](const CoreConfig &cfg) {
                return bench::suiteMean(
                    suite, fast, [&](const std::string &name) {
                        return driver.speedup(name, base, cfg) - 1.0;
                    });
            };

            CoreConfig no_egpw = full;
            no_egpw.egpw = false;
            CoreConfig no_skew = full;
            no_skew.skewed_select = false;
            CoreConfig illus = full;
            illus.rs_design = RsDesign::Illustrative;
            CoreConfig dyn = configFor(core, SchedMode::ReDSOC);
            dyn.dynamic_threshold = true;

            t.addRow({suiteName(suite), Table::pct(mean_speedup(full)),
                      Table::pct(mean_speedup(no_egpw)),
                      Table::pct(mean_speedup(no_skew)),
                      Table::pct(mean_speedup(illus)),
                      Table::pct(mean_speedup(dyn))});
        }
        std::printf("--- %s core ---\n%s\n", core.c_str(),
                    t.render().c_str());
    }
    std::printf("expected: EGPW carries most of the gain (chains can't "
                "start\nwithout same-cycle parent/child issue); skewed "
                "selection matters\nunder FU pressure; the Operational "
                "RSE tracks the Illustrative\ndesign within ~1%%; the "
                "dynamic threshold approaches the statically\ntuned "
                "value without per-suite sweeps.\n");
    return 0;
}

/**
 * @file
 * Fig.14: pipeline stall rate from busy functional units, baseline
 * vs ReDSOC — recycling trades FU occupancy (2-cycle transparent
 * holds, eager consumers) for latency.
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("FU-busy stall rates", "Fig.14");
    SimDriver driver;
    bench::prefetchTuning(driver, bench::allSuites(), bench::allCores(),
                          fast);
    Table t({"core:suite", "baseline", "REDSOC"});
    for (const std::string &core : bench::allCores()) {
        for (Suite suite : bench::allSuites()) {
            auto rate = [&](const CoreConfig &cfg) {
                return bench::suiteMean(
                    suite, fast, [&](const std::string &name) {
                        return driver.run(name, cfg).fuStallRate();
                    });
            };
            t.addRow({core + ":" + suiteName(suite) + "-MEAN",
                      Table::pct(rate(configFor(core,
                                                SchedMode::Baseline))),
                      Table::pct(rate(bench::tunedRedsoc(
                          driver, suite, core, fast)))});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: ReDSOC raises FU-busy stalls everywhere; "
                "the\nincrease is what bounds recycling gains on the "
                "small core.\n");
    return 0;
}

/**
 * @file
 * Fig.15: ReDSOC against the two prior-art comparators — timing
 * speculation (Razor-like static overclocking, optimistic: no
 * recovery cost) and MOS operation fusion — per suite and core.
 */

#include "baselines/timing_speculation.h"
#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("ReDSOC vs TS vs MOS", "Fig.15");
    SimDriver driver;
    const TimingSpeculation ts;

    // Matrix: the tuning sweep (covers baseline + tuned ReDSOC) plus
    // one MOS point per (core, workload). TS replays the functional
    // trace directly, so the trace prefetch inside the sweep covers
    // it too.
    std::vector<SimDriver::Point> points;
    for (const std::string &core : bench::allCores()) {
        for (Suite suite : bench::allSuites()) {
            bench::appendTuningPoints(points, suite, core, fast);
            for (const std::string &name :
                 bench::suiteWorkloads(suite, fast))
                points.push_back({name, configFor(core, SchedMode::MOS)});
        }
    }
    driver.prefetch(points);

    Table t({"core:suite", "ReDSOC", "TS", "MOS"});
    for (const std::string &core : bench::allCores()) {
        for (Suite suite : bench::allSuites()) {
            const CoreConfig base = configFor(core, SchedMode::Baseline);
            auto cfg_speedup = [&](const CoreConfig &cfg) {
                return bench::suiteMean(
                    suite, fast, [&](const std::string &name) {
                        return driver.speedup(name, base, cfg) - 1.0;
                    });
            };
            const double ts_speedup = bench::suiteMean(
                suite, fast, [&](const std::string &name) {
                    const Cycle base_cycles =
                        driver.run(name, base).cycles;
                    return ts.run(driver.trace(name), base,
                                  base_cycles).speedup - 1.0;
                });
            t.addRow({core + ":" + suiteName(suite) + "-MEAN",
                      Table::pct(cfg_speedup(bench::tunedRedsoc(
                          driver, suite, core, fast))),
                      Table::pct(ts_speedup),
                      Table::pct(cfg_speedup(
                          configFor(core, SchedMode::MOS)))});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: ReDSOC outperforms both comparators by "
                "2x or more;\nMOS does best on MiBench (highest slack "
                "pairs); TS is capped by\nits conservative error-rate "
                "band and fixed memory time.\n");
    return 0;
}

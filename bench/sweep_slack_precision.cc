/**
 * @file
 * Sec.V "Slack Tracking Precision in the RSE": sweep the CI field
 * precision from 1 to 8 bits — the paper found performance saturates
 * at 3 bits (1/8th of a cycle).
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("CI precision sweep", "Sec.V (3-bit saturation)");
    SimDriver driver;

    const std::vector<std::string> names =
        fast ? std::vector<std::string>{"crc"}
             : std::vector<std::string>{"crc", "bitcnt", "gsm",
                                        "softmax", "corners"};

    std::vector<SimDriver::Point> points;
    for (const std::string &name : names) {
        points.push_back({name, configFor("medium", SchedMode::Baseline)});
        for (unsigned bits = 1; bits <= 8; ++bits) {
            CoreConfig red = configFor("medium", SchedMode::ReDSOC);
            red.ci_precision_bits = bits;
            red.slack_threshold_ticks = (Tick{1} << bits) * 3 / 4;
            points.push_back({name, red});
        }
    }
    driver.prefetch(points);

    Table t({"CI bits", "mean speedup", "vs 8-bit"});
    std::vector<double> mean_by_bits(9, 0.0);
    for (unsigned bits = 1; bits <= 8; ++bits) {
        std::vector<double> speedups;
        for (const std::string &name : names) {
            CoreConfig red = configFor("medium", SchedMode::ReDSOC);
            red.ci_precision_bits = bits;
            red.slack_threshold_ticks = (Tick{1} << bits) * 3 / 4;
            speedups.push_back(driver.speedup(
                name, configFor("medium", SchedMode::Baseline), red));
        }
        mean_by_bits[bits] = SimDriver::mean(speedups);
    }
    for (unsigned bits = 1; bits <= 8; ++bits) {
        t.addRow({std::to_string(bits),
                  Table::pct(mean_by_bits[bits] - 1.0),
                  Table::num(mean_by_bits[bits] / mean_by_bits[8], 4)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: performance saturates at 3 bits of CI "
                "precision\n(1/8th of the clock period).\n");
    return 0;
}

/**
 * @file
 * Table II: the machine-learning kernels (plus the rest of the
 * workload suite with dynamic trace sizes).
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("workload suite", "Table II + Sec.V benchmarks");
    SimDriver driver;
    auto selected = [&](const Workload &w) {
        return !fast || w.name == "crc" || w.suite == Suite::Ml;
    };
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (selected(w))
            names.push_back(w.name);
    driver.prefetchTraces(names);

    Table t({"kernel", "suite", "description", "dynamic ops"});
    for (const Workload &w : allWorkloads()) {
        if (!selected(w))
            continue;
        t.addRow({w.name, suiteName(w.suite), w.description,
                  std::to_string(driver.trace(w.name).size())});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

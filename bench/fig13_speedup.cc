/**
 * @file
 * Fig.13: ReDSOC speedup over the conventional baseline for every
 * benchmark on the three cores, with suite means — the paper's
 * headline result.
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("ReDSOC speedup over baseline", "Fig.13");
    SimDriver driver;
    // Every cell of Fig.13 (and the tuning sweep behind it) is a
    // point of the per-suite threshold matrix: fan it out first.
    bench::prefetchTuning(driver, bench::allSuites(), bench::allCores(),
                          fast);

    Table t({"benchmark", "BIG", "MEDIUM", "SMALL"});

    for (Suite suite : bench::allSuites()) {
        // Sec.VI-C: the slack threshold is tuned per application set.
        auto speedup = [&](const std::string &name,
                           const std::string &core) {
            return driver.speedup(
                name, configFor(core, SchedMode::Baseline),
                bench::tunedRedsoc(driver, suite, core, fast));
        };
        std::vector<double> means(bench::allCores().size(), 0.0);
        const auto names = bench::suiteWorkloads(suite, fast);
        for (const std::string &name : names) {
            std::vector<std::string> row = {name};
            for (size_t c = 0; c < bench::allCores().size(); ++c) {
                const double s = speedup(name, bench::allCores()[c]);
                means[c] += (s - 1.0) / asDouble(names.size());
                row.push_back(Table::pct(s - 1.0));
            }
            t.addRow(row);
        }
        std::vector<std::string> mrow = {
            std::string(suiteName(suite)) + "-MEAN"};
        for (double m : means)
            mrow.push_back(Table::pct(m));
        t.addRow(mrow);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape (BIG/MED/SMALL means): SPEC 12/8/4%%, "
                "MiBench 23/17/9%%,\nML 13/9/6%%; bitcount exceeds "
                "40%% on the big core; gains grow\nwith core size.\n");
    return 0;
}

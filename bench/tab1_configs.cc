/**
 * @file
 * Table I: the Small / Medium / Big processor baselines.
 */

#include "bench_common.h"

using namespace redsoc;

int
main()
{
    bench::printHeader("processor baselines", "Table I");
    Table t({"parameter", "small", "medium", "big"});
    const CoreConfig s = smallCore(), m = mediumCore(), b = bigCore();
    auto row = [&](const char *name, auto get) {
        t.addRow({name, std::to_string(get(s)), std::to_string(get(m)),
                  std::to_string(get(b))});
    };
    t.addRow({"frequency", "2 GHz", "2 GHz", "2 GHz"});
    row("front-end width", [](const CoreConfig &c) {
        return c.frontend_width;
    });
    row("ROB entries", [](const CoreConfig &c) { return c.rob_entries; });
    row("LSQ entries", [](const CoreConfig &c) { return c.lsq_entries; });
    row("RS entries", [](const CoreConfig &c) { return c.rs_entries; });
    row("ALU units", [](const CoreConfig &c) { return c.alu_units; });
    row("SIMD units", [](const CoreConfig &c) { return c.simd_units; });
    row("FP units", [](const CoreConfig &c) { return c.fp_units; });
    row("mem ports", [](const CoreConfig &c) { return c.mem_ports; });
    t.addRow({"L1 / L2", "64kB / 2MB w/ prefetch", "same", "same"});
    std::printf("%s", t.render().c_str());
    return 0;
}

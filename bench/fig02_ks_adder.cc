/**
 * @file
 * Fig.2: Kogge-Stone adder critical path versus effective operand
 * width — the carry-prefix tree shortens by one stage per halving of
 * the active width.
 */

#include "bench_common.h"
#include "common/bitutils.h"
#include "timing/kogge_stone.h"

using namespace redsoc;

int
main()
{
    bench::printHeader("Kogge-Stone critical path vs data width",
                       "Fig.2");
    Table t({"effective width (bits)", "prefix stages", "delay (ps)",
             "vs 64-bit"});
    for (unsigned w : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
        const unsigned stages = w <= 1 ? 0 : ceilLog2(w);
        t.addRow({std::to_string(w), std::to_string(stages),
                  std::to_string(koggeStoneDelayPs(w)),
                  Table::pct(koggeStoneScale(w))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: the critical carry path grows ~log2 of "
                "the\nactive width; a 4-bit add uses a small fraction "
                "of the\nfull-width critical path.\n");
    return 0;
}

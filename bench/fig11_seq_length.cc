/**
 * @file
 * Fig.11: expected value of the transparent-sequence length, by
 * benchmark class and core size (the weighted mean length of the
 * recycled sequence a uniformly chosen recycled operation belongs
 * to).
 */

#include "bench_common.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const bool fast = bench::fastMode(argc, argv);
    bench::printHeader("expected transparent sequence length",
                       "Fig.11");
    SimDriver driver;
    // The whole matrix is the tuning sweep; simulate it in parallel
    // before any table code runs.
    bench::prefetchTuning(driver, bench::allSuites(), bench::allCores(),
                          fast);
    Table t({"suite", "BIG", "MEDIUM", "SMALL"});
    for (Suite suite : bench::allSuites()) {
        std::vector<std::string> row = {
            std::string(suiteName(suite)) + "-MEAN"};
        for (const std::string &core : bench::allCores()) {
            const CoreConfig red =
                bench::tunedRedsoc(driver, suite, core, fast);
            const double ev = bench::suiteMean(
                suite, fast, [&](const std::string &name) {
                    return driver.run(name, red).expected_chain_length;
                });
            row.push_back(Table::num(ev, 2));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper shape: average transparent sequences of ~4-6 "
                "operations,\nlonger on larger cores (more idle units "
                "to flow into).\n");
    return 0;
}

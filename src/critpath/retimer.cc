#include "critpath/retimer.h"

#include <algorithm>
#include <memory>
#include <type_traits>

#include "common/logging.h"

namespace redsoc {

Retimer::Retimer(const DepGraph &graph)
    : graph_(&graph),
      // Only the tick arithmetic of the clock is used here; the
      // physical period is irrelevant to re-timing.
      clock_(graph.params.ci_precision_bits, Picos{1000})
{
    fatal_if(clock_.ticksPerCycle() != graph.params.ticks_per_cycle,
             "graph tpc ", graph.params.ticks_per_cycle,
             " inconsistent with ci_precision_bits ",
             graph.params.ci_precision_bits);

    // Split each op's CSR range into its five destination-milestone
    // sub-ranges once, so a retime pass indexes straight into the
    // edges of the (op, milestone) node being settled.
    ms_begin_.resize(graph.num_ops);
    for (u32 i = 0; i < graph.num_ops; ++i) {
        u32 cur = graph.edge_begin[i];
        const u32 end = graph.edge_begin[i + 1];
        ms_begin_[i][0] = cur;
        for (u32 ms = 0; ms < kNumMilestones; ++ms) {
            while (cur < end &&
                   static_cast<u32>(edgeDstMilestone(
                       graph.edges[cur].kind)) == ms)
                ++cur;
            ms_begin_[i][ms + 1] = cur;
        }
        fatal_if(cur != end, "op ", i,
                 " has edges out of milestone order");
    }
    buildPlan();
}

void
Retimer::buildPlan()
{
    const DepGraph &g = *graph_;
    const Tick tpc = clock_.ticksPerCycle();
    // Built op-major first (the prunes reason per op), then re-emitted
    // in topological order below.
    std::vector<PlanEntry> tmp_plan;
    tmp_plan.reserve(g.edges.size());
    std::vector<std::array<u32, 6>> tmp_begin(g.num_ops);

    // A producer is "plain" when its select, execute, and writeback
    // are model-invariantly chained: conventional select (not EGPW,
    // so its own operands are bounded by its select via DataReady),
    // not transparent (fixed +tpc select-to-exec), not fused, not
    // frontend-resolved. For such p, every model re-times
    // X(p) = S(p) + tpc and W(p) = X(p) + kx(p), with S-lane values
    // cycle-aligned — which is what the dominance proofs below rest
    // on (DESIGN.md section 13).
    const auto plainOp = [&g](u32 op) {
        return !(g.flags[op] &
                 (kOpTransparent | kOpFused | kOpEgpwSelect |
                  kOpFrontendResolved));
    };

    std::array<std::vector<PlanEntry>, kNumMilestones> bucket;
    for (auto &b : bucket)
        b.reserve(16);
    for (u32 i = 0; i < g.num_ops; ++i) {
        const u16 fl = g.flags[i];
        const u32 kx = static_cast<u32>(g.obs_w[i] - g.obs_x[i]);
        // Fold X into W unconditionally: structurally W's only
        // in-edge is Exec (W = X + kx verbatim in every model) and
        // X's only consumer is that Exec edge (Data, DataReady and
        // BranchRecover all source from W), so X's in-edges move to
        // W and both the Exec edge and the X node disappear. Linear
        // entries (SelectToExec) absorb kx into k; arrival-masked
        // Data entries switch to the post-mask-add classes, which
        // add kx *after* the model's arrival quantization — exactly
        // max(sel + kx, ceil(arrival) + kx) = X + kx = W.
        for (auto &b : bucket)
            b.clear();

        for (u32 e = g.edge_begin[i]; e < g.edge_begin[i + 1]; ++e) {
            const Edge &edge = g.edges[e];
            PlanEntry p;
            p.src = nodeId(edge.src, edgeSrcMilestone(edge.kind));
            p.op = PlanOp::InvAdd;
            u32 dst = static_cast<u32>(edgeDstMilestone(edge.kind));
            switch (edge.kind) {
            case EdgeKind::FrontendOrder:
            case EdgeKind::RobCap:
            case EdgeKind::RsCap:
            case EdgeKind::LsqCap:
            case EdgeKind::CommitOrder:
            case EdgeKind::MemOrder:
                break; // InvAdd k=0
            case EdgeKind::FrontendWidth:
            case EdgeKind::CommitWidth:
                p.k = static_cast<u32>(tpc);
                break;
            case EdgeKind::BranchRecover:
                p.op = PlanOp::Branch;
                break;
            case EdgeKind::DispatchToSelect:
                if (!(fl & kOpFrontendResolved))
                    p.k = static_cast<u32>(tpc);
                break;
            case EdgeKind::Wake:
                if (edge.aux & kEdgeWakeFused)
                    break; // k=0
                if (edge.aux & kEdgeWakeSpeculative)
                    p.op = PlanOp::WakeSpec;
                else
                    p.k = static_cast<u32>(tpc);
                break;
            case EdgeKind::FuStruct:
                // Re-derived per model from the pool grant order (the
                // retimeAll FU gather); at fu_scale 1 the derivation
                // reproduces this edge exactly.
                continue;
            case EdgeKind::DataReady:
                if (fl & kOpFused)
                    continue; // no constraint in any model
                if (fl & kOpEgpwSelect)
                    p.op = (fl & kOpTransparent) ? PlanOp::DrEgpwTransp
                                                 : PlanOp::DrEgpwPlain;
                else
                    p.op = (fl & kOpTransparent) ? PlanOp::DrTransp
                                                 : PlanOp::DrPlain;
                break;
            case EdgeKind::SelectToExec:
                if (fl & (kOpFused | kOpFrontendResolved))
                    p.k = static_cast<u32>(g.obs_x[i] - g.obs_s[i]);
                else if (fl & kOpTransparent)
                    p.op = PlanOp::SelTransp;
                else
                    p.k = static_cast<u32>(tpc);
                p.k += kx;
                dst = static_cast<u32>(Milestone::W);
                break;
            case EdgeKind::Data:
                p.op = (edge.aux & kEdgeDataTransparent)
                           ? PlanOp::DataTranspW
                           : PlanOp::DataPlainW;
                p.k = kx;
                dst = static_cast<u32>(Milestone::W);
                break;
            case EdgeKind::Exec:
                continue; // folded into the moved X in-edges
            case EdgeKind::WbToCommit:
                p.op = PlanOp::Ceil;
                break;
            case EdgeKind::NUM:
                panic("unreachable edge kind");
            }
            bucket[dst].push_back(p);
        }

        // Capacity-edge dominance: C-lane values are monotone in op
        // index in every model (every C node chains off C(i-1) via
        // CommitOrder), so of this op's C-sourced k=0 capacity
        // bounds (RobCap, LsqCap) only the youngest source can ever
        // bind — drop the rest.
        {
            auto &db = bucket[static_cast<u32>(Milestone::D)];
            const auto isCapBound = [](const PlanEntry &p) {
                return p.op == PlanOp::InvAdd && p.k == 0 &&
                       nodeMilestone(p.src) == Milestone::C;
            };
            u32 youngest = 0;
            u32 n_cap = 0;
            for (const PlanEntry &p : db)
                if (isCapBound(p)) {
                    ++n_cap;
                    youngest = std::max(youngest, p.src);
                }
            if (n_cap > 1)
                db.erase(std::remove_if(
                             db.begin(), db.end(),
                             [&](const PlanEntry &p) {
                                 return isCapBound(p) &&
                                        p.src != youngest;
                             }),
                         db.end());
        }

        // Wake/DataReady pair dominance: a producer p constrains this
        // op's select twice — Wake (S(p) side) and DataReady (W(p)
        // side). For plain p both sides are fixed functions of S(p)
        // in every model, so one always dominates: exec latency
        // kx(p) <= tpc means ceil(W(p)) - window <= S(p) + tpc (the
        // Wake bound) in all models — drop DataReady; kx(p) > tpc
        // means ceil(kx) >= 2tpc, so DataReady clears the Wake bound
        // even at the widest window — drop a plain Wake (a
        // speculative Wake must stay: EGPW-honoring models collapse
        // DataReady to zero but still need the same-cycle S(p)
        // bound).
        {
            auto &sb = bucket[static_cast<u32>(Milestone::S)];
            for (size_t d = 0; d < sb.size(); ++d) {
                const PlanOp op = sb[d].op;
                const bool is_dr =
                    op == PlanOp::DrPlain || op == PlanOp::DrTransp ||
                    op == PlanOp::DrEgpwPlain ||
                    op == PlanOp::DrEgpwTransp;
                if (!is_dr)
                    continue;
                const u32 prod = nodeOp(sb[d].src);
                if (!plainOp(prod))
                    continue;
                const u32 kxp =
                    static_cast<u32>(g.obs_w[prod] - g.obs_x[prod]);
                if (kxp <= tpc) {
                    sb.erase(sb.begin() + d);
                    --d;
                    continue;
                }
                const u32 wake_src = nodeId(prod, Milestone::S);
                for (size_t w = 0; w < sb.size(); ++w) {
                    if (sb[w].op == PlanOp::InvAdd &&
                        sb[w].src == wake_src && sb[w].k == tpc) {
                        if (op == PlanOp::DrEgpwPlain ||
                            op == PlanOp::DrEgpwTransp)
                            std::fprintf(stderr,
                                         "PRUNE-EGPW-WAKE-DROP op=%u prod=%u kxp=%u\n",
                                         i, prod, kxp);
                        sb.erase(sb.begin() + w);
                        if (w < d)
                            --d;
                        break;
                    }
                }
            }
        }

        // Group same-class entries within each destination-milestone
        // fence (max is commutative, so intra-group order is free):
        // InvAdd first — it dominates the mix and the batched pass
        // has a table-free fast path for it.
        auto &fence = tmp_begin[i];
        for (u32 ms = 0; ms < kNumMilestones; ++ms) {
            fence[ms] = static_cast<u32>(tmp_plan.size());
            auto &b = bucket[ms];
            std::stable_sort(
                b.begin(), b.end(),
                [](const PlanEntry &a, const PlanEntry &c) {
                    return (a.op == PlanOp::InvAdd
                                ? 0u
                                : 1u + static_cast<u32>(a.op)) <
                           (c.op == PlanOp::InvAdd
                                ? 0u
                                : 1u + static_cast<u32>(c.op));
                });
            tmp_plan.insert(tmp_plan.end(), b.begin(), b.end());
        }
        fence[kNumMilestones] = static_cast<u32>(tmp_plan.size());
    }

    // Re-emit the plan in topological order: the batched pass settles
    // nodes in g.topo order, so a topo-ordered stream turns both the
    // per-node headers and the entry array into strictly sequential
    // reads (the op-major CSR layout cost a random fence lookup and a
    // scattered entry range per node). Folded X nodes vanish from the
    // stream entirely — they have no in-edges left and no readers.
    node_refs_.clear();
    node_refs_.reserve(g.topo.size());
    plan_.clear();
    plan_.reserve(tmp_plan.size());
    for (const u32 node : g.topo) {
        const Milestone ms = nodeMilestone(node);
        const auto &fence = tmp_begin[nodeOp(node)];
        const u32 msi = static_cast<u32>(ms);
        const u32 b = fence[msi];
        const u32 e = fence[msi + 1];
        if (ms == Milestone::X) {
            fatal_if(b != e, "folded X node still has plan entries");
            continue;
        }
        node_refs_.push_back(NodeRef{node, e - b});
        plan_.insert(plan_.end(), tmp_plan.begin() + b,
                     tmp_plan.begin() + e);
    }
}

Tick
Retimer::edgeCandidate(const WhatIfModel &m, const Edge &edge,
                       u32 dst_op, Tick src_t) const
{
    const DepGraph &g = *graph_;
    if (m.exact_replay) {
        // Tight replay: re-apply the latency the simulator observed.
        const Tick obs_src = g.obs(edgeSrcMilestone(edge.kind), edge.src);
        const Tick obs_dst = g.obs(edgeDstMilestone(edge.kind), dst_op);
        return src_t + (obs_dst - obs_src);
    }
    const Tick tpc = clock_.ticksPerCycle();
    switch (edge.kind) {
    case EdgeKind::FrontendOrder:
    case EdgeKind::RobCap:
    case EdgeKind::RsCap:
    case EdgeKind::LsqCap:
    case EdgeKind::CommitOrder:
        // Same-cycle resource recycling: the freeing phase runs
        // before the consuming phase of the same cycle.
        return src_t;
    case EdgeKind::FrontendWidth:
    case EdgeKind::CommitWidth:
        return src_t + tpc;
    case EdgeKind::BranchRecover: {
        const Cycle done = clock_.cycleOf(src_t == 0 ? 0 : src_t - 1);
        return clock_.cycleStart(done + 1 + g.params.redirect_penalty);
    }
    case EdgeKind::DispatchToSelect:
        return (g.flags[dst_op] & kOpFrontendResolved) ? src_t
                                                       : src_t + tpc;
    case EdgeKind::Wake:
        // EGPW grants ride the parent's select cycle; MOS fusions
        // ride the producer's. Everything else pays the broadcast.
        if ((edge.aux & kEdgeWakeFused) ||
            ((edge.aux & kEdgeWakeSpeculative) && m.egpw))
            return src_t;
        return src_t + tpc;
    case EdgeKind::FuStruct:
        // fu_scale == 1 replay; scaled models skip stored FuStruct
        // edges and re-derive the constraint from pool_order.
        return src_t + tpc;
    case EdgeKind::MemOrder:
        // The store's grant resolves its address and the same-cycle
        // re-evaluation can admit the parked load within the very
        // same issue phase, so the constraint is tick-equality.
        return src_t;
    case EdgeKind::DataReady: {
        // Grant only once the operand lands within the arrival
        // window: one cycle ahead conventionally, two for a
        // transparent recycle (the producer may complete mid-cycle
        // after the grant). EGPW grants exist precisely to break
        // this wait; fused ops ride their producer's grant.
        const u16 fl = g.flags[dst_op];
        if (fl & kOpFused)
            return 0;
        if ((fl & kOpEgpwSelect) && m.egpw)
            return 0;
        const Tick ahead = m.zero_latency_recycle ||
                                   ((fl & kOpTransparent) && !m.no_recycle)
                               ? 2 * tpc
                               : tpc;
        const Tick bound = clock_.ceilToBoundary(src_t);
        return bound > ahead ? bound - ahead : 0;
    }
    case EdgeKind::SelectToExec: {
        const u16 fl = g.flags[dst_op];
        if (fl & (kOpFused | kOpFrontendResolved))
            return src_t + (g.obs_x[dst_op] - g.obs_s[dst_op]);
        if ((fl & kOpTransparent) && !m.no_recycle)
            return src_t; // data arrival sets the transparent start
        return src_t + tpc;
    }
    case EdgeKind::Data: {
        if (m.zero_latency_recycle)
            return src_t;
        if (!(edge.aux & kEdgeDataTransparent) || m.no_recycle)
            return clock_.ceilToBoundary(src_t);
        // Transparent pass: the consumer latches at the producer's CI
        // rounded up to the model's precision grain (the latch can
        // only close on an instant the CI field can express).
        unsigned bits = m.ci_bits ? m.ci_bits : clock_.precisionBits();
        if (bits > clock_.precisionBits())
            bits = clock_.precisionBits();
        const Tick grain = tpc >> bits;
        return (src_t + grain - 1) / grain * grain;
    }
    case EdgeKind::Exec:
        // Execution latency is a property of the op, not the config.
        return src_t + (g.obs_w[dst_op] - g.obs_x[dst_op]);
    case EdgeKind::WbToCommit:
        return clock_.ceilToBoundary(src_t);
    case EdgeKind::NUM:
        break;
    }
    panic("unreachable edge kind");
    return 0;
}

RetimeResult
Retimer::retime(const WhatIfModel &model)
{
    const DepGraph &g = *graph_;
    RetimeResult r;
    r.model = model.name;
    r.ops = g.num_ops;

    const size_t n_nodes = size_t{g.num_ops} * kNumMilestones;
    time_.assign(n_nodes, 0);
    arg_src_.assign(n_nodes, kNoNode);
    arg_kind_.assign(n_nodes, static_cast<u8>(EdgeKind::NUM));

    const bool derive_fu = !model.exact_replay && model.fu_scale != 1.0;
    std::array<u32, static_cast<size_t>(FuPoolKind::NUM)> eff_units{};
    for (size_t p = 0; p < eff_units.size(); ++p) {
        const double scaled = g.params.units[p] * model.fu_scale;
        eff_units[p] = scaled < 1.0 ? 1u : static_cast<u32>(scaled);
    }
    const Tick tpc = clock_.ticksPerCycle();

    for (const u32 node : g.topo) {
        const u32 i = nodeOp(node);
        const Milestone ms = nodeMilestone(node);
        Tick best = 0;
        u32 best_src = kNoNode;
        u8 best_kind = static_cast<u8>(EdgeKind::NUM);
        const auto &fence = ms_begin_[i];
        const u32 m = static_cast<u32>(ms);
        for (u32 e = fence[m]; e < fence[m + 1]; ++e) {
            const Edge &edge = g.edges[e];
            if (derive_fu && edge.kind == EdgeKind::FuStruct)
                continue;
            const u32 src_node =
                nodeId(edge.src, edgeSrcMilestone(edge.kind));
            const Tick cand =
                edgeCandidate(model, edge, i, time_[src_node]);
            if (cand > best) {
                best = cand;
                best_src = src_node;
                best_kind = static_cast<u8>(edge.kind);
            }
        }
        if (derive_fu && ms == Milestone::S &&
            g.pool_pos[i] != kNoPoolPos) {
            const u8 pool = g.pool[i];
            const u32 pos = g.pool_pos[i];
            if (pos >= eff_units[pool]) {
                const u32 src_node = nodeId(
                    g.pool_order[pool][pos - eff_units[pool]],
                    Milestone::S);
                const Tick cand = time_[src_node] + tpc;
                if (cand > best) {
                    best = cand;
                    best_src = src_node;
                    best_kind = static_cast<u8>(EdgeKind::FuStruct);
                }
            }
        }
        time_[node] = best;
        arg_src_[node] = best_src;
        arg_kind_[node] = best_kind;
    }

    if (g.num_ops == 0)
        return r;

    // Commits are in order, so the last op's C node is the run's end;
    // the simulator's run loop exits one cycle after it.
    u32 node = nodeId(g.num_ops - 1, Milestone::C);
    r.cycles = clock_.cycleOf(time_[node]) + 1;

    // Walk the binding constraints back to a source node for the
    // critical-path breakdown.
    while (arg_src_[node] != kNoNode) {
        ++r.path_kinds[arg_kind_[node]];
        ++r.path_len;
        node = arg_src_[node];
    }
    return r;
}

std::vector<RetimeResult>
Retimer::retimeAll(const std::vector<WhatIfModel> &models)
{
    const DepGraph &g = *graph_;
    const u32 M = static_cast<u32>(models.size());
    fatal_if(M == 0 || M > 64, "retimeAll wants 1..64 models, got ",
             M);

    // The batched lanes are deliberately u32 (tick counts of a single
    // traced run fit with room to spare; the narrow rows are what
    // keeps the pass memory-bound instead of worse).
    // redsoc-lint: allow(cycle-narrow)
    const u32 tpc = static_cast<u32>(clock_.ticksPerCycle());
    fatal_if((tpc & (tpc - 1)) != 0,
             "retimeAll's mask arithmetic needs a power-of-two tick "
             "period, got ", tpc);
    const u32 ceil_add = tpc - 1;
    const u32 ceil_mask = ~ceil_add;
    constexpr u32 kSkip = ~u32{0};

    // Per-model constant vectors: everything edgeCandidate() decides
    // from the model alone, folded down so the lane loops are pure
    // add/and/max.
    std::vector<u32> wake_add(M), sel_add(M), dp_add(M),
        dp_mask(M), dt_add(M), dt_mask(M), dr_p_sub(M), dr_t_sub(M),
        dr_ep_sub(M), dr_et_sub(M);
    // Models re-deriving FU structural constraints, grouped by
    // effective unit-count signature (one gather per group).
    struct FuGroup
    {
        std::array<u32, static_cast<size_t>(FuPoolKind::NUM)> eff{};
        std::vector<u32> members;
    };
    std::vector<FuGroup> fu_groups;

    for (u32 m = 0; m < M; ++m) {
        const WhatIfModel &mod = models[m];
        fatal_if(mod.exact_replay, "retimeAll is for what-if models; "
                 "replay '", mod.name, "' via retime()");
        const bool zl = mod.zero_latency_recycle;
        const bool nr = mod.no_recycle;
        wake_add[m] = mod.egpw ? 0 : tpc;
        sel_add[m] = nr ? tpc : 0;
        dp_add[m] = zl ? 0 : ceil_add;
        dp_mask[m] = zl ? ~u32{0} : ceil_mask;
        if (zl) {
            dt_add[m] = 0;
            dt_mask[m] = ~u32{0};
        } else if (nr) {
            dt_add[m] = ceil_add;
            dt_mask[m] = ceil_mask;
        } else {
            unsigned bits =
                mod.ci_bits ? mod.ci_bits : clock_.precisionBits();
            if (bits > clock_.precisionBits())
                bits = clock_.precisionBits();
            const u32 grain = tpc >> bits;
            dt_add[m] = grain - 1;
            dt_mask[m] = ~(grain - 1);
        }
        dr_p_sub[m] = zl ? 2 * tpc : tpc;
        dr_t_sub[m] = zl ? 2 * tpc : (nr ? tpc : 2 * tpc);
        dr_ep_sub[m] = mod.egpw ? kSkip : dr_p_sub[m];
        dr_et_sub[m] = mod.egpw ? kSkip : dr_t_sub[m];
        // Every model re-derives its FU structural constraints from
        // the recorded per-pool grant order: at fu_scale 1 the
        // derived source pool_order[pos - units] is identical to the
        // traced FuStruct edge, so the plan carries no FuStruct
        // entries at all and one gather per effective-unit signature
        // serves the whole lane block.
        {
            std::array<u32, static_cast<size_t>(FuPoolKind::NUM)> eff{};
            for (size_t p = 0; p < eff.size(); ++p) {
                const double scaled = g.params.units[p] * mod.fu_scale;
                eff[p] = scaled < 1.0 ? 1u : static_cast<u32>(scaled);
            }
            FuGroup *grp = nullptr;
            for (FuGroup &cand : fu_groups)
                if (cand.eff == eff)
                    grp = &cand;
            if (!grp) {
                fu_groups.push_back(FuGroup{eff, {}});
                grp = &fu_groups.back();
            }
            grp->members.push_back(m);
        }
    }
    const u32 redirect_add =
        (1 + static_cast<u32>(g.params.redirect_penalty)) * tpc;

    // Pad the lane count to a whole number of 8-wide vector steps so
    // the per-entry lane loops never run a scalar epilogue. Padding
    // lanes replay model 0's constants; their results are ignored.
    const u32 MP = (M + 7u) & ~7u;
    for (std::vector<u32> *v :
         {&wake_add, &sel_add, &dp_add, &dp_mask, &dt_add,
          &dt_mask, &dr_p_sub, &dr_t_sub, &dr_ep_sub, &dr_et_sub})
        v->resize(MP, v->front());

    // Fold every edge class into one uniform per-lane formula
    //
    //   v = (src + k + add[cls][m]) & mask[cls][m]
    //   c = v >= sub[cls][m] ? v - sub[cls][m] : 0
    //
    // driven by three small class-indexed constant tables. Null rows
    // mask to zero, the EGPW-honored DataReady rows carry an
    // impossible subtrahend (~0) so they saturate to zero, and plain
    // adds use an all-ones mask with zero subtrahend — so the hot
    // loop has no per-entry class dispatch at all. An earlier
    // variant dispatched a switch per entry; its unpredictable
    // indirect branch cost ~3x the lane arithmetic. Only the rare
    // BranchRecover entries keep a special case (one well-predicted
    // compare per entry).
    // Lane records are a whole number of 32-byte vectors; keep their
    // bases 64-byte aligned so no vector load or store straddles a
    // cache line (vector<u32> alone only guarantees 16).
    const auto alignedBase = [](std::vector<u32> &v, size_t n) {
        v.resize(n + 16);
        void *base = v.data();
        size_t space = v.size() * sizeof(u32);
        return static_cast<u32 *>(
            std::align(64, n * sizeof(u32), base, space));
    };
    const u32 n_cls = static_cast<u32>(PlanOp::Branch) + 1;
    std::vector<u32> addtab_v, masktab_v, subtab_v;
    u32 *const addtab = alignedBase(addtab_v, size_t{n_cls} * MP);
    u32 *const masktab = alignedBase(masktab_v, size_t{n_cls} * MP);
    u32 *const subtab = alignedBase(subtab_v, size_t{n_cls} * MP);
    std::fill_n(addtab, size_t{n_cls} * MP, 0u);
    std::fill_n(masktab, size_t{n_cls} * MP, ~u32{0});
    std::fill_n(subtab, size_t{n_cls} * MP, 0u);
    auto row = [MP](u32 *t, PlanOp op) {
        return &t[size_t{static_cast<u32>(op)} * MP];
    };
    for (u32 m = 0; m < MP; ++m) {
        row(masktab, PlanOp::Null)[m] = 0;
        row(subtab, PlanOp::Null)[m] = ~u32{0};
        row(addtab, PlanOp::WakeSpec)[m] = wake_add[m];
        row(addtab, PlanOp::SelTransp)[m] = sel_add[m];
        row(addtab, PlanOp::DataPlain)[m] = dp_add[m];
        row(masktab, PlanOp::DataPlain)[m] = dp_mask[m];
        row(addtab, PlanOp::DataTransp)[m] = dt_add[m];
        row(masktab, PlanOp::DataTransp)[m] = dt_mask[m];
        row(addtab, PlanOp::DataPlainW)[m] = dp_add[m];
        row(masktab, PlanOp::DataPlainW)[m] = dp_mask[m];
        row(addtab, PlanOp::DataTranspW)[m] = dt_add[m];
        row(masktab, PlanOp::DataTranspW)[m] = dt_mask[m];
        for (PlanOp op : {PlanOp::DrPlain, PlanOp::DrTransp,
                          PlanOp::DrEgpwPlain, PlanOp::DrEgpwTransp,
                          PlanOp::Ceil}) {
            row(addtab, op)[m] = ceil_add;
            row(masktab, op)[m] = ceil_mask;
        }
        row(subtab, PlanOp::DrPlain)[m] = dr_p_sub[m];
        row(subtab, PlanOp::DrTransp)[m] = dr_t_sub[m];
        row(subtab, PlanOp::DrEgpwPlain)[m] = dr_ep_sub[m];
        row(subtab, PlanOp::DrEgpwTransp)[m] = dr_et_sub[m];
    }

    // No zero-fill: the topo order guarantees every node's lane is
    // stored before any edge reads it, so a bare resize suffices
    // (and saves a full write pass over the lane array).
    const size_t n_nodes = size_t{g.num_ops} * kNumMilestones;
    u32 *const lanes = alignedBase(lanes_, n_nodes * MP);

    // The node loop is instantiated per lane count: with the vector
    // width a compile-time constant the per-entry lane loops unroll
    // completely (no prologue/remainder control per entry), which is
    // where most of the per-entry fixed cost went in the
    // runtime-width variant.
    const auto pass = [&](auto mp_c) {
        constexpr u32 CMP = decltype(mp_c)::value;
        const size_t plan_sz = plan_.size();
        u32 best[CMP];
        size_t e = 0;
        for (const NodeRef &ref : node_refs_) {
            const u32 node = ref.node;
            const u32 i = nodeOp(node);
            const Milestone ms = nodeMilestone(node);
            const size_t e_end = e + ref.count;
            // Write-intent prefetch of this node's own row: the store
            // at the bottom would otherwise stall on the
            // read-for-ownership miss.
            u32 *const lane = &lanes[size_t{node} * CMP];
            __builtin_prefetch(lane, 1);
            if (CMP > 32)
                __builtin_prefetch(
                    reinterpret_cast<const char *>(lane) + 128, 1);
            for (u32 m = 0; m < CMP; ++m)
                best[m] = 0;
            for (; e < e_end; ++e) {
                // The pass is bound by source-row pulls, not lane
                // arithmetic, and the topo-ordered stream makes the
                // upcoming sources known well in advance: pull the row
                // ~24 entries ahead (across node boundaries — the
                // stream is linear). Two touches per 256-byte row; the
                // adjacent-line prefetcher covers the partner lines.
                // Measured on the 60-model sweep: ~17% off the pass.
                if (e + 24 < plan_sz) {
                    const char *const pr =
                        reinterpret_cast<const char *>(
                            &lanes[size_t{plan_[e + 24].src} * CMP]);
                    __builtin_prefetch(pr);
                    if (CMP > 32)
                        __builtin_prefetch(pr + 128);
                }
                const PlanEntry &p = plan_[e];
                const u32 *const src = &lanes[size_t{p.src} * CMP];
                // InvAdd dominates the edge mix and needs none of the
                // class tables; buildPlan sorts classes within each
                // fence range, so this branch flips at most twice per
                // node.
                if (p.op == PlanOp::InvAdd) {
                    const u32 k = p.k;
                    for (u32 m = 0; m < CMP; ++m) {
                        const u32 c = src[m] + k;
                        best[m] = best[m] < c ? c : best[m];
                    }
                    continue;
                }
                if (p.op == PlanOp::Branch) {
                    for (u32 m = 0; m < CMP; ++m) {
                        const u32 s = src[m];
                        const u32 c =
                            ((s == 0 ? 0 : s - 1) & ceil_mask) +
                            redirect_add;
                        best[m] = best[m] < c ? c : best[m];
                    }
                    continue;
                }
                const size_t r = size_t{static_cast<u32>(p.op)} * CMP;
                const u32 *const av = &addtab[r];
                const u32 *const mv = &masktab[r];
                const u32 k = p.k;
                // Post-mask-add classes (X folded into W): the exec
                // latency k lands after the arrival quantization.
                if (p.op == PlanOp::DataPlainW ||
                    p.op == PlanOp::DataTranspW) {
                    for (u32 m = 0; m < CMP; ++m) {
                        const u32 c = ((src[m] + av[m]) & mv[m]) + k;
                        best[m] = best[m] < c ? c : best[m];
                    }
                    continue;
                }
                const u32 *const sv = &subtab[r];
                for (u32 m = 0; m < CMP; ++m) {
                    const u32 v = (src[m] + k + av[m]) & mv[m];
                    const u32 c = v >= sv[m] ? v - sv[m] : 0;
                    best[m] = best[m] < c ? c : best[m];
                }
            }
            if (ms == Milestone::S && g.pool_pos[i] != kNoPoolPos &&
                !fu_groups.empty()) {
                const u8 pool = g.pool[i];
                const u32 pos = g.pool_pos[i];
                for (const FuGroup &grp : fu_groups) {
                    if (pos < grp.eff[pool])
                        continue;
                    const u32 src_node = nodeId(
                        g.pool_order[pool][pos - grp.eff[pool]],
                        Milestone::S);
                    const u32 *const src =
                        &lanes[size_t{src_node} * CMP];
                    for (const u32 m : grp.members) {
                        const u32 c = src[m] + tpc;
                        best[m] = best[m] < c ? c : best[m];
                    }
                }
            }
            for (u32 m = 0; m < CMP; ++m)
                lane[m] = best[m];
        }
    };
    switch (MP) {
    case 8:
        pass(std::integral_constant<u32, 8>{});
        break;
    case 16:
        pass(std::integral_constant<u32, 16>{});
        break;
    case 24:
        pass(std::integral_constant<u32, 24>{});
        break;
    case 32:
        pass(std::integral_constant<u32, 32>{});
        break;
    case 40:
        pass(std::integral_constant<u32, 40>{});
        break;
    case 48:
        pass(std::integral_constant<u32, 48>{});
        break;
    case 56:
        pass(std::integral_constant<u32, 56>{});
        break;
    case 64:
        pass(std::integral_constant<u32, 64>{});
        break;
    default:
        panic("retimeAll lane count ", MP, " has no instantiation");
    }

    std::vector<RetimeResult> results(M);
    for (u32 m = 0; m < M; ++m) {
        results[m].model = models[m].name;
        results[m].ops = g.num_ops;
        if (g.num_ops != 0) {
            const u32 last =
                lanes[size_t{nodeId(g.num_ops - 1, Milestone::C)} * MP +
                      m];
            results[m].cycles = Cycle{last / tpc} + 1;
        }
    }
    return results;
}

} // namespace redsoc

#include "critpath/dep_graph.h"

#include <sstream>

namespace redsoc {

const char *
milestoneName(Milestone ms)
{
    switch (ms) {
    case Milestone::D: return "D";
    case Milestone::S: return "S";
    case Milestone::X: return "X";
    case Milestone::W: return "W";
    case Milestone::C: return "C";
    case Milestone::NUM: break;
    }
    return "?";
}

const char *
edgeKindName(EdgeKind kind)
{
    switch (kind) {
    case EdgeKind::FrontendOrder: return "frontend_order";
    case EdgeKind::FrontendWidth: return "frontend_width";
    case EdgeKind::RobCap: return "rob_cap";
    case EdgeKind::RsCap: return "rs_cap";
    case EdgeKind::LsqCap: return "lsq_cap";
    case EdgeKind::BranchRecover: return "branch_recover";
    case EdgeKind::DispatchToSelect: return "dispatch_to_select";
    case EdgeKind::Wake: return "wake";
    case EdgeKind::FuStruct: return "fu_struct";
    case EdgeKind::MemOrder: return "mem_order";
    case EdgeKind::DataReady: return "data_ready";
    case EdgeKind::SelectToExec: return "select_to_exec";
    case EdgeKind::Data: return "data";
    case EdgeKind::Exec: return "exec";
    case EdgeKind::WbToCommit: return "wb_to_commit";
    case EdgeKind::CommitOrder: return "commit_order";
    case EdgeKind::CommitWidth: return "commit_width";
    case EdgeKind::NUM: break;
    }
    return "unknown";
}

Milestone
edgeSrcMilestone(EdgeKind kind)
{
    switch (kind) {
    case EdgeKind::FrontendOrder:
    case EdgeKind::FrontendWidth:
    case EdgeKind::DispatchToSelect: return Milestone::D;
    case EdgeKind::RsCap:
    case EdgeKind::Wake:
    case EdgeKind::FuStruct:
    case EdgeKind::MemOrder:
    case EdgeKind::SelectToExec: return Milestone::S;
    case EdgeKind::Exec: return Milestone::X;
    case EdgeKind::BranchRecover:
    case EdgeKind::Data:
    case EdgeKind::DataReady:
    case EdgeKind::WbToCommit: return Milestone::W;
    case EdgeKind::RobCap:
    case EdgeKind::LsqCap:
    case EdgeKind::CommitOrder:
    case EdgeKind::CommitWidth: return Milestone::C;
    case EdgeKind::NUM: break;
    }
    return Milestone::NUM;
}

Milestone
edgeDstMilestone(EdgeKind kind)
{
    switch (kind) {
    case EdgeKind::FrontendOrder:
    case EdgeKind::FrontendWidth:
    case EdgeKind::RobCap:
    case EdgeKind::RsCap:
    case EdgeKind::LsqCap:
    case EdgeKind::BranchRecover: return Milestone::D;
    case EdgeKind::DispatchToSelect:
    case EdgeKind::Wake:
    case EdgeKind::FuStruct:
    case EdgeKind::MemOrder:
    case EdgeKind::DataReady: return Milestone::S;
    case EdgeKind::SelectToExec:
    case EdgeKind::Data: return Milestone::X;
    case EdgeKind::Exec: return Milestone::W;
    case EdgeKind::WbToCommit:
    case EdgeKind::CommitOrder:
    case EdgeKind::CommitWidth: return Milestone::C;
    case EdgeKind::NUM: break;
    }
    return Milestone::NUM;
}

std::string
DepGraph::validate() const
{
    std::ostringstream err;
    if (edge_begin.size() != size_t{num_ops} + 1) {
        err << "edge_begin size " << edge_begin.size() << " != num_ops+1";
        return err.str();
    }
    if (num_ops != 0 && edge_begin.back() != edges.size()) {
        err << "edge_begin tail " << edge_begin.back() << " != edge count "
            << edges.size();
        return err.str();
    }
    for (u32 i = 0; i < num_ops; ++i) {
        if (edge_begin[i] > edge_begin[i + 1])
            return "edge_begin not monotone at op " +
                   std::to_string(i);
        // Milestones of one op must themselves be tick-ordered.
        if (!(obs_d[i] <= obs_s[i] && obs_s[i] <= obs_x[i] &&
              obs_x[i] <= obs_w[i] && obs_w[i] <= obs_c[i])) {
            err << "op " << i << " milestone order violated: D="
                << obs_d[i] << " S=" << obs_s[i] << " X=" << obs_x[i]
                << " W=" << obs_w[i] << " C=" << obs_c[i];
            return err.str();
        }
        u8 last_ms = 0;
        for (u32 e = edge_begin[i]; e < edge_begin[i + 1]; ++e) {
            const Edge &edge = edges[e];
            if (edge.src >= num_ops)
                return "edge source op out of range at op " +
                       std::to_string(i);
            const Milestone sms = edgeSrcMilestone(edge.kind);
            const Milestone dms = edgeDstMilestone(edge.kind);
            if (static_cast<u8>(dms) < last_ms)
                return "edges of op " + std::to_string(i) +
                       " not in destination-milestone order";
            last_ms = static_cast<u8>(dms);
            // DataReady is tick-non-monotone by design (the producer
            // may complete up to the arrival window after the grant);
            // the topo-forward check below still covers it.
            if (edge.kind != EdgeKind::DataReady &&
                obs(sms, edge.src) > obs(dms, i)) {
                err << "non-monotone " << edgeKindName(edge.kind)
                    << " edge op " << edge.src << ":"
                    << milestoneName(sms) << " (" << obs(sms, edge.src)
                    << ") -> op " << i << ":" << milestoneName(dms)
                    << " (" << obs(dms, i) << ")";
                return err.str();
            }
        }
    }
    for (const auto &order : pool_order)
        for (const u32 op : order)
            if (op >= num_ops)
                return "pool_order op out of range";

    // The emission-order node list must be a permutation of all
    // milestone nodes, and every stored edge must go forward in it —
    // together a constructive acyclicity proof.
    const size_t n_nodes = size_t{num_ops} * kNumMilestones;
    if (topo.size() != n_nodes) {
        err << "topo size " << topo.size() << " != " << n_nodes;
        return err.str();
    }
    std::vector<u32> rank(n_nodes, ~u32{0});
    for (size_t r = 0; r < topo.size(); ++r) {
        if (topo[r] >= n_nodes)
            return "topo node out of range";
        if (rank[topo[r]] != ~u32{0})
            return "topo node listed twice";
        rank[topo[r]] = static_cast<u32>(r);
    }
    for (u32 i = 0; i < num_ops; ++i) {
        for (u32 e = edge_begin[i]; e < edge_begin[i + 1]; ++e) {
            const Edge &edge = edges[e];
            const u32 src = nodeId(edge.src, edgeSrcMilestone(edge.kind));
            const u32 dst = nodeId(i, edgeDstMilestone(edge.kind));
            if (rank[src] >= rank[dst]) {
                err << edgeKindName(edge.kind) << " edge op "
                    << edge.src << " -> op " << i
                    << " goes backward in the topo order";
                return err.str();
            }
        }
    }
    return std::string();
}

std::string
renderDepGraph(const DepGraph &g)
{
    std::ostringstream os;
    os << "depgraph ops=" << g.num_ops << " edges=" << g.numEdges()
       << " tpc=" << g.params.ticks_per_cycle
       << " dropped_nonmonotone_data=" << g.dropped_nonmonotone_data
       << " dropped_nonmonotone_mem=" << g.dropped_nonmonotone_mem
       << "\n";
    for (u32 i = 0; i < g.num_ops; ++i) {
        os << "op " << i << " D=" << g.obs_d[i] << " S=" << g.obs_s[i]
           << " X=" << g.obs_x[i] << " W=" << g.obs_w[i]
           << " C=" << g.obs_c[i] << " flags=0x" << std::hex
           << g.flags[i] << std::dec;
        if (g.pool_pos[i] != kNoPoolPos)
            os << " pool=" << unsigned{g.pool[i]}
               << " pos=" << g.pool_pos[i];
        os << "\n";
        for (u32 e = g.edge_begin[i]; e < g.edge_begin[i + 1]; ++e) {
            const Edge &edge = g.edges[e];
            os << "  " << edgeKindName(edge.kind) << " <- op "
               << edge.src << ":"
               << milestoneName(edgeSrcMilestone(edge.kind));
            if (edge.aux != 0)
                os << " aux=0x" << std::hex << edge.aux << std::dec;
            os << "\n";
        }
    }
    return os.str();
}

} // namespace redsoc

#include "critpath/dep_graph_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "timing/timing_model.h"

namespace redsoc {

DepGraphBuilder::DepGraphBuilder(const Trace &trace,
                                 const CoreConfig &config)
    : trace_(&trace), config_(&config)
{
}

void
DepGraphBuilder::onBeginRun(Tick ticks_per_cycle)
{
    fatal_if(trace_->size() > SeqNum{~u32{0}} - 1,
             "trace too large for the dependence graph's 32-bit op ids");
    const u32 n = static_cast<u32>(trace_->size());

    graph_ = DepGraph{};
    graph_.num_ops = n;
    graph_.params.frontend_width = config_->frontend_width;
    graph_.params.commit_width = config_->commit_width;
    graph_.params.rob_entries = config_->rob_entries;
    graph_.params.rs_entries = config_->rs_entries;
    graph_.params.lsq_entries = config_->lsq_entries;
    graph_.params.units = {config_->alu_units, config_->simd_units,
                           config_->fp_units, config_->mem_ports};
    graph_.params.redirect_penalty = config_->redirect_penalty;
    graph_.params.ticks_per_cycle = ticks_per_cycle;
    graph_.params.ci_precision_bits = config_->ci_precision_bits;
    graph_.params.slack_threshold_ticks = config_->slack_threshold_ticks;

    graph_.obs_d.assign(n, 0);
    graph_.obs_s.assign(n, 0);
    graph_.obs_x.assign(n, 0);
    graph_.obs_w.assign(n, 0);
    graph_.obs_c.assign(n, 0);
    graph_.flags.assign(n, 0);
    graph_.pool.assign(n, 0);
    graph_.pool_pos.assign(n, kNoPoolPos);
    graph_.edges.clear();
    // ~14 edges per op in practice (3-source worst case is 19); a
    // one-shot reserve keeps the streaming path allocation-quiet.
    graph_.edges.reserve(size_t{n} * 14);
    graph_.edge_begin.assign(1, 0);
    graph_.edge_begin.reserve(size_t{n} + 1);
    graph_.topo.clear();
    graph_.topo.reserve(size_t{n} * kNumMilestones);
    for (auto &order : graph_.pool_order) {
        order.clear();
        order.reserve(n / 2);
    }

    pending_.assign(n, Pending{});
    reg_writer_.fill(kNoOp);
    rs_issue_order_.clear();
    rs_issue_order_.reserve(n);
    mem_order_.clear();
    mem_order_.reserve(n / 2);
    mem_block_ = kNoOp;
    rs_dispatched_ = 0;
    commits_ = 0;
    events_seen_ = 0;
    run_open_ = true;
}

void
DepGraphBuilder::onDispatch(const PipeEvent &e)
{
    const u32 i = static_cast<u32>(e.seq);
    graph_.obs_d[i] = e.tick;
    graph_.topo.push_back(nodeId(i, Milestone::D));

    const Inst &inst = trace_->inst(e.seq);
    // Mirror OooCore::buildInstMeta: direct unconditional control flow
    // (and HALT) is resolved entirely in the frontend — no RS entry,
    // no execution port, and only the branch link register is renamed.
    const bool needs_rs = inst.op != Opcode::HALT &&
                          inst.op != Opcode::B &&
                          inst.op != Opcode::BL && inst.op != Opcode::RET;

    u16 flags = 0;
    if (isMem(inst.op))
        flags |= kOpMem;
    if (isLoad(inst.op))
        flags |= kOpLoad;
    if (isStore(inst.op))
        flags |= kOpStore;
    if (isBranch(inst.op))
        flags |= kOpBranch;
    if (TimingModel::isSlackEligible(inst.op))
        flags |= kOpEligible;
    graph_.flags[i] |= flags;

    Pending &p = pending_[i];
    if (needs_rs) {
        // Rename replay: identical source walk and destination claim
        // to OooCore::dispatchPhase (duplicates preserved there are
        // deduplicated only when edges are emitted).
        for (const RegIdx r : inst.sources()) {
            if (r == kNoReg)
                continue;
            const u32 writer = reg_writer_[r];
            if (writer != kNoOp)
                p.prod[p.nprod++] = writer;
        }
        const RegIdx dst = inst.destination();
        if (dst != kNoReg)
            reg_writer_[dst] = i;
        graph_.pool[i] =
            static_cast<u8>(fuPoolKind(fuClass(inst.op)));

        // RS back-pressure: a slot frees at select, so at least
        // (k - rs_entries + 1) grants precede the (k+1)'th RS
        // dispatch; the (k - rs_entries)'th grant is the binding one.
        const u32 k = rs_dispatched_++;
        if (k >= graph_.params.rs_entries &&
            k - graph_.params.rs_entries < rs_issue_order_.size())
            p.rs_src = rs_issue_order_[k - graph_.params.rs_entries];
    } else {
        if (flags & kOpBranch) {
            const RegIdx dst = inst.destination();
            if (dst != kNoReg)
                reg_writer_[dst] = i;
        }
        // Frontend-resolved: no RS life, so select collapses onto
        // dispatch (sel_ is recorded as the dispatch cycle) and the
        // execution window onto the writeback tick — the S node is
        // placed here and the X node at the Writeback event so both
        // sit at their emission-order position for the topo lane.
        graph_.flags[i] |= kOpFrontendResolved;
        graph_.obs_s[i] = e.tick;
        graph_.topo.push_back(nodeId(i, Milestone::S));
    }

    if (flags & kOpMem) {
        // LSQ entries free at commit, and both dispatch and commit
        // are in program order: the (k - lsq_entries)'th memory op's
        // commit gates the (k+1)'th memory dispatch exactly.
        const u32 k = static_cast<u32>(mem_order_.size());
        mem_order_.push_back(i);
        if (k >= graph_.params.lsq_entries)
            p.lsq_src = mem_order_[k - graph_.params.lsq_entries];
    }
}

void
DepGraphBuilder::onSelect(const PipeEvent &e)
{
    const u32 i = static_cast<u32>(e.seq);
    graph_.obs_s[i] = e.tick;
    graph_.topo.push_back(nodeId(i, Milestone::S));
    pending_[i].selected = true;
    if (e.arg & 1)
        graph_.flags[i] |= kOpEgpwSelect;
    rs_issue_order_.push_back(i);
    auto &order = graph_.pool_order[graph_.pool[i]];
    graph_.pool_pos[i] = static_cast<u32>(order.size());
    order.push_back(i);
}

void
DepGraphBuilder::flushEdges(u32 i)
{
    auto append = [&](EdgeKind kind, u32 src, u32 aux = 0) {
        graph_.edges.push_back(Edge{src, aux, kind});
    };
    const MachineParams &mp = graph_.params;
    const Pending &p = pending_[i];

    // Deduplicate the replayed producer set (the core keeps
    // duplicates in OpCold::prod; one edge per distinct producer).
    std::array<u32, 3> prod{};
    unsigned nprod = 0;
    for (unsigned a = 0; a < p.nprod; ++a) {
        bool dup = false;
        for (unsigned b = 0; b < nprod; ++b)
            dup = dup || prod[b] == p.prod[a];
        if (!dup)
            prod[nprod++] = p.prod[a];
    }

    // -> D.
    if (i > 0 && (graph_.flags[i - 1] & kOpBranchMispred))
        append(EdgeKind::BranchRecover, i - 1);
    if (i > 0)
        append(EdgeKind::FrontendOrder, i - 1);
    if (i >= mp.frontend_width)
        append(EdgeKind::FrontendWidth, i - mp.frontend_width);
    if (i >= mp.rob_entries)
        append(EdgeKind::RobCap, i - mp.rob_entries);
    if (p.rs_src != kNoOp)
        append(EdgeKind::RsCap, p.rs_src);
    if (p.lsq_src != kNoOp)
        append(EdgeKind::LsqCap, p.lsq_src);

    // -> S.
    append(EdgeKind::DispatchToSelect, i);
    const bool spec = (graph_.flags[i] & kOpEgpwSelect) != 0;
    for (unsigned a = 0; a < nprod; ++a) {
        u32 aux = 0;
        // Same-cycle select windows: an EGPW grant rides its parent's
        // own grant cycle; a MOS fusion rides its producer's.
        if (spec && graph_.obs_s[prod[a]] == graph_.obs_s[i])
            aux |= kEdgeWakeSpeculative;
        if (prod[a] == p.fuse_link)
            aux |= kEdgeWakeFused;
        append(EdgeKind::Wake, prod[a], aux);
    }
    if (graph_.pool_pos[i] != kNoPoolPos) {
        const auto &order = graph_.pool_order[graph_.pool[i]];
        const u32 units = mp.units[graph_.pool[i]];
        if (graph_.pool_pos[i] >= units)
            append(EdgeKind::FuStruct,
                   order[graph_.pool_pos[i] - units],
                   u32{graph_.pool[i]});
    }
    // Conservative memory ordering: a load is not selectable until
    // every older store has resolved its address, which happens at
    // the store's select (address-generation grant). One edge from
    // the latest-selecting older store replays the binding blocker —
    // but only when the block actually overlapped this load's RS wait
    // (the store selected after the load dispatched); long-resolved
    // stores impose nothing.
    if ((graph_.flags[i] & kOpLoad) && mem_block_ != kNoOp &&
        graph_.obs_s[mem_block_] > graph_.obs_d[i]) {
        // Tick equality is the common shape: the store's grant and
        // the un-parked load's share one issue phase (the grant
        // resolves the address, the same-cycle re-evaluation then
        // admits the load), and the store's Select event is emitted
        // first within that phase, so the edge still goes forward in
        // the topo order. A store selecting strictly *after* the
        // load is impossible by the blocking rule; count it if the
        // event stream ever shows one rather than storing a
        // non-monotone edge.
        if (graph_.obs_s[mem_block_] > graph_.obs_s[i])
            ++graph_.dropped_nonmonotone_mem;
        else
            append(EdgeKind::MemOrder, mem_block_);
    }
    // A conventional grant requires every operand to land within the
    // arrival window (OooCore::evalConventional): the producer's
    // completion gates the *select*, not just the execution start.
    // Stored for every RS op; the Retimer nulls it for fused and
    // honored-EGPW grants, which select ahead of their data.
    if (!(graph_.flags[i] & kOpFrontendResolved))
        for (unsigned a = 0; a < nprod; ++a)
            append(EdgeKind::DataReady, prod[a]);

    // -> X.
    append(EdgeKind::SelectToExec, i);
    for (unsigned a = 0; a < nprod; ++a) {
        if (graph_.obs_w[prod[a]] > graph_.obs_x[i]) {
            // Width-replay conservative re-execution (and MOS fusion
            // under a replayed producer) can nominally start before a
            // producer's mid-cycle completion; the schedule is still
            // bounded through Wake + the conservative Exec window, so
            // the non-monotone data edge is dropped, not stored.
            ++graph_.dropped_nonmonotone_data;
            continue;
        }
        u32 aux = 0;
        if ((graph_.flags[i] & kOpTransparent) &&
            graph_.obs_w[prod[a]] == graph_.obs_x[i])
            aux |= kEdgeDataTransparent;
        append(EdgeKind::Data, prod[a], aux);
    }

    // -> W.
    append(EdgeKind::Exec, i);

    // -> C.
    append(EdgeKind::WbToCommit, i);
    if (i > 0)
        append(EdgeKind::CommitOrder, i - 1);
    if (i >= mp.commit_width)
        append(EdgeKind::CommitWidth, i - mp.commit_width);

    graph_.edge_begin.push_back(static_cast<u32>(graph_.edges.size()));
}

void
DepGraphBuilder::onCommit(const PipeEvent &e)
{
    const u32 i = static_cast<u32>(e.seq);
    graph_.obs_c[i] = e.tick;
    graph_.topo.push_back(nodeId(i, Milestone::C));
    if (e.arg & 1)
        graph_.flags[i] |= kOpBranchMispred;
    fatal_if(pending_[i].selected ==
                 ((graph_.flags[i] & kOpFrontendResolved) != 0),
             "op ", i, " select/frontend-resolved disagreement");
    fatal_if(i != commits_,
             "commit order violated the seq-order contract: op ", i,
             " committed as #", commits_);
    flushEdges(i);
    // In-order commit means every store committed so far is older
    // than any op flushed later: keep the running latest-resolver.
    if ((graph_.flags[i] & kOpStore) &&
        (mem_block_ == kNoOp ||
         graph_.obs_s[i] > graph_.obs_s[mem_block_]))
        mem_block_ = i;
    ++commits_;
}

void
DepGraphBuilder::onEvent(const PipeEvent &e)
{
    ++events_seen_;
    if (e.kind < PipeEventKind::NUM)
        ++graph_.event_counts[static_cast<size_t>(e.kind)];

    switch (e.kind) {
    case PipeEventKind::Fetch:
    case PipeEventKind::Decode:
    case PipeEventKind::Rename:
        break; // one macro-stage with Dispatch (same tick)
    case PipeEventKind::Dispatch:
        onDispatch(e);
        break;
    case PipeEventKind::Wakeup:
        break; // counted; edges derive from producer Select ticks
    case PipeEventKind::Select:
        onSelect(e);
        break;
    case PipeEventKind::ExecBegin:
        graph_.obs_x[static_cast<u32>(e.seq)] = e.tick;
        graph_.topo.push_back(
            nodeId(static_cast<u32>(e.seq), Milestone::X));
        break;
    case PipeEventKind::Writeback: {
        const u32 i = static_cast<u32>(e.seq);
        graph_.obs_w[i] = e.tick;
        if (graph_.flags[i] & kOpFrontendResolved) {
            // No ExecBegin is ever emitted for these; the execution
            // window collapses onto the writeback tick.
            graph_.obs_x[i] = e.tick;
            graph_.topo.push_back(nodeId(i, Milestone::X));
        }
        graph_.topo.push_back(nodeId(i, Milestone::W));
        break;
    }
    case PipeEventKind::Commit:
        onCommit(e);
        break;
    case PipeEventKind::Squash:
        break; // reserved: never emitted (counted above if it ever is)
    case PipeEventKind::EgpwArm:
    case PipeEventKind::EgpwFire:
    case PipeEventKind::EgpwWaste:
        break; // speculation outcomes: counts only
    case PipeEventKind::TransparentPass:
        graph_.flags[static_cast<u32>(e.seq)] |= kOpTransparent;
        break;
    case PipeEventKind::RecycleLink:
        break; // the recycled producer is recovered via Data edge ticks
    case PipeEventKind::Fuse: {
        const u32 i = static_cast<u32>(e.seq);
        graph_.flags[i] |= kOpFused;
        pending_[i].fuse_link = static_cast<u32>(e.link);
        // A fused op rides its producer's FU and books none of its
        // own (the pool can exceed its unit count on fusion cycles),
        // so it must not constrain — or be constrained by — FU
        // structural order. Its Select was emitted just before this
        // event, so it is the tail of its pool's order list.
        auto &order = graph_.pool_order[graph_.pool[i]];
        fatal_if(order.empty() || order.back() != i,
                 "Fuse event for op ", i,
                 " did not follow its own Select");
        order.pop_back();
        graph_.pool_pos[i] = kNoPoolPos;
        break;
    }
    case PipeEventKind::Replay:
        graph_.flags[static_cast<u32>(e.seq)] |=
            e.arg == 1 ? kOpLaReplay : kOpWidthReplay;
        break;
    case PipeEventKind::NUM:
        break;
    }
}

DepGraph
DepGraphBuilder::finalize()
{
    fatal_if(!run_open_, "finalize() before any onBeginRun()");
    fatal_if(commits_ != graph_.num_ops,
             "incomplete run: ", commits_, " of ", graph_.num_ops,
             " ops committed");
    run_open_ = false;
    pending_.clear();
    pending_.shrink_to_fit();
#ifndef NDEBUG
    const std::string err = graph_.validate();
    fatal_if(!err.empty(), "dependence graph invalid: ", err);
#endif
    return std::move(graph_);
}

} // namespace redsoc

/**
 * @file
 * Analytic re-timing of a frozen dependence graph under what-if
 * machine models. One Retimer::retime() call is a single longest-path
 * pass over the graph in its recorded topological order — O(edges) —
 * so sweeping dozens of configurations over one traced run costs
 * milliseconds where re-simulation costs minutes.
 *
 * Exactness contract (DESIGN.md section 13): the *base* model
 * (exact_replay) re-applies every edge's observed latency, so every
 * node's re-timed tick equals its observed tick and the final cycle
 * count is bit-identical to the simulator's. What-if models replace
 * observed latencies with analytic transfer functions; they are
 * approximations with known one-sided biases (they re-time the traced
 * schedule's dependence structure and cannot invent events the traced
 * run never exhibited, e.g. new EGPW windows or new transparent
 * passes at higher CI precision).
 */

#ifndef REDSOC_CRITPATH_RETIMER_H
#define REDSOC_CRITPATH_RETIMER_H

#include <array>
#include <string>
#include <vector>

#include "critpath/dep_graph.h"
#include "timing/completion_instant.h"

namespace redsoc {

/**
 * A machine model for one re-timing pass. The default-constructed
 * model is the exact base replay; what-if models clear exact_replay
 * and adjust the knobs they care about.
 */
struct WhatIfModel
{
    std::string name = "base";
    /** Replay every edge with its observed latency (exact). */
    bool exact_replay = true;
    /** CI precision in bits for transparent-recycle arrival
     *  quantization; 0 = the traced run's precision. Precisions above
     *  the traced tpc's log2 cannot add information and clamp. */
    unsigned ci_bits = 0;
    /** Honor the traced run's same-cycle EGPW wakeup windows; when
     *  false every wakeup costs a full broadcast cycle. */
    bool egpw = true;
    /** FU unit-count scale per pool (floor, min 1 unit). 1.0 replays
     *  the traced structural order; other values re-derive the
     *  constraints from the per-pool issue order. */
    double fu_scale = 1.0;
    /** Ideal recycling: every operand arrives the instant its
     *  producer completes (optimistic bound on slack recycling). */
    bool zero_latency_recycle = false;
    /** No recycling at all: every operand waits for the next cycle
     *  boundary (conventional baseline bound). */
    bool no_recycle = false;
};

/** Result of one re-timing pass. */
struct RetimeResult
{
    std::string model;
    Cycle cycles = 0; ///< re-timed committed-run length in cycles
    u64 ops = 0;
    /**
     * Critical-path breakdown: walking back from the last-committing
     * node along each node's binding (argmax) constraint, how many
     * path steps each edge kind contributed. Derived FU constraints
     * (fu_scale != 1) are charged to FuStruct.
     */
    std::array<u64, static_cast<size_t>(EdgeKind::NUM)> path_kinds{};
    u64 path_len = 0;
};

class Retimer
{
  public:
    /** @p graph must outlive the Retimer; scratch arrays are sized
     *  once here and reused across retime() calls. */
    explicit Retimer(const DepGraph &graph);

    RetimeResult retime(const WhatIfModel &model);

    /**
     * Batched what-if sweep: one topological pass advancing every
     * model's time lane simultaneously. Edge classification is
     * hoisted into a model-independent plan (built once per graph),
     * so the per-model marginal cost is a handful of u32 adds and
     * maxes per edge — the inner lane loops autovectorize. Results
     * match retime() model-for-model (test_critpath proves it), but
     * no critical-path breakdown is produced (path_kinds stays
     * zero). exact_replay models are rejected: the base replay is a
     * single retime() call and needs no batching.
     */
    std::vector<RetimeResult>
    retimeAll(const std::vector<WhatIfModel> &models);

    /** Re-timed tick per milestone node (nodeId() indexing), valid
     *  after the last retime() call — the exactness tests compare
     *  this against the graph's observed lanes. */
    const std::vector<Tick> &nodeTimes() const { return time_; }

  private:
    static constexpr u32 kNoNode = ~u32{0};

    Tick edgeCandidate(const WhatIfModel &model, const Edge &edge,
                       u32 dst_op, Tick src_t) const;

    /** Batched-pass edge classes: what survives of edgeCandidate()
     *  once everything model-independent is folded into k. */
    enum class PlanOp : u8 {
        Null,       ///< contributes nothing (fused DataReady)
        InvAdd,     ///< src + k, identical across models
        WakeSpec,   ///< src + wake_add[m]
        SelTransp,  ///< src + sel_add[m]
        FuStruct,   ///< unused: FU constraints are re-derived per model
        DataPlain,  ///< (src + dp_add[m]) & dp_mask[m]
        DataTransp, ///< (src + dt_add[m]) & dt_mask[m]
        /** X folded into W: the operand-arrival bound shifted by the
         *  op's exec latency, added after the arrival mask. */
        DataPlainW,  ///< ((src + dp_add[m]) & dp_mask[m]) + k
        DataTranspW, ///< ((src + dt_add[m]) & dt_mask[m]) + k
        DrPlain,    ///< sat(ceil(src) - dr_p_sub[m])
        DrTransp,   ///< sat(ceil(src) - dr_t_sub[m])
        DrEgpwPlain,  ///< DrPlain, skipped for egpw models
        DrEgpwTransp, ///< DrTransp, skipped for egpw models
        Ceil,       ///< ceil-to-boundary(src)
        Branch,     ///< redirect formula per lane (rare)
    };
    struct PlanEntry
    {
        u32 src = 0; ///< source milestone node (nodeId encoding)
        u32 k = 0;
        PlanOp op = PlanOp::Null;
    };

    void buildPlan();

    const DepGraph *graph_;
    SubCycleClock clock_;
    /** CSR sub-boundaries: per op, the first edge index targeting
     *  each destination milestone (6 fences per op). */
    std::vector<std::array<u32, 6>> ms_begin_;
    std::vector<Tick> time_;
    /** Binding constraint per node for the critical-path walk. */
    std::vector<u32> arg_src_;
    std::vector<u8> arg_kind_;
    /** One batched-pass stream element: a destination node and how
     *  many consecutive plan_ entries feed it. */
    struct NodeRef
    {
        u32 node = 0;
        u32 count = 0;
    };
    /** Batched-pass entry stream, laid out in topological order so
     *  the hot pass reads node_refs_ and plan_ strictly sequentially
     *  (the op-major CSR fences would make the walk jump around).
     *  buildPlan() prunes model-independently dominated edges, folds
     *  whole-cycle Exec hops into their W nodes, and drops the
     *  (now in-edge-free, reader-free) X nodes from the stream, so
     *  the plan is shorter than the edge array. */
    std::vector<NodeRef> node_refs_;
    std::vector<PlanEntry> plan_;
    /** Batched time lanes, lanes_[node * MP + m] with MP the padded
     *  model count: retimeAll() advances every model's lane in one
     *  pass, so the per-node record is one contiguous row and the
     *  inner loops autovectorize. Rows are written before they are
     *  read (topological order), so no zero-fill is needed. */
    std::vector<u32> lanes_;
};

} // namespace redsoc

#endif // REDSOC_CRITPATH_RETIMER_H

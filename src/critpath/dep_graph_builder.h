/**
 * @file
 * Streaming dependence-graph construction from the pipeline event
 * stream. DepGraphBuilder is a TraceSink: attached to a PipeTracer it
 * sees every record()ed event in emission order regardless of the
 * ring capacity, so graph construction is never bounded by the
 * tracer's retained window (a run can be traced with a tiny ring and
 * still produce the complete graph).
 *
 * The builder replays the core's rename exactly (same source-walk and
 * destination-claim rules, including the frontend-resolved branch
 * link-register special case) to recover the full producer set per
 * op — the event stream itself only carries the *last* producer. All
 * edges of an op are synthesized and flushed when its Commit event
 * arrives: commits are in order and no dispatched op is ever
 * squashed, so every producer observation (and the previous op's
 * branch-mispredict verdict) is final by then, and the CSR edge list
 * builds append-only.
 */

#ifndef REDSOC_CRITPATH_DEP_GRAPH_BUILDER_H
#define REDSOC_CRITPATH_DEP_GRAPH_BUILDER_H

#include <array>
#include <vector>

#include "core/core_config.h"
#include "critpath/dep_graph.h"
#include "func/trace.h"
#include "isa/inst.h"
#include "trace/pipe_tracer.h"

namespace redsoc {

class DepGraphBuilder : public TraceSink
{
  public:
    /** @p trace and @p config must outlive the builder; they describe
     *  the run the attached tracer will record. */
    DepGraphBuilder(const Trace &trace, const CoreConfig &config);

    void onBeginRun(Tick ticks_per_cycle) override;
    void onEvent(const PipeEvent &event) override;

    /** Freeze and return the graph. Every op of the trace must have
     *  committed (the run completed); the builder resets on the next
     *  onBeginRun(). */
    DepGraph finalize();

    /** Events seen since onBeginRun (sink completeness test hook). */
    u64 eventsSeen() const { return events_seen_; }

  private:
    static constexpr u32 kNoOp = ~u32{0};

    /** Per-op state only needed between dispatch and commit. */
    struct Pending
    {
        std::array<u32, 3> prod{kNoOp, kNoOp, kNoOp};
        u32 rs_src = kNoOp;   ///< RsCap source op (fixed at dispatch)
        u32 lsq_src = kNoOp;  ///< LsqCap source op
        u32 fuse_link = kNoOp; ///< MOS producer this op fused into
        u8 nprod = 0;
        bool selected = false; ///< saw a Select (RS-issued op)
    };

    void onDispatch(const PipeEvent &e);
    void onSelect(const PipeEvent &e);
    void onCommit(const PipeEvent &e);
    /** Append op @p i's full edge set to the CSR (called at commit,
     *  in destination-milestone order D, S, X, W, C). */
    void flushEdges(u32 i);

    const Trace *trace_;
    const CoreConfig *config_;

    DepGraph graph_;
    std::vector<Pending> pending_;
    /** Rename-table replay: last claimed writer per register. */
    std::array<u32, kNumRegs> reg_writer_{};
    /** RS issues in grant order (RsCap sources). */
    std::vector<u32> rs_issue_order_;
    /** Memory ops in dispatch order (LsqCap sources). */
    std::vector<u32> mem_order_;
    /** The committed store with the latest observed Select so far:
     *  the op whose address resolution (at its select) lifted the
     *  conservative older-store block last (MemOrder source). */
    u32 mem_block_ = kNoOp;
    u32 rs_dispatched_ = 0;
    u32 commits_ = 0;
    u64 events_seen_ = 0;
    bool run_open_ = false;
};

} // namespace redsoc

#endif // REDSOC_CRITPATH_DEP_GRAPH_BUILDER_H

/**
 * @file
 * Dependence-graph schema for the analytic critical-path what-if
 * engine (DESIGN.md section 13). One traced simulator run is frozen
 * into a compact edge-typed DAG over five scheduling milestones per
 * committed op — Dispatch (D), Select (S), ExecBegin (X), Writeback
 * (W), Commit (C) — with the *observed* tick of every milestone kept
 * alongside. The Retimer then replays the graph under pluggable
 * machine models in one topological longest-path pass each: a config
 * sweep becomes O(configs x edges) instead of O(configs x cycles).
 *
 * The edge taxonomy covers every constraint class the core enforces:
 * true data dependencies (with transparent-recycle and CI
 * annotations), wakeup/select timing (including the EGPW and MOS
 * same-cycle windows), FU structural hazards (per-pool issue order),
 * ROB/RS/LSQ capacity back-pressure, frontend and commit bandwidth,
 * and branch-mispredict redirects. Every stored edge is
 * tick-monotone (obs(src) <= obs(dst)), which makes the base replay
 * model exact by construction: each edge carries its observed
 * latency, so the longest-path time of every node equals its
 * observed tick and the re-timed cycle count is bit-identical to the
 * simulator's (tests/test_critpath.cc proves this over the full
 * differential grid under both scheduler kernels).
 */

#ifndef REDSOC_CRITPATH_DEP_GRAPH_H
#define REDSOC_CRITPATH_DEP_GRAPH_H

#include <array>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/fu_pool.h"

namespace redsoc {

/** The five per-op scheduling milestones, in pipeline order. */
enum class Milestone : u8 { D, S, X, W, C, NUM };

const char *milestoneName(Milestone ms);

/**
 * Edge kinds. Each kind has a fixed (source, destination) milestone
 * pair — see edgeSrcMilestone()/edgeDstMilestone() — so an Edge only
 * stores its source *op*. Kinds are grouped by destination milestone
 * because the builder appends a committed op's edges in exactly this
 * order (all D-targeted edges, then S, X, W, C): the Retimer walks
 * one contiguous CSR range per op and never re-sorts.
 */
enum class EdgeKind : u8 {
    // -> D: dispatch ordering, bandwidth, capacity and recovery.
    FrontendOrder, ///< D(i-1) -> D(i): in-order dispatch
    FrontendWidth, ///< D(i-fw) -> D(i): frontend_width per cycle
    RobCap,        ///< C(i-rob) -> D(i): ROB entry recycled in order
    RsCap,   ///< S(j) -> D(i): j = (k-rs)'th RS *issue*; an RS slot
             ///< frees at select, and at least k-rs+1 issues must
             ///< precede the (k+1)'th RS dispatch
    LsqCap,  ///< C(j) -> D(i): j = (k-lsq)'th mem op (in-order commit
             ///< frees LSQ entries in mem-op order)
    BranchRecover, ///< W(b) -> D(b+1): mispredict redirect + penalty

    // -> S: wakeup and select-port constraints.
    DispatchToSelect, ///< D(i) -> S(i): earliest select is dispatch+1
    Wake,     ///< S(p) -> S(i), p a producer: tag broadcast to grant
              ///< (aux: EGPW-speculative / MOS-fused same-cycle)
    FuStruct, ///< S(j) -> S(i), j = same-pool op units grants earlier
    MemOrder, ///< S(s) -> S(l), l a load, s = the latest-selecting
              ///< older store: a load is not selectable until every
              ///< older store has resolved its address (resolution
              ///< happens at the store's select, when its address
              ///< generation is granted)
    DataReady, ///< W(p) -> S(i), p a producer: a conventional grant
               ///< requires every operand to land within the arrival
               ///< window (one cycle ahead; two for a transparent
               ///< recycle). The one deliberately tick-NON-monotone
               ///< kind — obs W(p) may trail obs S(i) by up to the
               ///< window — but still topo-safe: an op's whole event
               ///< bundle (through Writeback) is emitted at its
               ///< issue, before any dependent select.

    // -> X: data arrival and execution start.
    SelectToExec, ///< S(i) -> X(i): grant to execution start
    Data, ///< W(p) -> X(i), p a producer: operand arrival (aux bit0:
          ///< arrived through a transparent latch mid-cycle)

    // -> W / -> C: completion and retirement.
    Exec,       ///< X(i) -> W(i): the op's execution latency
    WbToCommit, ///< W(i) -> C(i): completion to retirement
    CommitOrder, ///< C(i-1) -> C(i): in-order commit
    CommitWidth, ///< C(i-cw) -> C(i): commit_width per cycle

    NUM,
};

const char *edgeKindName(EdgeKind kind);
Milestone edgeSrcMilestone(EdgeKind kind);
Milestone edgeDstMilestone(EdgeKind kind);

/** Edge aux-payload flag bits (kind-specific; see EdgeKind docs). */
inline constexpr u32 kEdgeWakeSpeculative = 1u << 0; ///< Wake: EGPW
inline constexpr u32 kEdgeWakeFused = 1u << 1;       ///< Wake: MOS
inline constexpr u32 kEdgeDataTransparent = 1u << 0; ///< Data

/**
 * One dependence edge. The destination op (and via the kind, both
 * milestones) is implied by the CSR grouping; 12 bytes per edge keeps
 * a 2M-op trace's graph in the hundreds of megabytes, not gigabytes.
 */
struct Edge
{
    u32 src = 0;  ///< source op id
    u32 aux = 0;  ///< kind-specific payload (flag bits / pool)
    EdgeKind kind = EdgeKind::FrontendOrder;
};

static_assert(sizeof(Edge) <= 12, "Edge must stay compact");

/** Per-op flag bits (DepGraph::flags). */
inline constexpr u16 kOpFrontendResolved = 1u << 0; ///< no RS life
inline constexpr u16 kOpMem = 1u << 1;
inline constexpr u16 kOpLoad = 1u << 2;
inline constexpr u16 kOpStore = 1u << 3;
inline constexpr u16 kOpBranch = 1u << 4;
inline constexpr u16 kOpBranchMispred = 1u << 5;
inline constexpr u16 kOpTransparent = 1u << 6;  ///< recycled start
inline constexpr u16 kOpEgpwSelect = 1u << 7;   ///< speculative grant
inline constexpr u16 kOpFused = 1u << 8;        ///< MOS fusion
inline constexpr u16 kOpWidthReplay = 1u << 9;
inline constexpr u16 kOpLaReplay = 1u << 10;
inline constexpr u16 kOpEligible = 1u << 11; ///< slack-eligible class

/** Machine parameters frozen from the traced run's CoreConfig: the
 *  knobs the what-if transfer functions need. */
struct MachineParams
{
    unsigned frontend_width = 4;
    unsigned commit_width = 4;
    unsigned rob_entries = 80;
    unsigned rs_entries = 64;
    unsigned lsq_entries = 32;
    /** Units per FuPoolKind (Alu, Simd, Fp, Mem). */
    std::array<unsigned, static_cast<size_t>(FuPoolKind::NUM)> units{};
    Cycle redirect_penalty = 10;
    Tick ticks_per_cycle = 8;
    unsigned ci_precision_bits = 3;
    Tick slack_threshold_ticks = 6;
};

/** "no pool position" marker (frontend-resolved / fused ops). */
inline constexpr u32 kNoPoolPos = ~u32{0};

/** Milestone-node addressing: the graph has 5 nodes per op. */
inline constexpr u32 kNumMilestones =
    static_cast<u32>(Milestone::NUM);

inline u32
nodeId(u32 op, Milestone ms)
{
    return op * kNumMilestones + static_cast<u32>(ms);
}

inline u32 nodeOp(u32 node) { return node / kNumMilestones; }

inline Milestone
nodeMilestone(u32 node)
{
    return static_cast<Milestone>(node % kNumMilestones);
}

/**
 * The frozen dependence graph: SoA observed-milestone lanes, per-op
 * flags, per-pool issue order, and a CSR edge list grouped by
 * destination op. Built once by DepGraphBuilder; read-only afterward.
 */
struct DepGraph
{
    MachineParams params;
    u32 num_ops = 0;

    /** Observed milestone ticks, indexed [op]. */
    std::vector<Tick> obs_d, obs_s, obs_x, obs_w, obs_c;
    std::vector<u16> flags;
    /** FU pool of the op's issue (valid when pool_pos != kNoPoolPos). */
    std::vector<u8> pool;
    /** Position in pool_order[pool[op]] (kNoPoolPos = never issued
     *  through a pool: frontend-resolved). */
    std::vector<u32> pool_pos;
    /** Per-pool op ids in select (issue) order — lets the Retimer
     *  re-derive FU structural constraints under N x unit counts. */
    std::array<std::vector<u32>, static_cast<size_t>(FuPoolKind::NUM)>
        pool_order;

    /** CSR: edges[edge_begin[i] .. edge_begin[i+1]) target op i, in
     *  destination-milestone order (D, S, X, W, C). */
    std::vector<Edge> edges;
    std::vector<u32> edge_begin;

    /**
     * A topological order over all 5*num_ops milestone nodes
     * (nodeId() encoding): the event *emission* order of the traced
     * run, which the core's fixed phase order (commit, issue,
     * dispatch) makes consistent with every stored edge — including
     * FuStruct edges whose source op id exceeds the destination's.
     * The Retimer replays models in exactly this order; validate()
     * proves every stored edge goes forward in it (acyclicity).
     */
    std::vector<u32> topo;

    // --- Build provenance / bookkeeping -----------------------------
    /** Events the builder consumed, by raw kind ordinal. */
    std::array<u64, 18> event_counts{};
    /** Data edges dropped because the observed source tick exceeded
     *  the destination (width-replay conservative re-execution and
     *  MOS fusion can overlap a producer's mid-cycle completion; the
     *  dependence is still bounded via Wake + the conservative Exec
     *  window, so dropping keeps the stored graph tick-monotone). */
    u64 dropped_nonmonotone_data = 0;
    /** MemOrder edges dropped for the same reason. Expected to stay
     *  zero: the blocking rule forbids a load selecting before an
     *  older store resolves, so the store's Select can never
     *  strictly exceed the load's — the counter guards the stored
     *  graph's monotonicity if the event stream ever disagrees. */
    u64 dropped_nonmonotone_mem = 0;

    Tick obs(Milestone ms, u32 op) const
    {
        switch (ms) {
        case Milestone::D: return obs_d[op];
        case Milestone::S: return obs_s[op];
        case Milestone::X: return obs_x[op];
        case Milestone::W: return obs_w[op];
        case Milestone::C: return obs_c[op];
        case Milestone::NUM: break;
        }
        return 0;
    }

    u64 numEdges() const { return edges.size(); }

    /**
     * Structural validation: CSR well-formed, every edge's source op
     * in range, every stored edge tick-monotone, milestone order
     * respected within each op. Returns an empty string when valid,
     * else a description of the first violation (test hook; the
     * builder's finalize() asserts this in debug builds).
     */
    std::string validate() const;
};

/**
 * Deterministic text rendering of the whole graph (ops, milestones,
 * edges with kinds and aux annotations) for the golden-snapshot test:
 * byte-identical across scheduler kernels and platforms.
 */
std::string renderDepGraph(const DepGraph &graph);

} // namespace redsoc

#endif // REDSOC_CRITPATH_DEP_GRAPH_H

#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace redsoc {

namespace {

/**
 * Tests want panic()/fatal() to be catchable; standalone binaries want
 * them to terminate. We throw: gtest's EXPECT_THROW can observe it and
 * an uncaught throw still terminates with a useful message.
 */
[[noreturn]] void
raise(const char *kind, const char *file, int line, const std::string &msg)
{
    std::string full = std::string(kind) + ": " + msg + " @ " + file + ":" +
                       std::to_string(line);
    throw std::logic_error(full);
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    raise("panic", file, line, msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    raise("fatal", file, line, msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace redsoc

/**
 * @file
 * Fundamental type aliases shared by every redsoc subsystem.
 */

#ifndef REDSOC_COMMON_TYPES_H
#define REDSOC_COMMON_TYPES_H

#include <cstdint>

namespace redsoc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** A simulated memory address (byte granular, 64-bit space). */
using Addr = u64;

/** A clock-cycle count. */
using Cycle = u64;

/**
 * A sub-cycle timestamp in "ticks". The whole simulator quantizes a
 * clock cycle into kTicksPerCycle ticks; the paper's 3-bit Completion
 * Instant is a tick count with 8 ticks per cycle. We keep the tick
 * resolution a compile-time constant at the finest precision the
 * precision-sweep experiment needs (8 bits = 256 ticks) and quantize
 * down when modelling coarser CI fields.
 */
using Tick = u64;

/** Physical time in picoseconds (used by the circuit timing model). */
using Picos = u32;

/** Architectural register index. */
using RegIdx = u8;

/** Dynamic-instruction sequence number (program order). */
using SeqNum = u64;

/** Invalid/none marker for sequence numbers. */
inline constexpr SeqNum kNoSeq = ~SeqNum{0};

/** Explicit u64 -> double (keeps -Wconversion silent at call sites
 *  that mix counters into floating-point statistics). */
constexpr double
asDouble(u64 v)
{
    return static_cast<double>(v);
}

/** num/den as a double, 0.0 when den == 0: the ubiquitous
 *  stats-ratio shape (IPC, hit rates, misprediction rates). */
constexpr double
ratioOf(u64 num, u64 den)
{
    return den == 0 ? 0.0 : asDouble(num) / asDouble(den);
}

} // namespace redsoc

#endif // REDSOC_COMMON_TYPES_H

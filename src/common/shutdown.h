/**
 * @file
 * Cooperative graceful shutdown for long sweeps and the sweep daemon.
 *
 * The seed tree ignored SIGINT/SIGTERM entirely: the default
 * disposition killed a sweep wherever it happened to be, which could
 * leave `.tmp-*` files behind in a shared REDSOC_CACHE_DIR (the
 * rename-based publish itself is atomic, so *entries* never tear, but
 * the staging files of writes that never reached the rename leaked).
 * Tools that run long simulation batches now install a handler that
 * only sets state; every long loop polls it at a natural boundary:
 *
 *  - SimDriver::prefetch stops submitting queued points and discards
 *    the not-yet-started remainder (ThreadPool::cancelPending);
 *  - OooCore::run / Processor::run poll every few thousand cycles
 *    and abort the in-flight simulation with ShutdownInterrupt once
 *    the configured signal count is reached — the aborted point is
 *    simply never stored, so the cache write is "discarded
 *    atomically" by never starting;
 *  - the sweep daemon's accept loop polls wakeFd() so a signal
 *    interrupts ppoll() immediately, drains its job queue on the
 *    first signal and discards queued jobs on the second.
 *
 * Everything here is async-signal-safe on the handler side (an
 * atomic counter plus a write() to a self-pipe) and lock-free on the
 * polling side (one relaxed load).
 */

#ifndef REDSOC_COMMON_SHUTDOWN_H
#define REDSOC_COMMON_SHUTDOWN_H

#include <stdexcept>

namespace redsoc {

/**
 * Thrown out of a simulation loop when an installed shutdown handler
 * has collected enough signals (see installGracefulShutdown). Tool
 * mains catch it, clean up, and exit 130 — it is a request, not an
 * error.
 */
class ShutdownInterrupt : public std::runtime_error
{
  public:
    ShutdownInterrupt();
};

/**
 * Install the SIGINT/SIGTERM handler (idempotent; later calls only
 * update @p abort_sims_after). Until this is called, nothing in the
 * library changes behavior: the poll helpers below all return false.
 *
 * @param abort_sims_after number of signals after which in-flight
 *        simulations abort via ShutdownInterrupt. Interactive tools
 *        pass 1 (first Ctrl-C stops everything promptly); the daemon
 *        passes 2 (first signal drains, second discards).
 */
void installGracefulShutdown(unsigned abort_sims_after = 1);

/** True once any installed handler has seen at least one signal:
 *  loops should stop picking up new work. */
bool shutdownRequested();

/** Number of shutdown signals received so far. */
unsigned shutdownSignalCount();

/** True once the signal count has reached the installed
 *  abort-sims-after threshold: in-flight simulations should throw
 *  ShutdownInterrupt at their next poll point. */
bool simAbortRequested();

/**
 * Read end of the self-pipe: becomes readable on every signal, so
 * event loops can poll({their fds..., wakeFd()}) and wake immediately
 * instead of timing out. -1 until installGracefulShutdown() ran.
 */
int shutdownWakeFd();

/** Test hooks: raise the flag / reset all state as if freshly
 *  started (does not uninstall the signal handler). */
void requestShutdownForTest();
void resetShutdownForTest();

} // namespace redsoc

#endif // REDSOC_COMMON_SHUTDOWN_H

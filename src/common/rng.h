/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 * Every stochastic element of the workload suite draws from a seeded
 * Rng so that simulations are bit-reproducible run to run.
 */

#ifndef REDSOC_COMMON_RNG_H
#define REDSOC_COMMON_RNG_H

#include <array>

#include "common/types.h"

namespace redsoc {

/**
 * xoshiro256** generator. Small, fast and high quality; state is
 * seeded through splitmix64 so any 64-bit seed gives a good stream.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eed5eed5eedULL);

    /** Next raw 64-bit draw. */
    u64 next();

    /** Uniform integer in [0, bound) ; bound must be nonzero. */
    u64 below(u64 bound);

    /** Uniform integer in [lo, hi] inclusive. */
    u64 range(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /**
     * A draw with geometric-ish bias toward small effective widths:
     * used by workload input generators to produce narrow-operand
     * distributions like those measured in ML weights.
     */
    u64 narrowValue(unsigned max_width);

  private:
    std::array<u64, 4> s_;
};

} // namespace redsoc

#endif // REDSOC_COMMON_RNG_H

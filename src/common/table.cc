#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace redsoc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "table with no columns");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "row arity ", cells.size(), " != header arity ",
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
Table::pct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](std::ostringstream &os,
                    const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    std::ostringstream os;
    emit(os, headers_);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        emit(os, row);
    return os.str();
}

} // namespace redsoc

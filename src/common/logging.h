/**
 * @file
 * Error/status reporting in the gem5 style: panic() for internal
 * invariant violations (aborts), fatal() for user/configuration
 * errors (clean exit), warn()/inform() for status.
 */

#ifndef REDSOC_COMMON_LOGGING_H
#define REDSOC_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace redsoc {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    detail::formatInto(os, rest...);
}

template <typename... Args>
std::string
formatMsg(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace redsoc

/** Abort: an internal simulator bug (something that must never happen). */
#define panic(...) \
    ::redsoc::panicImpl(__FILE__, __LINE__, \
                        ::redsoc::detail::formatMsg(__VA_ARGS__))

/** Abort if @a cond holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** Exit(1): a user error (bad configuration or arguments). */
#define fatal(...) \
    ::redsoc::fatalImpl(__FILE__, __LINE__, \
                        ::redsoc::detail::formatMsg(__VA_ARGS__))

#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#define warn(...) \
    ::redsoc::warnImpl(::redsoc::detail::formatMsg(__VA_ARGS__))

#define inform(...) \
    ::redsoc::informImpl(::redsoc::detail::formatMsg(__VA_ARGS__))

#endif // REDSOC_COMMON_LOGGING_H

#include "common/bitutils.h"

#include "common/logging.h"

namespace redsoc {

unsigned
ceilLog2(u64 value)
{
    panic_if(value == 0, "ceilLog2(0) is undefined");
    return value == 1 ? 0 : 64 - std::countl_zero(value - 1);
}

unsigned
floorLog2(u64 value)
{
    panic_if(value == 0, "floorLog2(0) is undefined");
    return 63 - std::countl_zero(value);
}

} // namespace redsoc

#include "common/rng.h"

#include "common/logging.h"

namespace redsoc {

namespace {

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

u64
Rng::next()
{
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Rng::below(u64 bound)
{
    panic_if(bound == 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

u64
Rng::range(u64 lo, u64 hi)
{
    panic_if(lo > hi, "Rng::range with lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

u64
Rng::narrowValue(unsigned max_width)
{
    panic_if(max_width == 0 || max_width > 64, "bad narrowValue width");
    // Pick a width with probability decaying geometrically, then a
    // uniform value of exactly that width.
    unsigned width = 1;
    while (width < max_width && chance(0.7))
        ++width;
    if (width == 1)
        return below(2);
    const u64 lo = u64{1} << (width - 1);
    return lo | below(lo);
}

} // namespace redsoc

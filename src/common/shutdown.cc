#include "common/shutdown.h"

#include <csignal>
#include <unistd.h>

#include <atomic>

#include <fcntl.h>

namespace redsoc {

namespace {

// All signal-handler state is lock-free and async-signal-safe:
// the handler touches only g_signals (atomic increment) and the
// write end of the self-pipe (write() is on the safe list).
std::atomic<unsigned> g_signals{0};
std::atomic<unsigned> g_abort_after{1};
std::atomic<bool> g_installed{false};
int g_pipe_rd = -1;
int g_pipe_wr = -1;

extern "C" void
shutdownHandler(int)
{
    g_signals.fetch_add(1, std::memory_order_relaxed);
    if (g_pipe_wr >= 0) {
        const char byte = 1;
        // Best effort: a full pipe already means the poller has
        // plenty of wakeups pending.
        [[maybe_unused]] ssize_t n = ::write(g_pipe_wr, &byte, 1);
    }
}

} // namespace

ShutdownInterrupt::ShutdownInterrupt()
    : std::runtime_error("shutdown requested: simulation interrupted")
{
}

void
installGracefulShutdown(unsigned abort_sims_after)
{
    g_abort_after.store(abort_sims_after == 0 ? 1 : abort_sims_after,
                        std::memory_order_relaxed);
    bool expected = false;
    if (!g_installed.compare_exchange_strong(expected, true))
        return; // already installed; threshold updated above

    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
        // Nonblocking so the handler can never stall on a full pipe.
        ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
        ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
        ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
        ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
        g_pipe_rd = fds[0];
        g_pipe_wr = fds[1];
    }

    struct sigaction sa = {};
    sa.sa_handler = shutdownHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART; // short writes finish; loops poll
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
shutdownRequested()
{
    return g_signals.load(std::memory_order_relaxed) != 0;
}

unsigned
shutdownSignalCount()
{
    return g_signals.load(std::memory_order_relaxed);
}

bool
simAbortRequested()
{
    const unsigned n = g_signals.load(std::memory_order_relaxed);
    return n != 0 &&
           n >= g_abort_after.load(std::memory_order_relaxed);
}

int
shutdownWakeFd()
{
    return g_pipe_rd;
}

void
requestShutdownForTest()
{
    shutdownHandler(SIGINT);
}

void
resetShutdownForTest()
{
    g_signals.store(0, std::memory_order_relaxed);
    if (g_pipe_rd >= 0) {
        char buf[64];
        while (::read(g_pipe_rd, buf, sizeof(buf)) > 0) {
        }
    }
}

} // namespace redsoc

/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Each bench
 * regenerates a paper figure/table as rows of aligned columns so the
 * output can be eyeballed against the paper or scraped by scripts.
 */

#ifndef REDSOC_COMMON_TABLE_H
#define REDSOC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace redsoc {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p digits decimals. */
    static std::string num(double value, int digits = 2);

    /** Convenience: format a fraction as a percentage string. */
    static std::string pct(double fraction, int digits = 1);

    /** Render with single-space-padded columns and a rule line. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace redsoc

#endif // REDSOC_COMMON_TABLE_H

/**
 * @file
 * Bit-manipulation helpers: effective operand width, field extraction,
 * sign extension, rotation. Effective width is the basis of the
 * paper's Width-Slack analysis (Sec.II-A).
 */

#ifndef REDSOC_COMMON_BITUTILS_H
#define REDSOC_COMMON_BITUTILS_H

#include <bit>

#include "common/types.h"

namespace redsoc {

/**
 * Number of significant low-order bits in @p value: 64 minus the
 * leading-zero count. Returns 1 for value 0 (a zero still occupies a
 * one-bit datapath; this also keeps log2-based delay models defined).
 */
inline unsigned
effectiveWidth(u64 value)
{
    if (value == 0)
        return 1;
    return 64 - std::countl_zero(value);
}

/**
 * Effective width of a two's-complement value: negative numbers are
 * measured by the width of their magnitude pattern (leading ones
 * carry no more information than leading zeros do).
 */
inline unsigned
effectiveWidthSigned(s64 value)
{
    if (value < 0)
        return effectiveWidth(static_cast<u64>(~value)) + 1;
    return effectiveWidth(static_cast<u64>(value));
}

/** Extract bits [lo, lo+len) of @p value. */
inline u64
bits(u64 value, unsigned lo, unsigned len)
{
    if (len >= 64)
        return value >> lo;
    return (value >> lo) & ((u64{1} << len) - 1);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
inline s64
signExtend(u64 value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<s64>(value);
    const u64 m = u64{1} << (width - 1);
    value &= (u64{1} << width) - 1;
    return static_cast<s64>((value ^ m) - m);
}

/** Rotate the low 32 bits of @p value right by @p amount (mod 32). */
inline u32
rotateRight32(u32 value, unsigned amount)
{
    return std::rotr(value, static_cast<int>(amount & 31));
}

/** True if @p value is a power of two (and nonzero). */
inline bool
isPowerOfTwo(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** ceil(log2(value)) for value >= 1. */
unsigned ceilLog2(u64 value);

/** floor(log2(value)) for value >= 1. */
unsigned floorLog2(u64 value);

} // namespace redsoc

#endif // REDSOC_COMMON_BITUTILS_H

/**
 * @file
 * Thread-safety annotation macros, enforced twice.
 *
 * Every concurrent class in the tree declares its lock discipline in
 * the type itself: which mutex guards which field
 * (`REDSOC_GUARDED_BY`), which private helpers assume the lock is
 * already held (`REDSOC_REQUIRES`), which entry points must be called
 * unlocked (`REDSOC_EXCLUDES`), and which fields are deliberately
 * unguarded because they are immutable after construction or
 * externally synchronized (`REDSOC_NOT_GUARDED`). Two independent
 * checkers consume the annotations:
 *
 *  1. **clang `-Wthread-safety`.** Under clang the macros lower to the
 *     native capability attributes, so `-DREDSOC_THREAD_SAFETY=ON`
 *     (clang + libc++, see the top-level CMakeLists) verifies the
 *     discipline with the compiler's flow-sensitive analysis. libc++
 *     annotates `std::mutex` and `std::lock_guard` when
 *     `_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS` is defined, which
 *     that option also sets. libc++ does *not* annotate
 *     `std::unique_lock`, so the few functions that need manual
 *     unlock/relock windows or condition-variable waits carry
 *     `REDSOC_NO_THREAD_SAFETY_ANALYSIS` — checker 2 still covers
 *     them.
 *  2. **`redsoc_lint` R10/R11 (`guarded-by` / `lock-order`).** The
 *     in-tree analyzer parses the same macros with its own scope tree
 *     and symbol tables (tools/lint/scopes.h, symtab.h), models
 *     `lock_guard`/`unique_lock`/`scoped_lock` *including* manual
 *     `.unlock()`/`.lock()` windows, and additionally builds the
 *     global mutex-acquisition graph to reject lock-order cycles.
 *     It runs on every build of every compiler, so the discipline is
 *     machine-checked even where clang is unavailable (this container
 *     ships only GCC).
 *
 * On GCC (and on clang without `REDSOC_THREAD_SAFETY`) every macro
 * expands to nothing; the annotations are then purely redsoc_lint
 * input and cost zero.
 *
 * Placement: field annotations go after the declarator, before any
 * initializer (`unsigned active_ REDSOC_GUARDED_BY(mu_) = 0;`);
 * function annotations go after the parameter list, before the body
 * or `;` (`bool idle() const REDSOC_REQUIRES(mu_);`).
 */

#ifndef REDSOC_COMMON_THREAD_ANNOTATIONS_H
#define REDSOC_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(REDSOC_THREAD_SAFETY)
#define REDSOC_TS_ATTR(x) __attribute__((x))
#else
#define REDSOC_TS_ATTR(x) // no-op outside the clang verification build
#endif

/** Field is protected by mutex @p x: every read and write must hold
 *  it (via a guard object or a REDSOC_REQUIRES context). */
#define REDSOC_GUARDED_BY(x) REDSOC_TS_ATTR(guarded_by(x))

/** Pointee of an annotated pointer field is protected by @p x. */
#define REDSOC_PT_GUARDED_BY(x) REDSOC_TS_ATTR(pt_guarded_by(x))

/** Function may only be called with the named mutex(es) held. */
#define REDSOC_REQUIRES(...) \
    REDSOC_TS_ATTR(requires_capability(__VA_ARGS__))

/** Function may only be called with the named mutex(es) NOT held
 *  (it acquires them itself; calling locked would self-deadlock). */
#define REDSOC_EXCLUDES(...) REDSOC_TS_ATTR(locks_excluded(__VA_ARGS__))

/** Function acquires / releases the named mutex(es) (lock wrappers). */
#define REDSOC_ACQUIRE(...) \
    REDSOC_TS_ATTR(acquire_capability(__VA_ARGS__))
#define REDSOC_RELEASE(...) \
    REDSOC_TS_ATTR(release_capability(__VA_ARGS__))

/** Escape hatch for bodies clang cannot analyze (libc++ leaves
 *  std::unique_lock and std::condition_variable unannotated). Always
 *  pair with a comment naming why; redsoc_lint R10 still checks the
 *  body, so the discipline stays machine-verified. */
#define REDSOC_NO_THREAD_SAFETY_ANALYSIS \
    REDSOC_TS_ATTR(no_thread_safety_analysis)

/**
 * Deliberately unguarded field in a mutex-owning class. Expands to
 * nothing for every compiler; it exists for redsoc_lint R10's
 * coverage check, which requires every non-mutex field of a class
 * that owns a mutex to state its discipline explicitly — either
 * REDSOC_GUARDED_BY(mu) or this marker (immutable after
 * construction, or synchronized by some external protocol that the
 * adjacent comment must name).
 */
#define REDSOC_NOT_GUARDED

#endif // REDSOC_COMMON_THREAD_ANNOTATIONS_H

/**
 * @file
 * A small statistics package in the spirit of gem5's: scalar counters,
 * ratios and histograms, grouped and dumpable by name. Every pipeline
 * structure exposes its statistics through a StatGroup so benches can
 * report them uniformly.
 */

#ifndef REDSOC_COMMON_STATS_H
#define REDSOC_COMMON_STATS_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace redsoc {

/** A monotonically increasing event count. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(u64 n) { value_ += n; return *this; }
    u64 value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
};

/**
 * A bucketed distribution over non-negative integer samples, with
 * exact mean tracking. Samples beyond the configured max land in an
 * overflow bucket but still contribute to the mean.
 */
class Histogram
{
  public:
    explicit Histogram(u64 max_sample = 64);

    void sample(u64 value, u64 weight = 1);

    u64 count() const { return count_; }
    u64 total() const { return sum_; }

    /** Arithmetic mean of all samples (0 if empty). */
    double mean() const;

    /**
     * Weighted mean where each sample of value v carries weight v:
     * E[V^2]/E[V]. This is the "expected value of sequence length"
     * statistic of Fig.11 — the expected length of the sequence a
     * uniformly chosen *operation* belongs to.
     */
    double weightedMean() const;

    /** Number of samples equal to @p value (values > max collapse). */
    u64 bucket(u64 value) const;

    u64 maxSample() const { return max_sample_; }

    void reset();

    // --- Serialization support (the persistent run cache) ----------
    /** Raw bucket counts, index 0..maxSample() (last = overflow). */
    const std::vector<u64> &rawBuckets() const { return buckets_; }
    u64 sumSquares() const { return sum_sq_; }
    /**
     * Rebuild a histogram from previously captured raw state.
     * @p buckets must have exactly max_sample+1 entries.
     */
    static Histogram fromRaw(u64 max_sample, std::vector<u64> buckets,
                             u64 count, u64 sum, u64 sum_sq);

  private:
    u64 max_sample_;
    std::vector<u64> buckets_;
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 sum_sq_ = 0;
};

/**
 * A named collection of statistics. Structures register their
 * counters under stable names; dump() renders "name value" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void recordScalar(const std::string &stat, double value);
    void addScalar(const std::string &stat, double delta);

    double scalar(const std::string &stat) const;
    bool has(const std::string &stat) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, double> &scalars() const { return scalars_; }

    /** Render all scalars as "group.stat value" lines. */
    std::string dump() const;

    void reset() { scalars_.clear(); }

  private:
    std::string name_;
    std::map<std::string, double> scalars_;
};

} // namespace redsoc

#endif // REDSOC_COMMON_STATS_H

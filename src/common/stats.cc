#include "common/stats.h"

#include <sstream>

#include "common/logging.h"

namespace redsoc {

Histogram::Histogram(u64 max_sample)
    : max_sample_(max_sample), buckets_(max_sample + 1, 0)
{
}

void
Histogram::sample(u64 value, u64 weight)
{
    const u64 idx = value > max_sample_ ? max_sample_ : value;
    buckets_[idx] += weight;
    count_ += weight;
    sum_ += value * weight;
    sum_sq_ += value * value * weight;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double
Histogram::weightedMean() const
{
    if (sum_ == 0)
        return 0.0;
    return static_cast<double>(sum_sq_) / static_cast<double>(sum_);
}

u64
Histogram::bucket(u64 value) const
{
    const u64 idx = value > max_sample_ ? max_sample_ : value;
    return buckets_[idx];
}

Histogram
Histogram::fromRaw(u64 max_sample, std::vector<u64> buckets, u64 count,
                   u64 sum, u64 sum_sq)
{
    panic_if(buckets.size() != max_sample + 1,
             "histogram restore with ", buckets.size(),
             " buckets for max_sample ", max_sample);
    Histogram h(max_sample);
    h.buckets_ = std::move(buckets);
    h.count_ = count;
    h.sum_ = sum;
    h.sum_sq_ = sum_sq;
    return h;
}

void
Histogram::reset()
{
    buckets_.assign(max_sample_ + 1, 0);
    count_ = sum_ = sum_sq_ = 0;
}

void
StatGroup::recordScalar(const std::string &stat, double value)
{
    scalars_[stat] = value;
}

void
StatGroup::addScalar(const std::string &stat, double delta)
{
    scalars_[stat] += delta;
}

double
StatGroup::scalar(const std::string &stat) const
{
    auto it = scalars_.find(stat);
    panic_if(it == scalars_.end(), "unknown stat ", name_, ".", stat);
    return it->second;
}

bool
StatGroup::has(const std::string &stat) const
{
    return scalars_.count(stat) != 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[stat, value] : scalars_)
        os << name_ << "." << stat << " " << value << "\n";
    return os.str();
}

} // namespace redsoc

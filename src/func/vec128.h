/**
 * @file
 * 128-bit SIMD register value with lane accessors, used by the
 * functional interpreter's NEON-like operations.
 */

#ifndef REDSOC_FUNC_VEC128_H
#define REDSOC_FUNC_VEC128_H

#include "common/bitutils.h"
#include "common/types.h"
#include "isa/opcode.h"

namespace redsoc {

struct Vec128
{
    u64 lo = 0;
    u64 hi = 0;

    bool operator==(const Vec128 &) const = default;

    /** Read lane @p idx of element type @p vt (zero-extended). */
    u64
    lane(VecType vt, unsigned idx) const
    {
        const unsigned bits_per = vecElemBits(vt);
        const unsigned lanes_per_word = 64 / bits_per;
        const u64 word = idx < lanes_per_word ? lo : hi;
        const unsigned sub = idx % lanes_per_word;
        return bits(word, sub * bits_per, bits_per);
    }

    /** Read lane @p idx sign-extended to 64 bits. */
    s64
    laneSigned(VecType vt, unsigned idx) const
    {
        return signExtend(lane(vt, idx), vecElemBits(vt));
    }

    /** Write lane @p idx (value truncated to the element width). */
    void
    setLane(VecType vt, unsigned idx, u64 value)
    {
        const unsigned bits_per = vecElemBits(vt);
        const unsigned lanes_per_word = 64 / bits_per;
        u64 &word = idx < lanes_per_word ? lo : hi;
        const unsigned shift = (idx % lanes_per_word) * bits_per;
        const u64 mask = bits_per >= 64 ? ~u64{0}
                                        : ((u64{1} << bits_per) - 1);
        word = (word & ~(mask << shift)) | ((value & mask) << shift);
    }
};

} // namespace redsoc

#endif // REDSOC_FUNC_VEC128_H

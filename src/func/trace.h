/**
 * @file
 * Dynamic µop traces. The functional interpreter executes a Program
 * and emits one DynOp per retired instruction carrying the dynamic
 * facts the timing models need: resolved memory address, branch
 * outcome, and the effective operand width that drives Width-Slack
 * (Sec.II-A of the paper). All core models replay the same trace, so
 * architectural behaviour is identical across scheduler modes by
 * construction and only timing differs.
 */

#ifndef REDSOC_FUNC_TRACE_H
#define REDSOC_FUNC_TRACE_H

#include <memory>
#include <vector>

#include "isa/program.h"

namespace redsoc {

/** One retired dynamic instruction. */
struct DynOp
{
    u32 pc = 0;        ///< static instruction index
    u32 next_pc = 0;   ///< dynamic successor (branch-resolved)
    Addr mem_addr = 0; ///< effective address (memory ops)
    u64 result = 0;    ///< scalar result / vector low word (debug)
    u16 eff_width = 64; ///< max effective source-operand width, bits
    bool taken = false; ///< branch outcome
};

class Trace
{
  public:
    Trace(std::shared_ptr<const Program> program, std::vector<DynOp> ops);

    const Program &program() const { return *program_; }
    std::shared_ptr<const Program> programPtr() const { return program_; }
    const std::vector<DynOp> &ops() const { return ops_; }
    const DynOp &op(SeqNum seq) const { return ops_[seq]; }
    const Inst &inst(SeqNum seq) const
    {
        return program_->inst(ops_[seq].pc);
    }
    SeqNum size() const { return ops_.size(); }

  private:
    std::shared_ptr<const Program> program_;
    std::vector<DynOp> ops_;
};

} // namespace redsoc

#endif // REDSOC_FUNC_TRACE_H

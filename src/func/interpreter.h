/**
 * @file
 * Functional (architecturally exact) execution of µISA programs,
 * producing dynamic traces for the timing models.
 */

#ifndef REDSOC_FUNC_INTERPRETER_H
#define REDSOC_FUNC_INTERPRETER_H

#include <array>
#include <memory>

#include "func/memory_image.h"
#include "func/trace.h"

namespace redsoc {

class Interpreter
{
  public:
    /**
     * @param program The program to run (shared with emitted traces).
     * @param memory  The memory image; mutated in place, so the same
     *                image can be inspected after the run.
     */
    Interpreter(std::shared_ptr<const Program> program,
                MemoryImage &memory);

    /**
     * Run until HALT / RET-to-nowhere or until @p max_ops dynamic
     * instructions retire, recording every retired op.
     */
    Trace run(SeqNum max_ops = 100'000'000);

    /** Scalar register readout (post-run inspection). */
    u64 reg(RegIdx r) const;
    void setReg(RegIdx r, u64 value);
    Vec128 vecReg(unsigned idx) const { return vregs_[idx]; }

    bool halted() const { return halted_; }

  private:
    /** Execute the instruction at pc_, writing the retired op into
     *  @p dyn (an in-place slot of the trace's chunk-reserved ops
     *  vector, so the hot decode loop never constructs-then-moves). */
    void stepInto(DynOp &dyn);

    u64 readOperand2(const Inst &inst) const;
    u64 shiftedValue(u64 value, ShiftKind kind, unsigned amount) const;
    Addr effectiveAddress(const Inst &inst) const;
    u16 intAluEffWidth(const Inst &inst, u64 op2) const;

    std::shared_ptr<const Program> program_;
    MemoryImage &memory_;
    std::array<u64, kNumIntRegs> xregs_{};
    std::array<Vec128, kNumVecRegs> vregs_{};
    u32 pc_ = 0;
    bool halted_ = false;
};

/** Convenience: build a trace from a program and a prepared memory. */
Trace traceProgram(std::shared_ptr<const Program> program,
                   MemoryImage &memory, SeqNum max_ops = 100'000'000);

} // namespace redsoc

#endif // REDSOC_FUNC_INTERPRETER_H

#include "func/memory_image.h"

#include <cstring>

#include "common/logging.h"

namespace redsoc {

u8
MemoryImage::readByte(Addr addr) const
{
    const Page *page = pageForConst(addr);
    if (!page)
        return 0;
    return (*page)[addr & (kPageSize - 1)];
}

void
MemoryImage::writeByte(Addr addr, u8 value)
{
    pageFor(addr)[addr & (kPageSize - 1)] = value;
}

u64
MemoryImage::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "bad scalar read size ", size);
    u64 value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= u64{readByte(addr + i)} << (8 * i);
    return value;
}

void
MemoryImage::write(Addr addr, u64 value, unsigned size)
{
    panic_if(size == 0 || size > 8, "bad scalar write size ", size);
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<u8>(value >> (8 * i)));
}

Vec128
MemoryImage::readVec(Addr addr) const
{
    return Vec128{read(addr, 8), read(addr + 8, 8)};
}

void
MemoryImage::writeVec(Addr addr, const Vec128 &value)
{
    write(addr, value.lo, 8);
    write(addr + 8, value.hi, 8);
}

void
MemoryImage::fill(Addr addr, std::span<const u8> data)
{
    for (size_t i = 0; i < data.size(); ++i)
        writeByte(addr + i, data[i]);
}

void
MemoryImage::pokeF64(Addr addr, double v)
{
    u64 raw;
    std::memcpy(&raw, &v, sizeof(raw));
    poke64(addr, raw);
}

double
MemoryImage::peekF64(Addr addr) const
{
    u64 raw = peek64(addr);
    double v;
    std::memcpy(&v, &raw, sizeof(v));
    return v;
}

MemoryImage::Page &
MemoryImage::pageFor(Addr addr)
{
    auto [it, inserted] = pages_.try_emplace(addr >> kPageShift);
    if (inserted)
        it->second.fill(0);
    return it->second;
}

const MemoryImage::Page *
MemoryImage::pageForConst(Addr addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : &it->second;
}

} // namespace redsoc

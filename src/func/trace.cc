#include "func/trace.h"

#include "common/logging.h"

namespace redsoc {

Trace::Trace(std::shared_ptr<const Program> program, std::vector<DynOp> ops)
    : program_(std::move(program)), ops_(std::move(ops))
{
    panic_if(!program_, "trace without a program");
    fatal_if(ops_.empty(), "empty trace for program '",
             program_->name(), "'");
    for (const DynOp &op : ops_)
        panic_if(op.pc >= program_->size(), "trace pc out of range");
}

} // namespace redsoc

/**
 * @file
 * Sparse byte-addressable 64-bit memory for functional execution.
 * Pages are allocated on first touch and zero-initialized.
 */

#ifndef REDSOC_FUNC_MEMORY_IMAGE_H
#define REDSOC_FUNC_MEMORY_IMAGE_H

#include <array>
#include <span>
#include <unordered_map>

#include "common/types.h"
#include "func/vec128.h"

namespace redsoc {

class MemoryImage
{
  public:
    /** Read @p size (1/2/4/8) bytes little-endian, zero-extended. */
    u64 read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value little-endian. */
    void write(Addr addr, u64 value, unsigned size);

    Vec128 readVec(Addr addr) const;
    void writeVec(Addr addr, const Vec128 &value);

    /** Bulk-initialize a region (workload input loading). */
    void fill(Addr addr, std::span<const u8> data);

    /** Convenience typed pokes for workload setup. */
    void poke64(Addr addr, u64 v) { write(addr, v, 8); }
    void poke32(Addr addr, u32 v) { write(addr, v, 4); }
    void poke16(Addr addr, u16 v) { write(addr, v, 2); }
    void poke8(Addr addr, u8 v) { write(addr, v, 1); }
    void pokeF64(Addr addr, double v);

    u64 peek64(Addr addr) const { return read(addr, 8); }
    u32 peek32(Addr addr) const { return static_cast<u32>(read(addr, 4)); }
    u8 peek8(Addr addr) const { return static_cast<u8>(read(addr, 1)); }
    double peekF64(Addr addr) const;

    /** Number of resident pages (for tests/inspection). */
    size_t residentPages() const { return pages_.size(); }

  private:
    static constexpr unsigned kPageShift = 12;
    static constexpr Addr kPageSize = Addr{1} << kPageShift;

    using Page = std::array<u8, kPageSize>;

    u8 readByte(Addr addr) const;
    void writeByte(Addr addr, u8 value);

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<Addr, Page> pages_;
};

} // namespace redsoc

#endif // REDSOC_FUNC_MEMORY_IMAGE_H

#include "func/interpreter.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/bitutils.h"
#include "common/logging.h"
#include "isa/disasm.h"
#include "sim/profile.h"

namespace redsoc {

namespace {

/** Trace emission block size (ops resized ahead per chunk). */
constexpr SeqNum kTraceChunk = 4096;

double
bitsToDouble(u64 raw)
{
    double v;
    std::memcpy(&v, &raw, sizeof(v));
    return v;
}

u64
doubleToBits(double v)
{
    u64 raw;
    std::memcpy(&raw, &v, sizeof(raw));
    return raw;
}

} // namespace

Interpreter::Interpreter(std::shared_ptr<const Program> program,
                         MemoryImage &memory)
    : program_(std::move(program)), memory_(memory)
{
    panic_if(!program_, "interpreter without program");
}

u64
Interpreter::reg(RegIdx r) const
{
    panic_if(r >= kNumIntRegs, "scalar reg index out of range");
    return r == kZeroReg ? 0 : xregs_[r];
}

void
Interpreter::setReg(RegIdx r, u64 value)
{
    panic_if(r >= kNumIntRegs, "scalar reg index out of range");
    if (r != kZeroReg)
        xregs_[r] = value;
}

u64
Interpreter::shiftedValue(u64 value, ShiftKind kind, unsigned amount) const
{
    amount &= 63;
    switch (kind) {
      case ShiftKind::None: return value;
      case ShiftKind::Lsl: return value << amount;
      case ShiftKind::Lsr: return value >> amount;
      case ShiftKind::Asr:
        return static_cast<u64>(static_cast<s64>(value) >> amount);
      case ShiftKind::Ror:
        return amount == 0 ? value
                           : (value >> amount) | (value << (64 - amount));
      default: panic("bad shift kind");
    }
}

u64
Interpreter::readOperand2(const Inst &inst) const
{
    u64 value = 0;
    if (inst.use_imm)
        value = static_cast<u64>(inst.imm);
    else if (inst.src2 != kNoReg)
        value = reg(inst.src2);
    return shiftedValue(value, inst.op2_shift, inst.shamt);
}

Addr
Interpreter::effectiveAddress(const Inst &inst) const
{
    Addr base = reg(inst.src1);
    if (inst.use_imm)
        return base + static_cast<u64>(inst.imm);
    if (inst.src2 != kNoReg)
        return base + (reg(inst.src2) << inst.shamt);
    return base;
}

u16
Interpreter::intAluEffWidth(const Inst &inst, u64 op2) const
{
    // Width-slack analysis: the carry/propagation chain is bounded by
    // the widest participating operand value.
    unsigned width = 1;
    if (inst.src1 != kNoReg)
        width = std::max(width, effectiveWidth(reg(inst.src1)));
    switch (inst.op) {
      case Opcode::MVN: case Opcode::MOV:
        // Single-operand data movement: op2 only matters when used.
        if (inst.use_imm || inst.src2 != kNoReg)
            width = std::max(width, effectiveWidth(op2));
        break;
      default:
        if (inst.use_imm || inst.src2 != kNoReg)
            width = std::max(width, effectiveWidth(op2));
        break;
    }
    return static_cast<u16>(width);
}

void
Interpreter::stepInto(DynOp &dyn)
{
    const Inst &inst = program_->inst(pc_);
    dyn = DynOp{};
    dyn.pc = pc_;
    u32 next = pc_ + 1;

    const Opcode op = inst.op;

    if (isIntAlu(op) && !isBranch(op)) {
        const u64 a = inst.src1 != kNoReg ? reg(inst.src1) : 0;
        const u64 b = readOperand2(inst);
        u64 result = 0;
        switch (op) {
          case Opcode::AND: result = a & b; break;
          case Opcode::BIC: result = a & ~b; break;
          case Opcode::ORR: result = a | b; break;
          case Opcode::EOR: result = a ^ b; break;
          case Opcode::MVN: result = ~(inst.use_imm || inst.src2 != kNoReg
                                           ? b : a); break;
          case Opcode::TST: result = (a & b) != 0; break;
          case Opcode::TEQ: result = (a ^ b) != 0; break;
          case Opcode::MOV: result = (inst.use_imm || inst.src2 != kNoReg)
                                         ? b : a; break;
          case Opcode::LSL: result = a << (b & 63); break;
          case Opcode::LSR: result = a >> (b & 63); break;
          case Opcode::ASR:
            result = static_cast<u64>(static_cast<s64>(a) >> (b & 63));
            break;
          case Opcode::ROR:
            result = shiftedValue(a, ShiftKind::Ror, b & 63);
            break;
          case Opcode::RRX:
            result = shiftedValue(a, ShiftKind::Ror, 1);
            break;
          case Opcode::ADD: result = a + b; break;
          case Opcode::ADC: result = a + b + 1; break;
          case Opcode::SUB: result = a - b; break;
          case Opcode::SBC: result = a - b - 1; break;
          case Opcode::RSB: result = b - a; break;
          case Opcode::RSC: result = b - a - 1; break;
          case Opcode::CMP: {
            const s64 sa = static_cast<s64>(a), sb = static_cast<s64>(b);
            result = sa < sb ? static_cast<u64>(-1) : (sa > sb ? 1 : 0);
            break;
          }
          case Opcode::CMN: {
            const s64 sum = static_cast<s64>(a + b);
            result = sum < 0 ? static_cast<u64>(-1) : (sum > 0 ? 1 : 0);
            break;
          }
          default: panic("unhandled ALU op ", opcodeName(op));
        }
        if (inst.dst != kNoReg)
            setReg(inst.dst, result);
        dyn.result = result;
        dyn.eff_width = intAluEffWidth(inst, b);
    } else if (op == Opcode::MUL || op == Opcode::MLA ||
               op == Opcode::SDIV || op == Opcode::UDIV) {
        const u64 a = reg(inst.src1);
        const u64 b = reg(inst.src2);
        u64 result = 0;
        switch (op) {
          case Opcode::MUL: result = a * b; break;
          case Opcode::MLA: result = a * b + reg(inst.src3); break;
          case Opcode::SDIV:
            if (b == 0) {
                result = 0; // ARM semantics: divide by zero gives 0
            } else if (static_cast<s64>(a) ==
                           std::numeric_limits<s64>::min() &&
                       static_cast<s64>(b) == -1) {
                result = a; // overflow wraps (ARM), avoid native trap
            } else {
                result = static_cast<u64>(static_cast<s64>(a) /
                                          static_cast<s64>(b));
            }
            break;
          case Opcode::UDIV: result = b == 0 ? 0 : a / b; break;
          default: panic("unreachable");
        }
        setReg(inst.dst, result);
        dyn.result = result;
        dyn.eff_width = static_cast<u16>(
            std::max(effectiveWidth(a), effectiveWidth(b)));
    } else if (isFp(op)) {
        u64 result = 0;
        switch (op) {
          case Opcode::FADD:
            result = doubleToBits(bitsToDouble(reg(inst.src1)) +
                           bitsToDouble(reg(inst.src2)));
            break;
          case Opcode::FSUB:
            result = doubleToBits(bitsToDouble(reg(inst.src1)) -
                           bitsToDouble(reg(inst.src2)));
            break;
          case Opcode::FMUL:
            result = doubleToBits(bitsToDouble(reg(inst.src1)) *
                           bitsToDouble(reg(inst.src2)));
            break;
          case Opcode::FDIV:
            result = doubleToBits(bitsToDouble(reg(inst.src1)) /
                           bitsToDouble(reg(inst.src2)));
            break;
          case Opcode::FMIN:
            result = doubleToBits(std::fmin(bitsToDouble(reg(inst.src1)),
                                     bitsToDouble(reg(inst.src2))));
            break;
          case Opcode::FMAX:
            result = doubleToBits(std::fmax(bitsToDouble(reg(inst.src1)),
                                     bitsToDouble(reg(inst.src2))));
            break;
          case Opcode::FCVTZS:
            result = static_cast<u64>(
                static_cast<s64>(bitsToDouble(reg(inst.src1))));
            break;
          case Opcode::SCVTF:
            result = doubleToBits(
                static_cast<double>(static_cast<s64>(reg(inst.src1))));
            break;
          default: panic("unhandled FP op");
        }
        setReg(inst.dst, result);
        dyn.result = result;
    } else if (isMem(op)) {
        const Addr addr = effectiveAddress(inst);
        dyn.mem_addr = addr;
        if (op == Opcode::VLDR) {
            vregs_[inst.dst - kVecRegBase] = memory_.readVec(addr);
            dyn.result = vregs_[inst.dst - kVecRegBase].lo;
        } else if (op == Opcode::VSTR) {
            memory_.writeVec(addr, vregs_[inst.src3 - kVecRegBase]);
        } else if (isLoad(op)) {
            const u64 value = memory_.read(addr, memAccessSize(op));
            setReg(inst.dst, value);
            dyn.result = value;
        } else {
            memory_.write(addr, reg(inst.src3), memAccessSize(op));
        }
    } else if (isSimd(op)) {
        const VecType vt = inst.vtype;
        const unsigned lanes = vecLanes(vt);
        Vec128 result;
        auto va = [&] { return vregs_[inst.src1 - kVecRegBase]; };
        auto vb = [&] { return vregs_[inst.src2 - kVecRegBase]; };
        switch (op) {
          case Opcode::VADD:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l, va().lane(vt, l) + vb().lane(vt, l));
            break;
          case Opcode::VSUB:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l, va().lane(vt, l) - vb().lane(vt, l));
            break;
          case Opcode::VAND:
            result = Vec128{va().lo & vb().lo, va().hi & vb().hi};
            break;
          case Opcode::VORR:
            result = Vec128{va().lo | vb().lo, va().hi | vb().hi};
            break;
          case Opcode::VEOR:
            result = Vec128{va().lo ^ vb().lo, va().hi ^ vb().hi};
            break;
          case Opcode::VMAX:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l, static_cast<u64>(
                    std::max(va().laneSigned(vt, l),
                             vb().laneSigned(vt, l))));
            break;
          case Opcode::VMIN:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l, static_cast<u64>(
                    std::min(va().laneSigned(vt, l),
                             vb().laneSigned(vt, l))));
            break;
          case Opcode::VSHL:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l,
                               va().lane(vt, l)
                                   << (inst.imm & (vecElemBits(vt) - 1)));
            break;
          case Opcode::VSHR:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l,
                               va().lane(vt, l) >>
                                   (inst.imm & (vecElemBits(vt) - 1)));
            break;
          case Opcode::VDUP:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l, reg(inst.src1));
            break;
          case Opcode::VMOV:
            result = va();
            break;
          case Opcode::VMUL:
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l, va().lane(vt, l) * vb().lane(vt, l));
            break;
          case Opcode::VMLA: {
            const Vec128 acc = vregs_[inst.src3 - kVecRegBase];
            for (unsigned l = 0; l < lanes; ++l)
                result.setLane(vt, l,
                               acc.lane(vt, l) +
                                   va().lane(vt, l) * vb().lane(vt, l));
            break;
          }
          case Opcode::VREDSUM: {
            u64 sum = 0;
            for (unsigned l = 0; l < lanes; ++l)
                sum += va().lane(vt, l);
            setReg(inst.dst, sum);
            dyn.result = sum;
            dyn.eff_width = static_cast<u16>(vecElemBits(vt));
            pc_ = next;
            dyn.next_pc = next;
            return;
          }
          default: panic("unhandled SIMD op ", opcodeName(op));
        }
        if (isVecReg(inst.dst))
            vregs_[inst.dst - kVecRegBase] = result;
        dyn.result = result.lo;
        // Type-Slack: the datapath precision comes from the ISA.
        dyn.eff_width = static_cast<u16>(vecElemBits(vt));
    } else if (isBranch(op)) {
        const s64 test =
            inst.src1 != kNoReg ? static_cast<s64>(reg(inst.src1)) : 0;
        bool taken = false;
        switch (op) {
          case Opcode::B: taken = true; break;
          case Opcode::BEQZ: taken = test == 0; break;
          case Opcode::BNEZ: taken = test != 0; break;
          case Opcode::BLTZ: taken = test < 0; break;
          case Opcode::BGEZ: taken = test >= 0; break;
          case Opcode::BGTZ: taken = test > 0; break;
          case Opcode::BLEZ: taken = test <= 0; break;
          case Opcode::BL:
            setReg(kLinkReg, pc_ + 1);
            taken = true;
            break;
          case Opcode::RET: taken = true; break;
          default: panic("unhandled branch");
        }
        dyn.taken = taken;
        dyn.eff_width = static_cast<u16>(
            effectiveWidth(static_cast<u64>(test)));
        if (taken)
            next = op == Opcode::RET
                       ? static_cast<u32>(reg(kLinkReg))
                       : inst.target;
    } else if (op == Opcode::HALT) {
        halted_ = true;
        next = pc_;
    } else {
        panic("unhandled opcode ", opcodeName(op), " in ",
              disassemble(inst));
    }

    pc_ = next;
    dyn.next_pc = next;
}

Trace
Interpreter::run(SeqNum max_ops)
{
    prof::ScopedTimer tt(prof::Phase::TraceBuild);
    std::vector<DynOp> ops;
    ops.reserve(std::min<SeqNum>(max_ops, 1 << 20));
    // Chunked emission: grow the trace a block at a time and fill the
    // slots in place, so the decode/execute loop carries no per-op
    // size/capacity bookkeeping or construct-then-move cost.
    const u32 psize = program_->size();
    size_t n = 0;
    while (!halted_ && n < max_ops) {
        const size_t chunk = static_cast<size_t>(
            std::min<SeqNum>(kTraceChunk, max_ops - n));
        ops.resize(n + chunk);
        DynOp *out = ops.data() + n;
        size_t filled = 0;
        while (filled < chunk && !halted_) {
            fatal_if(pc_ >= psize, "pc ", pc_, " fell off program '",
                     program_->name(), "'");
            stepInto(out[filled]);
            ++filled;
        }
        n += filled;
    }
    ops.resize(n); // trim the unfilled tail of the last chunk
    return Trace(program_, std::move(ops));
}

Trace
traceProgram(std::shared_ptr<const Program> program, MemoryImage &memory,
             SeqNum max_ops)
{
    Interpreter interp(std::move(program), memory);
    return interp.run(max_ops);
}

} // namespace redsoc

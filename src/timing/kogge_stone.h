/**
 * @file
 * Analytic Kogge-Stone adder timing: the critical carry-propagation
 * path length grows with log2 of the effective operand width
 * (paper Fig.2). This model anchors all width-dependent arithmetic
 * delays in the timing model.
 */

#ifndef REDSOC_TIMING_KOGGE_STONE_H
#define REDSOC_TIMING_KOGGE_STONE_H

#include "common/types.h"

namespace redsoc {

/**
 * Critical-path delay in picoseconds of a Kogge-Stone adder when only
 * the low @p eff_width bits carry meaningful data:
 * pre-computation (P/G generation) + ceil(log2(w)) prefix stages +
 * the final sum XOR. Calibrated so a full 64-bit add matches the
 * paper's synthesized ADD time (Fig.1).
 */
Picos koggeStoneDelayPs(unsigned eff_width);

/**
 * Dimensionless scaling factor delay(eff_width) / delay(full_width):
 * used to width-scale any carry-chain operation's full-width delay.
 */
double koggeStoneScale(unsigned eff_width, unsigned full_width = 64);

} // namespace redsoc

#endif // REDSOC_TIMING_KOGGE_STONE_H

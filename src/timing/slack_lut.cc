#include "timing/slack_lut.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

namespace {

// Bucket layout.
constexpr unsigned kLogic = 0;
constexpr unsigned kLogicShift = 1;
constexpr unsigned kArithBase = 2;      // +widthClass: 2..5
constexpr unsigned kArithShiftBase = 6; // +widthClass: 6..9
constexpr unsigned kSimdBase = 10;      // +vecType: 10..13

unsigned
arithBucket(bool shift, WidthClass wc)
{
    return (shift ? kArithShiftBase : kArithBase) +
           static_cast<unsigned>(wc);
}

unsigned
simdBucket(VecType vt)
{
    return kSimdBase + static_cast<unsigned>(vt);
}

} // namespace

SlackLut::SlackLut(const TimingModel &model, const SubCycleClock &clock)
    : clock_(clock)
{
    panic_if(clock_.clockPeriodPs() != model.clockPeriodPs(),
             "SlackLut clock disagrees with timing model");
    calibrate(model);
}

unsigned
SlackLut::bucketIndex(const Inst &inst, WidthClass wc) const
{
    panic_if(!TimingModel::isSlackEligible(inst.op),
             "LUT lookup for non-eligible op ", opcodeName(inst.op));

    if (isSimd(inst.op))
        return simdBucket(inst.vtype);

    const bool shift = inst.hasShiftComponent();
    switch (aluKind(inst.op)) {
      case AluKind::Logic:
        return shift ? kLogicShift : kLogic;
      case AluKind::MoveShift:
        // MOV without a shift is pure routing (logic row); the
        // shift/rotate opcodes carry the shifter stage.
        return shift ? kLogicShift : kLogic;
      case AluKind::Arith:
        return arithBucket(shift, wc);
      case AluKind::NotAlu:
        // Unconditional branches: target move, logic row.
        return kLogic;
      default:
        panic("bad alu kind");
    }
}

Tick
SlackLut::lookupTicks(const Inst &inst, WidthClass wc) const
{
    return buckets_[bucketIndex(inst, wc)].ticks;
}

Picos
SlackLut::lookupPs(const Inst &inst, WidthClass wc) const
{
    return buckets_[bucketIndex(inst, wc)].worst_case_ps;
}

void
SlackLut::calibrate(const TimingModel &model)
{
    for (auto &b : buckets_)
        b = SlackBucket{};
    buckets_[kLogic].name = "logic";
    buckets_[kLogicShift].name = "logic+shift";
    for (unsigned w = 0; w < 4; ++w) {
        auto wc = static_cast<WidthClass>(w);
        buckets_[kArithBase + w].name =
            std::string("arith.") + widthClassName(wc);
        buckets_[kArithShiftBase + w].name =
            std::string("arith+shift.") + widthClassName(wc);
    }
    for (unsigned t = 0; t < 4; ++t) {
        auto vt = static_cast<VecType>(t);
        buckets_[kSimdBase + t].name =
            std::string("simd.") + vecTypeName(vt);
    }

    // Enumerate every slack-eligible (opcode, shift, width/type)
    // combination and fold its true delay into its bucket's worst
    // case, so the LUT is conservative by construction.
    auto fold = [&](unsigned idx, Picos ps) {
        buckets_[idx].worst_case_ps =
            std::max(buckets_[idx].worst_case_ps, ps);
    };

    for (unsigned o = 0;
         o < static_cast<unsigned>(Opcode::NUM_OPCODES); ++o) {
        const auto op = static_cast<Opcode>(o);
        if (!TimingModel::isSlackEligible(op))
            continue;

        if (isSimd(op)) {
            for (unsigned t = 0; t < 4; ++t) {
                Inst inst;
                inst.op = op;
                inst.vtype = static_cast<VecType>(t);
                fold(simdBucket(inst.vtype),
                     model.trueDelayPs(inst, 64));
            }
            continue;
        }

        // Shifted second operands are an arithmetic-datapath feature
        // (µISA rule, enforced by Program validation).
        const bool can_shift_op2 = aluKind(op) == AluKind::Arith;
        for (int s = 0; s < (can_shift_op2 ? 5 : 1); ++s) {
            Inst inst;
            inst.op = op;
            inst.op2_shift = static_cast<ShiftKind>(s);
            inst.shamt = 3;
            for (unsigned w = 0; w < 4; ++w) {
                const auto wc = static_cast<WidthClass>(w);
                fold(bucketIndex(inst, wc),
                     model.trueDelayPs(inst, widthClassBits(wc)));
            }
        }
    }

    for (auto &b : buckets_) {
        panic_if(b.worst_case_ps == 0,
                 "bucket '", b.name, "' has no member operations");
        panic_if(b.worst_case_ps > model.clockPeriodPs(),
                 "bucket '", b.name, "' exceeds the clock period (",
                 b.worst_case_ps, " ps): not a single-cycle class");
        b.ticks = clock_.delayTicks(b.worst_case_ps);
    }
}

} // namespace redsoc

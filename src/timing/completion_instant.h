/**
 * @file
 * Sub-cycle time bookkeeping. ReDSOC tracks each operation's
 * Completion Instant (CI) as a small fixed-point fraction of the
 * clock cycle (3 bits / eighths in the paper, Sec.IV-C; the precision
 * sweep of Sec.V motivates making it configurable). The simulator
 * keeps absolute time in "ticks" = cycles scaled by ticksPerCycle().
 */

#ifndef REDSOC_TIMING_COMPLETION_INSTANT_H
#define REDSOC_TIMING_COMPLETION_INSTANT_H

#include "common/types.h"

namespace redsoc {

class SubCycleClock
{
  public:
    /**
     * @param precision_bits CI field width in bits (1..8).
     * @param clock_period_ps physical cycle time.
     */
    SubCycleClock(unsigned precision_bits, Picos clock_period_ps);

    unsigned precisionBits() const { return precision_bits_; }
    Tick ticksPerCycle() const { return ticks_per_cycle_; }
    Picos clockPeriodPs() const { return clock_period_ps_; }

    /**
     * Conservatively quantize a physical delay to ticks (round up:
     * the latch must never close before the data is stable).
     * Clamped to at least 1 tick and at most one full cycle for
     * single-cycle operations.
     */
    Tick delayTicks(Picos ps) const;

    /** Absolute tick of the start of @p cycle. */
    Tick cycleStart(Cycle cycle) const { return cycle * ticks_per_cycle_; }

    /** Cycle containing absolute tick @p t (boundary ticks belong to
     *  the cycle they begin). */
    Cycle cycleOf(Tick t) const { return t / ticks_per_cycle_; }

    /** CI field value: offset of @p t within its cycle. */
    Tick ciOf(Tick t) const { return t % ticks_per_cycle_; }

    /**
     * True if an operation starting at absolute tick @p start and
     * finishing at @p end crosses a clock boundary (and therefore
     * must hold its FU for two cycles, IT3 of Sec.III).
     */
    bool
    crossesBoundary(Tick start, Tick end) const
    {
        // An op ending exactly on a boundary does not cross it.
        return cycleOf(start) != cycleOf(end == start ? end : end - 1);
    }

    /** Round @p t up to the next cycle boundary (no-op if on one). */
    Tick ceilToBoundary(Tick t) const;

    /** Convert ticks back to picoseconds (for reporting). */
    double ticksToPs(Tick t) const;

  private:
    unsigned precision_bits_;
    Tick ticks_per_cycle_;
    Picos clock_period_ps_;
};

} // namespace redsoc

#endif // REDSOC_TIMING_COMPLETION_INSTANT_H

#include "timing/timing_model.h"

#include <algorithm>

#include "common/logging.h"
#include "timing/kogge_stone.h"

namespace redsoc {

unsigned
widthClassBits(WidthClass wc)
{
    switch (wc) {
      case WidthClass::W8: return 8;
      case WidthClass::W16: return 16;
      case WidthClass::W32: return 32;
      case WidthClass::W64: return 64;
      default: panic("bad width class");
    }
}

WidthClass
classifyWidth(unsigned eff_width)
{
    if (eff_width <= 8)
        return WidthClass::W8;
    if (eff_width <= 16)
        return WidthClass::W16;
    if (eff_width <= 32)
        return WidthClass::W32;
    return WidthClass::W64;
}

const char *
widthClassName(WidthClass wc)
{
    switch (wc) {
      case WidthClass::W8: return "w8";
      case WidthClass::W16: return "w16";
      case WidthClass::W32: return "w32";
      case WidthClass::W64: return "w64";
      default: panic("bad width class");
    }
}

TimingModel::TimingModel(TimingConfig config) : config_(config)
{
    fatal_if(config_.clock_period_ps == 0, "zero clock period");
    fatal_if(config_.pvt_derate <= 0.0 || config_.pvt_derate > 1.0,
             "pvt_derate must be in (0, 1]");
}

namespace {

/**
 * Full-width (64-bit) computation times in ps, calibrated to Fig.1.
 * Logical ops trigger no carry chain; move/shift ops pay the barrel
 * shifter; arithmetic ops pay the full Kogge-Stone carry path.
 */
Picos
baseOpPs(Opcode op)
{
    switch (op) {
      // Logical
      case Opcode::BIC: return 95;
      case Opcode::MVN: return 100;
      case Opcode::AND: return 105;
      case Opcode::EOR: return 115;
      case Opcode::TST: return 120;
      case Opcode::TEQ: return 125;
      case Opcode::ORR: return 130;
      // Moves / shifts
      case Opcode::MOV: return 140;
      case Opcode::LSR: return 185;
      case Opcode::ASR: return 190;
      case Opcode::LSL: return 200;
      case Opcode::ROR: return 205;
      case Opcode::RRX: return 210;
      // Arithmetic
      case Opcode::RSB: return 305;
      case Opcode::RSC: return 310;
      case Opcode::SUB: return 315;
      case Opcode::CMP: return 320;
      case Opcode::ADD: return 330;
      case Opcode::CMN: return 335;
      case Opcode::ADC: return 340;
      case Opcode::SBC: return 345;
      // Branch condition resolution: comparator against zero plus
      // redirect logic; modeled at the compare time.
      case Opcode::BEQZ: case Opcode::BNEZ: case Opcode::BLTZ:
      case Opcode::BGEZ: case Opcode::BGTZ: case Opcode::BLEZ:
        return 320;
      case Opcode::B: case Opcode::BL: case Opcode::RET:
        return 140; // unconditional: effectively a move of the target
      default:
        panic("baseOpPs: ", opcodeName(op), " is not single-cycle scalar");
    }
}

} // namespace

Picos
TimingModel::shifterPs(ShiftKind kind) const
{
    switch (kind) {
      case ShiftKind::None: return 0;
      case ShiftKind::Lsr: return 120;
      case ShiftKind::Lsl: return 125;
      case ShiftKind::Asr: return 130;
      case ShiftKind::Ror: return 140;
      default: panic("bad shift kind");
    }
}

Picos
TimingModel::applyDerate(double ps) const
{
    return static_cast<Picos>(ps * config_.pvt_derate + 0.5);
}

Picos
TimingModel::scalarFullWidthPs(Opcode op, ShiftKind shift) const
{
    return applyDerate(static_cast<double>(baseOpPs(op)) +
                       shifterPs(shift));
}

bool
TimingModel::isSlackEligible(Opcode op)
{
    if (isIntAlu(op))
        return true;
    // VREDSUM is a multi-stage lane reduction; it executes as a true
    // synchronous single-cycle op and is not recycled.
    if (isSimdAlu(op) && op != Opcode::VREDSUM)
        return true;
    // VMLA accumulate chains behave as single-cycle on the accumulate
    // path (late forwarding); its adder step is slack-eligible.
    return op == Opcode::VMLA;
}

Picos
TimingModel::trueDelayPs(const Inst &inst, unsigned eff_width) const
{
    panic_if(!isSlackEligible(inst.op),
             "trueDelayPs on non-eligible op ", opcodeName(inst.op));
    eff_width = std::clamp(eff_width, 1u, 64u);

    if (isSimd(inst.op))
        return simdDelayPs(inst.op, inst.vtype);

    const AluKind kind = aluKind(inst.op);
    double ps = 0.0;
    switch (kind) {
      case AluKind::Logic:
      case AluKind::MoveShift:
        // No carry chain: delay is width-independent.
        ps = baseOpPs(inst.op);
        break;
      case AluKind::Arith:
        // The carry path shortens with effective operand width
        // (Fig.2); the non-carry portion is width-independent.
        ps = baseOpPs(inst.op) * koggeStoneScale(eff_width);
        break;
      case AluKind::NotAlu:
        // Unconditional branches.
        ps = baseOpPs(inst.op);
        break;
    }
    ps += shifterPs(inst.op2_shift);
    return applyDerate(ps);
}

Picos
TimingModel::simdDelayPs(Opcode op, VecType vt) const
{
    const unsigned elem_bits = vecElemBits(vt);
    double ps = 0.0;
    switch (op) {
      case Opcode::VAND: case Opcode::VORR: case Opcode::VEOR:
      case Opcode::VMOV: case Opcode::VDUP:
        ps = 110; // bitwise lanes: no carry, width-independent
        break;
      case Opcode::VSHL: case Opcode::VSHR:
        ps = 170; // per-lane shifter (narrower than scalar barrel)
        break;
      case Opcode::VADD: case Opcode::VSUB:
        ps = 330.0 * koggeStoneScale(elem_bits);
        break;
      case Opcode::VMAX: case Opcode::VMIN:
        // compare (carry chain at lane width) + select mux
        ps = 320.0 * koggeStoneScale(elem_bits) + 25.0;
        break;
      case Opcode::VREDSUM:
        // log2(lanes) adder tree of lane-width adders; the final
        // stage dominates. Modeled as one full-width-class add plus
        // a tree factor.
        ps = 330.0 * koggeStoneScale(elem_bits) + 90.0;
        break;
      case Opcode::VMLA:
        // Late accumulator forwarding: the chained step seen by a
        // dependent VMLA is the accumulate adder plus the bypass mux
        // (the multiply happens in earlier pipe stages off the
        // non-accumulate operands).
        ps = 330.0 * koggeStoneScale(elem_bits) + 30.0;
        break;
      default:
        panic("simdDelayPs: ", opcodeName(op), " not modeled");
    }
    return applyDerate(ps);
}

Picos
TimingModel::trueSlackPs(const Inst &inst, unsigned eff_width) const
{
    const Picos d = trueDelayPs(inst, eff_width);
    return d >= config_.clock_period_ps ? 0
                                        : config_.clock_period_ps - d;
}

} // namespace redsoc

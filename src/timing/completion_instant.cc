#include "timing/completion_instant.h"

#include "common/logging.h"

namespace redsoc {

SubCycleClock::SubCycleClock(unsigned precision_bits, Picos clock_period_ps)
    : precision_bits_(precision_bits),
      ticks_per_cycle_(Tick{1} << precision_bits),
      clock_period_ps_(clock_period_ps)
{
    fatal_if(precision_bits < 1 || precision_bits > 8,
             "CI precision must be 1..8 bits, got ", precision_bits);
    fatal_if(clock_period_ps == 0, "zero clock period");
}

Tick
SubCycleClock::delayTicks(Picos ps) const
{
    // ceil(ps * tpc / period), at least one tick, at most a cycle.
    const u64 numer = u64{ps} * ticks_per_cycle_;
    Tick t = (numer + clock_period_ps_ - 1) / clock_period_ps_;
    if (t == 0)
        t = 1;
    if (t > ticks_per_cycle_)
        t = ticks_per_cycle_;
    return t;
}

Tick
SubCycleClock::ceilToBoundary(Tick t) const
{
    const Tick rem = t % ticks_per_cycle_;
    return rem == 0 ? t : t + (ticks_per_cycle_ - rem);
}

double
SubCycleClock::ticksToPs(Tick t) const
{
    return static_cast<double>(t) * clock_period_ps_ /
           static_cast<double>(ticks_per_cycle_);
}

} // namespace redsoc

#include "timing/kogge_stone.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"

namespace redsoc {

namespace {

// Component delays (ps) calibrated so koggeStoneDelayPs(64) == 330,
// the synthesized full-width ADD computation time of Fig.1.
constexpr double kPreComputePs = 30.0;  // P/G generation
constexpr double kSumXorPs = 40.0;      // final sum stage
constexpr double kPrefixStagePs = (330.0 - kPreComputePs - kSumXorPs) / 6.0;

} // namespace

Picos
koggeStoneDelayPs(unsigned eff_width)
{
    panic_if(eff_width == 0 || eff_width > 64,
             "bad adder width ", eff_width);
    const unsigned stages = eff_width <= 1 ? 0 : ceilLog2(eff_width);
    const double ps = kPreComputePs + stages * kPrefixStagePs + kSumXorPs;
    return static_cast<Picos>(ps + 0.5);
}

double
koggeStoneScale(unsigned eff_width, unsigned full_width)
{
    eff_width = std::min(eff_width, full_width);
    return static_cast<double>(koggeStoneDelayPs(eff_width)) /
           static_cast<double>(koggeStoneDelayPs(full_width));
}

} // namespace redsoc

/**
 * @file
 * The slack look-up table of Sec.II-B. Static circuit-level timing
 * analysis (our TimingModel) measures computation times for coarse
 * classes of operations; the LUT stores one conservative computation
 * time per class. The 5-bit lookup address is
 * {SIMD, Arith/Logic, Shift, Width/Type[2]} (Fig.3); because bitwise
 * logic has no carry chain its delay is width-independent, so the
 * logic rows collapse across widths, yielding exactly 14 buckets:
 *
 *   LOGIC, LOGIC+SHIFT,
 *   ARITH x {w8,w16,w32,w64}, ARITH+SHIFT x {w8,w16,w32,w64},
 *   SIMD x {i8,i16,i32,i64}.
 *
 * Lookups return tick counts quantized *up* at the configured CI
 * precision, so the estimate is always >= the true circuit delay:
 * slack recycling stays timing non-speculative.
 */

#ifndef REDSOC_TIMING_SLACK_LUT_H
#define REDSOC_TIMING_SLACK_LUT_H

#include <array>
#include <string>

#include "timing/completion_instant.h"
#include "timing/timing_model.h"

namespace redsoc {

struct SlackBucket
{
    std::string name;
    Picos worst_case_ps = 0; ///< max true delay over member ops
    Tick ticks = 0;          ///< quantized-up estimate at CI precision
};

class SlackLut
{
  public:
    static constexpr unsigned kNumBuckets = 14;

    SlackLut(const TimingModel &model, const SubCycleClock &clock);

    /**
     * Bucket index for a static instruction given the predicted
     * operand-width class (scalar) — SIMD ops take their type from
     * the instruction itself and ignore @p wc.
     */
    unsigned bucketIndex(const Inst &inst, WidthClass wc) const;

    /** Estimated computation time in ticks (conservative). */
    Tick lookupTicks(const Inst &inst, WidthClass wc) const;

    /** Estimated computation time in ps (conservative). */
    Picos lookupPs(const Inst &inst, WidthClass wc) const;

    const std::array<SlackBucket, kNumBuckets> &buckets() const
    {
        return buckets_;
    }

    const SubCycleClock &clock() const { return clock_; }

  private:
    void calibrate(const TimingModel &model);

    SubCycleClock clock_;
    std::array<SlackBucket, kNumBuckets> buckets_;
};

} // namespace redsoc

#endif // REDSOC_TIMING_SLACK_LUT_H

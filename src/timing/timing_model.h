/**
 * @file
 * Circuit-level computation-time model for single-cycle operations.
 * Per-opcode full-width times are calibrated to the paper's Fig.1
 * (ARM-style ALU synthesized at 2 GHz in TSMC 45nm); width-dependent
 * carry-chain scaling follows the Kogge-Stone model of Fig.2; SIMD
 * per-element-type times model sub-word datapaths (Type-Slack).
 *
 * These are the "true" delays the hardware would exhibit. The
 * scheduler never sees them directly: it sees the conservative
 * bucketed estimates of the SlackLut (Sec.II-B), which this model
 * feeds. The true delays are used to validate LUT conservativeness
 * and to compute timing-error rates for the TS baseline.
 */

#ifndef REDSOC_TIMING_TIMING_MODEL_H
#define REDSOC_TIMING_TIMING_MODEL_H

#include "isa/inst.h"

namespace redsoc {

/** Operand-width class: the 2-bit Width/Type field of the LUT
 *  address (Fig.3). */
enum class WidthClass : u8 { W8, W16, W32, W64 };

/** Upper-bound bit width of a width class. */
unsigned widthClassBits(WidthClass wc);

/** Classify an effective operand width in bits. */
WidthClass classifyWidth(unsigned eff_width);

const char *widthClassName(WidthClass wc);

struct TimingConfig
{
    /** Clock period at the 2 GHz design point. */
    Picos clock_period_ps = 500;

    /**
     * PVT guard-band derate: <1.0 models nominal (non-worst-case)
     * PVT conditions where all combinational paths run faster. The
     * paper's headline results use the worst-case corner (1.0) to
     * isolate pure data slack (Sec.V).
     */
    double pvt_derate = 1.0;
};

class TimingModel
{
  public:
    explicit TimingModel(TimingConfig config = {});

    const TimingConfig &config() const { return config_; }
    Picos clockPeriodPs() const { return config_.clock_period_ps; }

    /**
     * Full-width (64-bit) computation time for a scalar single-cycle
     * opcode with an optional op2 shift stage. Fig.1 reproduction.
     */
    Picos scalarFullWidthPs(Opcode op, ShiftKind shift) const;

    /**
     * True computation time of a dynamic single-cycle operation:
     * width-scales the carry chain for Arith ops, keeps Logic and
     * Move/Shift flat, adds the shifter stage, applies PVT derate.
     * Only valid for slack-eligible ops (isSlackEligible()).
     */
    Picos trueDelayPs(const Inst &inst, unsigned eff_width) const;

    /** SIMD single-cycle op time for an element type. */
    Picos simdDelayPs(Opcode op, VecType vt) const;

    /**
     * True for operations whose execution ReDSOC can recycle slack
     * from: single-cycle scalar integer ALU ops (incl. branches,
     * which resolve through the comparator) and single-cycle SIMD
     * integer ops, plus VMLA accumulate-chain steps (A57-style late
     * accumulator forwarding).
     */
    static bool isSlackEligible(Opcode op);

    /**
     * Data slack of an operation in ps: clock period minus true
     * computation time (never negative).
     */
    Picos trueSlackPs(const Inst &inst, unsigned eff_width) const;

  private:
    Picos shifterPs(ShiftKind kind) const;
    Picos applyDerate(double ps) const;

    TimingConfig config_;
};

} // namespace redsoc

#endif // REDSOC_TIMING_TIMING_MODEL_H

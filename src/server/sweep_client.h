/**
 * @file
 * SweepClient: library side of the sweep-server protocol. One
 * instance owns one AF_UNIX connection; requests on it are
 * serialized behind a mutex (the protocol is strictly
 * request/response), so a SimDriver fanning a batch out across pool
 * workers can share a single client.
 *
 * submit() transparently retries busy responses with the server's
 * suggested backoff — backpressure is invisible to callers beyond
 * latency. runPoint()/runProcPoint() are the one-call conveniences
 * the env-var offload path (server/offload.h) uses.
 */

#ifndef REDSOC_SERVER_SWEEP_CLIENT_H
#define REDSOC_SERVER_SWEEP_CLIENT_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/ooo_core.h"
#include "proc/processor.h"
#include "server/wire.h"

namespace redsoc {

class SweepClient
{
  public:
    /** One requested simulation point. */
    struct PointRequest
    {
        bool is_proc = false;
        std::string workload = "";        ///< core points
        std::vector<std::string> mix;     ///< proc points
        std::string config_text = "";     ///< config-codec text
        SeqNum max_ops = 0;
    };

    /** One returned point, in submission order. */
    struct PointResult
    {
        std::string key = "";
        bool ok = false;
        std::string payload = ""; ///< run-cache stats text when ok
        std::string error = "";
    };

    /** Connect to a daemon; nullptr on failure. */
    static std::unique_ptr<SweepClient>
    connect(const std::string &socket_path);

    ~SweepClient();

    SweepClient(const SweepClient &) = delete;
    SweepClient &operator=(const SweepClient &) = delete;

    /** Round-trip liveness + protocol check. */
    bool ping();

    /**
     * Submit a batch; returns the ticket id, or nullopt on a
     * protocol/transport error. Busy responses are retried with the
     * server's retry_after_ms, up to @p busy_retries times.
     */
    std::optional<std::string>
    submit(const std::vector<PointRequest> &points,
           unsigned busy_retries = 50);

    /** Block until @p ticket completes and return every result
     *  (submission order); nullopt on transport error. */
    std::optional<std::vector<PointResult>>
    fetch(const std::string &ticket);

    /** submit + fetch in one call. */
    std::optional<std::vector<PointResult>>
    runBatch(const std::vector<PointRequest> &points);

    /** Single core point, decoded: nullopt on any failure. */
    std::optional<CoreStats> runPoint(const std::string &workload,
                                      const CoreConfig &config,
                                      SeqNum max_ops);

    /** Single multi-core point, decoded. */
    std::optional<ProcStats>
    runProcPoint(const std::vector<std::string> &mix,
                 const ProcConfig &config, SeqNum max_ops);

    /** Server counters as a JSON line ("" on error). */
    std::string statsJson();

    /** Ask the daemon to exit (drain semantics). */
    bool requestShutdown();

  private:
    explicit SweepClient(int fd);

    /** Serialized request/response exchange. */
    std::optional<JsonValue> roundTrip(const std::string &request)
        REDSOC_EXCLUDES(mu_);

    std::mutex mu_;
    LineChannel chan_ REDSOC_GUARDED_BY(mu_);
};

} // namespace redsoc

#endif // REDSOC_SERVER_SWEEP_CLIENT_H

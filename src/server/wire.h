/**
 * @file
 * Minimal newline-delimited JSON wire layer for the sweep server.
 *
 * One request or response per line; values are standard JSON. This is
 * deliberately a tiny subset-of-JSON codec (objects, arrays, strings,
 * integers/doubles, booleans, null) rather than a dependency: the
 * protocol's payloads are opaque strings (the run-cache text
 * serializations and the config-codec text), so the JSON layer only
 * ever carries a flat envelope around them.
 *
 * Parsed objects keep their members in arrival order in a plain
 * vector — no unordered containers anywhere near iteration
 * (redsoc_lint nondet-iter), and no allocation-heavy DOM for what is
 * a handful of fields per message.
 */

#ifndef REDSOC_SERVER_WIRE_H
#define REDSOC_SERVER_WIRE_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace redsoc {

struct JsonValue
{
    enum class Kind : u8 { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0.0;
    /** Exact integer view of Num when the token was a plain unsigned
     *  integer literal (doubles lose u64 precision past 2^53). */
    u64 uint = 0;
    bool is_uint = false;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Convenience typed accessors (fallback when absent/mistyped). */
    std::string getStr(const std::string &key,
                       const std::string &fallback = "") const;
    u64 getU64(const std::string &key, u64 fallback = 0) const;
    bool getBool(const std::string &key, bool fallback = false) const;
};

/** Parse one JSON document (typically one line, sans newline);
 *  nullopt on any syntax error. Trailing garbage is an error. */
std::optional<JsonValue> parseJson(const std::string &text);

/** Escape + quote @p s as a JSON string literal. */
std::string jsonQuote(const std::string &s);

/**
 * Incremental writer for one JSON object line. Keys are emitted in
 * call order; the caller is responsible for writing each key once.
 */
class JsonObjectWriter
{
  public:
    JsonObjectWriter() : out_("{") {}

    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, u64 value);
    void field(const std::string &key, bool value);
    void fieldDouble(const std::string &key, double value);
    /** Insert @p raw_json verbatim (already-encoded array/object). */
    void fieldRaw(const std::string &key, const std::string &raw_json);

    /** Finish and return the object (no trailing newline). */
    std::string str() &&;

  private:
    void comma();
    std::string out_;
    bool first_ = true;
};

/**
 * Buffered line framing over a socket/pipe fd. Reading returns one
 * '\n'-terminated line at a time (newline stripped); writing appends
 * the newline and loops over short writes.
 */
class LineChannel
{
  public:
    explicit LineChannel(int fd) : fd_(fd) {}

    /** Read the next line; nullopt on EOF or error. Lines longer than
     *  kMaxLine bytes abort the connection (protocol violation). */
    std::optional<std::string> readLine();

    /** Write @p line plus '\n'; false on error. */
    bool writeLine(const std::string &line);

    int fd() const { return fd_; }

    static constexpr size_t kMaxLine = 64u * 1024 * 1024;

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace redsoc

#endif // REDSOC_SERVER_WIRE_H

/**
 * @file
 * Exact text codec for CoreConfig/ProcConfig, used as the wire form
 * of a simulation request. Every field is carried explicitly — the
 * codec is deliberately total, so a config mutated by any harness
 * (mode, ablation flags, RS geometry, latency scales, ...) reaches
 * the server bit-exactly and SimDriver::configKey(decode(encode(c)))
 * == configKey(c) always holds (tests/test_server.cc proves it over
 * the sched-equiv grid).
 *
 * Format: one "key=value" per line, fixed order, versioned header.
 * Decoding is strict — any missing/extra/reordered line fails — so a
 * client and server disagreeing about the config layout can never
 * silently simulate different machines.
 */

#ifndef REDSOC_SERVER_CONFIG_CODEC_H
#define REDSOC_SERVER_CONFIG_CODEC_H

#include <optional>
#include <string>

#include "core/core_config.h"
#include "proc/proc_config.h"

namespace redsoc {

std::string serializeCoreConfig(const CoreConfig &config);
std::optional<CoreConfig> deserializeCoreConfig(const std::string &text);

std::string serializeProcConfig(const ProcConfig &config);
std::optional<ProcConfig> deserializeProcConfig(const std::string &text);

} // namespace redsoc

#endif // REDSOC_SERVER_CONFIG_CODEC_H

/**
 * @file
 * Bounded multi-worker job queue with batch backpressure, the
 * execution engine behind the sweep server.
 *
 * Unlike sim/thread_pool.h (unbounded, used by in-process batch
 * APIs), this queue enforces a capacity: a batch submit is accepted
 * all-or-nothing only while the queued backlog stays under the cap,
 * and otherwise rejected so the server can answer busy +
 * retry-after instead of buffering unbounded client demand.
 *
 * Job slots are intrusive nodes recycled through the same
 * temporal-slab MPSC discipline as the shard cache: a worker that
 * finishes a job pushes the empty slot onto a lock-free stack
 * *without* touching the queue mutex, and the submit path harvests
 * the stack under the mutex it already holds. Submit-vs-complete
 * lock contention therefore never grows with throughput.
 *
 * Shutdown is two-stage to match the daemon's signal protocol:
 * close() stops new submissions and lets the backlog drain;
 * discardPending() additionally drops not-yet-started jobs (each
 * dropped job's closure is destroyed, which fails its cache claim).
 */

#ifndef REDSOC_SERVER_JOB_QUEUE_H
#define REDSOC_SERVER_JOB_QUEUE_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "server/recycle_queue.h"

namespace redsoc {

class JobQueue
{
  public:
    struct Options
    {
        /** Max queued (not yet running) jobs; submissions that would
         *  exceed it are rejected. */
        size_t capacity = 512;
        /** Worker threads; 0 = hardware concurrency. */
        unsigned workers = 0;
    };

    struct Counters
    {
        u64 executed = 0;
        u64 rejected_batches = 0;
        u64 discarded = 0;
        u64 slots_allocated = 0;
        u64 slots_recycled = 0;
        u64 slots_harvested = 0;
        u64 queued = 0;      ///< current backlog
        u64 running = 0;     ///< jobs executing right now
        u64 peak_queued = 0;
    };

    explicit JobQueue(Options opts);
    ~JobQueue();

    JobQueue(const JobQueue &) = delete;
    JobQueue &operator=(const JobQueue &) = delete;

    /**
     * Enqueue @p jobs atomically: either every job is accepted or —
     * when the backlog would exceed capacity or the queue is closed —
     * none is. Rejection is the backpressure signal; the caller
     * translates it into busy + retry_after_ms.
     */
    bool tryEnqueue(std::vector<std::function<void()>> jobs);

    /** Stop accepting work (idempotent). Queued jobs still run. */
    void close();

    /** Drop every queued-but-not-started job (their closures are
     *  destroyed). Running jobs are unaffected. */
    size_t discardPending();

    /** Block until the backlog is empty and workers are idle. */
    void drain() REDSOC_NO_THREAD_SAFETY_ANALYSIS;

    Counters counters() const;

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    struct Slot
    {
        std::function<void()> fn;
        Slot *queue_next = nullptr;
        // MpscFreeStack<Slot> intrusive hooks.
        Slot *recycle_next = nullptr;
        std::atomic<bool> recycle_queued{false};
    };

    void workerLoop() REDSOC_NO_THREAD_SAFETY_ANALYSIS;
    Slot *allocSlot() REDSOC_REQUIRES(mu_);

    mutable std::mutex mu_;
    std::condition_variable job_ready_;
    std::condition_variable idle_;
    // Intrusive FIFO of pending slots.
    Slot *queue_head_ REDSOC_GUARDED_BY(mu_) = nullptr;
    Slot *queue_tail_ REDSOC_GUARDED_BY(mu_) = nullptr;
    size_t queued_ REDSOC_GUARDED_BY(mu_) = 0;
    unsigned running_ REDSOC_GUARDED_BY(mu_) = 0;
    bool closed_ REDSOC_GUARDED_BY(mu_) = false;
    Slot *free_list_ REDSOC_GUARDED_BY(mu_) = nullptr;
    /** Lock-free completion side (workers push finished slots here);
     *  harvested under mu_ by the submit path. */
    MpscFreeStack<Slot> recycle_ REDSOC_NOT_GUARDED;
    std::vector<std::unique_ptr<Slot>> owned_ REDSOC_GUARDED_BY(mu_);
    Counters stats_ REDSOC_GUARDED_BY(mu_);
    size_t capacity_ REDSOC_NOT_GUARDED = 0; ///< immutable
    // Created in the constructor, joined in the destructor only.
    std::vector<std::thread> threads_ REDSOC_NOT_GUARDED;
};

} // namespace redsoc

#endif // REDSOC_SERVER_JOB_QUEUE_H

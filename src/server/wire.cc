#include "server/wire.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace redsoc {

// ---------------------------------------------------------------- JsonValue

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Obj)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::getStr(const std::string &key, const std::string &fallback) const
{
    const JsonValue *v = get(key);
    return v != nullptr && v->kind == Kind::Str ? v->str : fallback;
}

u64
JsonValue::getU64(const std::string &key, u64 fallback) const
{
    const JsonValue *v = get(key);
    if (v == nullptr || v->kind != Kind::Num)
        return fallback;
    if (v->is_uint)
        return v->uint;
    return v->num < 0.0 ? fallback : static_cast<u64>(v->num);
}

bool
JsonValue::getBool(const std::string &key, bool fallback) const
{
    const JsonValue *v = get(key);
    return v != nullptr && v->kind == Kind::Bool ? v->boolean : fallback;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    std::optional<JsonValue> parse()
    {
        JsonValue v;
        if (!value(v))
            return std::nullopt;
        skipWs();
        if (pos_ != s_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r' ||
                s_[pos_] == '\n'))
            ++pos_;
    }

    bool literal(const char *word)
    {
        size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool value(JsonValue &out) // NOLINT(misc-no-recursion)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        switch (c) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out.kind = JsonValue::Kind::Str;
            return string(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: return number(out);
        }
    }

    bool object(JsonValue &out) // NOLINT(misc-no-recursion)
    {
        out.kind = JsonValue::Kind::Obj;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue member;
            if (!value(member))
                return false;
            out.members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array(JsonValue &out) // NOLINT(misc-no-recursion)
    {
        out.kind = JsonValue::Kind::Arr;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue elem;
            if (!value(elem))
                return false;
            out.arr.push_back(std::move(elem));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                return false;
            const char esc = s_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                // Payloads are ASCII; decode BMP escapes to UTF-8 so
                // any well-formed peer round-trips.
                if (pos_ + 4 > s_.size())
                    return false;
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xC0u | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80u | (cp & 0x3Fu)));
                } else {
                    out.push_back(static_cast<char>(0xE0u | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80u | ((cp >> 6) & 0x3Fu)));
                    out.push_back(static_cast<char>(0x80u | (cp & 0x3Fu)));
                }
                break;
              }
              default: return false;
            }
        }
        return false; // unterminated
    }

    bool number(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        bool digits = false;
        bool integral = true;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c >= '0' && c <= '9') {
                digits = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits)
            return false;
        const std::string tok = s_.substr(start, pos_ - start);
        out.kind = JsonValue::Kind::Num;
        out.num = std::strtod(tok.c_str(), nullptr);
        if (integral && tok[0] != '-') {
            out.uint = std::strtoull(tok.c_str(), nullptr, 10);
            out.is_uint = true;
        }
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

// ------------------------------------------------------------------ writer

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonObjectWriter::comma()
{
    if (!first_)
        out_.push_back(',');
    first_ = false;
}

void
JsonObjectWriter::field(const std::string &key, const std::string &value)
{
    comma();
    out_ += jsonQuote(key);
    out_.push_back(':');
    out_ += jsonQuote(value);
}

void
JsonObjectWriter::field(const std::string &key, const char *value)
{
    field(key, std::string(value));
}

void
JsonObjectWriter::field(const std::string &key, u64 value)
{
    comma();
    out_ += jsonQuote(key);
    out_.push_back(':');
    out_ += std::to_string(value);
}

void
JsonObjectWriter::field(const std::string &key, bool value)
{
    comma();
    out_ += jsonQuote(key);
    out_ += value ? ":true" : ":false";
}

void
JsonObjectWriter::fieldDouble(const std::string &key, double value)
{
    comma();
    out_ += jsonQuote(key);
    out_.push_back(':');
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
}

void
JsonObjectWriter::fieldRaw(const std::string &key,
                           const std::string &raw_json)
{
    comma();
    out_ += jsonQuote(key);
    out_.push_back(':');
    out_ += raw_json;
}

std::string
JsonObjectWriter::str() &&
{
    out_.push_back('}');
    return std::move(out_);
}

// ------------------------------------------------------------- LineChannel

std::optional<std::string>
LineChannel::readLine()
{
    for (;;) {
        const size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return line;
        }
        if (buf_.size() > kMaxLine)
            return std::nullopt;
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buf_.append(chunk, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return std::nullopt; // EOF or hard error
    }
}

bool
LineChannel::writeLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            ::write(fd_, framed.data() + off, framed.size() - off);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace redsoc

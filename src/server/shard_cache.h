/**
 * @file
 * Sharded in-memory result cache with per-key deduplication.
 *
 * The server-side analogue of SimDriver's memoization map, engineered
 * for many concurrent clients: keys are distributed over N shards
 * (shard = FNV-1a(key) % N), each with its own mutex, so requests for
 * unrelated keys never contend on a lock. Within a shard the
 * SimDriver discipline is kept exactly: the first requester claims
 * the key and later computes/publishes outside the lock, every
 * concurrent requester receives the same std::shared_future and
 * blocks on it (per-key latch).
 *
 * Capacity is bounded per shard with LRU eviction over *published*
 * entries only (an in-flight computation is never evicted — its
 * future is the dedup point). Evicted entry nodes are not freed or
 * reused inline: they are pushed onto a temporal-slab-style MPSC
 * recycle stack (recycle_queue.h) and harvested in one exchange under
 * the shard lock at the next allocation, decoupling recycling from
 * reclamation exactly as the slab allocator in SNIPPETS.md does.
 *
 * Payloads are opaque strings — in the sweep server they are the
 * run-cache text serializations of CoreStats/ProcStats, whose
 * byte-equality implies bit-identical stats.
 */

#ifndef REDSOC_SERVER_SHARD_CACHE_H
#define REDSOC_SERVER_SHARD_CACHE_H

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "server/recycle_queue.h"

namespace redsoc {

class ShardedResultCache
{
  public:
    struct Options
    {
        unsigned shards = 8;
        /** Max published entries per shard before LRU eviction. */
        size_t capacity_per_shard = 4096;
    };

    /** Aggregated counters (summed over shards; see statsJson use). */
    struct Counters
    {
        u64 hits = 0;        ///< lookups that found the key (any state)
        u64 misses = 0;      ///< lookups that claimed the key
        u64 evictions = 0;   ///< published entries LRU-evicted
        u64 failures = 0;    ///< claims completed with fail()
        u64 recycled = 0;    ///< nodes pushed onto the recycle stacks
        u64 harvested = 0;   ///< nodes reclaimed from the stacks
        u64 allocated = 0;   ///< fresh node allocations
        u64 entries = 0;     ///< entries currently resident
    };

    explicit ShardedResultCache(Options opts);
    ~ShardedResultCache();

    ShardedResultCache(const ShardedResultCache &) = delete;
    ShardedResultCache &operator=(const ShardedResultCache &) = delete;

    struct Claim
    {
        /** Latch for the key's payload; valid in either case. */
        std::shared_future<std::string> future;
        /** True when this caller owns the key and must publish() or
         *  fail() it exactly once. */
        bool claimed = false;
    };

    /** Find @p key or claim it for computation (the SimDriver
     *  try_emplace discipline, per shard). */
    Claim lookupOrClaim(const std::string &key);

    /** Fulfil a claimed key with @p payload; the entry becomes
     *  LRU-resident and eviction may run. */
    void publish(const std::string &key, std::string payload);

    /** Fulfil a claimed key with an error; the entry is removed so a
     *  later request retries, and its node is recycled. */
    void fail(const std::string &key, std::exception_ptr error);

    Counters counters() const;

    unsigned shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

  private:
    struct Entry
    {
        std::string key;
        std::promise<std::string> prom;
        std::shared_future<std::string> fut;
        bool ready = false;
        // Intrusive LRU links (only meaningful while ready).
        Entry *lru_prev = nullptr;
        Entry *lru_next = nullptr;
        // MpscFreeStack<Entry> intrusive hooks.
        Entry *recycle_next = nullptr;
        std::atomic<bool> recycle_queued{false};
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::map<std::string, Entry *> map REDSOC_GUARDED_BY(mu);
        Entry *lru_head REDSOC_GUARDED_BY(mu) = nullptr; ///< MRU end
        Entry *lru_tail REDSOC_GUARDED_BY(mu) = nullptr; ///< LRU end
        /** Harvested nodes ready for reuse (singly linked through
         *  recycle_next, flags already cleared). */
        Entry *free_list REDSOC_GUARDED_BY(mu) = nullptr;
        /** Lock-free release side; harvested under mu at allocation
         *  (single consumer by construction). */
        MpscFreeStack<Entry> recycle REDSOC_NOT_GUARDED;
        /** Every node this shard ever allocated (ownership; nodes
         *  cycle between map/LRU/recycle/free but are freed once,
         *  here). Only grows, only touched under mu. */
        std::vector<std::unique_ptr<Entry>> owned REDSOC_GUARDED_BY(mu);
        Counters stats REDSOC_GUARDED_BY(mu);
    };

    Shard &shardFor(const std::string &key);

    /** Pop a reusable node (harvesting first) or allocate one. */
    Entry *allocEntry(Shard &shard, const std::string &key)
        REDSOC_REQUIRES(shard.mu);

    void lruUnlink(Shard &shard, Entry *e) REDSOC_REQUIRES(shard.mu);
    void lruPushFront(Shard &shard, Entry *e) REDSOC_REQUIRES(shard.mu);
    void evictOver(Shard &shard) REDSOC_REQUIRES(shard.mu);

    // Immutable after construction (shard array and capacity).
    std::vector<std::unique_ptr<Shard>> shards_ REDSOC_NOT_GUARDED;
    size_t capacity_per_shard_ REDSOC_NOT_GUARDED = 0;
};

} // namespace redsoc

#endif // REDSOC_SERVER_SHARD_CACHE_H

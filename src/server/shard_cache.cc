#include "server/shard_cache.h"

#include "common/logging.h"

namespace redsoc {

namespace {

u64
fnv1a(const std::string &s)
{
    u64 h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

ShardedResultCache::ShardedResultCache(Options opts)
    : capacity_per_shard_(opts.capacity_per_shard)
{
    const unsigned n = opts.shards == 0 ? 1 : opts.shards;
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
    panic_if(capacity_per_shard_ == 0, "shard capacity must be nonzero");
}

ShardedResultCache::~ShardedResultCache() = default;

ShardedResultCache::Shard &
ShardedResultCache::shardFor(const std::string &key)
{
    return *shards_[fnv1a(key) % shards_.size()];
}

ShardedResultCache::Entry *
ShardedResultCache::allocEntry(Shard &shard, const std::string &key)
{
    // Temporal-slab harvest: claim everything the release side pushed
    // since the last allocation, in one exchange, under the shard
    // lock we already hold — the free path never took it.
    if (shard.free_list == nullptr) {
        Entry *chain = shard.recycle.harvest();
        while (chain != nullptr) {
            Entry *next = chain->recycle_next;
            chain->recycle_queued.store(false, std::memory_order_relaxed);
            chain->recycle_next = shard.free_list;
            shard.free_list = chain;
            ++shard.stats.harvested;
            chain = next;
        }
    }

    Entry *e = nullptr;
    if (shard.free_list != nullptr) {
        e = shard.free_list;
        shard.free_list = e->recycle_next;
        e->recycle_next = nullptr;
    } else {
        shard.owned.push_back(std::make_unique<Entry>());
        e = shard.owned.back().get();
        ++shard.stats.allocated;
    }

    e->key = key;
    e->prom = std::promise<std::string>();
    e->fut = e->prom.get_future().share();
    e->ready = false;
    e->lru_prev = e->lru_next = nullptr;
    return e;
}

void
ShardedResultCache::lruUnlink(Shard &shard, Entry *e)
{
    if (e->lru_prev != nullptr)
        e->lru_prev->lru_next = e->lru_next;
    else if (shard.lru_head == e)
        shard.lru_head = e->lru_next;
    if (e->lru_next != nullptr)
        e->lru_next->lru_prev = e->lru_prev;
    else if (shard.lru_tail == e)
        shard.lru_tail = e->lru_prev;
    e->lru_prev = e->lru_next = nullptr;
}

void
ShardedResultCache::lruPushFront(Shard &shard, Entry *e)
{
    e->lru_prev = nullptr;
    e->lru_next = shard.lru_head;
    if (shard.lru_head != nullptr)
        shard.lru_head->lru_prev = e;
    shard.lru_head = e;
    if (shard.lru_tail == nullptr)
        shard.lru_tail = e;
}

void
ShardedResultCache::evictOver(Shard &shard)
{
    while (shard.map.size() > capacity_per_shard_ &&
           shard.lru_tail != nullptr) {
        Entry *victim = shard.lru_tail;
        lruUnlink(shard, victim);
        shard.map.erase(victim->key);
        ++shard.stats.evictions;
        // Waiters that already hold the future keep the shared state
        // alive on their own; the node itself goes back through the
        // recycle stack (push cannot fail here: the node just left
        // the map, so no racing release exists).
        if (shard.recycle.push(victim))
            ++shard.stats.recycled;
    }
}

ShardedResultCache::Claim
ShardedResultCache::lookupOrClaim(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        Entry *e = it->second;
        if (e->ready) {
            lruUnlink(shard, e);
            lruPushFront(shard, e);
        }
        ++shard.stats.hits;
        return Claim{e->fut, false};
    }
    Entry *e = allocEntry(shard, key);
    shard.map.emplace(key, e);
    ++shard.stats.misses;
    return Claim{e->fut, true};
}

void
ShardedResultCache::publish(const std::string &key, std::string payload)
{
    Shard &shard = shardFor(key);
    std::promise<std::string> prom;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        panic_if(it == shard.map.end() || it->second->ready,
                 "publish without claim: ", key);
        Entry *e = it->second;
        // Move the promise out so set_value runs after unlock: waking
        // every waiter of a hot key inside the shard critical section
        // would serialize unrelated lookups behind it.
        prom = std::move(e->prom);
        e->ready = true;
        lruPushFront(shard, e);
        evictOver(shard);
        shard.stats.entries = shard.map.size();
    }
    prom.set_value(std::move(payload));
}

void
ShardedResultCache::fail(const std::string &key, std::exception_ptr error)
{
    Shard &shard = shardFor(key);
    std::promise<std::string> prom;
    Entry *e = nullptr;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        panic_if(it == shard.map.end() || it->second->ready,
                 "fail without claim: ", key);
        e = it->second;
        prom = std::move(e->prom);
        shard.map.erase(it);
        ++shard.stats.failures;
        if (shard.recycle.push(e))
            ++shard.stats.recycled;
        shard.stats.entries = shard.map.size();
    }
    prom.set_exception(std::move(error));
}

ShardedResultCache::Counters
ShardedResultCache::counters() const
{
    Counters total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total.hits += shard->stats.hits;
        total.misses += shard->stats.misses;
        total.evictions += shard->stats.evictions;
        total.failures += shard->stats.failures;
        total.recycled += shard->stats.recycled;
        total.harvested += shard->stats.harvested;
        total.allocated += shard->stats.allocated;
        total.entries += shard->map.size();
    }
    return total;
}

} // namespace redsoc

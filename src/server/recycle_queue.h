/**
 * @file
 * Lock-free MPSC free-object stack, after the temporal-slab recycling
 * idiom (SNIPPETS.md): releasing threads push retired nodes onto an
 * atomic Treiber stack without taking any lock, and the allocating
 * side harvests the whole stack in one atomic exchange *under a lock
 * it already holds* for other reasons. Recycling is thereby decoupled
 * from reclamation — a release never contends with an allocation, and
 * the harvest adds zero extra lock acquisitions.
 *
 * Node requirements (intrusive):
 *   - `Node *recycle_next` link, owned by this stack while enqueued;
 *   - `std::atomic<bool> recycle_queued` flag, false while the node
 *     is live. The flag makes release idempotent: whichever caller
 *     flips it first owns the push, any racing second release is a
 *     no-op instead of a double-enqueue (the slab idiom's "queued"
 *     bit).
 */

#ifndef REDSOC_SERVER_RECYCLE_QUEUE_H
#define REDSOC_SERVER_RECYCLE_QUEUE_H

#include <atomic>

namespace redsoc {

template <typename Node>
class MpscFreeStack
{
  public:
    MpscFreeStack() = default;
    MpscFreeStack(const MpscFreeStack &) = delete;
    MpscFreeStack &operator=(const MpscFreeStack &) = delete;

    /**
     * Release @p node for reuse (any thread, lock-free). Returns
     * false — and does nothing — if the node is already enqueued.
     */
    bool push(Node *node)
    {
        if (node->recycle_queued.exchange(true,
                                          std::memory_order_acq_rel))
            return false;
        Node *head = head_.load(std::memory_order_relaxed);
        do {
            node->recycle_next = head;
        } while (!head_.compare_exchange_weak(head, node,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
        return true;
    }

    /**
     * Detach every pushed node in one exchange (single consumer; the
     * caller is expected to already hold its allocation lock). The
     * returned chain is linked through `recycle_next`; the caller
     * must clear each node's `recycle_queued` flag before reusing it.
     */
    Node *harvest() { return head_.exchange(nullptr, std::memory_order_acquire); }

    bool empty() const
    {
        return head_.load(std::memory_order_relaxed) == nullptr;
    }

  private:
    std::atomic<Node *> head_{nullptr};
};

} // namespace redsoc

#endif // REDSOC_SERVER_RECYCLE_QUEUE_H

/**
 * @file
 * The sweep server: serves simulation points over an AF_UNIX socket
 * with a newline-delimited JSON protocol (one request or response
 * object per line). See DESIGN.md §15 for the full wire protocol.
 *
 * Request ops:
 *   ping      liveness + protocol version
 *   submit    batch of points; replies with a ticket, or busy +
 *             retry_after_ms when the job queue is at capacity
 *   poll      per-ticket progress (done/failed/total)
 *   fetch     block until a ticket completes, return every payload
 *   stats     shard-cache/job-queue/server counters as JSON
 *   shutdown  ask the daemon to exit (drain semantics, like SIGTERM)
 *
 * Results are the run-cache text serializations of CoreStats /
 * ProcStats: byte equality of that text implies bit-identical stats,
 * which is what the server-vs-in-process differential test asserts.
 * Keys are SimDriver::runKey/procRunKey strings, so the daemon's
 * disk cache interoperates with every in-process harness sharing the
 * same REDSOC_CACHE_DIR.
 */

#ifndef REDSOC_SERVER_SWEEP_SERVER_H
#define REDSOC_SERVER_SWEEP_SERVER_H

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "server/job_queue.h"
#include "server/shard_cache.h"
#include "sim/driver.h"
#include "sim/run_cache.h"

namespace redsoc {

struct JsonValue;

struct SweepServerOptions
{
    /** AF_UNIX socket path (must fit sun_path, ~100 bytes). */
    std::string socket_path = "";
    unsigned shards = 8;
    size_t shard_capacity = 4096;
    size_t queue_capacity = 512;
    /** Simulation worker threads; 0 = hardware concurrency. */
    unsigned workers = 0;
    /** Suggested client backoff when the queue rejects a batch. */
    unsigned retry_after_ms = 200;
    /** Persistent backing store (read-through/write-behind); "" =
     *  in-memory only. */
    std::string cache_dir = "";
};

class SweepServer
{
  public:
    static constexpr unsigned kProtocolVersion = 1;

    explicit SweepServer(SweepServerOptions opts);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind, listen, and spawn the accept loop; false on socket
     *  errors (path too long, bind failure, ...). */
    bool start();

    /**
     * Stop serving: close the listener, shut down every open
     * connection, join all threads. Queued jobs are NOT waited for —
     * call closeQueue()/waitQueueIdleFor() (drain) or
     * discardPendingJobs() first for an orderly daemon exit.
     */
    void stop();

    /** Stop accepting new submissions (drain stage 1). */
    void closeQueue();

    /** True when no job is queued or running. */
    bool queueIdle() const;

    /** Bounded wait for queue idleness; true when idle. */
    bool waitQueueIdleFor(unsigned ms) const;

    /** Drop every not-yet-started job (drain stage 2, second
     *  signal); their tickets complete with an error. */
    size_t discardPendingJobs();

    /** True once some client issued the shutdown op. */
    bool shutdownOpReceived() const
    {
        return shutdown_op_.load(std::memory_order_relaxed);
    }

    /** One-line JSON object with every server counter. */
    std::string statsJson() const;

    const std::string &socketPath() const { return opts_.socket_path; }

  private:
    struct Ticket
    {
        /** Point keys in submission order, each with its latch. */
        std::vector<std::pair<std::string,
                              std::shared_future<std::string>>> points;
    };

    /** Fails its claim on destruction unless the job ran: a job
     *  discarded during shutdown completes its waiters with an error
     *  instead of leaving them blocked forever. */
    class ClaimGuard;

    void acceptLoop();
    void serveConnection(int fd);
    std::string handleRequest(const std::string &line);
    std::string handleSubmit(const JsonValue &req);
    std::string handlePoll(const JsonValue &req);
    std::string handleFetch(const JsonValue &req);

    /** Per-max_ops SimDriver, used only as the process-wide trace
     *  cache (its own result memoization is bypassed: the shard
     *  cache owns dedup here, with bounded capacity). */
    SimDriver &driverFor(SeqNum max_ops);

    void runCorePoint(const std::string &key, const std::string &workload,
                      const CoreConfig &config, SeqNum max_ops);
    void runProcPoint(const std::string &key,
                      const std::vector<std::string> &mix,
                      const ProcConfig &config, SeqNum max_ops);

    // Immutable after the constructor (cache_/queue_ are internally
    // synchronized; RunCache is stateless, every method const).
    SweepServerOptions opts_ REDSOC_NOT_GUARDED;
    ShardedResultCache cache_ REDSOC_NOT_GUARDED;
    JobQueue queue_ REDSOC_NOT_GUARDED;
    std::optional<RunCache> disk_cache_ REDSOC_NOT_GUARDED;

    std::mutex drivers_mu_;
    std::map<SeqNum, std::unique_ptr<SimDriver>> drivers_
        REDSOC_GUARDED_BY(drivers_mu_);

    mutable std::mutex tickets_mu_;
    std::map<std::string, std::shared_ptr<Ticket>> tickets_
        REDSOC_GUARDED_BY(tickets_mu_);
    u64 next_ticket_ REDSOC_GUARDED_BY(tickets_mu_) = 0;
    u64 points_submitted_ REDSOC_GUARDED_BY(tickets_mu_) = 0;
    u64 requests_served_ REDSOC_GUARDED_BY(tickets_mu_) = 0;

    std::mutex conn_mu_;
    std::vector<std::thread> conn_threads_ REDSOC_GUARDED_BY(conn_mu_);
    std::vector<int> conn_fds_ REDSOC_GUARDED_BY(conn_mu_);

    // Lifecycle flags/fds: set up in start(), torn down in stop().
    std::atomic<bool> stopping_ REDSOC_NOT_GUARDED{false};
    std::atomic<bool> shutdown_op_ REDSOC_NOT_GUARDED{false};
    /** Submissions answered busy (pre-check or enqueue race). */
    std::atomic<u64> busy_rejections_ REDSOC_NOT_GUARDED{0};
    int listen_fd_ REDSOC_NOT_GUARDED = -1;
    int stop_pipe_rd_ REDSOC_NOT_GUARDED = -1;
    int stop_pipe_wr_ REDSOC_NOT_GUARDED = -1;
    std::thread accept_thread_ REDSOC_NOT_GUARDED;
};

} // namespace redsoc

#endif // REDSOC_SERVER_SWEEP_SERVER_H

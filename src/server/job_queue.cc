#include "server/job_queue.h"

namespace redsoc {

JobQueue::JobQueue(Options opts) : capacity_(opts.capacity)
{
    if (capacity_ == 0)
        capacity_ = 1;
    unsigned n = opts.workers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

JobQueue::~JobQueue()
{
    close();
    discardPending();
    {
        std::lock_guard<std::mutex> lock(mu_);
        // closed_ + empty queue makes every worker exit its wait.
    }
    job_ready_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

JobQueue::Slot *
JobQueue::allocSlot()
{
    if (free_list_ == nullptr) {
        // Temporal-slab harvest under the mutex the submit path
        // already owns; completions never touched it.
        Slot *chain = recycle_.harvest();
        while (chain != nullptr) {
            Slot *next = chain->recycle_next;
            chain->recycle_queued.store(false, std::memory_order_relaxed);
            chain->recycle_next = free_list_;
            free_list_ = chain;
            ++stats_.slots_harvested;
            chain = next;
        }
    }
    if (free_list_ != nullptr) {
        Slot *s = free_list_;
        free_list_ = s->recycle_next;
        s->recycle_next = nullptr;
        return s;
    }
    owned_.push_back(std::make_unique<Slot>());
    ++stats_.slots_allocated;
    return owned_.back().get();
}

bool
JobQueue::tryEnqueue(std::vector<std::function<void()>> jobs)
{
    if (jobs.empty())
        return true;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || queued_ + jobs.size() > capacity_) {
            ++stats_.rejected_batches;
            return false;
        }
        for (auto &fn : jobs) {
            Slot *s = allocSlot();
            s->fn = std::move(fn);
            s->queue_next = nullptr;
            if (queue_tail_ != nullptr)
                queue_tail_->queue_next = s;
            else
                queue_head_ = s;
            queue_tail_ = s;
            ++queued_;
        }
        stats_.queued = queued_;
        if (queued_ > stats_.peak_queued)
            stats_.peak_queued = queued_;
    }
    if (jobs.size() == 1)
        job_ready_.notify_one();
    else
        job_ready_.notify_all();
    return true;
}

void
JobQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    job_ready_.notify_all();
}

size_t
JobQueue::discardPending()
{
    Slot *dropped = nullptr;
    size_t n = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        dropped = queue_head_;
        queue_head_ = queue_tail_ = nullptr;
        n = queued_;
        queued_ = 0;
        stats_.queued = 0;
        stats_.discarded += n;
        if (running_ == 0)
            idle_.notify_all();
    }
    // Destroy the closures outside the lock (a dropped job's closure
    // typically fails a cache claim, waking arbitrary waiters), then
    // recycle the slots lock-free like any completion.
    while (dropped != nullptr) {
        Slot *next = dropped->queue_next;
        dropped->queue_next = nullptr;
        dropped->fn = nullptr;
        recycle_.push(dropped);
        dropped = next;
    }
    return n;
}

void
JobQueue::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (queued_ != 0 || running_ != 0)
        idle_.wait(lock);
}

JobQueue::Counters
JobQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Counters out = stats_;
    out.queued = queued_;
    out.running = running_;
    return out;
}

void
JobQueue::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        while (queue_head_ == nullptr && !closed_)
            job_ready_.wait(lock);
        if (queue_head_ == nullptr) {
            if (closed_)
                return;
            continue;
        }
        Slot *s = queue_head_;
        queue_head_ = s->queue_next;
        if (queue_head_ == nullptr)
            queue_tail_ = nullptr;
        s->queue_next = nullptr;
        --queued_;
        stats_.queued = queued_;
        ++running_;
        lock.unlock();

        // Job closures own their error handling (they fail the cache
        // claim); an escaped exception here would be a server bug.
        s->fn();
        s->fn = nullptr;
        // Lock-free completion: the slot goes home via the recycle
        // stack, not the queue mutex.
        s->recycle_next = nullptr;
        recycle_.push(s);

        lock.lock();
        ++stats_.executed;
        ++stats_.slots_recycled;
        --running_;
        if (queued_ == 0 && running_ == 0)
            idle_.notify_all();
    }
}

} // namespace redsoc

#include "server/offload.h"

#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "server/sweep_client.h"

namespace redsoc {

namespace {

/**
 * Process-wide offload policy: the env var is read once and any
 * failure disables offload for the whole process (warning once).
 * Connections themselves are per-thread — a point request blocks on
 * the daemon until its simulation finishes, so pool workers fanning
 * out a batch each need their own socket to overlap server-side.
 */
class OffloadPolicy
{
  public:
    static OffloadPolicy &get()
    {
        static OffloadPolicy policy;
        return policy;
    }

    /** Socket path when offload is live; nullopt when disabled or
     *  unconfigured. */
    std::optional<std::string> address()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (disabled_)
            return std::nullopt;
        if (!addr_.empty())
            return addr_;
        const char *env = std::getenv("REDSOC_SWEEP_SERVER");
        if (env == nullptr || *env == '\0') {
            // Not configured: permanently local (the variable is read
            // once; tests use resetServerOffloadForTest()).
            disabled_ = true;
            return std::nullopt;
        }
        addr_ = env;
        return addr_;
    }

    void disable(const std::string &why)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (disabled_)
            return;
        // Warn once: a dead daemon must not spam one warning per
        // point of a thousand-point sweep.
        warn("sweep offload disabled, simulating locally (", why, ")");
        disabled_ = true;
    }

    bool disabled()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return disabled_;
    }

    void reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        disabled_ = false;
        addr_.clear();
        ++epoch_;
    }

    u64 epoch()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return epoch_;
    }

  private:
    std::mutex mu_;
    bool disabled_ REDSOC_GUARDED_BY(mu_) = false;
    std::string addr_ REDSOC_GUARDED_BY(mu_);
    u64 epoch_ REDSOC_GUARDED_BY(mu_) = 0;
};

/** Per-thread connection, re-dialed when the policy epoch moves
 *  (test reset) or the previous socket died. */
SweepClient *
threadClient()
{
    OffloadPolicy &policy = OffloadPolicy::get();
    const auto addr = policy.address();
    if (!addr)
        return nullptr;
    thread_local std::unique_ptr<SweepClient> client;
    thread_local u64 client_epoch = 0;
    const u64 now = policy.epoch();
    if (client && client_epoch != now)
        client.reset();
    if (!client) {
        client = SweepClient::connect(*addr);
        client_epoch = now;
        if (!client || !client->ping()) {
            client.reset();
            policy.disable("cannot reach daemon at '" + *addr + "'");
            return nullptr;
        }
    }
    return client.get();
}

} // namespace

std::optional<CoreStats>
serverOffloadRun(const std::string &workload, const CoreConfig &config,
                 SeqNum max_ops)
{
    SweepClient *client = threadClient();
    if (client == nullptr)
        return std::nullopt;
    auto stats = client->runPoint(workload, config, max_ops);
    if (!stats)
        OffloadPolicy::get().disable("point request failed");
    return stats;
}

std::optional<ProcStats>
serverOffloadRunProc(const std::vector<std::string> &mix,
                     const ProcConfig &config, SeqNum max_ops)
{
    SweepClient *client = threadClient();
    if (client == nullptr)
        return std::nullopt;
    auto stats = client->runProcPoint(mix, config, max_ops);
    if (!stats)
        OffloadPolicy::get().disable("proc point request failed");
    return stats;
}

void
resetServerOffloadForTest()
{
    OffloadPolicy::get().reset();
}

} // namespace redsoc

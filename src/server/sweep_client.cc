#include "server/sweep_client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "server/config_codec.h"
#include "sim/run_cache.h"

namespace redsoc {

SweepClient::SweepClient(int fd) : chan_(fd) {}

SweepClient::~SweepClient()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (chan_.fd() >= 0)
        ::close(chan_.fd());
}

std::unique_ptr<SweepClient>
SweepClient::connect(const std::string &socket_path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path))
        return nullptr;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return nullptr;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SweepClient>(new SweepClient(fd));
}

std::optional<JsonValue>
SweepClient::roundTrip(const std::string &request)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!chan_.writeLine(request))
        return std::nullopt;
    const auto reply = chan_.readLine();
    if (!reply)
        return std::nullopt;
    return parseJson(*reply);
}

bool
SweepClient::ping()
{
    JsonObjectWriter w;
    w.field("op", "ping");
    const auto reply = roundTrip(std::move(w).str());
    return reply && reply->getBool("ok") &&
           reply->getU64("proto") == 1;
}

std::optional<std::string>
SweepClient::submit(const std::vector<PointRequest> &points,
                    unsigned busy_retries)
{
    if (points.empty())
        return std::nullopt;
    std::string arr = "[";
    bool first = true;
    for (const PointRequest &p : points) {
        JsonObjectWriter o;
        if (p.is_proc) {
            o.field("kind", "proc");
            std::string mix = "[";
            for (size_t i = 0; i < p.mix.size(); ++i) {
                if (i > 0)
                    mix.push_back(',');
                mix += jsonQuote(p.mix[i]);
            }
            mix.push_back(']');
            o.fieldRaw("mix", mix);
        } else {
            o.field("kind", "core");
            o.field("workload", p.workload);
        }
        o.field("max_ops", p.max_ops);
        o.field("config", p.config_text);
        if (!first)
            arr.push_back(',');
        first = false;
        arr += std::move(o).str();
    }
    arr.push_back(']');

    JsonObjectWriter w;
    w.field("op", "submit");
    w.fieldRaw("points", arr);
    const std::string request = std::move(w).str();

    for (unsigned attempt = 0; attempt <= busy_retries; ++attempt) {
        const auto reply = roundTrip(request);
        if (!reply)
            return std::nullopt;
        if (reply->getBool("ok"))
            return reply->getStr("ticket");
        if (!reply->getBool("busy"))
            return std::nullopt; // hard protocol error
        // Backpressure: honor the server's pacing hint and retry the
        // identical batch (claims were released server-side).
        const u64 ms = reply->getU64("retry_after_ms", 200);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(ms == 0 ? 50 : ms));
    }
    return std::nullopt;
}

std::optional<std::vector<SweepClient::PointResult>>
SweepClient::fetch(const std::string &ticket)
{
    JsonObjectWriter w;
    w.field("op", "fetch");
    w.field("ticket", ticket);
    const auto reply = roundTrip(std::move(w).str());
    if (!reply || !reply->getBool("ok"))
        return std::nullopt;
    const JsonValue *results = reply->get("results");
    if (results == nullptr || results->kind != JsonValue::Kind::Arr)
        return std::nullopt;
    std::vector<PointResult> out;
    out.reserve(results->arr.size());
    for (const JsonValue &r : results->arr) {
        PointResult pr;
        pr.key = r.getStr("key");
        pr.ok = r.getBool("ok");
        pr.payload = r.getStr("payload");
        pr.error = r.getStr("error");
        out.push_back(std::move(pr));
    }
    return out;
}

std::optional<std::vector<SweepClient::PointResult>>
SweepClient::runBatch(const std::vector<PointRequest> &points)
{
    const auto ticket = submit(points);
    if (!ticket)
        return std::nullopt;
    return fetch(*ticket);
}

std::optional<CoreStats>
SweepClient::runPoint(const std::string &workload,
                      const CoreConfig &config, SeqNum max_ops)
{
    PointRequest p;
    p.workload = workload;
    p.config_text = serializeCoreConfig(config);
    p.max_ops = max_ops;
    const auto results = runBatch({p});
    if (!results || results->size() != 1 || !(*results)[0].ok)
        return std::nullopt;
    return deserializeStats((*results)[0].payload, (*results)[0].key);
}

std::optional<ProcStats>
SweepClient::runProcPoint(const std::vector<std::string> &mix,
                          const ProcConfig &config, SeqNum max_ops)
{
    PointRequest p;
    p.is_proc = true;
    p.mix = mix;
    p.config_text = serializeProcConfig(config);
    p.max_ops = max_ops;
    const auto results = runBatch({p});
    if (!results || results->size() != 1 || !(*results)[0].ok)
        return std::nullopt;
    return deserializeProcStats((*results)[0].payload,
                                (*results)[0].key);
}

std::string
SweepClient::statsJson()
{
    JsonObjectWriter w;
    w.field("op", "stats");
    const auto reply = roundTrip(std::move(w).str());
    if (!reply || !reply->getBool("ok"))
        return "";
    // Hand the raw counters back as received: the reply *is* the
    // stats JSON object.
    JsonObjectWriter out;
    for (const auto &[k, v] : reply->members) {
        switch (v.kind) {
          case JsonValue::Kind::Bool: out.field(k, v.boolean); break;
          case JsonValue::Kind::Num:
            if (v.is_uint)
                out.field(k, v.uint);
            else
                out.fieldDouble(k, v.num);
            break;
          case JsonValue::Kind::Str: out.field(k, v.str); break;
          default: break;
        }
    }
    return std::move(out).str();
}

bool
SweepClient::requestShutdown()
{
    JsonObjectWriter w;
    w.field("op", "shutdown");
    const auto reply = roundTrip(std::move(w).str());
    return reply && reply->getBool("ok");
}

} // namespace redsoc

#include "server/sweep_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "server/config_codec.h"
#include "server/wire.h"

namespace redsoc {

namespace {

std::string
errorReply(const std::string &message)
{
    JsonObjectWriter w;
    w.field("ok", false);
    w.field("error", message);
    return std::move(w).str();
}

} // namespace

/** RAII completion guard for a claimed point: whoever destroys the
 *  job closure without running it (queue discard during shutdown,
 *  busy-rejection after claiming) fails the claim so every waiter
 *  unblocks with an error instead of hanging on the latch. */
class SweepServer::ClaimGuard
{
  public:
    ClaimGuard(ShardedResultCache &cache, std::string key)
        : cache_(cache), key_(std::move(key))
    {
    }

    ~ClaimGuard()
    {
        if (!done_) {
            cache_.fail(key_, std::make_exception_ptr(std::runtime_error(
                                  "point discarded before simulation")));
        }
    }

    ClaimGuard(const ClaimGuard &) = delete;
    ClaimGuard &operator=(const ClaimGuard &) = delete;

    /** The job ran (and published or failed the claim itself). */
    void complete() { done_ = true; }

    const std::string &key() const { return key_; }

  private:
    ShardedResultCache &cache_;
    std::string key_;
    bool done_ = false;
};

SweepServer::SweepServer(SweepServerOptions opts)
    : opts_(std::move(opts)),
      cache_(ShardedResultCache::Options{
          opts_.shards == 0 ? 1 : opts_.shards, opts_.shard_capacity}),
      queue_(JobQueue::Options{opts_.queue_capacity, opts_.workers})
{
    if (!opts_.cache_dir.empty())
        disk_cache_.emplace(opts_.cache_dir);
}

SweepServer::~SweepServer()
{
    stop();
}

bool
SweepServer::start()
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
        warn("sweep server: socket path too long: ", opts_.socket_path);
        return false;
    }
    std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
                opts_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        warn("sweep server: socket(): ", std::strerror(errno));
        return false;
    }
    // A previous daemon's socket file would make bind fail; it is
    // dead by definition (we own the path), so remove it.
    std::error_code ec;
    std::filesystem::remove(opts_.socket_path, ec);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        warn("sweep server: bind/listen '", opts_.socket_path,
             "': ", std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
        warn("sweep server: pipe(): ", std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    stop_pipe_rd_ = fds[0];
    stop_pipe_wr_ = fds[1];

    stopping_.store(false, std::memory_order_relaxed);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
SweepServer::stop()
{
    if (listen_fd_ < 0 && !accept_thread_.joinable())
        return;
    stopping_.store(true, std::memory_order_relaxed);
    if (stop_pipe_wr_ >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(stop_pipe_wr_, &byte, 1);
    }
    if (accept_thread_.joinable())
        accept_thread_.join();

    // Kick every connection off its blocking read, then join.
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (const int fd : conn_fds_)
            ::shutdown(fd, SHUT_RDWR);
        conns.swap(conn_threads_);
    }
    for (std::thread &t : conns)
        t.join();

    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        std::error_code ec;
        std::filesystem::remove(opts_.socket_path, ec);
    }
    if (stop_pipe_rd_ >= 0) {
        ::close(stop_pipe_rd_);
        ::close(stop_pipe_wr_);
        stop_pipe_rd_ = stop_pipe_wr_ = -1;
    }
}

void
SweepServer::closeQueue()
{
    queue_.close();
}

bool
SweepServer::queueIdle() const
{
    const JobQueue::Counters c = queue_.counters();
    return c.queued == 0 && c.running == 0;
}

bool
SweepServer::waitQueueIdleFor(unsigned ms) const
{
    // Simple bounded poll (the queue's own drain() is unbounded; the
    // daemon needs to interleave signal checks).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    for (;;) {
        if (queueIdle())
            return true;
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

size_t
SweepServer::discardPendingJobs()
{
    return queue_.discardPending();
}

void
SweepServer::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {};
        fds[0].fd = listen_fd_;
        fds[0].events = POLLIN;
        fds[1].fd = stop_pipe_rd_;
        fds[1].events = POLLIN;
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (stopping_.load(std::memory_order_relaxed) ||
            (fds[1].revents & POLLIN) != 0)
            return;
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0)
            continue;
        std::lock_guard<std::mutex> lock(conn_mu_);
        conn_fds_.push_back(conn);
        conn_threads_.emplace_back([this, conn] { serveConnection(conn); });
    }
}

void
SweepServer::serveConnection(int fd)
{
    LineChannel chan(fd);
    for (;;) {
        const auto line = chan.readLine();
        if (!line)
            break;
        if (line->empty())
            continue;
        if (!chan.writeLine(handleRequest(*line)))
            break;
    }
    ::close(fd);
    // Drop the fd from the live set so stop() never shutdown()s a
    // number the kernel has since reused for a new connection.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
        if (conn_fds_[i] == fd) {
            conn_fds_.erase(conn_fds_.begin() +
                            static_cast<long>(i));
            break;
        }
    }
}

std::string
SweepServer::handleRequest(const std::string &line)
{
    const auto req = parseJson(line);
    if (!req)
        return errorReply("malformed JSON request");
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        ++requests_served_;
    }
    const std::string op = req->getStr("op");
    if (op == "ping") {
        JsonObjectWriter w;
        w.field("ok", true);
        w.field("op", "ping");
        w.field("proto", u64{kProtocolVersion});
        return std::move(w).str();
    }
    if (op == "submit")
        return handleSubmit(*req);
    if (op == "poll")
        return handlePoll(*req);
    if (op == "fetch")
        return handleFetch(*req);
    if (op == "stats") {
        return statsJson();
    }
    if (op == "shutdown") {
        shutdown_op_.store(true, std::memory_order_relaxed);
        JsonObjectWriter w;
        w.field("ok", true);
        w.field("op", "shutdown");
        return std::move(w).str();
    }
    return errorReply("unknown op '" + op + "'");
}

SimDriver &
SweepServer::driverFor(SeqNum max_ops)
{
    std::lock_guard<std::mutex> lock(drivers_mu_);
    auto it = drivers_.find(max_ops);
    if (it == drivers_.end())
        it = drivers_.emplace(max_ops,
                              std::make_unique<SimDriver>(max_ops)).first;
    return *it->second;
}

void
SweepServer::runCorePoint(const std::string &key,
                          const std::string &workload,
                          const CoreConfig &config, SeqNum max_ops)
{
    try {
        // Read-through: the persistent store may already have the
        // point (an earlier daemon run, or an in-process harness
        // sharing the directory).
        if (disk_cache_) {
            if (auto hit = disk_cache_->load(key)) {
                cache_.publish(key, serializeStats(key, *hit));
                return;
            }
        }
        const Trace &tr = driverFor(max_ops).trace(workload);
        OooCore core(config);
        const CoreStats stats = core.run(tr);
        // Publish first (clients unblock), persist behind (the store
        // is atomic-rename, failure only costs a future recompute).
        cache_.publish(key, serializeStats(key, stats));
        if (disk_cache_)
            disk_cache_->store(key, stats);
    } catch (...) {
        cache_.fail(key, std::current_exception());
    }
}

void
SweepServer::runProcPoint(const std::string &key,
                          const std::vector<std::string> &mix,
                          const ProcConfig &config, SeqNum max_ops)
{
    try {
        if (disk_cache_) {
            if (auto hit = disk_cache_->loadProc(key)) {
                cache_.publish(key, serializeProcStats(key, *hit));
                return;
            }
        }
        SimDriver &driver = driverFor(max_ops);
        std::vector<const Trace *> traces;
        traces.reserve(config.num_cores);
        for (unsigned i = 0; i < config.num_cores; ++i)
            traces.push_back(&driver.trace(mix[i % mix.size()]));
        Processor proc(config);
        const ProcStats stats = proc.run(traces);
        cache_.publish(key, serializeProcStats(key, stats));
        if (disk_cache_)
            disk_cache_->storeProc(key, stats);
    } catch (...) {
        cache_.fail(key, std::current_exception());
    }
}

std::string
SweepServer::handleSubmit(const JsonValue &req)
{
    const JsonValue *points = req.get("points");
    if (points == nullptr || points->kind != JsonValue::Kind::Arr ||
        points->arr.empty())
        return errorReply("submit needs a non-empty 'points' array");

    // Cheap pre-check before claiming anything: if the backlog is
    // already hopeless, reject without disturbing the shard cache
    // (the post-claim tryEnqueue below is still authoritative).
    if (queue_.counters().queued + points->arr.size() >
        opts_.queue_capacity) {
        busy_rejections_.fetch_add(1, std::memory_order_relaxed);
        JsonObjectWriter w;
        w.field("ok", false);
        w.field("busy", true);
        w.field("retry_after_ms", u64{opts_.retry_after_ms});
        return std::move(w).str();
    }

    auto ticket = std::make_shared<Ticket>();
    std::vector<std::function<void()>> jobs;
    for (const JsonValue &p : points->arr) {
        const std::string kind = p.getStr("kind", "core");
        const SeqNum max_ops = p.getU64("max_ops");
        const std::string config_text = p.getStr("config");
        if (max_ops == 0)
            return errorReply("point needs a nonzero 'max_ops'");

        if (kind == "core") {
            const std::string workload = p.getStr("workload");
            const auto config = deserializeCoreConfig(config_text);
            if (workload.empty() || !config)
                return errorReply("bad core point (workload/config)");
            const std::string key =
                driverFor(max_ops).runKey(workload, *config);
            auto claim = cache_.lookupOrClaim(key);
            ticket->points.emplace_back(key, claim.future);
            if (claim.claimed) {
                auto guard =
                    std::make_shared<ClaimGuard>(cache_, key);
                jobs.push_back([this, guard, workload,
                                config = *config, max_ops] {
                    runCorePoint(guard->key(), workload, config,
                                 max_ops);
                    guard->complete();
                });
            }
        } else if (kind == "proc") {
            const JsonValue *mix_v = p.get("mix");
            const auto config = deserializeProcConfig(config_text);
            if (mix_v == nullptr ||
                mix_v->kind != JsonValue::Kind::Arr ||
                mix_v->arr.empty() || !config)
                return errorReply("bad proc point (mix/config)");
            std::vector<std::string> mix;
            mix.reserve(mix_v->arr.size());
            for (const JsonValue &m : mix_v->arr) {
                if (m.kind != JsonValue::Kind::Str)
                    return errorReply("proc mix must be strings");
                mix.push_back(m.str);
            }
            const std::string key =
                driverFor(max_ops).procRunKey(mix, *config);
            auto claim = cache_.lookupOrClaim(key);
            ticket->points.emplace_back(key, claim.future);
            if (claim.claimed) {
                auto guard =
                    std::make_shared<ClaimGuard>(cache_, key);
                jobs.push_back([this, guard, mix, config = *config,
                                max_ops] {
                    runProcPoint(guard->key(), mix, config, max_ops);
                    guard->complete();
                });
            }
        } else {
            return errorReply("unknown point kind '" + kind + "'");
        }
    }

    const size_t enqueued = jobs.size();
    if (!queue_.tryEnqueue(std::move(jobs))) {
        // Destroying the rejected closures fails their fresh claims
        // via ClaimGuard, so a later retry re-claims cleanly.
        busy_rejections_.fetch_add(1, std::memory_order_relaxed);
        JsonObjectWriter w;
        w.field("ok", false);
        w.field("busy", true);
        w.field("retry_after_ms", u64{opts_.retry_after_ms});
        return std::move(w).str();
    }

    std::string id;
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        id = "t-" + std::to_string(++next_ticket_);
        points_submitted_ += ticket->points.size();
        tickets_.emplace(id, ticket);
    }
    JsonObjectWriter w;
    w.field("ok", true);
    w.field("ticket", id);
    w.field("points", u64{ticket->points.size()});
    w.field("enqueued", u64{enqueued});
    return std::move(w).str();
}

std::string
SweepServer::handlePoll(const JsonValue &req)
{
    std::shared_ptr<Ticket> ticket;
    const std::string id = req.getStr("ticket");
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        auto it = tickets_.find(id);
        if (it != tickets_.end())
            ticket = it->second;
    }
    if (!ticket)
        return errorReply("unknown ticket '" + id + "'");

    u64 done = 0;
    u64 failed = 0;
    for (const auto &[key, fut] : ticket->points) {
        if (fut.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
            continue;
        try {
            fut.get();
            ++done;
        } catch (...) {
            ++failed;
        }
    }
    JsonObjectWriter w;
    w.field("ok", true);
    w.field("ticket", id);
    w.field("total", u64{ticket->points.size()});
    w.field("done", done);
    w.field("failed", failed);
    return std::move(w).str();
}

std::string
SweepServer::handleFetch(const JsonValue &req)
{
    std::shared_ptr<Ticket> ticket;
    const std::string id = req.getStr("ticket");
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        auto it = tickets_.find(id);
        if (it != tickets_.end()) {
            ticket = it->second;
            tickets_.erase(it); // fetch consumes the ticket
        }
    }
    if (!ticket)
        return errorReply("unknown ticket '" + id + "'");

    std::string results = "[";
    bool first = true;
    for (const auto &[key, fut] : ticket->points) {
        JsonObjectWriter r;
        r.field("key", key);
        try {
            // Blocks until the point completes (fetch is the barrier
            // op; poll first for incremental progress).
            const std::string &payload = fut.get();
            r.field("ok", true);
            r.field("payload", payload);
        } catch (const std::exception &e) {
            r.field("ok", false);
            r.field("error", e.what());
        } catch (...) {
            r.field("ok", false);
            r.field("error", "unknown simulation error");
        }
        if (!first)
            results.push_back(',');
        first = false;
        results += std::move(r).str();
    }
    results.push_back(']');

    JsonObjectWriter w;
    w.field("ok", true);
    w.field("ticket", id);
    w.fieldRaw("results", results);
    return std::move(w).str();
}

std::string
SweepServer::statsJson() const
{
    const ShardedResultCache::Counters c = cache_.counters();
    const JobQueue::Counters q = queue_.counters();
    u64 tickets = 0;
    u64 points = 0;
    u64 requests = 0;
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        tickets = tickets_.size();
        points = points_submitted_;
        requests = requests_served_;
    }
    JsonObjectWriter w;
    w.field("ok", true);
    w.field("op", "stats");
    w.field("proto", u64{kProtocolVersion});
    w.field("shards", u64{cache_.shards()});
    w.field("cache_hits", c.hits);
    w.field("cache_misses", c.misses);
    w.field("cache_evictions", c.evictions);
    w.field("cache_failures", c.failures);
    w.field("cache_entries", c.entries);
    w.field("slots_recycled", c.recycled);
    w.field("slots_harvested", c.harvested);
    w.field("slots_allocated", c.allocated);
    w.field("queue_executed", q.executed);
    w.field("busy_rejections",
            busy_rejections_.load(std::memory_order_relaxed));
    w.field("queue_rejected_batches", q.rejected_batches);
    w.field("queue_discarded", q.discarded);
    w.field("queue_depth", q.queued);
    w.field("queue_peak_depth", q.peak_queued);
    w.field("queue_slots_allocated", q.slots_allocated);
    w.field("queue_slots_recycled", q.slots_recycled);
    w.field("queue_slots_harvested", q.slots_harvested);
    w.field("workers", u64{queue_.workers()});
    w.field("tickets_open", tickets);
    w.field("points_submitted", points);
    w.field("requests_served", requests);
    w.field("disk_cache", disk_cache_.has_value());
    return std::move(w).str();
}

} // namespace redsoc

#include "server/config_codec.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace redsoc {

namespace {

constexpr const char *kCoreMagic = "redsoc-core-config v1";
constexpr const char *kProcMagic = "redsoc-proc-config v1";

void
putStr(std::ostringstream &os, const char *key, const std::string &v)
{
    os << key << '=' << v << '\n';
}

void
putU64(std::ostringstream &os, const char *key, u64 v)
{
    os << key << '=' << v << '\n';
}

void
putBool(std::ostringstream &os, const char *key, bool v)
{
    os << key << '=' << (v ? 1 : 0) << '\n';
}

void
putF64(std::ostringstream &os, const char *key, double v)
{
    char buf[40];
    // Same 17-significant-digit discipline as the run-cache codec:
    // round-trips any IEEE754 double exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << key << '=' << buf << '\n';
}

/** Strict in-order "key=value" line reader (run_cache FieldReader's
 *  sibling, but failure is a soft nullopt at the call site). */
class Reader
{
  public:
    explicit Reader(const std::string &text) : in_(text) {}

    bool expectLine(const char *literal)
    {
        std::string line;
        return !failed_ && std::getline(in_, line) && line == literal;
    }

    std::optional<std::string> str(const char *key)
    {
        std::string line;
        if (failed_ || !std::getline(in_, line)) {
            failed_ = true;
            return std::nullopt;
        }
        const std::string prefix = std::string(key) + "=";
        if (line.compare(0, prefix.size(), prefix) != 0) {
            failed_ = true;
            return std::nullopt;
        }
        return line.substr(prefix.size());
    }

    std::optional<u64> u(const char *key)
    {
        const auto v = str(key);
        if (!v)
            return std::nullopt;
        char *end = nullptr;
        const u64 parsed = std::strtoull(v->c_str(), &end, 10);
        if (end == v->c_str() || *end != '\0') {
            failed_ = true;
            return std::nullopt;
        }
        return parsed;
    }

    std::optional<bool> b(const char *key)
    {
        const auto v = u(key);
        if (!v || *v > 1) {
            failed_ = true;
            return std::nullopt;
        }
        return *v == 1;
    }

    std::optional<double> f(const char *key)
    {
        const auto v = str(key);
        if (!v)
            return std::nullopt;
        char *end = nullptr;
        const double parsed = std::strtod(v->c_str(), &end);
        if (end == v->c_str() || *end != '\0') {
            failed_ = true;
            return std::nullopt;
        }
        return parsed;
    }

    bool failed() const { return failed_; }
    std::istringstream &in() { return in_; }

  private:
    std::istringstream in_;
    bool failed_ = false;
};

std::optional<SchedMode>
parseSchedMode(const std::string &name)
{
    if (name == "baseline")
        return SchedMode::Baseline;
    if (name == "redsoc")
        return SchedMode::ReDSOC;
    if (name == "mos")
        return SchedMode::MOS;
    return std::nullopt;
}

std::optional<RsDesign>
parseRsDesign(const std::string &name)
{
    if (name == "illustrative")
        return RsDesign::Illustrative;
    if (name == "operational")
        return RsDesign::Operational;
    return std::nullopt;
}

std::optional<SchedKernel>
parseSchedKernel(const std::string &name)
{
    if (name == "scan")
        return SchedKernel::Scan;
    if (name == "event")
        return SchedKernel::Event;
    return std::nullopt;
}

void
putCache(std::ostringstream &os, const char *prefix, const CacheConfig &c)
{
    os << prefix << ".name=" << c.name << '\n';
    os << prefix << ".size_bytes=" << c.size_bytes << '\n';
    os << prefix << ".assoc=" << c.assoc << '\n';
    os << prefix << ".line_bytes=" << c.line_bytes << '\n';
}

bool
readCache(Reader &r, const char *prefix, CacheConfig &c)
{
    const std::string p(prefix);
    const auto name = r.str((p + ".name").c_str());
    const auto size = r.u((p + ".size_bytes").c_str());
    const auto assoc = r.u((p + ".assoc").c_str());
    const auto line = r.u((p + ".line_bytes").c_str());
    if (!name || !size || !assoc || !line)
        return false;
    c.name = *name;
    c.size_bytes = *size;
    c.assoc = static_cast<unsigned>(*assoc);
    c.line_bytes = static_cast<unsigned>(*line);
    return true;
}

void
writeCoreBody(std::ostringstream &os, const CoreConfig &c)
{
    putStr(os, "name", c.name);
    putU64(os, "frontend_width", c.frontend_width);
    putU64(os, "commit_width", c.commit_width);
    putU64(os, "rob_entries", c.rob_entries);
    putU64(os, "lsq_entries", c.lsq_entries);
    putU64(os, "rs_entries", c.rs_entries);
    putU64(os, "alu_units", c.alu_units);
    putU64(os, "simd_units", c.simd_units);
    putU64(os, "fp_units", c.fp_units);
    putU64(os, "mem_ports", c.mem_ports);
    putU64(os, "redirect_penalty", c.redirect_penalty);
    putCache(os, "l1", c.memory.l1);
    putCache(os, "l2", c.memory.l2);
    putBool(os, "prefetch", c.memory.prefetch);
    putBool(os, "prefetch_fill_l1", c.memory.prefetch_fill_l1);
    putU64(os, "prefetcher.entries", c.memory.prefetcher.entries);
    putU64(os, "prefetcher.degree", c.memory.prefetcher.degree);
    putU64(os, "prefetcher.min_confidence",
           c.memory.prefetcher.min_confidence);
    putU64(os, "l1_latency", c.memory.l1_latency);
    putU64(os, "l2_latency", c.memory.l2_latency);
    putU64(os, "mem_latency", c.memory.mem_latency);
    putF64(os, "offcore_latency_scale", c.memory.offcore_latency_scale);
    putU64(os, "clock_period_ps", c.timing.clock_period_ps);
    putF64(os, "pvt_derate", c.timing.pvt_derate);
    putU64(os, "branch_pred.table_bits", c.branch_pred.table_bits);
    putU64(os, "branch_pred.ras_entries", c.branch_pred.ras_entries);
    putU64(os, "width_pred.entries", c.width_pred.entries);
    putU64(os, "width_pred.confidence_bits", c.width_pred.confidence_bits);
    putU64(os, "last_arrival.entries", c.last_arrival.entries);
    putStr(os, "mode", schedModeName(c.mode));
    putStr(os, "rs_design", rsDesignName(c.rs_design));
    putStr(os, "sched_kernel", schedKernelName(c.sched_kernel));
    putU64(os, "ci_precision_bits", c.ci_precision_bits);
    putU64(os, "slack_threshold_ticks", c.slack_threshold_ticks);
    putBool(os, "dynamic_threshold", c.dynamic_threshold);
    putU64(os, "threshold_epoch", c.threshold_epoch);
    putU64(os, "no_commit_horizon", c.no_commit_horizon);
    putBool(os, "egpw", c.egpw);
    putBool(os, "skewed_select", c.skewed_select);
}

bool
readCoreBody(Reader &r, CoreConfig &c)
{
    const auto name = r.str("name");
    const auto fw = r.u("frontend_width");
    const auto cw = r.u("commit_width");
    const auto rob = r.u("rob_entries");
    const auto lsq = r.u("lsq_entries");
    const auto rs = r.u("rs_entries");
    const auto alu = r.u("alu_units");
    const auto simd = r.u("simd_units");
    const auto fp = r.u("fp_units");
    const auto memp = r.u("mem_ports");
    const auto redirect = r.u("redirect_penalty");
    if (!name || !redirect)
        return false;
    c.name = *name;
    c.frontend_width = static_cast<unsigned>(*fw);
    c.commit_width = static_cast<unsigned>(*cw);
    c.rob_entries = static_cast<unsigned>(*rob);
    c.lsq_entries = static_cast<unsigned>(*lsq);
    c.rs_entries = static_cast<unsigned>(*rs);
    c.alu_units = static_cast<unsigned>(*alu);
    c.simd_units = static_cast<unsigned>(*simd);
    c.fp_units = static_cast<unsigned>(*fp);
    c.mem_ports = static_cast<unsigned>(*memp);
    c.redirect_penalty = *redirect;
    if (!readCache(r, "l1", c.memory.l1) ||
        !readCache(r, "l2", c.memory.l2))
        return false;
    const auto pf = r.b("prefetch");
    const auto pf_l1 = r.b("prefetch_fill_l1");
    const auto pf_entries = r.u("prefetcher.entries");
    const auto pf_degree = r.u("prefetcher.degree");
    const auto pf_conf = r.u("prefetcher.min_confidence");
    const auto l1_lat = r.u("l1_latency");
    const auto l2_lat = r.u("l2_latency");
    const auto mem_lat = r.u("mem_latency");
    const auto offcore = r.f("offcore_latency_scale");
    const auto period = r.u("clock_period_ps");
    const auto derate = r.f("pvt_derate");
    if (!pf || !offcore || !derate)
        return false;
    c.memory.prefetch = *pf;
    c.memory.prefetch_fill_l1 = *pf_l1;
    c.memory.prefetcher.entries = static_cast<unsigned>(*pf_entries);
    c.memory.prefetcher.degree = static_cast<unsigned>(*pf_degree);
    c.memory.prefetcher.min_confidence = static_cast<unsigned>(*pf_conf);
    c.memory.l1_latency = *l1_lat;
    c.memory.l2_latency = *l2_lat;
    c.memory.mem_latency = *mem_lat;
    c.memory.offcore_latency_scale = *offcore;
    c.timing.clock_period_ps = static_cast<Picos>(*period);
    c.timing.pvt_derate = *derate;
    const auto bp_bits = r.u("branch_pred.table_bits");
    const auto bp_ras = r.u("branch_pred.ras_entries");
    const auto wp_entries = r.u("width_pred.entries");
    const auto wp_conf = r.u("width_pred.confidence_bits");
    const auto la_entries = r.u("last_arrival.entries");
    const auto mode = r.str("mode");
    const auto design = r.str("rs_design");
    const auto kernel = r.str("sched_kernel");
    const auto ci = r.u("ci_precision_bits");
    const auto slack = r.u("slack_threshold_ticks");
    const auto dyn = r.b("dynamic_threshold");
    const auto epoch = r.u("threshold_epoch");
    const auto horizon = r.u("no_commit_horizon");
    const auto egpw = r.b("egpw");
    const auto skew = r.b("skewed_select");
    if (!mode || !design || !kernel || !dyn || !egpw || !skew)
        return false;
    c.branch_pred.table_bits = static_cast<unsigned>(*bp_bits);
    c.branch_pred.ras_entries = static_cast<unsigned>(*bp_ras);
    c.width_pred.entries = static_cast<unsigned>(*wp_entries);
    c.width_pred.confidence_bits = static_cast<unsigned>(*wp_conf);
    c.last_arrival.entries = static_cast<unsigned>(*la_entries);
    const auto parsed_mode = parseSchedMode(*mode);
    const auto parsed_design = parseRsDesign(*design);
    const auto parsed_kernel = parseSchedKernel(*kernel);
    if (!parsed_mode || !parsed_design || !parsed_kernel)
        return false;
    c.mode = *parsed_mode;
    c.rs_design = *parsed_design;
    c.sched_kernel = *parsed_kernel;
    c.ci_precision_bits = static_cast<unsigned>(*ci);
    c.slack_threshold_ticks = *slack;
    c.dynamic_threshold = *dyn;
    c.threshold_epoch = *epoch;
    c.no_commit_horizon = *horizon;
    c.egpw = *egpw;
    c.skewed_select = *skew;
    return !r.failed();
}

} // namespace

std::string
serializeCoreConfig(const CoreConfig &config)
{
    std::ostringstream os;
    os << kCoreMagic << '\n';
    writeCoreBody(os, config);
    return os.str();
}

std::optional<CoreConfig>
deserializeCoreConfig(const std::string &text)
{
    Reader r(text);
    if (!r.expectLine(kCoreMagic))
        return std::nullopt;
    CoreConfig c;
    if (!readCoreBody(r, c))
        return std::nullopt;
    std::string rest;
    if (std::getline(r.in(), rest))
        return std::nullopt; // trailing lines: layout mismatch
    return c;
}

std::string
serializeProcConfig(const ProcConfig &config)
{
    std::ostringstream os;
    os << kProcMagic << '\n';
    putU64(os, "num_cores", config.num_cores);
    putCache(os, "llc", config.llc);
    putU64(os, "dram.banks", config.dram.banks);
    putU64(os, "dram.bank_occupancy", config.dram.bank_occupancy);
    putBool(os, "share_address_space", config.share_address_space);
    writeCoreBody(os, config.core);
    return os.str();
}

std::optional<ProcConfig>
deserializeProcConfig(const std::string &text)
{
    Reader r(text);
    if (!r.expectLine(kProcMagic))
        return std::nullopt;
    ProcConfig c;
    const auto cores = r.u("num_cores");
    if (!cores)
        return std::nullopt;
    c.num_cores = static_cast<unsigned>(*cores);
    if (!readCache(r, "llc", c.llc))
        return std::nullopt;
    const auto banks = r.u("dram.banks");
    const auto occ = r.u("dram.bank_occupancy");
    const auto shared = r.b("share_address_space");
    if (!banks || !occ || !shared)
        return std::nullopt;
    c.dram.banks = static_cast<unsigned>(*banks);
    c.dram.bank_occupancy = static_cast<unsigned>(*occ);
    c.share_address_space = *shared;
    if (!readCoreBody(r, c.core))
        return std::nullopt;
    std::string rest;
    if (std::getline(r.in(), rest))
        return std::nullopt;
    return c;
}

} // namespace redsoc

/**
 * @file
 * Transparent sweep-server offload for SimDriver.
 *
 * When REDSOC_SWEEP_SERVER names a daemon socket, SimDriver routes
 * every cache-missing point here instead of simulating in-process
 * (bench_all --server sets the variable for exactly this effect).
 * The returned stats are bit-identical to a local run — the server
 * replies with the run-cache text serialization — so offload is a
 * pure placement decision.
 *
 * Failure is never fatal: if the daemon is unreachable or any
 * request errors, the offload warns once, disables itself for the
 * rest of the process, and every caller falls back to local
 * simulation. The daemon itself unsets the variable at startup, so a
 * server can never recursively offload to itself.
 */

#ifndef REDSOC_SERVER_OFFLOAD_H
#define REDSOC_SERVER_OFFLOAD_H

#include <optional>
#include <string>
#include <vector>

#include "core/ooo_core.h"
#include "proc/processor.h"

namespace redsoc {

/** Offload one core point; nullopt = simulate locally (offload not
 *  configured, disabled after an error, or this point failed). */
std::optional<CoreStats> serverOffloadRun(const std::string &workload,
                                          const CoreConfig &config,
                                          SeqNum max_ops);

/** Offload one multi-core point. */
std::optional<ProcStats>
serverOffloadRunProc(const std::vector<std::string> &mix,
                     const ProcConfig &config, SeqNum max_ops);

/** Test hook: drop the cached connection + failure latch so a test
 *  can point REDSOC_SWEEP_SERVER somewhere new. */
void resetServerOffloadForTest();

} // namespace redsoc

#endif // REDSOC_SERVER_OFFLOAD_H

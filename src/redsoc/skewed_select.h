/**
 * @file
 * Skewed select arbitration (Sec.IV-D, Fig.9.b). Speculative
 * (grandparent-woken) requests must never beat conventional
 * (parent-woken) requests: each entry's priority mask is rewritten
 * into an "effective mask" —
 *   - conventional entries clear mask bits that point at speculative
 *     entries (only older conventional requests can block them);
 *   - speculative entries additionally set mask bits for *every*
 *     awake conventional entry (even younger ones).
 * Arbitration then proceeds exactly as in the conventional circuit.
 */

#ifndef REDSOC_REDSOC_SKEWED_SELECT_H
#define REDSOC_REDSOC_SKEWED_SELECT_H

#include "core/select_logic.h"

namespace redsoc {

class SkewedSelectArbiter : public SelectArbiter
{
  public:
    explicit SkewedSelectArbiter(unsigned entries);

    /**
     * Arbitrate with the speculative/conventional skew.
     * @param wakeup bit i = entry i requests
     * @param speculative bit i = entry i's request is GP-woken
     * @return granted indices, priority order.
     */
    std::vector<unsigned> arbitrateSkewed(u64 wakeup, u64 speculative,
                                          unsigned max_grants) const;

    /** The per-entry effective mask for given request state
     *  (exposed for the gate-level unit tests of Fig.9). */
    u64 effectiveMask(unsigned idx, u64 wakeup, u64 speculative) const;
};

} // namespace redsoc

#endif // REDSOC_REDSOC_SKEWED_SELECT_H

/**
 * @file
 * Transparent-dataflow bookkeeping (Sec.III). The recycle decision —
 * may a consumer arriving at a clock boundary start mid-cycle at its
 * producer's completion instant? — and the statistics over maximal
 * transparent sequences (Fig.11's expected sequence length).
 */

#ifndef REDSOC_REDSOC_TRANSPARENT_H
#define REDSOC_REDSOC_TRANSPARENT_H

#include <bit>
#include <vector>

#include "common/stats.h"
#include "timing/completion_instant.h"

namespace redsoc {

/**
 * The Sec.IV-C step-10 issue condition: the consumer (arriving at
 * @p arrival_tick) may transparently start at the producer
 * completion @p producer_complete iff the completion falls strictly
 * inside the consumer's arrival cycle and its CI is within the slack
 * threshold.
 */
bool canRecycle(Tick producer_complete, Tick arrival_tick,
                const SubCycleClock &clock, Tick threshold_ticks);

/**
 * Tracks maximal chains of transparently-linked operations. A chain
 * starts at any slack-eligible op that issues from a clock boundary
 * and extends through each consumer that starts at its producer's
 * completion instant. Lengths are sampled when the chain dies (its
 * tail op is never recycled from).
 *
 * Chain records live from issue to commit, so live keys always fall
 * within one ROB window of each other: a power-of-two ring of
 * seq-tagged slots indexes them without hashing (the per-issued-op
 * map operations were a measurable share of ReDSOC-mode runtime).
 * Distinct live seqs can never share a slot when the ring is at
 * least the window, which the constructor guarantees.
 */
class TransparentTracker
{
  public:
    /** @p window: the in-flight bound (ROB entries). */
    explicit TransparentTracker(unsigned window = 256);

    /** Forget all live chains and samples (per-run reset). */
    void reset();

    /** A slack-eligible op issued from a boundary: chain root. */
    void onRoot(SeqNum seq);

    /** @p child transparently started at @p parent's completion. */
    void onExtend(SeqNum parent, SeqNum child);

    /** The op committed: if it is a chain tail, sample the length. */
    void onRetire(SeqNum seq);

    /** Histogram over final sequence lengths (1 = never recycled). */
    const Histogram &lengths() const { return lengths_; }

    /**
     * Fig.11 statistic: expected sequence length experienced by a
     * uniformly chosen operation that is part of a recycled sequence
     * (length >= 2): sum(L^2 * count) / sum(L * count) over L >= 2.
     */
    double expectedRecycledLength() const;

    u64 totalRecycledLinks() const { return links_; }

  private:
    struct Slot
    {
        SeqNum seq = kNoSeq; ///< owner, kNoSeq = free
        u32 length = 1;
        bool extended = false;
    };

    size_t slotOf(SeqNum seq) const
    {
        return static_cast<size_t>(seq) & mask_;
    }
    /** The live slot of @p seq, or nullptr when absent. */
    Slot *find(SeqNum seq);
    /** Take ownership of @p seq's slot (must be free: live keys are
     *  ROB-window-bounded by construction). */
    Slot &claim(SeqNum seq);

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    Histogram lengths_;
    u64 links_ = 0;
};

} // namespace redsoc

#endif // REDSOC_REDSOC_TRANSPARENT_H

#include "redsoc/transparent.h"

#include "common/logging.h"

namespace redsoc {

bool
canRecycle(Tick producer_complete, Tick arrival_tick,
           const SubCycleClock &clock, Tick threshold_ticks)
{
    if (producer_complete <= arrival_tick)
        return false; // producer done by the boundary: normal issue
    if (producer_complete >= arrival_tick + clock.ticksPerCycle())
        return false; // completion not within the consumer's cycle
    return clock.ciOf(producer_complete) <= threshold_ticks;
}

void
TransparentTracker::onRoot(SeqNum seq)
{
    live_.emplace(seq, ChainInfo{});
}

void
TransparentTracker::onExtend(SeqNum parent, SeqNum child)
{
    ++links_;
    u32 parent_len = 1;
    auto it = live_.find(parent);
    if (it != live_.end()) {
        it->second.extended = true;
        parent_len = it->second.length;
    }
    live_[child] = ChainInfo{parent_len + 1, false};
}

void
TransparentTracker::onRetire(SeqNum seq)
{
    auto it = live_.find(seq);
    if (it == live_.end())
        return;
    // Chain tails carry the final sequence length. Note retirement is
    // in program order, so any op that extends this one has already
    // marked it (extension happens at issue, before either commits).
    if (!it->second.extended)
        lengths_.sample(it->second.length);
    live_.erase(it);
}

double
TransparentTracker::expectedRecycledLength() const
{
    double num = 0.0, den = 0.0;
    for (u64 len = 2; len <= lengths_.maxSample(); ++len) {
        const double count = asDouble(lengths_.bucket(len));
        const double dlen = asDouble(len);
        num += dlen * dlen * count;
        den += dlen * count;
    }
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace redsoc

#include "redsoc/transparent.h"

#include "common/logging.h"

namespace redsoc {

bool
canRecycle(Tick producer_complete, Tick arrival_tick,
           const SubCycleClock &clock, Tick threshold_ticks)
{
    if (producer_complete <= arrival_tick)
        return false; // producer done by the boundary: normal issue
    if (producer_complete >= arrival_tick + clock.ticksPerCycle())
        return false; // completion not within the consumer's cycle
    return clock.ciOf(producer_complete) <= threshold_ticks;
}

TransparentTracker::TransparentTracker(unsigned window)
    : lengths_(64)
{
    fatal_if(window == 0, "zero-window transparent tracker");
    const size_t n = std::bit_ceil(static_cast<size_t>(window));
    slots_.resize(n);
    mask_ = n - 1;
}

void
TransparentTracker::reset()
{
    for (Slot &s : slots_)
        s = Slot{};
    lengths_ = Histogram(64);
    links_ = 0;
}

TransparentTracker::Slot *
TransparentTracker::find(SeqNum seq)
{
    Slot &s = slots_[slotOf(seq)];
    return s.seq == seq ? &s : nullptr;
}

TransparentTracker::Slot &
TransparentTracker::claim(SeqNum seq)
{
    Slot &s = slots_[slotOf(seq)];
    // A live occupant would mean two in-flight ops more than a ROB
    // window apart — impossible: records live from issue to commit.
    panic_if(s.seq != kNoSeq && s.seq != seq,
             "transparent-chain ring collision");
    s.seq = seq;
    return s;
}

void
TransparentTracker::onRoot(SeqNum seq)
{
    // Mirrors the map-era emplace: a re-root of an existing live
    // chain record keeps the old record.
    Slot &s = slots_[slotOf(seq)];
    if (s.seq == seq)
        return;
    Slot &c = claim(seq);
    c.length = 1;
    c.extended = false;
}

void
TransparentTracker::onExtend(SeqNum parent, SeqNum child)
{
    ++links_;
    u32 parent_len = 1;
    if (Slot *p = find(parent)) {
        p->extended = true;
        parent_len = p->length;
    }
    Slot &c = claim(child);
    c.length = parent_len + 1;
    c.extended = false;
}

void
TransparentTracker::onRetire(SeqNum seq)
{
    Slot *s = find(seq);
    if (!s)
        return;
    // Chain tails carry the final sequence length. Note retirement is
    // in program order, so any op that extends this one has already
    // marked it (extension happens at issue, before either commits).
    if (!s->extended)
        lengths_.sample(s->length);
    *s = Slot{};
}

double
TransparentTracker::expectedRecycledLength() const
{
    double num = 0.0, den = 0.0;
    for (u64 len = 2; len <= lengths_.maxSample(); ++len) {
        const double count = asDouble(lengths_.bucket(len));
        const double dlen = asDouble(len);
        num += dlen * dlen * count;
        den += dlen * count;
    }
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace redsoc

#include "redsoc/skewed_select.h"

#include "common/logging.h"

namespace redsoc {

SkewedSelectArbiter::SkewedSelectArbiter(unsigned entries)
    : SelectArbiter(entries)
{
}

u64
SkewedSelectArbiter::effectiveMask(unsigned idx, u64 wakeup,
                                   u64 speculative) const
{
    panic_if(idx >= entries_, "mask index out of range");
    const u64 conv_awake = wakeup & ~speculative;
    const bool is_spec = (speculative >> idx) & 1;
    if (is_spec) {
        // Every awake conventional entry outranks me, in addition to
        // older speculative entries.
        return (masks_[idx] | conv_awake) & ~(u64{1} << idx);
    }
    // Conventional request: speculative entries never block me.
    return masks_[idx] & ~speculative;
}

std::vector<unsigned>
SkewedSelectArbiter::arbitrateSkewed(u64 wakeup, u64 speculative,
                                     unsigned max_grants) const
{
    std::vector<unsigned> grants;
    while (grants.size() < max_grants) {
        std::vector<u64> eff(entries_);
        for (unsigned i = 0; i < entries_; ++i)
            eff[i] = effectiveMask(i, wakeup, speculative);
        const int g = grantOne(wakeup, eff);
        if (g < 0)
            break;
        grants.push_back(static_cast<unsigned>(g));
        wakeup &= ~(u64{1} << g);
    }
    return grants;
}

} // namespace redsoc

#include "workloads/mibench.h"

#include "common/logging.h"
#include "isa/builder.h"
#include "workloads/inputs.h"

namespace redsoc {
namespace mibench {

namespace {

constexpr Addr kBitcntTable = 0x8000;

} // namespace

PreparedProgram
buildBitcnt()
{
    // Two bit-counting strategies over narrow-width words, as in the
    // MiBench bitcount benchmark: a shift/mask loop and a nibble
    // lookup table. Mix: almost no memory traffic, dominated by
    // narrow logical/shift/add operations -> very high data slack.
    ProgramBuilder b("bitcnt");

    const RegIdx ptr = x(1), count = x(2), total = x(3), word = x(4),
                 bit = x(5), table = x(6), nib_count = x(7),
                 nib_bits = x(8), res = x(9), tmp = x(12);

    // Pass A: shift/mask loop.
    b.movImm(ptr, kBitcntSrc);
    b.movImm(count, kBitcntWords);
    b.movImm(total, 0);
    auto outer_a = b.newLabel();
    auto inner_a = b.newLabel();
    auto inner_a_done = b.newLabel();
    b.bind(outer_a);
    b.load(Opcode::LDR, word, ptr, 0);
    b.alui(Opcode::ADD, ptr, ptr, 8);
    b.bind(inner_a);
    b.beqz(word, inner_a_done);
    b.alui(Opcode::AND, bit, word, 1);
    b.alu(Opcode::ADD, total, total, bit);
    b.lsrImm(word, word, 1);
    b.b(inner_a);
    b.bind(inner_a_done);
    b.alui(Opcode::SUB, count, count, 1);
    b.bnez(count, outer_a);

    // Pass B: nibble-table lookups over a subset of the words.
    b.movImm(ptr, kBitcntSrc);
    b.movImm(count, kBitcntWords / 8);
    b.movImm(table, kBitcntTable);
    auto outer_b = b.newLabel();
    auto inner_b = b.newLabel();
    b.bind(outer_b);
    b.load(Opcode::LDR, word, ptr, 0);
    b.alui(Opcode::ADD, ptr, ptr, 8);
    b.movImm(nib_count, 16);
    b.bind(inner_b);
    b.alui(Opcode::AND, bit, word, 0xf);
    b.loadIdx(Opcode::LDRB, nib_bits, table, bit, 0);
    b.alu(Opcode::ADD, total, total, nib_bits);
    b.lsrImm(word, word, 4);
    b.alui(Opcode::SUB, nib_count, nib_count, 1);
    b.bnez(nib_count, inner_b);
    b.alui(Opcode::SUB, count, count, 1);
    b.bnez(count, outer_b);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, total, res, 0);
    // Keep tmp referenced so register conventions stay uniform.
    b.movImm(tmp, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program =
        std::make_shared<const Program>(b.build());
    Rng rng(0xb17c47);
    // Half narrow (ML-weight-like), half dense full-width words: the
    // shift/mask loop runs to the highest set bit, so dense words
    // keep the kernel ALU-bound (<5% memory ops, as in Fig.10).
    fillNarrowWords(prepared.memory, kBitcntSrc, kBitcntWords / 2, 48,
                    rng);
    for (unsigned w = kBitcntWords / 2; w < kBitcntWords; ++w)
        prepared.memory.poke64(kBitcntSrc + 8ull * w, rng.next());
    for (unsigned n = 0; n < 16; ++n) {
        prepared.memory.poke8(kBitcntTable + n,
                              static_cast<u8>(__builtin_popcount(n)));
    }
    return prepared;
}

PreparedProgram
buildCrc()
{
    // Bitwise (branchless) reflected CRC-32, polynomial 0xEDB88320,
    // eight unrolled rounds per byte: a long chain of narrow logical
    // and shift operations with one byte load per 40+ ALU ops.
    ProgramBuilder b("crc");

    const RegIdx ptr = x(1), len = x(2), crc = x(3), byte = x(4),
                 mask = x(5), poly = x(6), res = x(9);

    b.movImm(ptr, kCrcSrc);
    b.movImm(len, kCrcLen);
    b.movImm(crc, 0xFFFFFFFF);
    b.movImm(poly, 0xEDB88320);

    auto outer = b.newLabel();
    b.bind(outer);
    b.load(Opcode::LDRB, byte, ptr, 0);
    b.alui(Opcode::ADD, ptr, ptr, 1);
    b.alu(Opcode::EOR, crc, crc, byte);
    for (int round = 0; round < 8; ++round) {
        b.alui(Opcode::AND, mask, crc, 1);
        b.alui(Opcode::RSB, mask, mask, 0); // mask = -(crc & 1)
        b.alu(Opcode::AND, mask, mask, poly);
        b.lsrImm(crc, crc, 1);
        b.alu(Opcode::EOR, crc, crc, mask);
    }
    b.alui(Opcode::SUB, len, len, 1);
    b.bnez(len, outer);

    b.alui(Opcode::EOR, crc, crc, 0xFFFFFFFF);
    b.movImm(res, kResultAddr);
    b.store(Opcode::STRW, crc, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0xc2c32);
    fillRandomBytes(prepared.memory, kCrcSrc, kCrcLen, rng);
    return prepared;
}

PreparedProgram
buildStrsearch()
{
    // Boyer-Moore-Horspool substring count over random text, three
    // sweeps. Two dependent byte loads per window plus skip-table
    // pointer arithmetic: a moderate-memory, branchy mix.
    ProgramBuilder b("strsearch");

    constexpr unsigned m = kStrPatternLen;
    const RegIdx text = x(1), pat = x(3), skip = x(5), pos = x(6),
                 count = x(7), i = x(8), val = x(9), limit = x(15),
                 last_ch = x(10), waddr = x(12), c = x(13),
                 skip_v = x(14), tmp = x(16), j = x(17), taddr = x(18),
                 tc = x(19), pc2 = x(20), diff = x(21), jt = x(22),
                 left = x(23), sweeps = x(24), res = x(25);

    b.movImm(text, kStrText);
    b.movImm(pat, kStrPattern);
    b.movImm(skip, kStrSkipTable);
    b.movImm(count, 0);

    // Build the skip table: default m everywhere...
    b.movImm(i, 0);
    b.movImm(val, m);
    auto fill = b.newLabel();
    b.bind(fill);
    b.storeIdx(Opcode::STRB, val, skip, i, 0);
    b.alui(Opcode::ADD, i, i, 1);
    b.alui(Opcode::SUB, tmp, i, 256);
    b.bnez(tmp, fill);
    // ...then skip[pat[i]] = m-1-i for i in [0, m-2].
    b.movImm(i, 0);
    auto fill2 = b.newLabel();
    b.bind(fill2);
    b.loadIdx(Opcode::LDRB, c, pat, i, 0);
    b.alui(Opcode::RSB, val, i, m - 1);
    b.storeIdx(Opcode::STRB, val, skip, c, 0);
    b.alui(Opcode::ADD, i, i, 1);
    b.alui(Opcode::SUB, tmp, i, m - 1);
    b.bnez(tmp, fill2);

    b.load(Opcode::LDRB, last_ch, pat, m - 1);
    b.movImm(limit, kStrTextLen - m);
    b.movImm(sweeps, 3);

    auto sweep = b.newLabel();
    auto window = b.newLabel();
    auto advance = b.newLabel();
    auto cmp_loop = b.newLabel();
    auto sweep_done = b.newLabel();
    b.bind(sweep);
    b.movImm(pos, 0);
    b.bind(window);
    b.alu(Opcode::ADD, waddr, text, pos);
    b.load(Opcode::LDRB, c, waddr, m - 1);
    b.loadIdx(Opcode::LDRB, skip_v, skip, c, 0);
    b.alu(Opcode::SUB, diff, c, last_ch);
    b.bnez(diff, advance);
    // Candidate window: full byte-by-byte compare.
    b.movImm(j, 0);
    b.bind(cmp_loop);
    b.alu(Opcode::ADD, taddr, waddr, j);
    b.load(Opcode::LDRB, tc, taddr, 0);
    b.loadIdx(Opcode::LDRB, pc2, pat, j, 0);
    b.alu(Opcode::SUB, diff, tc, pc2);
    b.bnez(diff, advance);
    b.alui(Opcode::ADD, j, j, 1);
    b.alui(Opcode::SUB, jt, j, m);
    b.bnez(jt, cmp_loop);
    b.alui(Opcode::ADD, count, count, 1);
    b.bind(advance);
    b.alu(Opcode::ADD, pos, pos, skip_v);
    b.alu(Opcode::SUB, left, limit, pos);
    b.bgez(left, window);
    b.alui(Opcode::SUB, sweeps, sweeps, 1);
    b.bnez(sweeps, sweep);
    b.b(sweep_done);
    b.bind(sweep_done);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, count, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0x57a5e);
    const std::string needle = "needleio";
    static_assert(kStrPatternLen == 8);
    fillText(prepared.memory, kStrText, kStrTextLen, needle, rng);
    for (unsigned k = 0; k < m; ++k)
        prepared.memory.poke8(kStrPattern + k,
                              static_cast<u8>(needle[k]));
    return prepared;
}

const s64 *
gsmCoefficients()
{
    // Q15 short-term filter taps (LPC-flavoured, decaying).
    static const s64 coef[kGsmOrder] = {26214, -13107, 9830, -6554,
                                        4915,  -3277,  1638, -819};
    return coef;
}

PreparedProgram
buildGsm()
{
    // GSM-style fixed-point FIR filtering: per tap a 16-bit sample
    // load, sign extension (shift pair), Q15 multiply (multi-cycle)
    // and accumulation — the multiply-and-shift mix of speech codecs.
    ProgramBuilder b("gsm");

    const RegIdx in = x(1), n = x(2), out = x(3), acc = x(4),
                 smp = x(5), prod = x(6), sum = x(9), res = x(10);
    const s64 *coef = gsmCoefficients();
    // Coefficients live in registers x20..x27 (loaded once).
    for (unsigned k = 0; k < kGsmOrder; ++k)
        b.movImm(x(20 + k), coef[k]);

    b.movImm(in, kGsmSamples);
    b.movImm(out, kGsmOut);
    b.movImm(n, kGsmSampleCount - kGsmOrder);
    b.movImm(sum, 0);

    auto loop = b.newLabel();
    b.bind(loop);
    b.movImm(acc, 0);
    for (unsigned k = 0; k < kGsmOrder; ++k) {
        b.load(Opcode::LDRH, smp, in, 2 * k);
        b.lslImm(smp, smp, 48);
        b.asrImm(smp, smp, 48); // sign-extend the 16-bit sample
        b.mul(prod, smp, x(20 + k));
        b.asrImm(prod, prod, 15);
        b.alu(Opcode::ADD, acc, acc, prod);
    }
    b.store(Opcode::STRW, acc, out, 0);
    b.alui(Opcode::ADD, out, out, 4);
    b.alu(Opcode::ADD, sum, sum, acc);
    b.alui(Opcode::ADD, in, in, 2);
    b.alui(Opcode::SUB, n, n, 1);
    b.bnez(n, loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, sum, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0x95b);
    fillAudio(prepared.memory, kGsmSamples, kGsmSampleCount, rng);
    return prepared;
}

PreparedProgram
buildCorners()
{
    // SUSAN-style corner response: per pixel, compare the 8
    // neighbours against the nucleus with a branchless
    // absolute-difference threshold; pixels whose USAN (similar-
    // neighbour count) is small are corners.
    ProgramBuilder b("corners");

    constexpr unsigned W = kCornersWidth;
    constexpr unsigned H = kCornersHeight;
    const RegIdx base = x(1), y = x(2), xx = x(3), corners = x(4),
                 caddr = x(5), ctr = x(6), nb = x(7), d = x(8),
                 sgn = x(9), usan = x(10), t1 = x(11), res = x(12);
    static_assert((W & (W - 1)) == 0, "W must be a power of two");
    const unsigned wshift = [] {
        unsigned s = 0;
        while ((1u << s) != W)
            ++s;
        return s;
    }();

    const int offs[8] = {-static_cast<int>(W) - 1, -static_cast<int>(W),
                         -static_cast<int>(W) + 1, -1, 1,
                         static_cast<int>(W) - 1, static_cast<int>(W),
                         static_cast<int>(W) + 1};

    b.movImm(base, kCornersImage);
    b.movImm(corners, 0);
    b.movImm(y, 1);

    auto yloop = b.newLabel();
    auto xloop = b.newLabel();
    b.bind(yloop);
    b.movImm(xx, 1);
    b.bind(xloop);
    // caddr = base + (y << wshift) + x
    b.lslImm(caddr, y, static_cast<u8>(wshift));
    b.alu(Opcode::ADD, caddr, caddr, xx);
    b.alu(Opcode::ADD, caddr, caddr, base);
    b.load(Opcode::LDRB, ctr, caddr, 0);
    b.movImm(usan, 0);
    for (int off : offs) {
        b.load(Opcode::LDRB, nb, caddr, off);
        b.alu(Opcode::SUB, d, nb, ctr);
        b.asrImm(sgn, d, 63);
        b.alu(Opcode::EOR, d, d, sgn);
        b.alu(Opcode::SUB, d, d, sgn); // |nb - ctr|
        b.alui(Opcode::SUB, d, d, kCornersThreshold);
        b.lsrImm(d, d, 63); // 1 when |diff| < threshold
        b.alu(Opcode::ADD, usan, usan, d);
    }
    b.alui(Opcode::SUB, t1, usan, kCornersUsanLimit);
    b.lsrImm(t1, t1, 63); // 1 when usan < limit: corner
    b.alu(Opcode::ADD, corners, corners, t1);
    b.alui(Opcode::ADD, xx, xx, 1);
    b.alui(Opcode::SUB, t1, xx, W - 1);
    b.bnez(t1, xloop);
    b.alui(Opcode::ADD, y, y, 1);
    b.alui(Opcode::SUB, t1, y, H - 1);
    b.bnez(t1, yloop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, corners, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0x5a5a7);
    fillImage(prepared.memory, kCornersImage, W, H, rng);
    return prepared;
}

} // namespace mibench
} // namespace redsoc

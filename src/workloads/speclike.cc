#include "workloads/speclike.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "isa/builder.h"
#include "workloads/inputs.h"

namespace redsoc {
namespace speclike {

PreparedProgram
buildXalanc()
{
    // Scattered-BST key lookups: long chains of dependent loads with
    // compare/branch per level — the DOM-traversal flavour of
    // xalancbmk. Half the probe keys hit, half miss.
    ProgramBuilder b("xalanc");

    const RegIdx keys = x(1), ki = x(2), sum = x(3), key = x(4),
                 node = x(5), nkey = x(6), diff = x(7), cmp = x(8),
                 payload = x(9), tmp = x(10), root_slot = x(11),
                 root = x(12), res = x(13);

    b.movImm(keys, kXalKeys);
    b.movImm(root_slot, kXalRootSlot);
    b.load(Opcode::LDR, root, root_slot, 0);
    b.movImm(sum, 0);
    b.movImm(ki, 0);

    auto loop = b.newLabel();
    auto walk = b.newLabel();
    auto goleft = b.newLabel();
    auto found = b.newLabel();
    auto next = b.newLabel();

    b.bind(loop);
    // ARM-style shift-and-add addressing: a low-slack arithmetic op.
    b.aluShifted(Opcode::ADD, tmp, keys, ki, ShiftKind::Lsl, 3);
    b.load(Opcode::LDR, key, tmp, 0);
    b.mov(node, root);
    b.bind(walk);
    b.beqz(node, next); // fell off: miss
    b.load(Opcode::LDR, nkey, node, 0);
    b.alu(Opcode::SUB, diff, nkey, key);
    b.beqz(diff, found);
    b.alu(Opcode::CMP, cmp, key, nkey);
    b.bltz(cmp, goleft);
    b.load(Opcode::LDR, node, node, 16); // right child
    b.b(walk);
    b.bind(goleft);
    b.load(Opcode::LDR, node, node, 8); // left child
    b.b(walk);
    b.bind(found);
    b.load(Opcode::LDR, payload, node, 24);
    b.alu(Opcode::ADD, sum, sum, payload);
    b.bind(next);
    b.alui(Opcode::ADD, ki, ki, 1);
    b.alui(Opcode::SUB, tmp, ki, kXalLookups);
    b.bnez(tmp, loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, sum, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0xa1a);
    const Addr root_addr =
        fillPointerTree(prepared.memory, kXalTreePool, kXalTreePoolBytes,
                        kXalNodes, rng);
    prepared.memory.poke64(kXalRootSlot, root_addr);

    // Probe keys: every even probe replays a key that exists (read it
    // back out of a random tree node), odd probes are random misses.
    Rng probe_rng(0xa1b);
    for (unsigned k = 0; k < kXalLookups; ++k) {
        u64 key_val;
        if (k % 2 == 0) {
            // Re-walk memory for an existing key: sample a node by a
            // random root-to-leaf descent of random depth.
            Addr n = root_addr;
            const unsigned steps =
                static_cast<unsigned>(probe_rng.below(16));
            for (unsigned s = 0; s < steps; ++s) {
                const Addr child = prepared.memory.peek64(
                    n + (probe_rng.chance(0.5) ? 8 : 16));
                if (child == 0)
                    break;
                n = child;
            }
            key_val = prepared.memory.peek64(n);
        } else {
            // Random key from the same 48-bit domain as the tree keys
            // (tree keys are even-ended via >>16; odd values miss but
            // walk a realistic full-depth path).
            key_val = (probe_rng.next() >> 16) | 1;
        }
        prepared.memory.poke64(kXalKeys + 8ull * k, key_val);
    }
    return prepared;
}

PreparedProgram
buildBzip2()
{
    // Move-to-front transform: per input byte a linear scan of the
    // symbol table followed by a shift of everything in front of the
    // hit — the byte-granular table churn at the heart of bzip2.
    ProgramBuilder b("bzip2");

    const RegIdx src = x(1), len = x(2), table = x(3), sum = x(4),
                 c = x(5), j = x(6), tv = x(7), diff = x(8),
                 outp = x(9), i = x(10), prev = x(11), res = x(12);

    b.movImm(src, kBzSrc);
    b.movImm(len, kBzLen);
    b.movImm(table, kBzMtfTable);
    b.movImm(outp, kBzOut);
    b.movImm(sum, 0);

    auto byte_loop = b.newLabel();
    auto find = b.newLabel();
    auto found = b.newLabel();
    auto shift = b.newLabel();
    auto shift_done = b.newLabel();

    b.bind(byte_loop);
    b.load(Opcode::LDRB, c, src, 0);
    b.alui(Opcode::ADD, src, src, 1);
    b.movImm(j, 0);
    b.bind(find);
    b.loadIdx(Opcode::LDRB, tv, table, j, 0);
    b.alu(Opcode::SUB, diff, tv, c);
    b.beqz(diff, found);
    b.alui(Opcode::ADD, j, j, 1);
    b.b(find);
    b.bind(found);
    b.alu(Opcode::ADD, sum, sum, j);
    b.store(Opcode::STRB, j, outp, 0);
    b.alui(Opcode::ADD, outp, outp, 1);
    // Shift table[0..j-1] up one slot (i runs j-1 down to 0).
    b.mov(i, j);
    b.bind(shift);
    b.beqz(i, shift_done);
    b.alui(Opcode::SUB, prev, i, 1);
    b.loadIdx(Opcode::LDRB, tv, table, prev, 0);
    b.storeIdx(Opcode::STRB, tv, table, i, 0);
    b.mov(i, prev);
    b.b(shift);
    b.bind(shift_done);
    b.store(Opcode::STRB, c, table, 0);
    b.alui(Opcode::SUB, len, len, 1);
    b.bnez(len, byte_loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, sum, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0xb21f);
    fillText(prepared.memory, kBzSrc, kBzLen, "", rng);
    for (unsigned s = 0; s < 256; ++s)
        prepared.memory.poke8(kBzMtfTable + s, static_cast<u8>(s));
    return prepared;
}

PreparedProgram
buildOmnetpp()
{
    // Discrete-event simulation: pop the earliest event off a binary
    // min-heap, fold it into a checksum, schedule a successor at an
    // LCG-random future time, repeat — omnetpp's event-queue churn.
    ProgramBuilder b("omnetpp");

    const RegIdx hp = x(1), size = x(2), seed = x(3), chk = x(4),
                 time = x(5), events = x(6), rootv = x(7), cur = x(8),
                 idx = x(9), child = x(10), guard = x(11), cval = x(12),
                 rc = x(13), rval = x(14), cmp = x(15), newkey = x(16),
                 delay = x(17), parent = x(18), pval = x(19),
                 mult = x(20), inc = x(21), res = x(22), achild = x(23),
                 aidx = x(24);

    b.movImm(hp, kOmHeap);
    b.movImm(size, kOmInitialEvents);
    b.movImm(seed, kOmSeed);
    b.movImm(chk, 0);
    b.movImm(events, kOmEventCount);
    b.movImm(mult, static_cast<s64>(kOmLcgMult));
    b.movImm(inc, static_cast<s64>(kOmLcgInc));

    auto pop = b.newLabel();
    auto sift = b.newLabel();
    auto skip_right = b.newLabel();
    auto sift_done = b.newLabel();
    auto up = b.newLabel();
    auto up_done = b.newLabel();

    b.bind(pop);
    // Pop the minimum.
    b.load(Opcode::LDR, rootv, hp, 0);
    b.alu(Opcode::EOR, chk, chk, rootv);
    b.lsrImm(time, rootv, 16);
    b.alui(Opcode::SUB, size, size, 1);
    // Shift-and-add addressing (ARM op2): low-slack arithmetic.
    b.aluShifted(Opcode::ADD, aidx, hp, size, ShiftKind::Lsl, 3);
    b.load(Opcode::LDR, cur, aidx, 0);
    b.store(Opcode::STR, cur, hp, 0);
    b.movImm(idx, 0);
    // Sift down: `cur` always lives at heap[idx].
    b.bind(sift);
    b.lslImm(child, idx, 1);
    b.alui(Opcode::ADD, child, child, 1);
    b.alu(Opcode::SUB, guard, child, size);
    b.bgez(guard, sift_done);
    b.loadIdx(Opcode::LDR, cval, hp, child, 3);
    b.alui(Opcode::ADD, rc, child, 1);
    b.alu(Opcode::SUB, guard, rc, size);
    b.bgez(guard, skip_right);
    b.loadIdx(Opcode::LDR, rval, hp, rc, 3);
    b.alu(Opcode::CMP, cmp, rval, cval);
    b.bgez(cmp, skip_right);
    b.mov(child, rc);
    b.mov(cval, rval);
    b.bind(skip_right);
    b.alu(Opcode::CMP, cmp, cur, cval);
    b.blez(cmp, sift_done);
    b.aluShifted(Opcode::ADD, aidx, hp, idx, ShiftKind::Lsl, 3);
    b.aluShifted(Opcode::ADD, achild, hp, child, ShiftKind::Lsl, 3);
    b.store(Opcode::STR, cval, aidx, 0);
    b.store(Opcode::STR, cur, achild, 0);
    b.mov(idx, child);
    b.b(sift);
    b.bind(sift_done);

    // Schedule a successor event.
    b.alu(Opcode::MUL, seed, seed, mult);
    b.alu(Opcode::ADD, seed, seed, inc);
    b.lsrImm(delay, seed, 33);
    b.alui(Opcode::AND, delay, delay, 0xFFFF);
    b.alu(Opcode::ADD, newkey, time, delay);
    b.lslImm(newkey, newkey, 16);
    b.alui(Opcode::AND, cmp, events, 0xFF);
    b.alu(Opcode::ORR, newkey, newkey, cmp);
    b.storeIdx(Opcode::STR, newkey, hp, size, 3);
    b.mov(idx, size);
    b.alui(Opcode::ADD, size, size, 1);
    // Sift up: `newkey` lives at heap[idx].
    b.bind(up);
    b.beqz(idx, up_done);
    b.alui(Opcode::SUB, parent, idx, 1);
    b.lsrImm(parent, parent, 1);
    b.loadIdx(Opcode::LDR, pval, hp, parent, 3);
    b.alu(Opcode::CMP, cmp, pval, newkey);
    b.blez(cmp, up_done);
    b.aluShifted(Opcode::ADD, aidx, hp, idx, ShiftKind::Lsl, 3);
    b.aluShifted(Opcode::ADD, achild, hp, parent, ShiftKind::Lsl, 3);
    b.store(Opcode::STR, pval, aidx, 0);
    b.store(Opcode::STR, newkey, achild, 0);
    b.mov(idx, parent);
    b.b(up);
    b.bind(up_done);

    b.alui(Opcode::SUB, events, events, 1);
    b.bnez(events, pop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, chk, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    // A valid initial min-heap of events (sorted keys are a heap).
    Rng rng(0x03e7);
    std::vector<u64> keys;
    for (unsigned i = 0; i < kOmInitialEvents; ++i)
        keys.push_back(((rng.below(1 << 14)) << 16) | i);
    std::sort(keys.begin(), keys.end());
    for (unsigned i = 0; i < kOmInitialEvents; ++i)
        prepared.memory.poke64(kOmHeap + 8ull * i, keys[i]);
    return prepared;
}

PreparedProgram
buildGromacs()
{
    // Pairwise force kernel over a precomputed neighbour list: load
    // two particle positions, form the squared distance, evaluate a
    // polynomial force and scatter-accumulate — gromacs' non-bonded
    // inner loop in miniature (FP-dominated).
    ProgramBuilder b("gromacs");

    const RegIdx pp = x(1), pairs = x(2), pos = x(3), frc = x(4),
                 pi = x(5), pj = x(6), ai = x(7), aj = x(8), tmp = x(9),
                 xi = x(10), yi = x(11), zi = x(12), xj = x(13),
                 yj = x(14), zj = x(15), dx = x(16), dy = x(17),
                 dz = x(18), r2 = x(19), t2 = x(20), f = x(21),
                 c1 = x(22), c2 = x(23), facc = x(24), res = x(25);

    b.movImm(pp, kGroPairs);
    b.movImm(pairs, kGroPairCount);
    b.movImm(pos, kGroPos);
    b.movImm(frc, kGroForce);
    b.fmovImm(c1, kGroC1);
    b.fmovImm(c2, kGroC2);

    auto loop = b.newLabel();
    b.bind(loop);
    b.load(Opcode::LDRW, pi, pp, 0);
    b.load(Opcode::LDRW, pj, pp, 4);
    b.alui(Opcode::ADD, pp, pp, 8);
    // ai = pos + pi*24  (24 = 16 + 8)
    b.lslImm(ai, pi, 4);
    b.aluShifted(Opcode::ADD, ai, ai, pi, ShiftKind::Lsl, 3);
    b.alu(Opcode::ADD, ai, ai, pos);
    b.lslImm(aj, pj, 4);
    b.aluShifted(Opcode::ADD, aj, aj, pj, ShiftKind::Lsl, 3);
    b.alu(Opcode::ADD, aj, aj, pos);
    b.load(Opcode::LDR, xi, ai, 0);
    b.load(Opcode::LDR, yi, ai, 8);
    b.load(Opcode::LDR, zi, ai, 16);
    b.load(Opcode::LDR, xj, aj, 0);
    b.load(Opcode::LDR, yj, aj, 8);
    b.load(Opcode::LDR, zj, aj, 16);
    b.fop(Opcode::FSUB, dx, xi, xj);
    b.fop(Opcode::FSUB, dy, yi, yj);
    b.fop(Opcode::FSUB, dz, zi, zj);
    b.fop(Opcode::FMUL, r2, dx, dx);
    b.fop(Opcode::FMUL, t2, dy, dy);
    b.fop(Opcode::FADD, r2, r2, t2);
    b.fop(Opcode::FMUL, t2, dz, dz);
    b.fop(Opcode::FADD, r2, r2, t2);
    b.fop(Opcode::FMUL, f, r2, c1);
    b.fop(Opcode::FADD, f, f, c2);
    // Scatter-accumulate force on particle i: ai' = frc + pi*24.
    b.lslImm(ai, pi, 4);
    b.aluShifted(Opcode::ADD, ai, ai, pi, ShiftKind::Lsl, 3);
    b.alu(Opcode::ADD, ai, ai, frc);
    for (unsigned comp = 0; comp < 3; ++comp) {
        const RegIdx d = comp == 0 ? dx : (comp == 1 ? dy : dz);
        b.load(Opcode::LDR, facc, ai, 8 * comp);
        b.fop(Opcode::FMUL, tmp, f, d);
        b.fop(Opcode::FADD, facc, facc, tmp);
        b.store(Opcode::STR, facc, ai, 8 * comp);
    }
    b.alui(Opcode::SUB, pairs, pairs, 1);
    b.bnez(pairs, loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, pairs, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0x960);
    fillDoubles(prepared.memory, kGroPos, 3ull * kGroParticles, 10.0,
                rng);
    for (unsigned p = 0; p < kGroPairCount; ++p) {
        const u32 i = static_cast<u32>(rng.below(kGroParticles));
        u32 j = static_cast<u32>(rng.below(kGroParticles));
        if (j == i)
            j = (j + 1) % kGroParticles;
        prepared.memory.poke32(kGroPairs + 8ull * p, i);
        prepared.memory.poke32(kGroPairs + 8ull * p + 4, j);
    }
    return prepared;
}

PreparedProgram
buildSoplex()
{
    // CSR sparse matrix-vector product with a wide gather vector:
    // index loads, value loads, x-gathers that miss L1, FMUL/FADD —
    // soplex's pricing/ratio-test arithmetic in miniature.
    ProgramBuilder b("soplex");

    const RegIdx rp = x(1), rows = x(2), ci = x(3), vx = x(4),
                 xb = x(5), yb = x(6), s = x(7), e = x(8), facc = x(9),
                 col = x(10), val = x(11), xv = x(12), prod = x(13),
                 k = x(14), tmp = x(15), row = x(16), res = x(17),
                 av = x(18), ax = x(19);

    b.movImm(rp, kSoRowPtr);
    b.movImm(rows, kSoRows);
    b.movImm(ci, kSoColIdx);
    b.movImm(vx, kSoValues);
    b.movImm(xb, kSoX);
    b.movImm(yb, kSoY);
    b.movImm(row, 0);

    auto row_loop = b.newLabel();
    auto inner = b.newLabel();
    auto row_done = b.newLabel();

    b.bind(row_loop);
    b.load(Opcode::LDRW, s, rp, 0);
    b.load(Opcode::LDRW, e, rp, 4);
    b.alui(Opcode::ADD, rp, rp, 4);
    b.movImm(facc, 0); // +0.0 bit pattern
    b.mov(k, s);
    b.bind(inner);
    b.alu(Opcode::SUB, tmp, k, e);
    b.beqz(tmp, row_done);
    b.loadIdx(Opcode::LDRW, col, ci, k, 2);
    // Shift-and-add gather addressing, as ARM codegen emits it.
    b.aluShifted(Opcode::ADD, av, vx, k, ShiftKind::Lsl, 3);
    b.load(Opcode::LDR, val, av, 0);
    b.aluShifted(Opcode::ADD, ax, xb, col, ShiftKind::Lsl, 3);
    b.load(Opcode::LDR, xv, ax, 0);
    b.fop(Opcode::FMUL, prod, val, xv);
    b.fop(Opcode::FADD, facc, facc, prod);
    b.alui(Opcode::ADD, k, k, 1);
    b.b(inner);
    b.bind(row_done);
    b.storeIdx(Opcode::STR, facc, yb, row, 3);
    b.alui(Opcode::ADD, row, row, 1);
    b.alui(Opcode::SUB, tmp, row, kSoRows);
    b.bnez(tmp, row_loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, row, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0x509);
    fillCsrMatrix(prepared.memory, kSoRowPtr, kSoColIdx, kSoValues,
                  kSoRows, kSoCols, kSoNnzPerRow, rng);
    fillDoubles(prepared.memory, kSoX, kSoCols, 1.0, rng);
    return prepared;
}

} // namespace speclike
} // namespace redsoc

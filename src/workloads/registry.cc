#include "workloads/registry.h"

#include "common/logging.h"
#include "func/interpreter.h"
#include "workloads/mibench.h"
#include "workloads/ml_kernels.h"
#include "workloads/speclike.h"

namespace redsoc {

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Spec: return "SPEC";
      case Suite::MiBench: return "MiBench";
      case Suite::Ml: return "ML";
      default: panic("bad suite");
    }
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        {"xalanc", Suite::Spec,
         "scattered-BST lookups (DOM traversal flavour)",
         speclike::buildXalanc},
        {"bzip2", Suite::Spec, "move-to-front transform",
         speclike::buildBzip2},
        {"omnetpp", Suite::Spec, "binary-heap discrete-event loop",
         speclike::buildOmnetpp},
        {"gromacs", Suite::Spec, "pairwise particle forces (FP)",
         speclike::buildGromacs},
        {"soplex", Suite::Spec, "CSR sparse matrix-vector (FP gather)",
         speclike::buildSoplex},
        {"corners", Suite::MiBench, "SUSAN-style corner detection",
         mibench::buildCorners},
        {"strsearch", Suite::MiBench, "Boyer-Moore-Horspool search",
         mibench::buildStrsearch},
        {"gsm", Suite::MiBench, "fixed-point FIR filtering",
         mibench::buildGsm},
        {"crc", Suite::MiBench, "bitwise CRC-32", mibench::buildCrc},
        {"bitcnt", Suite::MiBench, "bit counting (two strategies)",
         mibench::buildBitcnt},
        {"act", Suite::Ml, "ReLU activation (streaming SIMD)",
         ml::buildAct},
        {"pool0", Suite::Ml, "2x2 max pooling", ml::buildPool0},
        {"conv", Suite::Ml, "3x3 Gaussian convolution (VMLA)",
         ml::buildConv},
        {"pool1", Suite::Ml, "2x2 average pooling", ml::buildPool1},
        {"softmax", Suite::Ml, "fixed-point softmax", ml::buildSoftmax},
    };
    return workloads;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '", name, "'");
}

std::vector<std::string>
workloadNames(Suite suite)
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.suite == suite)
            names.push_back(w.name);
    return names;
}

Trace
traceWorkload(const std::string &name, SeqNum max_ops)
{
    PreparedProgram prepared = workloadByName(name).build();
    Interpreter interp(prepared.program, prepared.memory);
    Trace trace = interp.run(max_ops);
    fatal_if(!interp.halted(),
             "workload '", name, "' did not halt within ", max_ops,
             " ops");
    return trace;
}

} // namespace redsoc

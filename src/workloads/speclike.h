/**
 * @file
 * SPEC CPU2006-like mini-kernels. We cannot ship or run SPEC, so
 * each benchmark is represented by a compact kernel implementing the
 * application's characteristic inner computation (see DESIGN.md §1):
 *
 *  - xalanc:  pointer-chasing searches over a scattered binary tree
 *             (XML DOM traversal flavour; dependent loads, L1 misses)
 *  - bzip2:   move-to-front transform over text (table scans/shifts)
 *  - omnetpp: binary-heap discrete-event simulation loop
 *  - gromacs: pairwise particle force computation (FP heavy)
 *  - soplex:  CSR sparse matrix-vector product (gather + FP)
 */

#ifndef REDSOC_WORKLOADS_SPECLIKE_H
#define REDSOC_WORKLOADS_SPECLIKE_H

#include "workloads/prepared.h"

namespace redsoc {
namespace speclike {

inline constexpr Addr kResultAddr = 0x9000;

// --- xalanc ----------------------------------------------------------
inline constexpr Addr kXalTreePool = 0x100000;
inline constexpr u64 kXalTreePoolBytes = 24ull * 1024 * 1024;
inline constexpr Addr kXalKeys = 0x40000;
inline constexpr Addr kXalRootSlot = 0x8f00;
inline constexpr unsigned kXalNodes = 16384;
inline constexpr unsigned kXalLookups = 1000;
PreparedProgram buildXalanc();

// --- bzip2 -----------------------------------------------------------
inline constexpr Addr kBzSrc = 0x10000;
inline constexpr Addr kBzMtfTable = 0x8000;
inline constexpr Addr kBzOut = 0x60000;
inline constexpr unsigned kBzLen = 750;
PreparedProgram buildBzip2();

// --- omnetpp ---------------------------------------------------------
inline constexpr Addr kOmHeap = 0x10000;
inline constexpr unsigned kOmInitialEvents = 64;
inline constexpr unsigned kOmEventCount = 1200;
inline constexpr u64 kOmLcgMult = 6364136223846793005ull;
inline constexpr u64 kOmLcgInc = 1442695040888963407ull;
inline constexpr u64 kOmSeed = 0x123456789abcdefull;
PreparedProgram buildOmnetpp();

// --- gromacs ---------------------------------------------------------
inline constexpr Addr kGroPos = 0x20000;   ///< N x {x,y,z} doubles
inline constexpr Addr kGroForce = 0x80000; ///< N x {x,y,z} doubles
inline constexpr Addr kGroPairs = 0x40000; ///< M x {i,j} u32
inline constexpr unsigned kGroParticles = 512;
inline constexpr unsigned kGroPairCount = 2400;
inline constexpr double kGroC1 = 0.25;
inline constexpr double kGroC2 = -0.125;
PreparedProgram buildGromacs();

// --- soplex ----------------------------------------------------------
inline constexpr Addr kSoRowPtr = 0x10000;
inline constexpr Addr kSoColIdx = 0x20000;
inline constexpr Addr kSoValues = 0x80000;
inline constexpr Addr kSoX = 0x200000;
inline constexpr Addr kSoY = 0x400000;
inline constexpr unsigned kSoRows = 500;
inline constexpr unsigned kSoCols = 16384;
inline constexpr unsigned kSoNnzPerRow = 16;
PreparedProgram buildSoplex();

} // namespace speclike
} // namespace redsoc

#endif // REDSOC_WORKLOADS_SPECLIKE_H

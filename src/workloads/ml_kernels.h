/**
 * @file
 * Machine-learning kernels with NEON-style SIMD (Table II): 3x3
 * Gaussian convolution, ReLU activation, 2x2 max/average pooling and
 * softmax, written against the µISA's 128-bit vector unit with
 * 16-bit fixed-point feature maps (the limited-precision arithmetic
 * whose Type-Slack the paper targets).
 */

#ifndef REDSOC_WORKLOADS_ML_KERNELS_H
#define REDSOC_WORKLOADS_ML_KERNELS_H

#include "workloads/prepared.h"

namespace redsoc {
namespace ml {

inline constexpr Addr kResultAddr = 0x9000;

// --- conv: 3x3 Gaussian (1 2 1 / 2 4 2 / 1 2 1) >> 4 on u16 pixels --
inline constexpr Addr kConvIn = 0x20000;
inline constexpr Addr kConvOut = 0x80000;
inline constexpr unsigned kConvWidth = 128;  ///< u16 pixels per row
inline constexpr unsigned kConvHeight = 48;
PreparedProgram buildConv();

// --- act: ReLU over a large s16 feature map (streaming) -------------
inline constexpr Addr kActIn = 0x100000;
inline constexpr Addr kActOut = 0x400000;
inline constexpr unsigned kActCount = 48 * 1024; ///< s16 elements
PreparedProgram buildAct();

// --- pool0 / pool1: 2x2 max / average pooling on u16 maps -----------
inline constexpr Addr kPoolIn = 0x20000;
inline constexpr Addr kPoolTmp = 0x60000;
inline constexpr Addr kPoolOut = 0x80000;
inline constexpr unsigned kPoolWidth = 128; ///< u16 pixels per row
inline constexpr unsigned kPoolHeight = 48;
PreparedProgram buildPool0(); ///< max
PreparedProgram buildPool1(); ///< average

// --- softmax: fixed-point softmax over s16 logit vectors ------------
inline constexpr Addr kSoftIn = 0x20000;
inline constexpr Addr kSoftExp = 0x40000;  ///< u32 exp values
inline constexpr Addr kSoftOut = 0x60000;  ///< u16 Q15 probabilities
inline constexpr Addr kSoftLut = 0x8000;   ///< 33 x u32 exp2 table
inline constexpr unsigned kSoftLen = 512;
inline constexpr unsigned kSoftBatches = 5;
PreparedProgram buildSoftmax();

} // namespace ml
} // namespace redsoc

#endif // REDSOC_WORKLOADS_ML_KERNELS_H

/**
 * @file
 * Deterministic input-data generators for the workload suite. All
 * inputs are seeded, so every simulation is bit-reproducible.
 */

#ifndef REDSOC_WORKLOADS_INPUTS_H
#define REDSOC_WORKLOADS_INPUTS_H

#include "common/rng.h"
#include "func/memory_image.h"

namespace redsoc {

/** Uniform random bytes. */
void fillRandomBytes(MemoryImage &mem, Addr addr, u64 count, Rng &rng);

/** 64-bit words with geometrically-biased narrow effective widths
 *  (ML-weight-like operand distributions). */
void fillNarrowWords(MemoryImage &mem, Addr addr, u64 count,
                     unsigned max_width, Rng &rng);

/** Lowercase text with occurrences of @p needle sprinkled in. */
void fillText(MemoryImage &mem, Addr addr, u64 count,
              const std::string &needle, Rng &rng);

/** Smooth 8-bit image (random-walk luminance), row-major w x h. */
void fillImage(MemoryImage &mem, Addr addr, unsigned width,
               unsigned height, Rng &rng);

/** Signed 16-bit audio-like samples (bounded random walk). */
void fillAudio(MemoryImage &mem, Addr addr, u64 count, Rng &rng);

/** IEEE doubles uniform in [-scale, scale). */
void fillDoubles(MemoryImage &mem, Addr addr, u64 count, double scale,
                 Rng &rng);

/**
 * CSR sparse matrix with ~nnz_per_row entries per row:
 *  row_ptr:  (rows+1) x u32  at @p row_ptr_addr
 *  col_idx:  nnz x u32       at @p col_idx_addr
 *  values:   nnz x f64       at @p values_addr
 * @return total nonzeros.
 */
u64 fillCsrMatrix(MemoryImage &mem, Addr row_ptr_addr, Addr col_idx_addr,
                  Addr values_addr, unsigned rows, unsigned cols,
                  unsigned nnz_per_row, Rng &rng);

/**
 * A binary search tree laid out as scattered 32-byte nodes:
 *  node = { u64 key, u64 left_addr, u64 right_addr, u64 payload }
 * Nodes are placed at pseudo-random addresses within
 * [pool_addr, pool_addr + pool_bytes) to defeat spatial locality.
 * @return the root node address.
 */
Addr fillPointerTree(MemoryImage &mem, Addr pool_addr, u64 pool_bytes,
                     unsigned node_count, Rng &rng);

} // namespace redsoc

#endif // REDSOC_WORKLOADS_INPUTS_H

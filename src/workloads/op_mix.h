/**
 * @file
 * Benchmark operation-characteristic analysis (Fig.10): classify a
 * trace's dynamic operations into high/low-latency memory, SIMD,
 * other multi-cycle, and high/low-slack single-cycle ALU fractions.
 */

#ifndef REDSOC_WORKLOADS_OP_MIX_H
#define REDSOC_WORKLOADS_OP_MIX_H

#include "func/trace.h"
#include "mem/hierarchy.h"
#include "timing/timing_model.h"

namespace redsoc {

struct OpMix
{
    double mem_hl = 0;      ///< memory ops missing L1 (high latency)
    double mem_ll = 0;      ///< memory ops hitting L1
    double simd = 0;        ///< SIMD compute ops
    double other_multi = 0; ///< multi-cycle scalar (mul/div/FP)
    double alu_hs = 0;      ///< single-cycle ALU, slack > 20% of cycle
    double alu_ls = 0;      ///< single-cycle ALU, low slack

    double total() const
    {
        return mem_hl + mem_ll + simd + other_multi + alu_hs + alu_ls;
    }
};

/**
 * Compute the Fig.10 distribution for a trace. Memory latency class
 * comes from replaying the access stream through a fresh cache
 * hierarchy; slack class from the timing model at the paper's
 * high-slack cutoff (data slack greater than 20% of the cycle).
 */
OpMix computeOpMix(const Trace &trace, const TimingModel &timing,
                   const HierarchyConfig &mem_config = {});

} // namespace redsoc

#endif // REDSOC_WORKLOADS_OP_MIX_H

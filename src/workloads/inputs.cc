#include "workloads/inputs.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace redsoc {

void
fillRandomBytes(MemoryImage &mem, Addr addr, u64 count, Rng &rng)
{
    for (u64 i = 0; i < count; ++i)
        mem.poke8(addr + i, static_cast<u8>(rng.next()));
}

void
fillNarrowWords(MemoryImage &mem, Addr addr, u64 count,
                unsigned max_width, Rng &rng)
{
    for (u64 i = 0; i < count; ++i)
        mem.poke64(addr + 8 * i, rng.narrowValue(max_width));
}

void
fillText(MemoryImage &mem, Addr addr, u64 count,
         const std::string &needle, Rng &rng)
{
    for (u64 i = 0; i < count; ++i) {
        const char c = static_cast<char>('a' + rng.below(26));
        mem.poke8(addr + i, static_cast<u8>(c));
    }
    // Sprinkle the needle in a handful of places so searches hit.
    if (!needle.empty() && count > needle.size() * 4) {
        const u64 copies = std::max<u64>(2, count / 4096);
        for (u64 k = 0; k < copies; ++k) {
            const u64 pos = rng.below(count - needle.size());
            for (size_t j = 0; j < needle.size(); ++j)
                mem.poke8(addr + pos + j, static_cast<u8>(needle[j]));
        }
    }
}

void
fillImage(MemoryImage &mem, Addr addr, unsigned width, unsigned height,
          Rng &rng)
{
    int lum = 128;
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            lum += static_cast<int>(rng.below(11)) - 5;
            lum = std::clamp(lum, 0, 255);
            mem.poke8(addr + u64{y} * width + x, static_cast<u8>(lum));
        }
    }
}

void
fillAudio(MemoryImage &mem, Addr addr, u64 count, Rng &rng)
{
    int sample = 0;
    for (u64 i = 0; i < count; ++i) {
        sample += static_cast<int>(rng.below(1025)) - 512;
        sample = std::clamp(sample, -30000, 30000);
        mem.poke16(addr + 2 * i, static_cast<u16>(static_cast<s16>(sample)));
    }
}

void
fillDoubles(MemoryImage &mem, Addr addr, u64 count, double scale, Rng &rng)
{
    for (u64 i = 0; i < count; ++i)
        mem.pokeF64(addr + 8 * i, (rng.uniform() * 2.0 - 1.0) * scale);
}

u64
fillCsrMatrix(MemoryImage &mem, Addr row_ptr_addr, Addr col_idx_addr,
              Addr values_addr, unsigned rows, unsigned cols,
              unsigned nnz_per_row, Rng &rng)
{
    u64 nnz = 0;
    for (unsigned r = 0; r < rows; ++r) {
        mem.poke32(row_ptr_addr + 4ull * r, static_cast<u32>(nnz));
        // Sorted distinct column picks per row.
        std::vector<u32> picks;
        for (unsigned k = 0; k < nnz_per_row; ++k)
            picks.push_back(static_cast<u32>(rng.below(cols)));
        std::sort(picks.begin(), picks.end());
        picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
        for (u32 c : picks) {
            mem.poke32(col_idx_addr + 4 * nnz, c);
            mem.pokeF64(values_addr + 8 * nnz,
                        rng.uniform() * 2.0 - 1.0);
            ++nnz;
        }
    }
    mem.poke32(row_ptr_addr + 4ull * rows, static_cast<u32>(nnz));
    return nnz;
}

Addr
fillPointerTree(MemoryImage &mem, Addr pool_addr, u64 pool_bytes,
                unsigned node_count, Rng &rng)
{
    fatal_if(u64{node_count} * 32 > pool_bytes,
             "tree pool too small for ", node_count, " nodes");

    // Scatter node slots across the pool; slots must be distinct or
    // overlapping nodes would corrupt the tree.
    const u64 slots = pool_bytes / 32;
    std::vector<u64> slot_of(node_count);
    std::unordered_set<u64> used;
    for (unsigned i = 0; i < node_count; ++i) {
        u64 slot;
        do {
            slot = rng.below(slots);
        } while (!used.insert(slot).second);
        slot_of[i] = slot;
    }

    auto node_addr = [&](unsigned i) { return pool_addr + slot_of[i] * 32; };

    // Insert keys in random order into a BST built over node indices.
    std::vector<u64> keys(node_count);
    for (unsigned i = 0; i < node_count; ++i)
        keys[i] = rng.next() >> 16;

    struct Node { u64 key; int left = -1; int right = -1; };
    std::vector<Node> tree;
    tree.reserve(node_count);
    tree.push_back(Node{keys[0]});
    for (unsigned i = 1; i < node_count; ++i) {
        int cur = 0;
        for (;;) {
            if (keys[i] < tree[cur].key) {
                if (tree[cur].left < 0) {
                    tree[cur].left = static_cast<int>(tree.size());
                    break;
                }
                cur = tree[cur].left;
            } else {
                if (tree[cur].right < 0) {
                    tree[cur].right = static_cast<int>(tree.size());
                    break;
                }
                cur = tree[cur].right;
            }
        }
        tree.push_back(Node{keys[i]});
    }

    for (unsigned i = 0; i < node_count; ++i) {
        const Addr a = node_addr(i);
        mem.poke64(a + 0, tree[i].key);
        mem.poke64(a + 8, tree[i].left < 0 ? 0 : node_addr(tree[i].left));
        mem.poke64(a + 16,
                   tree[i].right < 0 ? 0 : node_addr(tree[i].right));
        mem.poke64(a + 24, tree[i].key ^ 0x5a5a5a5aULL);
    }
    return node_addr(0);
}

} // namespace redsoc

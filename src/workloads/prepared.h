/**
 * @file
 * A workload ready to execute: the µISA program plus its prepared
 * memory image (inputs loaded, working areas reserved).
 */

#ifndef REDSOC_WORKLOADS_PREPARED_H
#define REDSOC_WORKLOADS_PREPARED_H

#include <memory>

#include "func/memory_image.h"
#include "isa/program.h"

namespace redsoc {

struct PreparedProgram
{
    std::shared_ptr<const Program> program;
    MemoryImage memory;
};

} // namespace redsoc

#endif // REDSOC_WORKLOADS_PREPARED_H

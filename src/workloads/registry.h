/**
 * @file
 * The workload registry: every benchmark of Sec.V (Table II and the
 * SPEC/MiBench selections of Fig.10) by name and suite, with helpers
 * to build programs and produce functional traces.
 */

#ifndef REDSOC_WORKLOADS_REGISTRY_H
#define REDSOC_WORKLOADS_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "func/trace.h"
#include "workloads/prepared.h"

namespace redsoc {

enum class Suite : u8 { Spec, MiBench, Ml };

const char *suiteName(Suite suite);

struct Workload
{
    std::string name;
    Suite suite;
    std::string description;
    std::function<PreparedProgram()> build;
};

/** All 15 benchmarks, in presentation order (Fig.10/13). */
const std::vector<Workload> &allWorkloads();

/** Workload by name (fatal if unknown). */
const Workload &workloadByName(const std::string &name);

/** Names of the workloads in @p suite. */
std::vector<std::string> workloadNames(Suite suite);

/** Build and functionally execute a workload, producing its trace. */
Trace traceWorkload(const std::string &name, SeqNum max_ops = 2'000'000);

} // namespace redsoc

#endif // REDSOC_WORKLOADS_REGISTRY_H

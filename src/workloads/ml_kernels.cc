#include "workloads/ml_kernels.h"

#include <cmath>

#include "common/logging.h"
#include "isa/builder.h"
#include "workloads/inputs.h"

namespace redsoc {
namespace ml {

namespace {

/** Fill a u16 feature map with smooth 0..255 values. */
void
fillMap16(MemoryImage &mem, Addr addr, unsigned width, unsigned height,
          u64 seed)
{
    Rng rng(seed);
    int lum = 128;
    for (unsigned i = 0; i < width * height; ++i) {
        lum += static_cast<int>(rng.below(11)) - 5;
        lum = std::max(0, std::min(255, lum));
        mem.poke16(addr + 2ull * i, static_cast<u16>(lum));
    }
}

} // namespace

PreparedProgram
buildConv()
{
    // 3x3 Gaussian blur on a u16 feature map, eight pixels per
    // vector: nine unaligned VLDRs feeding nine i16 VMLAs whose
    // accumulate chain late-forwards (the A57-style sequential
    // single-cycle SIMD execution the paper highlights), then a
    // normalize shift and a store. Three passes.
    ProgramBuilder b("conv");

    constexpr unsigned W = kConvWidth;
    constexpr unsigned H = kConvHeight;
    constexpr unsigned kBlocksPerRow = (W - 2 - 7) / 8 + 1; // start col 1
    const int row_bytes = static_cast<int>(2 * W);

    const RegIdx y = x(3), blk = x(4), addr = x(5), oaddr = x(6),
                 tmp = x(7), pass = x(8), res = x(9);
    const RegIdx vacc = v(0), vt = v(1), w1 = v(2), w2 = v(3),
                 w4 = v(4);

    b.movImm(tmp, 1);
    b.vdup(w1, tmp, VecType::I16);
    b.movImm(tmp, 2);
    b.vdup(w2, tmp, VecType::I16);
    b.movImm(tmp, 4);
    b.vdup(w4, tmp, VecType::I16);
    b.movImm(pass, 3);

    auto pass_loop = b.newLabel();
    auto yloop = b.newLabel();
    auto bloop = b.newLabel();
    b.bind(pass_loop);
    b.movImm(y, 1);
    b.bind(yloop);
    // addr = in + (y*W + 1)*2 ; oaddr likewise into the output map
    b.lslImm(addr, y, 8); // y * W * 2 with W=128
    b.alui(Opcode::ADD, addr, addr, 2);
    b.movImm(tmp, kConvIn);
    b.alu(Opcode::ADD, addr, addr, tmp);
    b.lslImm(oaddr, y, 8);
    b.alui(Opcode::ADD, oaddr, oaddr, 2);
    b.movImm(tmp, kConvOut);
    b.alu(Opcode::ADD, oaddr, oaddr, tmp);
    b.movImm(blk, kBlocksPerRow);
    b.bind(bloop);
    b.vdup(vacc, kZeroReg, VecType::I16);
    struct Tap { int off; RegIdx w; };
    const Tap taps[9] = {
        {-row_bytes - 2, w1}, {-row_bytes, w2}, {-row_bytes + 2, w1},
        {-2, w2},             {0, w4},          {2, w2},
        {row_bytes - 2, w1},  {row_bytes, w2},  {row_bytes + 2, w1},
    };
    for (const Tap &tap : taps) {
        b.vldr(vt, addr, tap.off);
        b.vmla(vacc, vt, tap.w, VecType::I16);
    }
    b.vshiftImm(Opcode::VSHR, vacc, vacc, 4, VecType::I16);
    b.vstr(vacc, oaddr, 0);
    b.alui(Opcode::ADD, addr, addr, 16);
    b.alui(Opcode::ADD, oaddr, oaddr, 16);
    b.alui(Opcode::SUB, blk, blk, 1);
    b.bnez(blk, bloop);
    b.alui(Opcode::ADD, y, y, 1);
    b.alui(Opcode::SUB, tmp, y, H - 1);
    b.bnez(tmp, yloop);
    b.alui(Opcode::SUB, pass, pass, 1);
    b.bnez(pass, pass_loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, pass, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    fillMap16(prepared.memory, kConvIn, W, H, 0xc04f);
    return prepared;
}

PreparedProgram
buildAct()
{
    // ReLU over a large streaming feature map: VLDR / VMAX-with-zero
    // / VSTR. The working set far exceeds L1, so this kernel spends
    // much of its time in long-latency memory — the behaviour the
    // paper notes limits ACT's gains.
    ProgramBuilder b("act");

    const RegIdx in = x(1), out = x(2), n = x(3), res = x(4);
    const RegIdx vz = v(0), vd = v(1);

    b.vdup(vz, kZeroReg, VecType::I16);
    b.movImm(in, kActIn);
    b.movImm(out, kActOut);
    b.movImm(n, kActCount / 8);

    auto loop = b.newLabel();
    b.bind(loop);
    b.vldr(vd, in, 0);
    b.vop(Opcode::VMAX, vd, vd, vz, VecType::I16);
    b.vstr(vd, out, 0);
    b.alui(Opcode::ADD, in, in, 16);
    b.alui(Opcode::ADD, out, out, 16);
    b.alui(Opcode::SUB, n, n, 1);
    b.bnez(n, loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, n, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    Rng rng(0xac7);
    for (unsigned i = 0; i < kActCount; ++i) {
        const s16 sample =
            static_cast<s16>(static_cast<int>(rng.below(8192)) - 4096);
        prepared.memory.poke16(kActIn + 2ull * i,
                               static_cast<u16>(sample));
    }
    return prepared;
}

namespace {

/** Shared 2x2 pooling skeleton: SIMD vertical combine, scalar
 *  horizontal combine. @p average selects avg vs max. */
PreparedProgram
buildPool(bool average)
{
    ProgramBuilder b(average ? "pool1" : "pool0");

    constexpr unsigned W = kPoolWidth;
    constexpr unsigned H = kPoolHeight;
    const unsigned out_w = W / 2, out_h = H / 2;
    const int row_bytes = static_cast<int>(2 * W);

    const RegIdx yy = x(1), blk = x(2), addr = x(3), taddr = x(4),
                 tmp = x(5), a = x(6), bb = x(7), d = x(8), m = x(9),
                 xx = x(10), oaddr = x(11), pass = x(12), res = x(13);
    const RegIdx va = v(0), vb = v(1);

    b.movImm(pass, 3);
    auto pass_loop = b.newLabel();
    auto vloop_y = b.newLabel();
    auto vloop_b = b.newLabel();
    auto hloop_y = b.newLabel();
    auto hloop_x = b.newLabel();
    b.bind(pass_loop);

    // Vertical pass: tmp[y][x] = combine(in[2y][x], in[2y+1][x]).
    b.movImm(yy, 0);
    b.bind(vloop_y);
    // addr = in + (2y)*W*2 ; taddr = tmp + y*W*2
    b.lslImm(addr, yy, 9); // 2y * 256
    b.movImm(tmp, kPoolIn);
    b.alu(Opcode::ADD, addr, addr, tmp);
    b.lslImm(taddr, yy, 8);
    b.movImm(tmp, kPoolTmp);
    b.alu(Opcode::ADD, taddr, taddr, tmp);
    b.movImm(blk, W / 8);
    b.bind(vloop_b);
    b.vldr(va, addr, 0);
    b.vldr(vb, addr, row_bytes);
    if (average) {
        b.vop(Opcode::VADD, va, va, vb, VecType::I16);
        b.vshiftImm(Opcode::VSHR, va, va, 1, VecType::I16);
    } else {
        b.vop(Opcode::VMAX, va, va, vb, VecType::I16);
    }
    b.vstr(va, taddr, 0);
    b.alui(Opcode::ADD, addr, addr, 16);
    b.alui(Opcode::ADD, taddr, taddr, 16);
    b.alui(Opcode::SUB, blk, blk, 1);
    b.bnez(blk, vloop_b);
    b.alui(Opcode::ADD, yy, yy, 1);
    b.alui(Opcode::SUB, tmp, yy, out_h);
    b.bnez(tmp, vloop_y);

    // Horizontal pass: out[y][x] = combine(tmp[y][2x], tmp[y][2x+1]).
    b.movImm(yy, 0);
    b.bind(hloop_y);
    b.lslImm(taddr, yy, 8);
    b.movImm(tmp, kPoolTmp);
    b.alu(Opcode::ADD, taddr, taddr, tmp);
    b.lslImm(oaddr, yy, 7); // out row stride = out_w * 2 = 128
    b.movImm(tmp, kPoolOut);
    b.alu(Opcode::ADD, oaddr, oaddr, tmp);
    b.movImm(xx, out_w);
    b.bind(hloop_x);
    b.load(Opcode::LDRH, a, taddr, 0);
    b.load(Opcode::LDRH, bb, taddr, 2);
    if (average) {
        b.alu(Opcode::ADD, a, a, bb);
        b.lsrImm(a, a, 1);
    } else {
        b.alu(Opcode::SUB, d, a, bb);
        b.asrImm(m, d, 63);
        b.alu(Opcode::AND, d, d, m);
        b.alu(Opcode::SUB, a, a, d); // max(a, b)
    }
    b.store(Opcode::STRH, a, oaddr, 0);
    b.alui(Opcode::ADD, taddr, taddr, 4);
    b.alui(Opcode::ADD, oaddr, oaddr, 2);
    b.alui(Opcode::SUB, xx, xx, 1);
    b.bnez(xx, hloop_x);
    b.alui(Opcode::ADD, yy, yy, 1);
    b.alui(Opcode::SUB, tmp, yy, out_h);
    b.bnez(tmp, hloop_y);

    b.alui(Opcode::SUB, pass, pass, 1);
    b.bnez(pass, pass_loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, pass, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    fillMap16(prepared.memory, kPoolIn, W, H,
              average ? 0x9001u : 0x9000u);
    return prepared;
}

} // namespace

PreparedProgram
buildPool0()
{
    return buildPool(false);
}

PreparedProgram
buildPool1()
{
    return buildPool(true);
}

PreparedProgram
buildSoftmax()
{
    // Fixed-point softmax over s16 logit vectors: scalar max
    // reduction, vectorized (max - logit) subtraction, exp2 via a
    // 16-entry Q16 LUT with variable down-shift, one reciprocal
    // divide per batch, and a Q15 normalize multiply per element.
    ProgramBuilder b("softmax");

    const RegIdx in = x(1), batches = x(2), i = x(3), val = x(4),
                 mx = x(5), d = x(6), msk = x(7), sum = x(8), q = x(9),
                 r = x(10), e = x(11), lut = x(12), expp = x(13),
                 outp = x(14), recip = x(15), two31 = x(17),
                 xaddr = x(18), res = x(19);
    const RegIdx vm = v(0), vx = v(1);

    b.movImm(in, kSoftIn);
    b.movImm(batches, kSoftBatches);
    b.movImm(lut, kSoftLut);
    b.movImm(two31, s64{1} << 31);

    auto batch_loop = b.newLabel();
    auto max_loop = b.newLabel();
    auto sub_loop = b.newLabel();
    auto exp_loop = b.newLabel();
    auto norm_loop = b.newLabel();

    b.bind(batch_loop);
    // Pass 1: scalar max reduction (branchless).
    b.movImm(mx, -32768);
    b.movImm(i, kSoftLen);
    b.mov(xaddr, in);
    b.bind(max_loop);
    b.load(Opcode::LDRH, val, xaddr, 0);
    b.lslImm(val, val, 48);
    b.asrImm(val, val, 48);
    b.alu(Opcode::SUB, d, val, mx);
    b.asrImm(msk, d, 63);
    b.alu(Opcode::AND, d, d, msk);
    b.alu(Opcode::SUB, mx, val, d); // max(val, mx)
    b.alui(Opcode::ADD, xaddr, xaddr, 2);
    b.alui(Opcode::SUB, i, i, 1);
    b.bnez(i, max_loop);

    // Pass 2 (SIMD): x[i] = mx - logit[i]  (u16, reusing the exp
    // buffer's low half as staging).
    b.vdup(vm, mx, VecType::I16);
    b.movImm(i, kSoftLen / 8);
    b.mov(xaddr, in);
    b.movImm(expp, kSoftExp);
    b.bind(sub_loop);
    b.vldr(vx, xaddr, 0);
    b.vop(Opcode::VSUB, vx, vm, vx, VecType::I16);
    b.vstr(vx, expp, 0);
    b.alui(Opcode::ADD, xaddr, xaddr, 16);
    b.alui(Opcode::ADD, expp, expp, 16);
    b.alui(Opcode::SUB, i, i, 1);
    b.bnez(i, sub_loop);

    // Pass 3: e = LUT[x & 15] >> min(x >> 4, 63); sum += e. The Q16
    // exp values overwrite the staging u16s (read 2B, write 4B into
    // a second region).
    b.movImm(sum, 0);
    b.movImm(i, kSoftLen);
    b.movImm(expp, kSoftExp);
    b.movImm(outp, kSoftExp + 2ull * kSoftLen); // u32 exp area
    b.bind(exp_loop);
    b.load(Opcode::LDRH, val, expp, 0);
    b.lsrImm(q, val, 4);
    b.alui(Opcode::AND, r, val, 15);
    b.loadIdx(Opcode::LDRW, e, lut, r, 2);
    // clamp q to 63 (branchless): q = 63 + ((q - 63) & sign(q - 63))
    b.alui(Opcode::SUB, d, q, 63);
    b.asrImm(msk, d, 63);
    b.alu(Opcode::AND, d, d, msk);
    b.alui(Opcode::ADD, q, d, 63);
    b.alu(Opcode::LSR, e, e, q);
    b.alu(Opcode::ADD, sum, sum, e);
    b.store(Opcode::STRW, e, outp, 0);
    b.alui(Opcode::ADD, expp, expp, 2);
    b.alui(Opcode::ADD, outp, outp, 4);
    b.alui(Opcode::SUB, i, i, 1);
    b.bnez(i, exp_loop);

    // Pass 4: recip = 2^31 / sum; out[i] = (e * recip) >> 32 in Q15.
    b.udiv(recip, two31, sum);
    b.movImm(i, kSoftLen);
    b.movImm(outp, kSoftExp + 2ull * kSoftLen);
    // Output pointer: base + (batches already done) * len * 2.
    b.movImm(xaddr, kSoftOut);
    b.alui(Opcode::RSB, d, batches, kSoftBatches);
    b.lslImm(d, d, 10); // * kSoftLen * 2
    b.alu(Opcode::ADD, xaddr, xaddr, d);
    b.bind(norm_loop);
    b.load(Opcode::LDRW, e, outp, 0);
    b.alu(Opcode::MUL, e, e, recip);
    b.lsrImm(e, e, 16); // (e/sum) in Q15
    b.store(Opcode::STRH, e, xaddr, 0);
    b.alui(Opcode::ADD, outp, outp, 4);
    b.alui(Opcode::ADD, xaddr, xaddr, 2);
    b.alui(Opcode::SUB, i, i, 1);
    b.bnez(i, norm_loop);

    b.alui(Opcode::ADD, in, in, 2 * kSoftLen);
    b.alui(Opcode::SUB, batches, batches, 1);
    b.bnez(batches, batch_loop);

    b.movImm(res, kResultAddr);
    b.store(Opcode::STR, sum, res, 0);
    b.halt();

    PreparedProgram prepared;
    prepared.program = std::make_shared<const Program>(b.build());
    // exp2 LUT: round(2^16 * 2^(-r/16)), r = 0..15.
    for (unsigned r2 = 0; r2 < 16; ++r2) {
        const double v2 = 65536.0 * std::pow(2.0, -double(r2) / 16.0);
        prepared.memory.poke32(kSoftLut + 4ull * r2,
                               static_cast<u32>(v2 + 0.5));
    }
    Rng rng(0x50f7);
    for (unsigned k = 0; k < kSoftLen * kSoftBatches; ++k) {
        const s16 logit =
            static_cast<s16>(static_cast<int>(rng.below(2048)) - 1024);
        prepared.memory.poke16(kSoftIn + 2ull * k,
                               static_cast<u16>(logit));
    }
    return prepared;
}

} // namespace ml
} // namespace redsoc

/**
 * @file
 * MiBench-style kernels (Sec.V benchmarks): bit counting, CRC-32,
 * string search (Boyer-Moore-Horspool), GSM-style fixed-point FIR
 * filtering, and SUSAN-style corner detection — each implemented as
 * a real algorithm in the µISA over deterministic inputs.
 *
 * Memory-layout constants are exposed so tests can verify results
 * against native C++ reference implementations.
 */

#ifndef REDSOC_WORKLOADS_MIBENCH_H
#define REDSOC_WORKLOADS_MIBENCH_H

#include "workloads/prepared.h"

namespace redsoc {
namespace mibench {

/** Common result slot: kernels store their checksum here. */
inline constexpr Addr kResultAddr = 0x9000;

// --- bitcnt ---------------------------------------------------------
inline constexpr Addr kBitcntSrc = 0x10000;
inline constexpr unsigned kBitcntWords = 700;
PreparedProgram buildBitcnt();

// --- crc ------------------------------------------------------------
inline constexpr Addr kCrcSrc = 0x10000;
inline constexpr unsigned kCrcLen = 2200;
PreparedProgram buildCrc();

// --- strsearch ------------------------------------------------------
inline constexpr Addr kStrText = 0x20000;
inline constexpr Addr kStrPattern = 0x8000;
inline constexpr Addr kStrSkipTable = 0x8800;
inline constexpr unsigned kStrTextLen = 14000;
inline constexpr unsigned kStrPatternLen = 8;
PreparedProgram buildStrsearch();

// --- gsm (fixed-point FIR) -------------------------------------------
inline constexpr Addr kGsmSamples = 0x10000;
inline constexpr Addr kGsmOut = 0x40000;
inline constexpr unsigned kGsmSampleCount = 1800;
inline constexpr unsigned kGsmOrder = 8;
/** The (Q15) filter coefficients. */
const s64 *gsmCoefficients();
PreparedProgram buildGsm();

// --- corners (SUSAN-style) -------------------------------------------
inline constexpr Addr kCornersImage = 0x10000;
inline constexpr unsigned kCornersWidth = 64;
inline constexpr unsigned kCornersHeight = 28;
inline constexpr unsigned kCornersThreshold = 12;
/** A pixel is a corner when fewer than this many of its 8 neighbours
 *  are within the brightness threshold. */
inline constexpr unsigned kCornersUsanLimit = 4;
PreparedProgram buildCorners();

} // namespace mibench
} // namespace redsoc

#endif // REDSOC_WORKLOADS_MIBENCH_H

#include "workloads/op_mix.h"

namespace redsoc {

OpMix
computeOpMix(const Trace &trace, const TimingModel &timing,
             const HierarchyConfig &mem_config)
{
    MemHierarchy memory(mem_config);
    u64 counts[6] = {};
    u64 classified = 0;

    for (SeqNum s = 0; s < trace.size(); ++s) {
        const Inst &inst = trace.inst(s);
        const DynOp &dyn = trace.op(s);
        if (inst.op == Opcode::HALT)
            continue;
        ++classified;

        if (isMem(inst.op)) {
            const auto result =
                memory.access(dyn.pc, dyn.mem_addr, isStore(inst.op));
            ++counts[result.l1_hit ? 1 : 0];
        } else if (isSimd(inst.op)) {
            ++counts[2];
        } else if (!TimingModel::isSlackEligible(inst.op)) {
            ++counts[3];
        } else {
            const Picos slack =
                timing.trueSlackPs(inst, dyn.eff_width);
            const bool high =
                slack * 5 > timing.clockPeriodPs(); // > 20% of cycle
            ++counts[high ? 4 : 5];
        }
    }

    OpMix mix;
    if (classified == 0)
        return mix;
    const double n = static_cast<double>(classified);
    mix.mem_hl = asDouble(counts[0]) / n;
    mix.mem_ll = asDouble(counts[1]) / n;
    mix.simd = asDouble(counts[2]) / n;
    mix.other_multi = asDouble(counts[3]) / n;
    mix.alu_hs = asDouble(counts[4]) / n;
    mix.alu_ls = asDouble(counts[5]) / n;
    return mix;
}

} // namespace redsoc

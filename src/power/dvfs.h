/**
 * @file
 * ARM A57-style DVFS power model (Sec.VI-C): converts a performance
 * speedup at fixed frequency into a power saving by scaling down to
 * the operating point that restores baseline performance, with
 * dynamic power ~ f * V^2 along the published Exynos A57 V/F curve.
 */

#ifndef REDSOC_POWER_DVFS_H
#define REDSOC_POWER_DVFS_H

#include <vector>

namespace redsoc {

struct DvfsPoint
{
    double ghz;
    double volts;
};

class DvfsModel
{
  public:
    /** Default: Exynos-5433-style A57 operating points, 0.7-2.0 GHz. */
    DvfsModel();
    explicit DvfsModel(std::vector<DvfsPoint> points);

    /** Supply voltage at @p ghz (linear interpolation, clamped). */
    double voltageAt(double ghz) const;

    /** Relative dynamic power f*V^2 at @p ghz, normalized to the
     *  highest operating point. */
    double relativePowerAt(double ghz) const;

    /**
     * Power saving from running a workload that is @p speedup times
     * faster at nominal frequency @p nominal_ghz at the reduced
     * frequency nominal/speedup that restores baseline performance.
     * @return fraction in [0, 1).
     */
    double powerSavingForSpeedup(double speedup,
                                 double nominal_ghz = 2.0) const;

    const std::vector<DvfsPoint> &points() const { return points_; }

  private:
    std::vector<DvfsPoint> points_; ///< ascending by frequency
};

} // namespace redsoc

#endif // REDSOC_POWER_DVFS_H

#include "power/dvfs.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

DvfsModel::DvfsModel()
    : DvfsModel(std::vector<DvfsPoint>{
          {0.7, 0.900}, {0.8, 0.925}, {0.9, 0.950}, {1.0, 0.975},
          {1.1, 1.000}, {1.2, 1.025}, {1.3, 1.056}, {1.4, 1.087},
          {1.5, 1.118}, {1.6, 1.149}, {1.7, 1.181}, {1.8, 1.212},
          {1.9, 1.244}, {2.0, 1.275}})
{
}

DvfsModel::DvfsModel(std::vector<DvfsPoint> points)
    : points_(std::move(points))
{
    fatal_if(points_.size() < 2, "DVFS table needs at least 2 points");
    fatal_if(!std::is_sorted(points_.begin(), points_.end(),
                             [](const DvfsPoint &a, const DvfsPoint &b) {
                                 return a.ghz < b.ghz;
                             }),
             "DVFS table must be sorted by frequency");
}

double
DvfsModel::voltageAt(double ghz) const
{
    if (ghz <= points_.front().ghz)
        return points_.front().volts;
    if (ghz >= points_.back().ghz)
        return points_.back().volts;
    for (size_t i = 1; i < points_.size(); ++i) {
        if (ghz <= points_[i].ghz) {
            const DvfsPoint &lo = points_[i - 1];
            const DvfsPoint &hi = points_[i];
            const double t = (ghz - lo.ghz) / (hi.ghz - lo.ghz);
            return lo.volts + t * (hi.volts - lo.volts);
        }
    }
    return points_.back().volts;
}

double
DvfsModel::relativePowerAt(double ghz) const
{
    const double v = voltageAt(ghz);
    const double vmax = points_.back().volts;
    const double fmax = points_.back().ghz;
    return (ghz * v * v) / (fmax * vmax * vmax);
}

double
DvfsModel::powerSavingForSpeedup(double speedup, double nominal_ghz) const
{
    fatal_if(speedup <= 0.0, "non-positive speedup");
    if (speedup <= 1.0)
        return 0.0;
    const double target_ghz =
        std::max(points_.front().ghz, nominal_ghz / speedup);
    const double p_nominal = relativePowerAt(nominal_ghz);
    const double p_target = relativePowerAt(target_ghz);
    return 1.0 - p_target / p_nominal;
}

} // namespace redsoc

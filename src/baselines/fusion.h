/**
 * @file
 * MOS (Multiple Operations in a Single cycle) support. The fusion
 * scheduler itself lives in the core (SchedMode::MOS); this module
 * provides the static opportunity analysis — how many dependent
 * operation pairs could ever fit in one cycle — which explains why
 * MOS opportunity is limited on most applications (Sec.VI-D).
 */

#ifndef REDSOC_BASELINES_FUSION_H
#define REDSOC_BASELINES_FUSION_H

#include "func/trace.h"
#include "timing/slack_lut.h"

namespace redsoc {

struct FusionOpportunity
{
    u64 eligible_pairs = 0;  ///< adjacent dependent single-cycle pairs
    u64 fusable_pairs = 0;   ///< pairs whose summed estimate fits
    double
    fusableFraction() const
    {
        return eligible_pairs == 0
                   ? 0.0
                   : static_cast<double>(fusable_pairs) /
                         static_cast<double>(eligible_pairs);
    }
};

/**
 * Scan @p trace for producer→consumer pairs of slack-eligible ops
 * (consumer directly reads the producer's destination) and count how
 * many could fuse into a single cycle under @p lut estimates using
 * exact operand widths (an upper bound on dynamic MOS opportunity).
 */
FusionOpportunity analyzeFusionOpportunity(const Trace &trace,
                                           const SlackLut &lut);

} // namespace redsoc

#endif // REDSOC_BASELINES_FUSION_H

/**
 * @file
 * The timing-speculation (TS) comparator of Sec.VI-D: a Razor-like
 * scheme that statically overclocks the core to the fastest period
 * keeping the timing-error rate within [0.01%, 1%] for the
 * application, with no recovery cost modeled (optimistic, as in the
 * paper). Off-core memory latency is fixed in wall-clock time, so it
 * inflates in core cycles when the clock speeds up.
 */

#ifndef REDSOC_BASELINES_TIMING_SPECULATION_H
#define REDSOC_BASELINES_TIMING_SPECULATION_H

#include "core/ooo_core.h"

namespace redsoc {

struct TimingSpeculationConfig
{
    double max_error_rate = 0.01;   ///< 1%
    double min_error_rate = 0.0001; ///< 0.01%
    Picos period_step_ps = 10;      ///< DVFS grid granularity
    Picos min_period_ps = 250;      ///< never overclock beyond 2x

    /**
     * Stage critical path of non-recyclable operations (multi-cycle
     * units, memory pipeline, front-end stages): these datapaths are
     * engineered close to the cycle time, so TS is "bounded by the
     * possibility of timing errors from every computation, in every
     * synchronous EU/op-stage" (Sec.I). Overclocking past this point
     * makes every such op a potential error.
     */
    Picos worst_stage_ps = 480;
};

class TimingSpeculation
{
  public:
    explicit TimingSpeculation(TimingSpeculationConfig config = {});

    /**
     * Fraction of slack-eligible operations in @p trace whose true
     * circuit delay exceeds @p period_ps (the timing-error rate if
     * the core were clocked at that period).
     */
    double errorRate(const Trace &trace, const TimingModel &model,
                     Picos period_ps) const;

    /**
     * Fastest period on the grid whose error rate stays within the
     * configured band (monotone in the period, so this is the
     * smallest period with rate <= max_error_rate).
     */
    Picos choosePeriod(const Trace &trace,
                       const TimingModel &model) const;

    struct RunResult
    {
        Picos period_ps = 0;
        double error_rate = 0.0;
        Cycle cycles = 0;
        /** Wall-clock speedup over the nominal-period baseline. */
        double speedup = 1.0;
    };

    /**
     * Run the TS configuration: baseline scheduling at the chosen
     * period with off-core latencies rescaled.
     * @param baseline_cycles cycle count of the nominal-period
     *        baseline run of the same trace on the same core.
     */
    RunResult run(const Trace &trace, CoreConfig config,
                  Cycle baseline_cycles) const;

  private:
    TimingSpeculationConfig config_;
};

} // namespace redsoc

#endif // REDSOC_BASELINES_TIMING_SPECULATION_H

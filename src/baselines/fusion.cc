#include "baselines/fusion.h"

#include <array>

#include "common/logging.h"

namespace redsoc {

FusionOpportunity
analyzeFusionOpportunity(const Trace &trace, const SlackLut &lut)
{
    FusionOpportunity result;
    const Tick tpc = lut.clock().ticksPerCycle();

    // Youngest producer of each architectural register, plus its
    // estimated computation time.
    std::array<Tick, kNumRegs> producer_est{};
    std::array<bool, kNumRegs> producer_eligible{};
    producer_eligible.fill(false);

    for (SeqNum s = 0; s < trace.size(); ++s) {
        const Inst &inst = trace.inst(s);
        const bool eligible = TimingModel::isSlackEligible(inst.op);

        if (eligible) {
            const WidthClass wc =
                classifyWidth(trace.op(s).eff_width);
            const Tick est = lut.lookupTicks(inst, wc);

            // Does this op consume a slack-eligible producer?
            for (RegIdx r : inst.sources()) {
                if (r == kNoReg || !producer_eligible[r])
                    continue;
                ++result.eligible_pairs;
                if (producer_est[r] + est <= tpc)
                    ++result.fusable_pairs;
                break; // count each consumer once
            }

            const RegIdx dst = inst.destination();
            if (dst != kNoReg) {
                producer_est[dst] = est;
                producer_eligible[dst] = true;
            }
        } else {
            const RegIdx dst = inst.destination();
            if (dst != kNoReg)
                producer_eligible[dst] = false;
        }
    }
    return result;
}

} // namespace redsoc

#include "baselines/timing_speculation.h"

#include "common/logging.h"

namespace redsoc {

TimingSpeculation::TimingSpeculation(TimingSpeculationConfig config)
    : config_(config)
{
    fatal_if(config_.max_error_rate < config_.min_error_rate,
             "inverted TS error band");
}

double
TimingSpeculation::errorRate(const Trace &trace, const TimingModel &model,
                             Picos period_ps) const
{
    u64 total = 0;
    u64 errors = 0;
    for (SeqNum s = 0; s < trace.size(); ++s) {
        const Inst &inst = trace.inst(s);
        if (inst.op == Opcode::HALT)
            continue;
        ++total;
        const Picos path =
            TimingModel::isSlackEligible(inst.op)
                ? model.trueDelayPs(inst, trace.op(s).eff_width)
                : config_.worst_stage_ps;
        if (path > period_ps)
            ++errors;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(errors) /
                            static_cast<double>(total);
}

Picos
TimingSpeculation::choosePeriod(const Trace &trace,
                                const TimingModel &model) const
{
    const Picos nominal = model.clockPeriodPs();
    Picos best = nominal;
    for (Picos p = nominal; p >= config_.min_period_ps;
         p -= config_.period_step_ps) {
        if (errorRate(trace, model, p) <= config_.max_error_rate)
            best = p;
        else
            break; // error rate is monotone as the period shrinks
    }
    return best;
}

TimingSpeculation::RunResult
TimingSpeculation::run(const Trace &trace, CoreConfig config,
                       Cycle baseline_cycles) const
{
    const TimingModel model(config.timing);
    RunResult result;
    result.period_ps = choosePeriod(trace, model);
    result.error_rate = errorRate(trace, model, result.period_ps);

    const double nominal =
        static_cast<double>(config.timing.clock_period_ps);

    config.mode = SchedMode::Baseline;
    config.memory.offcore_latency_scale =
        nominal / static_cast<double>(result.period_ps);

    OooCore core(config);
    result.cycles = core.run(trace).cycles;

    const double base_time =
        static_cast<double>(baseline_cycles) * nominal;
    const double ts_time = static_cast<double>(result.cycles) *
                           static_cast<double>(result.period_ps);
    result.speedup = ts_time == 0.0 ? 1.0 : base_time / ts_time;
    return result;
}

} // namespace redsoc

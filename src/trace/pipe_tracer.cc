#include "trace/pipe_tracer.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

const char *
pipeEventName(PipeEventKind kind)
{
    switch (kind) {
    case PipeEventKind::Fetch: return "fetch";
    case PipeEventKind::Decode: return "decode";
    case PipeEventKind::Rename: return "rename";
    case PipeEventKind::Dispatch: return "dispatch";
    case PipeEventKind::Wakeup: return "wakeup";
    case PipeEventKind::Select: return "select";
    case PipeEventKind::ExecBegin: return "exec_begin";
    case PipeEventKind::Writeback: return "writeback";
    case PipeEventKind::Commit: return "commit";
    case PipeEventKind::Squash: return "squash";
    case PipeEventKind::EgpwArm: return "egpw_arm";
    case PipeEventKind::EgpwFire: return "egpw_fire";
    case PipeEventKind::EgpwWaste: return "egpw_waste";
    case PipeEventKind::TransparentPass: return "transparent_pass";
    case PipeEventKind::RecycleLink: return "recycle_link";
    case PipeEventKind::Fuse: return "fuse";
    case PipeEventKind::Replay: return "replay";
    case PipeEventKind::NUM: break;
    }
    return "unknown";
}

PipeTracer::PipeTracer(size_t capacity)
    : ring_(std::max<size_t>(capacity, 1))
{
    fatal_if(capacity == 0, "PipeTracer capacity must be positive");
}

void
PipeTracer::beginRun(Tick ticks_per_cycle)
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    ticks_per_cycle_ = ticks_per_cycle;
    if (sink_)
        sink_->onBeginRun(ticks_per_cycle);
}

std::vector<PipeEvent>
PipeTracer::events() const
{
    std::vector<PipeEvent> out;
    out.reserve(size_);
    forEach([&out](const PipeEvent &e) { out.push_back(e); });
    return out;
}

} // namespace redsoc

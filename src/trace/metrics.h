/**
 * @file
 * Trace-derived metrics the aggregate CoreStats cannot express:
 * distributions (slack per op class — the paper Fig. 4 analog —
 * wakeup->issue latency, recycle-chain depth) and EGPW speculation
 * outcome counts. Computed by post-processing a recorded PipeTracer
 * buffer, so the hot simulation loop pays nothing for them.
 */

#ifndef REDSOC_TRACE_METRICS_H
#define REDSOC_TRACE_METRICS_H

#include <array>
#include <string>

#include "common/stats.h"
#include "func/trace.h"
#include "isa/opcode.h"
#include "trace/pipe_tracer.h"

namespace redsoc {

struct TraceMetrics
{
    static constexpr size_t kNumFuClasses =
        static_cast<size_t>(FuClass::None) + 1;
    /** Upper bound for tick-valued samples (slack < ticks/cycle). */
    static constexpr u64 kMaxTickSample = 256;

    u64 events = 0;
    u64 dropped = 0;
    Tick ticks_per_cycle = 8;

    /** Truncation signal surfaced on the metrics path: events the
     *  recording ring overwrote (0 = the export is complete). */
    u64 droppedEvents() const { return dropped; }

    /** Completion slack in ticks, per producing op's FU class
     *  (recorded at writeback: slack = (tpc - CI) mod tpc). */
    std::array<Histogram, kNumFuClasses> slack_by_class;

    /** Cycles from the entry's final wakeup to its select grant. */
    Histogram wakeup_to_issue{64};

    /** Depth of each recycle-chain link (a chain of N transparently
     *  linked ops samples 2..N; depth 1 is the non-recycled root). */
    Histogram chain_depth{64};

    // EGPW speculation outcomes.
    u64 egpw_arms = 0;
    u64 egpw_fires = 0;
    u64 egpw_wastes_no_slack = 0;
    u64 egpw_wastes_span = 0;

    u64 transparent_passes = 0;
    u64 recycle_links = 0;
    u64 fuses = 0;
    u64 replays_last_arrival = 0;
    u64 replays_width = 0;
    u64 commits = 0;
    u64 squashes = 0;

    TraceMetrics();
};

/** Aggregate a recorded buffer; @p trace supplies per-op FU classes. */
TraceMetrics computeTraceMetrics(const PipeTracer &tracer,
                                 const Trace &trace);

/** Human-readable report (tables of the distributions above). */
std::string renderTraceMetrics(const TraceMetrics &metrics);

} // namespace redsoc

#endif // REDSOC_TRACE_METRICS_H

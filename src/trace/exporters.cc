#include "trace/exporters.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "isa/disasm.h"
#include "isa/opcode.h"

namespace redsoc {

namespace {

/** Chrome track (tid) layout: fixed stage tracks, then one execution
 *  track per FU class, then the ReDSOC / recovery tracks. */
constexpr unsigned kTidFrontend = 0;
constexpr unsigned kTidWakeup = 1;
constexpr unsigned kTidSelect = 2;
constexpr unsigned kTidExecBase = 3; // + static_cast<unsigned>(FuClass)
constexpr unsigned kNumFuClasses = static_cast<unsigned>(FuClass::None) + 1;
constexpr unsigned kTidCommit = kTidExecBase + kNumFuClasses;
constexpr unsigned kTidRedsoc = kTidCommit + 1;
constexpr unsigned kTidRecovery = kTidRedsoc + 1;

const char *
fuClassLabel(FuClass fc)
{
    switch (fc) {
    case FuClass::IntAlu: return "IntAlu";
    case FuClass::IntMul: return "IntMul";
    case FuClass::IntDiv: return "IntDiv";
    case FuClass::Fp: return "Fp";
    case FuClass::FpDiv: return "FpDiv";
    case FuClass::SimdAlu: return "SimdAlu";
    case FuClass::SimdMul: return "SimdMul";
    case FuClass::MemRead: return "MemRead";
    case FuClass::MemWrite: return "MemWrite";
    case FuClass::None: return "None";
    }
    return "?";
}

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Emits one traceEvents element per line, managing the separating
 *  commas so the output is valid JSON with no trailing comma. */
class ChromeWriter
{
  public:
    explicit ChromeWriter(std::ostream &os) : os_(os) {}

    void metadata(unsigned tid, const std::string &name, unsigned sort)
    {
        sep();
        os_ << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << escapeJson(name) << "\"}},\n"
            << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
            << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
            << sort << "}}";
    }

    void instant(unsigned tid, Tick ts, const char *name,
                 const std::string &args)
    {
        sep();
        os_ << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts
            << ",\"s\":\"t\",\"name\":\"" << name << "\",\"args\":{" << args
            << "}}";
    }

    void span(unsigned tid, Tick ts, Tick dur, const std::string &name,
              const std::string &args)
    {
        sep();
        os_ << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts
            << ",\"dur\":" << dur << ",\"name\":\"" << escapeJson(name)
            << "\",\"args\":{" << args << "}}";
    }

  private:
    void sep()
    {
        if (sep_done_)
            os_ << ",\n";
        sep_done_ = true;
    }

    std::ostream &os_;
    bool sep_done_ = false;
};

std::string
seqArg(SeqNum seq)
{
    std::ostringstream os;
    os << "\"seq\":" << seq;
    return os.str();
}

std::string
seqLinkArg(SeqNum seq, const char *key, SeqNum link)
{
    std::ostringstream os;
    os << "\"seq\":" << seq << ",\"" << key << "\":";
    if (link == kNoSeq)
        os << -1;
    else
        os << link;
    return os.str();
}

/** Per-op timeline reassembled from the event stream (Konata needs a
 *  per-instruction view; the ring is a flat event log). */
struct OpTimeline
{
    bool has_fetch = false;
    Cycle fetch = 0;
    bool has_select = false;
    Cycle select = 0;
    bool spec_select = false;
    bool has_exec = false;
    Tick exec_start = 0;
    u8 ci_begin = 0;
    bool has_wb = false;
    Tick complete = 0;
    u8 ci_end = 0;
    bool has_commit = false;
    Cycle commit = 0;
    bool squashed = false;
    Cycle squash = 0;
    bool has_wake = false;
    Cycle wake = 0;
    SeqNum wake_link = kNoSeq;
    bool transparent = false;
    SeqNum recycle_link = kNoSeq;
    SeqNum fuse_link = kNoSeq;
    bool egpw_fire = false;
    u32 egpw_arms = 0;
    u32 egpw_wastes = 0;
    u32 replays_la = 0;
    u32 replays_width = 0;
};

} // namespace

std::optional<TraceFormat>
parseTraceFormat(const std::string &text)
{
    if (text == "chrome" || text == "json")
        return TraceFormat::Chrome;
    if (text == "konata" || text == "kanata")
        return TraceFormat::Konata;
    return std::nullopt;
}

const char *
traceFormatExtension(TraceFormat format)
{
    return format == TraceFormat::Chrome ? ".trace.json" : ".kanata";
}

TraceFormat
traceFormatForPath(const std::string &path)
{
    const size_t dot = path.rfind('.');
    if (dot != std::string::npos && path.substr(dot) == ".json")
        return TraceFormat::Chrome;
    return TraceFormat::Konata;
}

void
exportChromeTrace(const PipeTracer &tracer, const Trace &trace,
                  std::ostream &os)
{
    const Tick tpc = tracer.ticksPerCycle();
    os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
       << "\"ticks_per_cycle\":" << tpc
       << ",\"events\":" << tracer.size()
       << ",\"dropped_events\":" << tracer.dropped() << "},\n"
       << "\"traceEvents\":[\n";

    ChromeWriter w(os);
    w.metadata(kTidFrontend, "Frontend", kTidFrontend);
    w.metadata(kTidWakeup, "Wakeup", kTidWakeup);
    w.metadata(kTidSelect, "Select", kTidSelect);
    for (unsigned fc = 0; fc < kNumFuClasses; ++fc)
        w.metadata(kTidExecBase + fc,
                   std::string("Exec.") +
                       fuClassLabel(static_cast<FuClass>(fc)),
                   kTidExecBase + fc);
    w.metadata(kTidCommit, "Commit", kTidCommit);
    w.metadata(kTidRedsoc, "ReDSOC", kTidRedsoc);
    w.metadata(kTidRecovery, "Recovery", kTidRecovery);

    // ExecBegin ticks by seq, awaiting the matching Writeback.
    std::map<SeqNum, std::pair<Tick, u8>> exec_begin;

    tracer.forEach([&](const PipeEvent &e) {
        switch (e.kind) {
        case PipeEventKind::Fetch:
        case PipeEventKind::Decode:
        case PipeEventKind::Rename:
        case PipeEventKind::Dispatch:
            w.instant(kTidFrontend, e.tick, pipeEventName(e.kind),
                      seqArg(e.seq));
            break;
        case PipeEventKind::Wakeup:
            w.instant(kTidWakeup, e.tick, pipeEventName(e.kind),
                      seqLinkArg(e.seq, "producer", e.link));
            break;
        case PipeEventKind::Select: {
            std::ostringstream args;
            args << "\"seq\":" << e.seq << ",\"egpw_speculative\":"
                 << ((e.arg & 1u) != 0 ? "true" : "false");
            w.instant(kTidSelect, e.tick, pipeEventName(e.kind),
                      args.str());
            break;
        }
        case PipeEventKind::ExecBegin:
            exec_begin[e.seq] = {e.tick, e.arg};
            break;
        case PipeEventKind::Writeback: {
            const auto it = exec_begin.find(e.seq);
            if (it == exec_begin.end()) {
                // Frontend-resolved op (branch/HALT) or the ExecBegin
                // fell off the ring: degrade to an instant.
                w.instant(kTidFrontend, e.tick, pipeEventName(e.kind),
                          seqArg(e.seq));
                break;
            }
            const auto [start, ci_begin] = it->second;
            exec_begin.erase(it);
            const FuClass fc = fuClass(trace.inst(e.seq).op);
            std::ostringstream args;
            args << "\"seq\":" << e.seq
                 << ",\"ci_begin\":" << unsigned{ci_begin}
                 << ",\"ci_end\":" << unsigned{e.arg} << ",\"disasm\":\""
                 << escapeJson(disassemble(trace.inst(e.seq))) << "\"";
            w.span(kTidExecBase + static_cast<unsigned>(fc), start,
                   std::max<Tick>(e.tick - start, 1),
                   opcodeName(trace.inst(e.seq).op), args.str());
            break;
        }
        case PipeEventKind::Commit:
            w.instant(kTidCommit, e.tick, pipeEventName(e.kind),
                      seqArg(e.seq));
            break;
        case PipeEventKind::Squash:
            w.instant(kTidRecovery, e.tick, pipeEventName(e.kind),
                      seqArg(e.seq));
            break;
        case PipeEventKind::EgpwArm:
            w.instant(kTidRedsoc, e.tick, pipeEventName(e.kind),
                      seqLinkArg(e.seq, "grandparent", e.link));
            break;
        case PipeEventKind::EgpwFire:
            w.instant(kTidRedsoc, e.tick, pipeEventName(e.kind),
                      seqArg(e.seq));
            break;
        case PipeEventKind::EgpwWaste: {
            std::ostringstream args;
            args << "\"seq\":" << e.seq << ",\"reason\":\""
                 << (e.arg == 0 ? "no_slack" : "span_denied") << "\"";
            w.instant(kTidRedsoc, e.tick, pipeEventName(e.kind),
                      args.str());
            break;
        }
        case PipeEventKind::TransparentPass: {
            std::ostringstream args;
            args << "\"seq\":" << e.seq << ",\"ci\":" << unsigned{e.arg};
            w.instant(kTidRedsoc, e.tick, pipeEventName(e.kind),
                      args.str());
            break;
        }
        case PipeEventKind::RecycleLink:
            w.instant(kTidRedsoc, e.tick, pipeEventName(e.kind),
                      seqLinkArg(e.seq, "producer", e.link));
            break;
        case PipeEventKind::Fuse:
            w.instant(kTidRedsoc, e.tick, pipeEventName(e.kind),
                      seqLinkArg(e.seq, "producer", e.link));
            break;
        case PipeEventKind::Replay: {
            std::ostringstream args;
            args << "\"seq\":" << e.seq << ",\"cause\":\""
                 << (e.arg == 1 ? "last_arrival" : "width") << "\"";
            w.instant(kTidRecovery, e.tick, pipeEventName(e.kind),
                      args.str());
            break;
        }
        case PipeEventKind::NUM:
            break;
        }
    });

    os << "\n]}\n";
}

void
exportKonata(const PipeTracer &tracer, const Trace &trace, std::ostream &os)
{
    const Tick tpc = tracer.ticksPerCycle();
    const auto cycleOf = [tpc](Tick tick) { return tick / tpc; };

    // Pass 1: reassemble per-op timelines (std::map => seq order).
    std::map<SeqNum, OpTimeline> ops;
    tracer.forEach([&](const PipeEvent &e) {
        OpTimeline &op = ops[e.seq];
        switch (e.kind) {
        case PipeEventKind::Fetch:
            op.has_fetch = true;
            op.fetch = cycleOf(e.tick);
            break;
        case PipeEventKind::Decode:
        case PipeEventKind::Rename:
        case PipeEventKind::Dispatch:
            // Same cycle as Fetch in this model; the ladder below
            // renders the shared frontend macro-stage as F.
            break;
        case PipeEventKind::Wakeup:
            op.has_wake = true;
            op.wake = cycleOf(e.tick);
            op.wake_link = e.link;
            break;
        case PipeEventKind::Select:
            op.has_select = true;
            op.select = cycleOf(e.tick);
            op.spec_select = (e.arg & 1u) != 0;
            break;
        case PipeEventKind::ExecBegin:
            op.has_exec = true;
            op.exec_start = e.tick;
            op.ci_begin = e.arg;
            break;
        case PipeEventKind::Writeback:
            op.has_wb = true;
            op.complete = e.tick;
            op.ci_end = e.arg;
            break;
        case PipeEventKind::Commit:
            op.has_commit = true;
            op.commit = cycleOf(e.tick);
            break;
        case PipeEventKind::Squash:
            op.squashed = true;
            op.squash = cycleOf(e.tick);
            break;
        case PipeEventKind::EgpwArm:
            ++op.egpw_arms;
            break;
        case PipeEventKind::EgpwFire:
            op.egpw_fire = true;
            break;
        case PipeEventKind::EgpwWaste:
            ++op.egpw_wastes;
            break;
        case PipeEventKind::TransparentPass:
            op.transparent = true;
            break;
        case PipeEventKind::RecycleLink:
            op.recycle_link = e.link;
            break;
        case PipeEventKind::Fuse:
            op.fuse_link = e.link;
            break;
        case PipeEventKind::Replay:
            if (e.arg == 1)
                ++op.replays_la;
            else
                ++op.replays_width;
            break;
        case PipeEventKind::NUM:
            break;
        }
    });

    // Pass 2: flatten into (cycle, command) pairs. Commands are
    // appended in seq order, and the sort below is stable, so output
    // order is deterministic: by cycle, then by seq.
    std::vector<std::pair<Cycle, std::string>> cmds;
    u64 retire_id = 0;
    for (const auto &[seq, op] : ops) {
        if (!op.has_fetch)
            continue; // fell off the ring; cannot be introduced late
        const auto cmd = [&cmds](Cycle cycle, std::string text) {
            cmds.emplace_back(cycle, std::move(text));
        };
        std::ostringstream id;
        id << seq;
        const std::string sid = id.str();

        std::ostringstream intro;
        intro << "I\t" << sid << "\t" << sid << "\t0";
        cmd(op.fetch, intro.str());

        std::ostringstream label;
        label << "L\t" << sid << "\t0\t" << seq << ": "
              << disassemble(trace.inst(seq));
        cmd(op.fetch, label.str());

        std::ostringstream detail;
        detail << "L\t" << sid << "\t1\t";
        if (op.has_exec)
            detail << " ci_begin=" << unsigned{op.ci_begin};
        if (op.has_wb)
            detail << " ci_end=" << unsigned{op.ci_end};
        if (op.transparent)
            detail << " transparent_pass";
        if (op.recycle_link != kNoSeq)
            detail << " recycle_link=" << op.recycle_link;
        if (op.egpw_fire)
            detail << " egpw_fire";
        if (op.spec_select)
            detail << " egpw_speculative_select";
        if (op.egpw_arms != 0)
            detail << " egpw_arm=" << op.egpw_arms;
        if (op.egpw_wastes != 0)
            detail << " egpw_waste=" << op.egpw_wastes;
        if (op.fuse_link != kNoSeq)
            detail << " fused_with=" << op.fuse_link;
        if (op.has_wake && op.wake_link != kNoSeq)
            detail << " woken_by=" << op.wake_link;
        if (op.replays_la != 0)
            detail << " replay_la=" << op.replays_la;
        if (op.replays_width != 0)
            detail << " replay_width=" << op.replays_width;
        cmd(op.fetch, detail.str());

        cmd(op.fetch, "S\t" + sid + "\t0\tF");
        if (op.has_select) {
            if (op.select > op.fetch + 1)
                cmd(op.fetch + 1, "S\t" + sid + "\t0\tDs");
            cmd(op.select, "S\t" + sid + "\t0\tIs");
        }
        if (op.has_exec)
            cmd(cycleOf(op.exec_start), "S\t" + sid + "\t0\tEx");
        if (op.has_wb)
            cmd(op.complete / tpc, "S\t" + sid + "\t0\tWb");
        if (op.recycle_link != kNoSeq && op.has_select) {
            std::ostringstream dep;
            dep << "W\t" << sid << "\t" << op.recycle_link << "\t0";
            cmd(op.select, dep.str());
        }
        if (op.has_commit) {
            cmd(op.commit, "S\t" + sid + "\t0\tCm");
            std::ostringstream ret;
            ret << "R\t" << sid << "\t" << retire_id++ << "\t0";
            cmd(op.commit, ret.str());
        } else {
            // In flight when the run (or the ring window) ended:
            // flush the lane so Konata closes it.
            Cycle last = op.fetch;
            if (op.has_select)
                last = std::max(last, op.select);
            if (op.has_wb)
                last = std::max(last, op.complete / tpc);
            if (op.squashed)
                last = std::max(last, op.squash);
            std::ostringstream ret;
            ret << "R\t" << sid << "\t" << retire_id++ << "\t1";
            cmd(last, ret.str());
        }
    }

    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    os << "Kanata\t0004\n";
    Cycle cur = 0;
    bool first = true;
    for (const auto &[cycle, text] : cmds) {
        if (first) {
            os << "C=\t" << cycle << "\n";
            cur = cycle;
            first = false;
        } else if (cycle != cur) {
            os << "C\t" << (cycle - cur) << "\n";
            cur = cycle;
        }
        os << text << "\n";
    }
}

void
writeTraceFile(const std::string &path, TraceFormat format,
               const PipeTracer &tracer, const Trace &trace)
{
    std::ofstream ofs(path, std::ios::binary);
    fatal_if(!ofs, "cannot open trace output file '", path, "'");
    if (format == TraceFormat::Chrome)
        exportChromeTrace(tracer, trace, ofs);
    else
        exportKonata(tracer, trace, ofs);
    ofs.flush();
    fatal_if(!ofs, "error writing trace file '", path, "'");
}

std::string
sanitizeTraceFileName(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                        c == '_';
        out += ok ? c : '_';
    }
    return out;
}

namespace {
std::atomic<u64> g_truncated_runs{0};
std::atomic<u64> g_truncated_events{0};
} // namespace

u64
TraceEnv::noteTruncatedRun(u64 dropped_events)
{
    g_truncated_events.fetch_add(dropped_events,
                                 std::memory_order_relaxed);
    return g_truncated_runs.fetch_add(1, std::memory_order_relaxed) + 1;
}

u64
TraceEnv::truncatedRuns()
{
    return g_truncated_runs.load(std::memory_order_relaxed);
}

u64
TraceEnv::truncatedEvents()
{
    return g_truncated_events.load(std::memory_order_relaxed);
}

const TraceEnv &
TraceEnv::get()
{
    static const TraceEnv env = [] {
        TraceEnv e;
        const char *dir = std::getenv("REDSOC_TRACE_DIR");
        if (dir == nullptr || *dir == '\0')
            return e;
        e.active = true;
        e.dir = dir;
        if (const char *fmt = std::getenv("REDSOC_TRACE_FORMAT")) {
            const auto parsed = parseTraceFormat(fmt);
            fatal_if(!parsed.has_value(),
                     "REDSOC_TRACE_FORMAT must be 'chrome' or 'konata', "
                     "got '", fmt, "'");
            e.format = *parsed;
        }
        if (const char *cap = std::getenv("REDSOC_TRACE_CAP")) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(cap, &end, 10);
            fatal_if(end == cap || *end != '\0' || v == 0,
                     "REDSOC_TRACE_CAP must be a positive integer, "
                     "got '", cap, "'");
            e.capacity = static_cast<size_t>(v);
        }
        return e;
    }();
    return env;
}

} // namespace redsoc

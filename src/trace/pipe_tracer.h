/**
 * @file
 * The per-op pipeline event tracer: a preallocated ring buffer of
 * PipeEvent records. Recording is designed for the simulator's hot
 * path: the buffer is allocated once, record() is header-inline, and
 * its first statement is `if (!enabled_) return` — a disabled (or
 * detached) tracer costs one predictably-not-taken branch per
 * emission site and nothing else. The trace-off differential suite
 * (tests/test_trace_equiv.cc) proves the attached path is
 * behavior-neutral too: CoreStats and the commit-schedule checksum
 * are byte-identical with and without a tracer.
 *
 * When the buffer wraps, the oldest events are overwritten and
 * counted in droppedEvents(): a bounded trace keeps the *tail* of the
 * run, which is the window that matters when debugging how a run
 * ended. Exporters surface the dropped count so truncation is never
 * silent, and redsoc_sim prints a loud stderr warning when an export
 * is truncated.
 *
 * Consumers that must see the COMPLETE stream — not just the ring's
 * retained tail — attach a streaming TraceSink: record() forwards
 * every event to the sink before ring-wrap bookkeeping, so a sink's
 * view is never bounded by the ring capacity. The critical-path
 * dependence-graph builder (src/critpath) is the canonical sink.
 */

#ifndef REDSOC_TRACE_PIPE_TRACER_H
#define REDSOC_TRACE_PIPE_TRACER_H

#include <cstddef>
#include <vector>

#include "trace/trace_events.h"

namespace redsoc {

/**
 * Streaming observer of the pipeline event stream. A sink attached
 * to a PipeTracer receives every record()ed event in emission order,
 * regardless of ring capacity: the ring may wrap and drop its head,
 * the sink never misses an event. onBeginRun() mirrors
 * PipeTracer::beginRun() so a sink can reset per-run state.
 *
 * Emission order is NOT globally tick-sorted: the core emits
 * ExecBegin/Writeback at issue time with their (future) scheduled
 * ticks. Sinks that need time-ordered views must reassemble per-op
 * state, keyed by seq (commit order equals seq order).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** A fresh core run began at @p ticks_per_cycle resolution. */
    virtual void onBeginRun(Tick ticks_per_cycle) = 0;

    /** One event, in emission order, before any ring overwrite. */
    virtual void onEvent(const PipeEvent &event) = 0;
};

class PipeTracer
{
  public:
    /** Default capacity: 1M events (~40 MB), enough for ~100k ops. */
    static constexpr size_t kDefaultCapacity = size_t{1} << 20;

    explicit PipeTracer(size_t capacity = kDefaultCapacity);

    /** Reset for a fresh core run; @p ticks_per_cycle is the run's
     *  sub-cycle resolution (needed by exporters and metrics). */
    void beginRun(Tick ticks_per_cycle);

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** Attach (or detach, with nullptr) a streaming sink. The sink
     *  sees every event of every subsequent run; the caller keeps
     *  ownership and must outlive the tracer's recording. */
    void setSink(TraceSink *sink) { sink_ = sink; }
    TraceSink *sink() const { return sink_; }

    /** Record one event. The off path is a single branch. */
    void record(PipeEventKind kind, SeqNum seq, Tick tick, u8 arg = 0,
                SeqNum link = kNoSeq)
    {
        if (!enabled_)
            return;
        PipeEvent &e = ring_[head_];
        e.tick = tick;
        e.seq = seq;
        e.link = link;
        e.kind = kind;
        e.arg = arg;
        if (sink_)
            sink_->onEvent(e);
        ++head_;
        if (head_ == ring_.size())
            head_ = 0;
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
    }

    size_t capacity() const { return ring_.size(); }
    size_t size() const { return size_; }
    /** Events overwritten after the ring wrapped (0 = complete).
     *  This is the metrics-path truncation signal: a nonzero count
     *  means any export of the retained ring is missing the head of
     *  the run (attached TraceSinks still saw everything). */
    u64 droppedEvents() const { return dropped_; }
    /** Back-compat alias for droppedEvents(). */
    u64 dropped() const { return dropped_; }
    Tick ticksPerCycle() const { return ticks_per_cycle_; }

    /** Retained events, oldest first. */
    std::vector<PipeEvent> events() const;

    /** Visit retained events oldest-first without copying. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        const size_t n = size_;
        const size_t start = (head_ + ring_.size() - n) % ring_.size();
        for (size_t i = 0; i < n; ++i)
            fn(ring_[(start + i) % ring_.size()]);
    }

  private:
    std::vector<PipeEvent> ring_;
    TraceSink *sink_ = nullptr;
    size_t head_ = 0;
    size_t size_ = 0;
    u64 dropped_ = 0;
    Tick ticks_per_cycle_ = 8;
    bool enabled_ = true;
};

} // namespace redsoc

#endif // REDSOC_TRACE_PIPE_TRACER_H

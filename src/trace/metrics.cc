#include "trace/metrics.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/table.h"

namespace redsoc {

namespace {

const char *
fuClassLabel(FuClass fc)
{
    switch (fc) {
    case FuClass::IntAlu: return "IntAlu";
    case FuClass::IntMul: return "IntMul";
    case FuClass::IntDiv: return "IntDiv";
    case FuClass::Fp: return "Fp";
    case FuClass::FpDiv: return "FpDiv";
    case FuClass::SimdAlu: return "SimdAlu";
    case FuClass::SimdMul: return "SimdMul";
    case FuClass::MemRead: return "MemRead";
    case FuClass::MemWrite: return "MemWrite";
    case FuClass::None: return "None";
    }
    return "?";
}

} // namespace

TraceMetrics::TraceMetrics()
{
    for (auto &h : slack_by_class)
        h = Histogram(kMaxTickSample);
}

TraceMetrics
computeTraceMetrics(const PipeTracer &tracer, const Trace &trace)
{
    TraceMetrics m;
    m.events = tracer.size();
    m.dropped = tracer.droppedEvents();
    m.ticks_per_cycle = tracer.ticksPerCycle();
    const Tick tpc = m.ticks_per_cycle;

    // Per-seq scratch state. Lookup/insert only — no iteration, so an
    // unordered map stays deterministic.
    std::unordered_map<SeqNum, Cycle> wake_cycle;
    std::unordered_map<SeqNum, u64> depth;

    tracer.forEach([&](const PipeEvent &e) {
        switch (e.kind) {
        case PipeEventKind::Wakeup:
            wake_cycle[e.seq] = e.tick / tpc;
            break;
        case PipeEventKind::Select: {
            const auto it = wake_cycle.find(e.seq);
            if (it != wake_cycle.end()) {
                const Cycle grant = e.tick / tpc;
                m.wakeup_to_issue.sample(
                    grant >= it->second ? grant - it->second : 0);
            }
            break;
        }
        case PipeEventKind::Writeback: {
            // arg is the completion CI; slack to the cycle boundary.
            const u64 slack = (tpc - e.arg) % tpc;
            const auto fc =
                static_cast<size_t>(fuClass(trace.inst(e.seq).op));
            m.slack_by_class[fc].sample(slack);
            break;
        }
        case PipeEventKind::RecycleLink: {
            const auto it = depth.find(e.link);
            const u64 d = (it == depth.end() ? 1 : it->second) + 1;
            depth[e.seq] = d;
            m.chain_depth.sample(d);
            ++m.recycle_links;
            break;
        }
        case PipeEventKind::EgpwArm:
            ++m.egpw_arms;
            break;
        case PipeEventKind::EgpwFire:
            ++m.egpw_fires;
            break;
        case PipeEventKind::EgpwWaste:
            if (e.arg == 0)
                ++m.egpw_wastes_no_slack;
            else
                ++m.egpw_wastes_span;
            break;
        case PipeEventKind::TransparentPass:
            ++m.transparent_passes;
            break;
        case PipeEventKind::Fuse:
            ++m.fuses;
            break;
        case PipeEventKind::Replay:
            if (e.arg == 1)
                ++m.replays_last_arrival;
            else
                ++m.replays_width;
            break;
        case PipeEventKind::Commit:
            ++m.commits;
            break;
        case PipeEventKind::Squash:
            ++m.squashes;
            break;
        case PipeEventKind::Fetch:
        case PipeEventKind::Decode:
        case PipeEventKind::Rename:
        case PipeEventKind::Dispatch:
        case PipeEventKind::ExecBegin:
        case PipeEventKind::NUM:
            break;
        }
    });
    return m;
}

std::string
renderTraceMetrics(const TraceMetrics &m)
{
    std::ostringstream os;
    os << "trace: " << m.events << " events";
    if (m.dropped != 0)
        os << " (+" << m.dropped << " dropped, ring wrapped)";
    os << ", " << m.commits << " commits, " << m.squashes << " squashes, "
       << m.ticks_per_cycle << " ticks/cycle\n\n";

    Table slack({"fu_class", "ops", "mean_slack", "slack>0"});
    for (size_t fc = 0; fc < TraceMetrics::kNumFuClasses; ++fc) {
        const Histogram &h = m.slack_by_class[fc];
        if (h.count() == 0)
            continue;
        slack.addRow({fuClassLabel(static_cast<FuClass>(fc)),
                      std::to_string(h.count()), Table::num(h.mean()),
                      Table::pct(static_cast<double>(h.count() -
                                                     h.bucket(0)) /
                                 static_cast<double>(h.count()))});
    }
    os << "completion slack by FU class (ticks):\n" << slack.render();

    os << "\nwakeup->issue latency: " << m.wakeup_to_issue.count()
       << " grants, mean " << Table::num(m.wakeup_to_issue.mean())
       << " cycles, same-cycle "
       << (m.wakeup_to_issue.count() == 0
               ? std::string("n/a")
               : Table::pct(static_cast<double>(
                                m.wakeup_to_issue.bucket(0)) /
                            static_cast<double>(m.wakeup_to_issue.count())))
       << "\n";

    os << "recycle chains: " << m.recycle_links << " links, "
       << m.transparent_passes << " transparent passes, " << m.fuses
       << " MOS fusions";
    if (m.chain_depth.count() != 0)
        os << ", mean linked depth " << Table::num(m.chain_depth.mean());
    os << "\n";

    os << "EGPW: " << m.egpw_arms << " arms, " << m.egpw_fires
       << " fires, " << m.egpw_wastes_no_slack << " wasted (no slack), "
       << m.egpw_wastes_span << " wasted (span denied)\n";
    os << "replays: " << m.replays_last_arrival << " last-arrival, "
       << m.replays_width << " width\n";
    return os.str();
}

} // namespace redsoc

/**
 * @file
 * Pipeline trace event schema (DESIGN.md section 10). Every
 * architecturally meaningful moment in an op's life — frontend,
 * wakeup, select, sub-cycle execute begin, writeback, commit — plus
 * the ReDSOC-specific moments the aggregate CoreStats cannot show
 * (EGPW arm/fire/waste, transparent-latch pass-through, recycle-chain
 * links, MOS fusion, replays) is one fixed-size PipeEvent record.
 *
 * The schema is deliberately kernel-agnostic: every event is emitted
 * at a site both scheduler kernels execute with identical arguments,
 * so a Scan-kernel trace and an Event-kernel trace of the same run
 * are byte-identical (tests/test_trace.cc golden snapshot).
 */

#ifndef REDSOC_TRACE_TRACE_EVENTS_H
#define REDSOC_TRACE_TRACE_EVENTS_H

#include "common/types.h"

namespace redsoc {

/**
 * One kind per pipeline moment. Exporters must stay exhaustive over
 * this enum — enforced mechanically by the redsoc_lint
 * `trace-complete` rule (every enumerator must appear at least twice
 * in src/trace/exporters.cc: once per exporter).
 */
enum class PipeEventKind : u8 {
    // Frontend. The model's frontend is a single macro-stage (fetch,
    // decode and rename all complete in the dispatch cycle), so these
    // four events share a timestamp; they are kept distinct so
    // pipeline visualizations show the conventional stage ladder.
    Fetch,
    Decode,
    Rename,
    Dispatch,

    // Scheduler & datapath.
    Wakeup,    ///< last tag broadcast that made the entry ready
    Select,    ///< grant cycle (arg bit0: EGPW-speculative grant)
    ExecBegin, ///< execution start; arg = sub-cycle CI of start tick
    Writeback, ///< completion; arg = sub-cycle CI of complete tick
    Commit,    ///< in-order retirement (arg bit0: the op was a
               ///< mispredicted branch that redirected the frontend)
    Squash,    ///< terminal flush (reserved: the replay-based model
               ///< never discards a dispatched op today)

    // ReDSOC-specific.
    EgpwArm,   ///< eager grandparent wakeup requested selection
    EgpwFire,  ///< speculative grant issued with a live recycle window
    EgpwWaste, ///< speculative grant wasted (arg: 0 = no recyclable
               ///< slack this cycle, 1 = FU span unavailable)
    TransparentPass, ///< op latched transparently mid-cycle; arg = CI
    RecycleLink,     ///< link = producer whose slack this op recycled

    // Comparators / recovery.
    Fuse,   ///< MOS: op fused into producer `link`'s cycle
    Replay, ///< arg: 1 = last-arrival mispredict replay, 2 = width
            ///< mispredict conservative re-execution

    NUM,
};

/** Stable lowercase name ("egpw_fire") for exporters and tables. */
const char *pipeEventName(PipeEventKind kind);

/** One recorded pipeline event (fixed size, ring-buffer friendly). */
struct PipeEvent
{
    Tick tick = 0;       ///< absolute tick (sub-cycle) timestamp
    SeqNum seq = kNoSeq; ///< dynamic op the event belongs to
    SeqNum link = kNoSeq; ///< related op (producer for RecycleLink /
                          ///< Fuse / Wakeup), kNoSeq if none
    PipeEventKind kind = PipeEventKind::Fetch;
    u8 arg = 0;          ///< kind-specific payload (CI value, flags)
};

} // namespace redsoc

#endif // REDSOC_TRACE_TRACE_EVENTS_H

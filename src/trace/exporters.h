/**
 * @file
 * Trace exporters: render a recorded PipeTracer buffer as
 *
 *  - Chrome `trace_event` JSON (open in chrome://tracing or Perfetto;
 *    one track per pipeline stage and per FU class, execution spans
 *    as complete events at tick resolution), or
 *  - Konata/Kanata text (pipeline visualization in Konata; per-op
 *    stage ladder with recycle-link dependency arrows and ReDSOC
 *    annotations in the mouse-over label).
 *
 * Both exporters are pure functions of the (tracer, trace) pair and
 * deterministic: the same run exports byte-identical files, which is
 * what lets the golden-snapshot test compare Scan- and Event-kernel
 * traces exactly.
 */

#ifndef REDSOC_TRACE_EXPORTERS_H
#define REDSOC_TRACE_EXPORTERS_H

#include <iosfwd>
#include <optional>
#include <string>

#include "func/trace.h"
#include "trace/pipe_tracer.h"

namespace redsoc {

enum class TraceFormat : u8 { Chrome, Konata };

/** "chrome" / "konata" (also accepts "kanata"); nullopt otherwise. */
std::optional<TraceFormat> parseTraceFormat(const std::string &text);

/** Canonical file extension (".trace.json" / ".kanata"). */
const char *traceFormatExtension(TraceFormat format);

/** Pick a format for @p path: *.json => Chrome, else Konata. */
TraceFormat traceFormatForPath(const std::string &path);

/** Chrome trace_event JSON ("traceEvents" array form). */
void exportChromeTrace(const PipeTracer &tracer, const Trace &trace,
                       std::ostream &os);

/** Konata (Kanata 0004) pipeline-visualizer text. */
void exportKonata(const PipeTracer &tracer, const Trace &trace,
                  std::ostream &os);

/** Export to @p path in @p format; fatal() on I/O failure. */
void writeTraceFile(const std::string &path, TraceFormat format,
                    const PipeTracer &tracer, const Trace &trace);

/** @p key with every filesystem-hostile character replaced by '_'
 *  (run keys become file names under REDSOC_TRACE_DIR). */
std::string sanitizeTraceFileName(const std::string &key);

/**
 * Process-wide tracing request, read once from the environment:
 *   REDSOC_TRACE_DIR    directory to drop one trace per simulated
 *                       point into (SimDriver honours this for every
 *                       cache-miss run, so any harness is traceable
 *                       without code changes);
 *   REDSOC_TRACE_FORMAT "chrome" | "konata" (default konata);
 *   REDSOC_TRACE_CAP    ring capacity in events (default 1M).
 */
struct TraceEnv
{
    bool active = false;
    std::string dir;
    TraceFormat format = TraceFormat::Konata;
    size_t capacity = PipeTracer::kDefaultCapacity;

    static const TraceEnv &get();

    /** Process-wide truncation tally: record that one traced run's
     *  ring wrapped and its export is missing @p dropped_events from
     *  the head. Thread-safe (SimDriver traces from pool workers).
     *  Returns the updated number of truncated runs. */
    static u64 noteTruncatedRun(u64 dropped_events);
    /** Traced runs whose export was truncated so far. */
    static u64 truncatedRuns();
    /** Events dropped across all truncated runs so far. */
    static u64 truncatedEvents();
};

} // namespace redsoc

#endif // REDSOC_TRACE_EXPORTERS_H

/**
 * @file
 * SimDriver: the top-level experiment orchestrator used by the
 * examples and the benchmark harness. Caches workload traces and
 * core runs so a figure's full (workload x core x mode) matrix only
 * simulates each point once — and, since every point is an
 * independent single-threaded simulation, fans batches out across a
 * fixed thread pool:
 *
 *  - run()/trace() are safe to call from any number of threads; each
 *    (workload, configKey) point simulates exactly once behind a
 *    per-key std::shared_future, trace construction likewise;
 *  - prefetch()/runAll() enumerate a matrix up front and saturate
 *    std::thread::hardware_concurrency() workers with it;
 *  - when REDSOC_CACHE_DIR is set, finished points persist to an
 *    on-disk cache shared across harness processes (see run_cache.h).
 *
 * Batch results are bit-identical to serial runs: parallelism only
 * reorders which deterministic point simulates when.
 */

#ifndef REDSOC_SIM_DRIVER_H
#define REDSOC_SIM_DRIVER_H

#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/ooo_core.h"
#include "proc/processor.h"
#include "sim/run_cache.h"
#include "trace/pipe_tracer.h"
#include "workloads/registry.h"

namespace redsoc {

class SimDriver
{
  public:
    explicit SimDriver(SeqNum max_ops = 2'000'000);

    /** One cell of a simulation matrix. */
    struct Point
    {
        std::string workload;
        CoreConfig config;
    };

    /** The functional trace of a workload (built and cached; safe to
     *  call concurrently — one thread builds, the rest wait). */
    const Trace &trace(const std::string &workload);

    /** Simulate (cached by workload + configuration fingerprint;
     *  concurrency-safe, each point simulates exactly once). */
    const CoreStats &run(const std::string &workload,
                         const CoreConfig &config);

    /**
     * Simulate one point with @p tracer attached, bypassing both the
     * in-memory and disk result caches (a cache hit would yield stats
     * without events). The trace cache is still used. The recorded
     * buffer is the caller's to export; the returned stats are
     * byte-identical to an untraced run() of the same point.
     */
    CoreStats runTraced(const std::string &workload,
                        const CoreConfig &config, PipeTracer &tracer);

    /**
     * Simulate every point of a matrix across the process-wide
     * thread pool, blocking until all are cached. Later run() calls
     * on the same points are pure lookups. Call from a non-pool
     * thread (the harness main).
     */
    void prefetch(const std::vector<Point> &points);

    /** prefetch() + collect the stats of each point, in order. */
    std::vector<CoreStats> runAll(const std::vector<Point> &points);

    /** Build the traces of many workloads in parallel. */
    void prefetchTraces(const std::vector<std::string> &workloads);

    /**
     * Simulate a multi-programmed mix on an N-core Processor: core i
     * runs workload mix[i % mix.size()] (so a short mix tiles across
     * the cores). Cached exactly like run() — in memory behind a
     * per-key shared_future and on disk as a ".pstats" entry — and
     * deterministic regardless of host thread count (the Processor
     * lockstep is sequential).
     */
    const ProcStats &runProc(const std::vector<std::string> &mix,
                             const ProcConfig &config);

    /**
     * Wall-clock-equivalent speedup of @p variant over @p base on a
     * workload (same clock period: cycle ratio).
     */
    double speedup(const std::string &workload, const CoreConfig &base,
                   const CoreConfig &variant);

    /** Arithmetic mean (the paper reports arithmetic suite means). */
    static double mean(const std::vector<double> &values);

    /** Configuration fingerprint used as the cache key (includes the
     *  full cache-hierarchy geometry — v4 key dimension). */
    static std::string configKey(const CoreConfig &config);

    /** Multi-core fingerprint: core template key + core count, LLC
     *  geometry, DRAM banking and address-space sharing. */
    static std::string procConfigKey(const ProcConfig &config);

    /** Full run key: workload @ configKey # trace length cap. */
    std::string runKey(const std::string &workload,
                       const CoreConfig &config) const;

    /** Full multi-core run key: the '+'-joined mix @ procConfigKey
     *  # trace length cap. */
    std::string procRunKey(const std::vector<std::string> &mix,
                           const ProcConfig &config) const;

    SeqNum maxOps() const { return max_ops_; }

  private:
    std::shared_future<Trace> traceFuture(const std::string &workload);
    std::shared_future<CoreStats> runFuture(const std::string &workload,
                                            const CoreConfig &config);
    std::shared_future<ProcStats>
    procFuture(const std::vector<std::string> &mix,
               const ProcConfig &config);

    // Both immutable after the constructor; RunCache itself is
    // stateless (every method const, on-disk writes are atomic
    // renames), so concurrent use needs no lock.
    SeqNum max_ops_ REDSOC_NOT_GUARDED;
    std::optional<RunCache> disk_cache_ REDSOC_NOT_GUARDED;

    // mu_ only guards the future maps: a point's slot is claimed
    // under the lock, but the simulation itself runs unlocked and
    // waiters block on the shared_future, never on mu_.
    std::mutex mu_;
    std::map<std::string, std::shared_future<Trace>> traces_
        REDSOC_GUARDED_BY(mu_);
    std::map<std::string, std::shared_future<CoreStats>> results_
        REDSOC_GUARDED_BY(mu_);
    std::map<std::string, std::shared_future<ProcStats>> proc_results_
        REDSOC_GUARDED_BY(mu_);
};

/** Convenience: preset core with a scheduler mode applied. */
CoreConfig configFor(const std::string &core_name, SchedMode mode);

} // namespace redsoc

#endif // REDSOC_SIM_DRIVER_H

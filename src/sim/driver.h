/**
 * @file
 * SimDriver: the top-level experiment orchestrator used by the
 * examples and the benchmark harness. Caches workload traces and
 * core runs so a figure's full (workload x core x mode) matrix only
 * simulates each point once.
 */

#ifndef REDSOC_SIM_DRIVER_H
#define REDSOC_SIM_DRIVER_H

#include <map>
#include <string>
#include <vector>

#include "core/ooo_core.h"
#include "workloads/registry.h"

namespace redsoc {

class SimDriver
{
  public:
    explicit SimDriver(SeqNum max_ops = 2'000'000) : max_ops_(max_ops) {}

    /** The functional trace of a workload (built and cached). */
    const Trace &trace(const std::string &workload);

    /** Simulate (cached by workload + configuration fingerprint). */
    const CoreStats &run(const std::string &workload,
                         const CoreConfig &config);

    /**
     * Wall-clock-equivalent speedup of @p variant over @p base on a
     * workload (same clock period: cycle ratio).
     */
    double speedup(const std::string &workload, const CoreConfig &base,
                   const CoreConfig &variant);

    /** Arithmetic mean (the paper reports arithmetic suite means). */
    static double mean(const std::vector<double> &values);

    /** Configuration fingerprint used as the cache key. */
    static std::string configKey(const CoreConfig &config);

  private:
    SeqNum max_ops_;
    std::map<std::string, Trace> traces_;
    std::map<std::string, CoreStats> results_;
};

/** Convenience: preset core with a scheduler mode applied. */
CoreConfig configFor(const std::string &core_name, SchedMode mode);

} // namespace redsoc

#endif // REDSOC_SIM_DRIVER_H

#include "sim/driver.h"

#include <sstream>

#include "common/logging.h"

namespace redsoc {

const Trace &
SimDriver::trace(const std::string &workload)
{
    auto it = traces_.find(workload);
    if (it == traces_.end()) {
        it = traces_.emplace(workload, traceWorkload(workload, max_ops_))
                 .first;
    }
    return it->second;
}

std::string
SimDriver::configKey(const CoreConfig &config)
{
    std::ostringstream os;
    os << config.name << '|' << schedModeName(config.mode) << '|'
       << rsDesignName(config.rs_design) << '|'
       << config.ci_precision_bits << '|' << config.slack_threshold_ticks
       << '|' << config.egpw << config.skewed_select << '|'
       << config.dynamic_threshold << config.threshold_epoch << '|'
       << config.timing.clock_period_ps << '|'
       << config.timing.pvt_derate << '|'
       << config.memory.offcore_latency_scale << '|'
       << config.memory.prefetch;
    return os.str();
}

const CoreStats &
SimDriver::run(const std::string &workload, const CoreConfig &config)
{
    const std::string key = workload + "@" + configKey(config);
    auto it = results_.find(key);
    if (it == results_.end()) {
        OooCore core(config);
        it = results_.emplace(key, core.run(trace(workload))).first;
    }
    return it->second;
}

double
SimDriver::speedup(const std::string &workload, const CoreConfig &base,
                   const CoreConfig &variant)
{
    const CoreStats &b = run(workload, base);
    const CoreStats &v = run(workload, variant);
    panic_if(v.cycles == 0, "zero-cycle run");
    return static_cast<double>(b.cycles) / static_cast<double>(v.cycles);
}

double
SimDriver::mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

CoreConfig
configFor(const std::string &core_name, SchedMode mode)
{
    CoreConfig config = coreByName(core_name);
    config.mode = mode;
    return config;
}

} // namespace redsoc

#include "sim/driver.h"

#include <sstream>

#include "common/logging.h"
#include "common/shutdown.h"
#include "server/offload.h"
#include "sim/thread_pool.h"
#include "trace/exporters.h"

namespace redsoc {

SimDriver::SimDriver(SeqNum max_ops)
    : max_ops_(max_ops), disk_cache_(RunCache::fromEnv())
{
}

std::shared_future<Trace>
SimDriver::traceFuture(const std::string &workload)
{
    std::promise<Trace> prom;
    std::shared_future<Trace> fut = prom.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = traces_.try_emplace(workload, fut);
        if (!inserted)
            return it->second; // someone else is (or was) building it
    }
    // We claimed the slot: build outside the lock; waiters block on
    // the shared future (the per-workload latch).
    try {
        prom.set_value(traceWorkload(workload, max_ops_));
    } catch (...) {
        prom.set_exception(std::current_exception());
    }
    return fut;
}

const Trace &
SimDriver::trace(const std::string &workload)
{
    return traceFuture(workload).get();
}

std::string
SimDriver::configKey(const CoreConfig &config)
{
    std::ostringstream os;
    os << config.name << '|' << schedModeName(config.mode) << '|'
       << rsDesignName(config.rs_design) << '|'
       << schedKernelName(config.sched_kernel) << '|'
       << config.ci_precision_bits << '|' << config.slack_threshold_ticks
       << '|' << config.egpw << config.skewed_select << '|'
       << config.dynamic_threshold << config.threshold_epoch << '|'
       << config.no_commit_horizon << '|'
       // Structural capacities (v5 key dimension): before these were
       // fingerprinted, two configs differing only in e.g. rs_entries
       // silently aliased to one cache entry — harmless for the named
       // presets (the name disambiguates) but wrong for the sweep
       // server, which dedups arbitrary client configs by this key.
       << config.frontend_width << ',' << config.commit_width << '|'
       << config.rob_entries << ',' << config.lsq_entries << ','
       << config.rs_entries << '|' << config.alu_units << ','
       << config.simd_units << ',' << config.fp_units << ','
       << config.mem_ports << '|' << config.redirect_penalty << '|'
       << config.branch_pred.table_bits << ','
       << config.branch_pred.ras_entries << '|'
       << config.width_pred.entries << ','
       << config.width_pred.confidence_bits << '|'
       << config.last_arrival.entries << '|'
       << config.memory.prefetcher.entries << ','
       << config.memory.prefetcher.degree << ','
       << config.memory.prefetcher.min_confidence << '|'
       << config.timing.clock_period_ps << '|'
       << config.timing.pvt_derate << '|'
       << config.memory.offcore_latency_scale << '|'
       << config.memory.prefetch << config.memory.prefetch_fill_l1
       << '|' << config.memory.l1.size_bytes << '/'
       << config.memory.l1.assoc << '/' << config.memory.l1.line_bytes
       << '|' << config.memory.l2.size_bytes << '/'
       << config.memory.l2.assoc << '|' << config.memory.l1_latency
       << ',' << config.memory.l2_latency << ','
       << config.memory.mem_latency;
    return os.str();
}

std::string
SimDriver::procConfigKey(const ProcConfig &config)
{
    std::ostringstream os;
    os << configKey(config.core) << "|cores=" << config.num_cores
       << "|llc=" << config.llc.size_bytes << '/' << config.llc.assoc
       << '/' << config.llc.line_bytes << "|dram=" << config.dram.banks
       << '/' << config.dram.bank_occupancy
       << "|shared=" << config.share_address_space;
    return os.str();
}

std::string
SimDriver::runKey(const std::string &workload,
                  const CoreConfig &config) const
{
    return workload + "@" + configKey(config) +
           "#ops=" + std::to_string(max_ops_);
}

std::string
SimDriver::procRunKey(const std::vector<std::string> &mix,
                      const ProcConfig &config) const
{
    std::string joined;
    for (const std::string &w : mix) {
        if (!joined.empty())
            joined += '+';
        joined += w;
    }
    return joined + "@" + procConfigKey(config) +
           "#ops=" + std::to_string(max_ops_);
}

std::shared_future<CoreStats>
SimDriver::runFuture(const std::string &workload,
                     const CoreConfig &config)
{
    const std::string key = runKey(workload, config);
    std::promise<CoreStats> prom;
    std::shared_future<CoreStats> fut = prom.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = results_.try_emplace(key, fut);
        if (!inserted)
            return it->second; // point already claimed: share it
    }
    try {
        if (disk_cache_) {
            if (auto hit = disk_cache_->load(key)) {
                prom.set_value(std::move(*hit));
                return fut;
            }
        }
        // REDSOC_SWEEP_SERVER: offload the point to a running
        // redsoc_sweepd instead of simulating here (transparent: any
        // failure falls back to the local path below, see offload.cc).
        if (auto remote = serverOffloadRun(workload, config, max_ops_)) {
            if (disk_cache_)
                disk_cache_->store(key, *remote);
            prom.set_value(std::move(*remote));
            return fut;
        }
        OooCore core(config);
        const TraceEnv &tenv = TraceEnv::get();
        CoreStats stats;
        if (tenv.active) {
            // REDSOC_TRACE_DIR: any harness drops one pipeline trace
            // per simulated (cache-miss) point, no code changes
            // needed. Tracing is behavior-neutral, so the stats stay
            // cacheable.
            PipeTracer tracer(tenv.capacity);
            core.setTracer(&tracer);
            stats = core.run(trace(workload));
            if (tracer.droppedEvents() != 0) {
                // Never truncate silently: tally the run and say so on
                // stderr (table/JSON output stays on stdout).
                const u64 runs =
                    TraceEnv::noteTruncatedRun(tracer.droppedEvents());
                warn("trace export truncated for ", key, ": ",
                     tracer.droppedEvents(),
                     " events dropped from the head of the run (",
                     runs, " truncated run", runs == 1 ? "" : "s",
                     " so far; raise REDSOC_TRACE_CAP)");
            }
            writeTraceFile(tenv.dir + "/" + sanitizeTraceFileName(key) +
                               traceFormatExtension(tenv.format),
                           tenv.format, tracer, trace(workload));
        } else {
            stats = core.run(trace(workload));
        }
        if (disk_cache_)
            disk_cache_->store(key, stats);
        prom.set_value(std::move(stats));
    } catch (...) {
        prom.set_exception(std::current_exception());
    }
    return fut;
}

const CoreStats &
SimDriver::run(const std::string &workload, const CoreConfig &config)
{
    return runFuture(workload, config).get();
}

std::shared_future<ProcStats>
SimDriver::procFuture(const std::vector<std::string> &mix,
                      const ProcConfig &config)
{
    const std::string key = procRunKey(mix, config);
    std::promise<ProcStats> prom;
    std::shared_future<ProcStats> fut = prom.get_future().share();
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = proc_results_.try_emplace(key, fut);
        if (!inserted)
            return it->second; // point already claimed: share it
    }
    try {
        panic_if(mix.empty(), "empty workload mix");
        if (disk_cache_) {
            if (auto hit = disk_cache_->loadProc(key)) {
                prom.set_value(std::move(*hit));
                return fut;
            }
        }
        if (auto remote = serverOffloadRunProc(mix, config, max_ops_)) {
            if (disk_cache_)
                disk_cache_->storeProc(key, *remote);
            prom.set_value(std::move(*remote));
            return fut;
        }
        // Build the mix's traces first (shared with single-core runs
        // of the same workloads), then run the sequential lockstep.
        std::vector<const Trace *> traces;
        traces.reserve(config.num_cores);
        for (unsigned i = 0; i < config.num_cores; ++i)
            traces.push_back(&trace(mix[i % mix.size()]));
        Processor proc(config);
        ProcStats stats = proc.run(traces);
        if (disk_cache_)
            disk_cache_->storeProc(key, stats);
        prom.set_value(std::move(stats));
    } catch (...) {
        prom.set_exception(std::current_exception());
    }
    return fut;
}

const ProcStats &
SimDriver::runProc(const std::vector<std::string> &mix,
                   const ProcConfig &config)
{
    return procFuture(mix, config).get();
}

CoreStats
SimDriver::runTraced(const std::string &workload,
                     const CoreConfig &config, PipeTracer &tracer)
{
    OooCore core(config);
    core.setTracer(&tracer);
    return core.run(trace(workload));
}

void
SimDriver::prefetch(const std::vector<Point> &points)
{
    if (points.empty())
        return;
    ThreadPool &pool = globalSimPool();
    for (const Point &p : points) {
        if (shutdownRequested())
            break; // stop feeding the queue once a signal arrived
        pool.submit([this, p] {
            // Queued before the signal, started after: skip instead of
            // simulating, so a shutdown drains the backlog in
            // milliseconds. The point stays uncomputed (and uncached).
            if (shutdownRequested())
                return;
            (void)run(p.workload, p.config);
        });
    }
    pool.wait();
}

std::vector<CoreStats>
SimDriver::runAll(const std::vector<Point> &points)
{
    prefetch(points);
    // Don't silently re-simulate skipped points synchronously — an
    // interrupted batch is an interrupted batch.
    if (shutdownRequested())
        throw ShutdownInterrupt();
    std::vector<CoreStats> out;
    out.reserve(points.size());
    for (const Point &p : points)
        out.push_back(run(p.workload, p.config));
    return out;
}

void
SimDriver::prefetchTraces(const std::vector<std::string> &workloads)
{
    if (workloads.empty())
        return;
    ThreadPool &pool = globalSimPool();
    for (const std::string &w : workloads) {
        if (shutdownRequested())
            break;
        pool.submit([this, w] {
            if (shutdownRequested())
                return;
            (void)trace(w);
        });
    }
    pool.wait();
}

double
SimDriver::speedup(const std::string &workload, const CoreConfig &base,
                   const CoreConfig &variant)
{
    const CoreStats &b = run(workload, base);
    const CoreStats &v = run(workload, variant);
    panic_if(v.cycles == 0, "zero-cycle run");
    return static_cast<double>(b.cycles) / static_cast<double>(v.cycles);
}

double
SimDriver::mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

CoreConfig
configFor(const std::string &core_name, SchedMode mode)
{
    CoreConfig config = coreByName(core_name);
    config.mode = mode;
    return config;
}

} // namespace redsoc

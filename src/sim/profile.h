/**
 * @file
 * Lightweight host-side phase profiler. RAII timers accumulate
 * wall-clock nanoseconds and invocation counts per simulator phase
 * into process-wide atomic counters, so any harness (redsoc_sim
 * --profile, bench_all --profile) can report where host time went
 * without touching the simulated result.
 *
 * Disabled (the default) it costs one predictable branch per scope;
 * enable via setEnabled(true) or the REDSOC_PROFILE=1 environment
 * variable. Counters are process-wide and thread-safe: parallel
 * SimDriver batches aggregate across workers.
 */

#ifndef REDSOC_SIM_PROFILE_H
#define REDSOC_SIM_PROFILE_H

#include <chrono>
#include <iosfwd>

#include "common/types.h"

namespace redsoc {
namespace prof {

/** Simulator phases with dedicated timers. Issue envelops Wakeup and
 *  Select; Wakeup also accrues inside Select when a grant's broadcast
 *  fires mid-scan (nested timers each charge their own phase). */
enum class Phase : unsigned {
    Commit,      ///< OooCore commit stage
    Issue,       ///< OooCore wakeup+select stage
    Wakeup,      ///< wake-queue drain + issue-time broadcasts
    Select,      ///< Phase-A/B candidate evaluation and granting
    Dispatch,    ///< OooCore fetch/rename/dispatch stage
    TraceBuild,  ///< functional trace construction
    Run,         ///< whole-core simulation (envelops the stages)
    NUM,
};

const char *phaseName(Phase phase);

/** Profiling on/off (process-wide). Initialized from REDSOC_PROFILE. */
bool enabled();
void setEnabled(bool on);

/** Accumulate @p ns into @p phase (one invocation). */
void record(Phase phase, u64 ns);

struct PhaseTotals
{
    u64 ns = 0;
    u64 calls = 0;
};

PhaseTotals totals(Phase phase);

/** Zero all counters (harness setup / between benchmark repeats). */
void reset();

/** Human-readable per-phase table (no output when nothing recorded). */
void report(std::ostream &os);

/**
 * RAII phase timer. The @p active flag is captured at construction so
 * the hot loop can hoist the enabled() check.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Phase phase) : ScopedTimer(phase, enabled()) {}
    ScopedTimer(Phase phase, bool active)
        : phase_(phase), active_(active)
    {
        if (active_)
            start_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer()
    {
        if (active_) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            record(phase_, static_cast<u64>(ns));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Phase phase_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace prof
} // namespace redsoc

#endif // REDSOC_SIM_PROFILE_H

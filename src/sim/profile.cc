#include "sim/profile.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <iomanip>
#include <ostream>

#include "common/logging.h"

namespace redsoc {
namespace prof {

namespace {

struct PhaseCounter
{
    std::atomic<u64> ns{0};
    std::atomic<u64> calls{0};
};

std::array<PhaseCounter, static_cast<size_t>(Phase::NUM)> counters;

std::atomic<bool> profiling_enabled{[] {
    const char *env = std::getenv("REDSOC_PROFILE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

} // namespace

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Commit: return "commit";
      case Phase::Issue: return "issue";
      case Phase::Wakeup: return "wakeup";
      case Phase::Select: return "select";
      case Phase::Dispatch: return "dispatch";
      case Phase::TraceBuild: return "trace_build";
      case Phase::Run: return "run";
      default: panic("bad profiler phase");
    }
}

bool
enabled()
{
    return profiling_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    profiling_enabled.store(on, std::memory_order_relaxed);
}

void
record(Phase phase, u64 ns)
{
    auto &c = counters[static_cast<size_t>(phase)];
    c.ns.fetch_add(ns, std::memory_order_relaxed);
    c.calls.fetch_add(1, std::memory_order_relaxed);
}

PhaseTotals
totals(Phase phase)
{
    const auto &c = counters[static_cast<size_t>(phase)];
    return {c.ns.load(std::memory_order_relaxed),
            c.calls.load(std::memory_order_relaxed)};
}

void
reset()
{
    for (auto &c : counters) {
        c.ns.store(0, std::memory_order_relaxed);
        c.calls.store(0, std::memory_order_relaxed);
    }
}

void
report(std::ostream &os)
{
    u64 any = 0;
    for (unsigned p = 0; p < static_cast<unsigned>(Phase::NUM); ++p)
        any += totals(static_cast<Phase>(p)).calls;
    if (any == 0)
        return;

    os << "host profile (wall clock, process-wide):\n";
    os << "  " << std::left << std::setw(12) << "phase" << std::right
       << std::setw(12) << "calls" << std::setw(14) << "total ms"
       << std::setw(12) << "ns/call" << '\n';
    for (unsigned p = 0; p < static_cast<unsigned>(Phase::NUM); ++p) {
        const auto t = totals(static_cast<Phase>(p));
        if (t.calls == 0)
            continue;
        os << "  " << std::left << std::setw(12)
           << phaseName(static_cast<Phase>(p)) << std::right
           << std::setw(12) << t.calls << std::setw(14) << std::fixed
           << std::setprecision(2)
           << static_cast<double>(t.ns) / 1e6 << std::setw(12)
           << t.ns / t.calls << '\n';
    }
}

} // namespace prof
} // namespace redsoc

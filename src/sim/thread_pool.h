/**
 * @file
 * A small fixed-size thread pool (no work stealing): tasks go into a
 * single FIFO queue and a fixed set of workers drains it. Built for
 * the SimDriver's batch APIs, where every task is one independent
 * (workload x config) simulation point and fairness/locality tricks
 * would buy nothing.
 */

#ifndef REDSOC_SIM_THREAD_POOL_H
#define REDSOC_SIM_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace redsoc {

class ThreadPool
{
  public:
    /** @p threads == 0 selects std::thread::hardware_concurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; it runs on some worker, FIFO order. */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has finished. If any
     * task threw, the first captured exception is rethrown here (the
     * remaining tasks still ran).
     */
    void wait() REDSOC_NO_THREAD_SAFETY_ANALYSIS;

    /**
     * Discard every task that has not started yet (graceful shutdown:
     * in-flight tasks keep running, queued ones are dropped).
     * @return number of tasks discarded
     */
    size_t cancelPending();

    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop() REDSOC_NO_THREAD_SAFETY_ANALYSIS;

    /** Nothing queued and nothing running: wait() may return. */
    bool idle() const REDSOC_REQUIRES(mu_)
    {
        return queue_.empty() && active_ == 0;
    }

    std::mutex mu_;
    std::condition_variable task_ready_;
    std::condition_variable all_idle_;
    std::deque<std::function<void()>> queue_ REDSOC_GUARDED_BY(mu_);
    // Written only by the constructor, joined only by the destructor;
    // workers never touch the vector itself.
    std::vector<std::thread> workers_ REDSOC_NOT_GUARDED;
    std::exception_ptr first_error_ REDSOC_GUARDED_BY(mu_);
    unsigned active_ REDSOC_GUARDED_BY(mu_) = 0;
    bool stopping_ REDSOC_GUARDED_BY(mu_) = false;
};

/** Process-wide pool shared by every SimDriver batch call. */
ThreadPool &globalSimPool();

} // namespace redsoc

#endif // REDSOC_SIM_THREAD_POOL_H

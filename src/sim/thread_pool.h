/**
 * @file
 * A small fixed-size thread pool (no work stealing): tasks go into a
 * single FIFO queue and a fixed set of workers drains it. Built for
 * the SimDriver's batch APIs, where every task is one independent
 * (workload x config) simulation point and fairness/locality tricks
 * would buy nothing.
 */

#ifndef REDSOC_SIM_THREAD_POOL_H
#define REDSOC_SIM_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace redsoc {

class ThreadPool
{
  public:
    /** @p threads == 0 selects std::thread::hardware_concurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; it runs on some worker, FIFO order. */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has finished. If any
     * task threw, the first captured exception is rethrown here (the
     * remaining tasks still ran).
     */
    void wait();

    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable task_ready_;
    std::condition_variable all_idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::exception_ptr first_error_;
    unsigned active_ = 0;
    bool stopping_ = false;
};

/** Process-wide pool shared by every SimDriver batch call. */
ThreadPool &globalSimPool();

} // namespace redsoc

#endif // REDSOC_SIM_THREAD_POOL_H

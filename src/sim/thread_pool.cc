#include "sim/thread_pool.h"

namespace redsoc {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
}

// wait() and workerLoop() drive a std::unique_lock through a
// condition-variable protocol; libc++ does not annotate unique_lock,
// so both bodies are opted out of clang's analysis
// (REDSOC_NO_THREAD_SAFETY_ANALYSIS on the declarations) and checked
// by redsoc_lint R10 instead, which models unique_lock including the
// manual unlock()/lock() window around task().
void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!idle())
        all_idle_.wait(lock);
    if (first_error_) {
        std::exception_ptr err = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

size_t
ThreadPool::cancelPending()
{
    std::deque<std::function<void()>> dropped;
    {
        std::lock_guard<std::mutex> lock(mu_);
        dropped.swap(queue_);
        if (idle())
            all_idle_.notify_all();
    }
    // Destroy the captured closures outside the lock: a task may own
    // promises whose destructors run arbitrary waiter code.
    return dropped.size();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        while (!stopping_ && queue_.empty())
            task_ready_.wait(lock);
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        try {
            task();
        } catch (...) {
            lock.lock();
            if (!first_error_)
                first_error_ = std::current_exception();
            lock.unlock();
        }
        lock.lock();
        --active_;
        if (idle())
            all_idle_.notify_all();
    }
}

ThreadPool &
globalSimPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace redsoc

#include "sim/run_cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.h"

namespace fs = std::filesystem;

namespace redsoc {

namespace {

constexpr const char *kMagic = "redsoc-stats";
constexpr const char *kProcMagic = "redsoc-pstats";

/** FNV-1a, for stable filenames independent of key length. */
u64
hashKey(const std::string &key)
{
    u64 h = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
putU64(std::ostringstream &os, const char *name, u64 v)
{
    os << name << ' ' << v << '\n';
}

void
putF64(std::ostringstream &os, const char *name, double v)
{
    char buf[64];
    // 17 significant digits round-trip any IEEE754 double exactly,
    // which keeps cached results bit-identical to fresh runs.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << name << ' ' << buf << '\n';
}

/** Strict field reader: "name value" in a fixed order. */
class FieldReader
{
  public:
    explicit FieldReader(std::istream &in) : in_(in) {}

    bool ok() const { return ok_; }

    u64 u(const char *name)
    {
        std::string tag;
        u64 v = 0;
        if (!(in_ >> tag >> v) || tag != name)
            ok_ = false;
        return v;
    }

    double f(const char *name)
    {
        std::string tag;
        double v = 0.0;
        if (!(in_ >> tag >> v) || tag != name)
            ok_ = false;
        return v;
    }

  private:
    std::istream &in_;
    bool ok_ = true;
};

/**
 * Body shared by the single-core and multi-core codecs: every
 * CoreStats field, named, in a fixed order, ending with the
 * chain-length histogram line.
 */
void
writeCoreFields(std::ostringstream &os, const CoreStats &stats)
{
    putU64(os, "cycles", stats.cycles);
    putU64(os, "committed", stats.committed);
    putU64(os, "fu_stall_cycles", stats.fu_stall_cycles);
    putU64(os, "recycled_ops", stats.recycled_ops);
    putU64(os, "two_cycle_holds", stats.two_cycle_holds);
    putU64(os, "slack_recycled_ticks", stats.slack_recycled_ticks);
    putU64(os, "egpw_requests", stats.egpw_requests);
    putU64(os, "egpw_grants", stats.egpw_grants);
    putU64(os, "egpw_wasted", stats.egpw_wasted);
    putU64(os, "fused_ops", stats.fused_ops);
    putU64(os, "la_predictions", stats.la_predictions);
    putU64(os, "la_mispredictions", stats.la_mispredictions);
    putU64(os, "width_predictions", stats.width_predictions);
    putU64(os, "width_aggressive", stats.width_aggressive);
    putU64(os, "width_conservative", stats.width_conservative);
    putU64(os, "branch_lookups", stats.branch_lookups);
    putU64(os, "branch_mispredicts", stats.branch_mispredicts);
    putU64(os, "loads", stats.loads);
    putU64(os, "stores", stats.stores);
    putU64(os, "l1_load_misses", stats.l1_load_misses);
    putU64(os, "store_forwards", stats.store_forwards);
    putU64(os, "threshold_min", stats.threshold_min);
    putU64(os, "threshold_max", stats.threshold_max);
    putU64(os, "threshold_final", stats.threshold_final);
    putU64(os, "commit_checksum", stats.commit_checksum);
    putF64(os, "expected_chain_length", stats.expected_chain_length);
    putF64(os, "sim_seconds", stats.sim_seconds);

    const Histogram &h = stats.chain_lengths;
    os << "hist " << h.maxSample() << ' ' << h.count() << ' '
       << h.total() << ' ' << h.sumSquares();
    for (u64 b : h.rawBuckets())
        os << ' ' << b;
    os << '\n';
}

/** Read back exactly what writeCoreFields wrote. */
std::optional<CoreStats>
readCoreFields(std::istream &in)
{
    CoreStats s;
    FieldReader r(in);
    s.cycles = r.u("cycles");
    s.committed = r.u("committed");
    s.fu_stall_cycles = r.u("fu_stall_cycles");
    s.recycled_ops = r.u("recycled_ops");
    s.two_cycle_holds = r.u("two_cycle_holds");
    s.slack_recycled_ticks = r.u("slack_recycled_ticks");
    s.egpw_requests = r.u("egpw_requests");
    s.egpw_grants = r.u("egpw_grants");
    s.egpw_wasted = r.u("egpw_wasted");
    s.fused_ops = r.u("fused_ops");
    s.la_predictions = r.u("la_predictions");
    s.la_mispredictions = r.u("la_mispredictions");
    s.width_predictions = r.u("width_predictions");
    s.width_aggressive = r.u("width_aggressive");
    s.width_conservative = r.u("width_conservative");
    s.branch_lookups = r.u("branch_lookups");
    s.branch_mispredicts = r.u("branch_mispredicts");
    s.loads = r.u("loads");
    s.stores = r.u("stores");
    s.l1_load_misses = r.u("l1_load_misses");
    s.store_forwards = r.u("store_forwards");
    s.threshold_min = r.u("threshold_min");
    s.threshold_max = r.u("threshold_max");
    s.threshold_final = r.u("threshold_final");
    s.commit_checksum = r.u("commit_checksum");
    s.expected_chain_length = r.f("expected_chain_length");
    s.sim_seconds = r.f("sim_seconds");
    if (!r.ok())
        return std::nullopt;

    std::string hist_tag;
    u64 max_sample = 0, count = 0, sum = 0, sum_sq = 0;
    if (!(in >> hist_tag >> max_sample >> count >> sum >> sum_sq) ||
        hist_tag != "hist" || max_sample > 1'000'000) {
        return std::nullopt;
    }
    std::vector<u64> buckets(max_sample + 1, 0);
    for (u64 &b : buckets)
        if (!(in >> b))
            return std::nullopt;
    s.chain_lengths = Histogram::fromRaw(max_sample, std::move(buckets),
                                         count, sum, sum_sq);
    return s;
}

/** "<magic> vN\nkey <key>\n" header; false on any mismatch. */
bool
readHeader(std::istream &in, const char *magic,
           const std::string &expect_key)
{
    std::string got_magic, version;
    if (!(in >> got_magic >> version) || got_magic != magic ||
        version != "v" + std::to_string(RunCache::kFormatVersion)) {
        return false;
    }
    std::string tag, key;
    if (!(in >> tag) || tag != "key" || !std::getline(in, key))
        return false;
    // Strip the single separator space after "key".
    if (!key.empty() && key.front() == ' ')
        key.erase(0, 1);
    if (!expect_key.empty() && key != expect_key)
        return false; // hash collision or stale rename
    return true;
}

} // namespace

std::string
serializeStats(const std::string &key, const CoreStats &stats)
{
    std::ostringstream os;
    os << kMagic << " v" << RunCache::kFormatVersion << '\n';
    os << "key " << key << '\n';
    writeCoreFields(os, stats);
    os << "end\n";
    return os.str();
}

std::optional<CoreStats>
deserializeStats(const std::string &text, const std::string &expect_key)
{
    std::istringstream in(text);
    if (!readHeader(in, kMagic, expect_key))
        return std::nullopt;

    auto s = readCoreFields(in);
    if (!s)
        return std::nullopt;

    std::string endtag;
    if (!(in >> endtag) || endtag != "end")
        return std::nullopt; // truncated write
    return s;
}

std::string
serializeProcStats(const std::string &key, const ProcStats &stats)
{
    std::ostringstream os;
    os << kProcMagic << " v" << RunCache::kFormatVersion << '\n';
    os << "key " << key << '\n';
    putU64(os, "cycles", stats.cycles);
    putU64(os, "cores", stats.cores.size());
    for (size_t i = 0; i < stats.cores.size(); ++i) {
        os << "core " << i << '\n';
        writeCoreFields(os, stats.cores[i]);
    }
    os << "llc\n";
    putU64(os, "evictions", stats.llc.evictions);
    putU64(os, "writebacks", stats.llc.writebacks);
    putU64(os, "per_core", stats.llc.per_core.size());
    for (size_t i = 0; i < stats.llc.per_core.size(); ++i) {
        const LlcCoreStats &cs = stats.llc.per_core[i];
        os << "llc_core " << i << '\n';
        putU64(os, "accesses", cs.accesses);
        putU64(os, "hits", cs.hits);
        putU64(os, "misses", cs.misses);
        putU64(os, "mshr_merges", cs.mshr_merges);
        putU64(os, "prefetch_fills", cs.prefetch_fills);
        putU64(os, "bank_wait_cycles", cs.bank_wait_cycles);
        putU64(os, "back_invalidations", cs.back_invalidations);
        putU64(os, "lines_owned", cs.lines_owned);
    }
    os << "end\n";
    return os.str();
}

std::optional<ProcStats>
deserializeProcStats(const std::string &text,
                     const std::string &expect_key)
{
    std::istringstream in(text);
    if (!readHeader(in, kProcMagic, expect_key))
        return std::nullopt;

    ProcStats s;
    u64 cores = 0;
    {
        FieldReader r(in);
        s.cycles = r.u("cycles");
        cores = r.u("cores");
        if (!r.ok() || cores > 1024)
            return std::nullopt;
        s.cores.reserve(cores);
    }
    for (size_t i = 0; i < cores; ++i) {
        std::string tag;
        u64 id = 0;
        if (!(in >> tag >> id) || tag != "core" || id != i)
            return std::nullopt;
        auto core = readCoreFields(in);
        if (!core)
            return std::nullopt;
        s.cores.push_back(std::move(*core));
    }

    std::string llc_tag;
    if (!(in >> llc_tag) || llc_tag != "llc")
        return std::nullopt;
    u64 slices = 0;
    {
        FieldReader r(in);
        s.llc.evictions = r.u("evictions");
        s.llc.writebacks = r.u("writebacks");
        slices = r.u("per_core");
        if (!r.ok() || slices > 1024)
            return std::nullopt;
    }
    s.llc.per_core.resize(slices);
    for (size_t i = 0; i < slices; ++i) {
        std::string tag;
        u64 id = 0;
        if (!(in >> tag >> id) || tag != "llc_core" || id != i)
            return std::nullopt;
        LlcCoreStats &cs = s.llc.per_core[i];
        FieldReader r(in);
        cs.accesses = r.u("accesses");
        cs.hits = r.u("hits");
        cs.misses = r.u("misses");
        cs.mshr_merges = r.u("mshr_merges");
        cs.prefetch_fills = r.u("prefetch_fills");
        cs.bank_wait_cycles = r.u("bank_wait_cycles");
        cs.back_invalidations = r.u("back_invalidations");
        cs.lines_owned = r.u("lines_owned");
        if (!r.ok())
            return std::nullopt;
    }

    std::string endtag;
    if (!(in >> endtag) || endtag != "end")
        return std::nullopt; // truncated write
    return s;
}

RunCache::RunCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        warn("run cache: cannot create '", dir_, "': ", ec.message());

    // Crash recovery: a process killed between staging-file creation
    // and the publishing rename (SIGKILL, OOM, power) leaks its
    // ".tmp-*" file forever — no later run ever touches that unique
    // name. Sweep anything old enough that its writer must be dead.
    std::chrono::seconds ttl{3600};
    if (const char *env = std::getenv("REDSOC_CACHE_TMP_TTL_S")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env)
            ttl = std::chrono::seconds(v);
    }
    const unsigned removed = sweepStaleTmpFiles(dir_, ttl);
    if (const char *tmp_dir = std::getenv("REDSOC_CACHE_TMP_DIR")) {
        if (*tmp_dir != '\0' && tmp_dir != dir_)
            sweepStaleTmpFiles(tmp_dir, ttl);
    }
    if (removed > 0) {
        inform("run cache: swept ", removed,
               " stale staging file(s) from '", dir_, "'");
    }
}

unsigned
RunCache::sweepStaleTmpFiles(const std::string &dir,
                             std::chrono::seconds max_age)
{
    unsigned removed = 0;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(".tmp-", 0) != 0)
            continue;
        std::error_code fec;
        const auto mtime = fs::last_write_time(entry.path(), fec);
        if (fec)
            continue; // raced with its writer's own rename/remove
        if (now - mtime < max_age)
            continue; // plausibly still being written
        if (fs::remove(entry.path(), fec) && !fec)
            ++removed;
    }
    return removed;
}

std::optional<RunCache>
RunCache::fromEnv()
{
    const char *dir = std::getenv("REDSOC_CACHE_DIR");
    if (dir == nullptr || *dir == '\0')
        return std::nullopt;
    return RunCache(dir);
}

std::string
RunCache::entryPath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.stats",
                  static_cast<unsigned long long>(hashKey(key)));
    return (fs::path(dir_) / name).string();
}

std::optional<CoreStats>
RunCache::load(const std::string &key) const
{
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    return deserializeStats(text.str(), key);
}

void
RunCache::store(const std::string &key, const CoreStats &stats) const
{
    storeText(entryPath(key), serializeStats(key, stats));
}

std::string
RunCache::procEntryPath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.pstats",
                  static_cast<unsigned long long>(hashKey(key)));
    return (fs::path(dir_) / name).string();
}

std::optional<ProcStats>
RunCache::loadProc(const std::string &key) const
{
    std::ifstream in(procEntryPath(key), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    return deserializeProcStats(text.str(), key);
}

void
RunCache::storeProc(const std::string &key, const ProcStats &stats) const
{
    storeText(procEntryPath(key), serializeProcStats(key, stats));
}

void
RunCache::storeText(const std::string &final_path,
                    const std::string &text) const
{
    std::ostringstream tmp_name;
    tmp_name << ".tmp-" << ::getpid() << '-'
             << std::this_thread::get_id() << '-'
             << (hashKey(final_path) & 0xffff);
    fs::path tmp_dir(dir_);
    if (const char *env = std::getenv("REDSOC_CACHE_TMP_DIR")) {
        if (*env != '\0')
            tmp_dir = env;
    }
    const fs::path tmp_path = tmp_dir / tmp_name.str();

    std::error_code ec;
    bool wrote = false;
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("run cache: cannot write '", tmp_path.string(), "'");
            return;
        }
        out << text;
        out.flush();
        wrote = out.good();
    }
    if (!wrote) {
        // Short write (disk full, quota): the entry is dropped, but
        // the staging file must not leak — it would otherwise sit in
        // the directory forever under its unique name.
        warn("run cache: short write to '", tmp_path.string(),
             "' (entry dropped)");
        fs::remove(tmp_path, ec);
        return;
    }

    // Atomic publish: readers only ever see absent or complete files,
    // and the last concurrent writer of an identical point wins.
    fs::rename(tmp_path, final_path, ec);
    if (!ec)
        return;
    if (ec == std::errc::cross_device_link) {
        // REDSOC_CACHE_TMP_DIR on a different filesystem than the
        // cache directory: rename(2) cannot cross devices. Bridge by
        // copying into the cache directory under another unique
        // ".tmp-*" name (covered by the stale sweep if we die here),
        // then publish with a same-device — and therefore again
        // atomic — rename.
        const fs::path bridge =
            fs::path(final_path).parent_path() / (tmp_name.str() + "-x");
        std::error_code cec;
        fs::copy_file(tmp_path, bridge,
                      fs::copy_options::overwrite_existing, cec);
        if (!cec)
            fs::rename(bridge, final_path, cec);
        if (cec) {
            warn("run cache: cross-device publish of '", final_path,
                 "': ", cec.message());
            fs::remove(bridge, cec);
        }
        fs::remove(tmp_path, ec);
        return;
    }
    warn("run cache: rename to '", final_path, "': ", ec.message());
    fs::remove(tmp_path, ec);
}

RunCache::Totals
RunCache::scan(const std::string &dir)
{
    Totals t;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() != ".stats")
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        if (!in)
            continue;
        std::ostringstream text;
        text << in.rdbuf();
        const auto stats = deserializeStats(text.str(), "");
        if (!stats)
            continue;
        ++t.runs;
        t.committed_ops += stats->committed;
        t.sim_seconds += stats->sim_seconds;
    }
    return t;
}

} // namespace redsoc

/**
 * @file
 * Persistent cross-process run cache. The 19 figure/table harnesses
 * recompute heavily overlapping (workload x config) points — every
 * one of them re-runs the slack-threshold tuning sweep. When the
 * REDSOC_CACHE_DIR environment variable names a directory, SimDriver
 * stores every finished CoreStats there (text format, versioned,
 * atomic rename-on-write) and later processes load instead of
 * resimulating. Entries are keyed by the full run key
 * (workload @ configKey # max_ops) plus a format version; any
 * mismatch, parse error, or truncation falls back to recomputation.
 */

#ifndef REDSOC_SIM_RUN_CACHE_H
#define REDSOC_SIM_RUN_CACHE_H

#include <chrono>
#include <optional>
#include <string>

#include "common/thread_annotations.h"
#include "core/ooo_core.h"
#include "proc/processor.h"

namespace redsoc {

class RunCache
{
  public:
    /** Bump when a serialized stats layout changes or when simulation
     *  semantics shift (v3: byte-accurate multi-store forwarding
     *  changed partial-overlap load timing; v4: run keys carry the
     *  full cache-hierarchy geometry and multi-core ProcStats entries
     *  joined the cache; v5: run keys carry the structural capacities
     *  — ROB/RS/LSQ entries, widths, FU counts, predictor geometry —
     *  so configs differing only structurally no longer alias). */
    static constexpr unsigned kFormatVersion = 5;

    /**
     * Opens (and creates if missing) the cache directory. Opening
     * also garbage-collects stale ".tmp-*" staging files left behind
     * by killed processes (kill -9 mid-write): anything older than
     * the conservative default of one hour — overridable in seconds
     * via REDSOC_CACHE_TMP_TTL_S for tests — is removed, so a
     * crashed sweep can never grow the directory without bound.
     */
    explicit RunCache(std::string dir);

    /**
     * Cache named by REDSOC_CACHE_DIR (created if missing), or
     * nullopt when the variable is unset/empty.
     */
    static std::optional<RunCache> fromEnv();

    /** Load the stats stored under @p key; nullopt on miss or any
     *  version/key/parse mismatch (never throws on bad files). */
    std::optional<CoreStats> load(const std::string &key) const;

    /** Persist @p stats under @p key (atomic rename-on-write, safe
     *  against concurrent harnesses sharing the directory). */
    void store(const std::string &key, const CoreStats &stats) const;

    /** Multi-core entries: same contract as load()/store(), separate
     *  ".pstats" namespace (scan() totals ignore them). */
    std::optional<ProcStats> loadProc(const std::string &key) const;
    void storeProc(const std::string &key, const ProcStats &stats) const;

    const std::string &dir() const { return dir_; }

    /** Path of the entry file for @p key (testing/inspection). */
    std::string entryPath(const std::string &key) const;

    /** Path of the multi-core entry file for @p key. */
    std::string procEntryPath(const std::string &key) const;

    /** Aggregate totals over every readable entry in a cache dir
     *  (the bench_all throughput summary). */
    struct Totals
    {
        u64 runs = 0;
        u64 committed_ops = 0;
        double sim_seconds = 0.0;
    };
    static Totals scan(const std::string &dir);

    /**
     * Remove ".tmp-*" staging files in @p dir older than @p max_age
     * (the crash-recovery sweep the constructor runs; exposed for
     * tests). Live writers are untouched: a healthy store() holds
     * its staging file for milliseconds, orders of magnitude under
     * any sane age threshold.
     * @return number of files removed
     */
    static unsigned sweepStaleTmpFiles(const std::string &dir,
                                       std::chrono::seconds max_age);

  private:
    /**
     * Write @p text then publish via atomic rename. Staging files
     * are created in REDSOC_CACHE_TMP_DIR when set (e.g. fast local
     * disk in front of a network cache dir) and otherwise next to
     * the entry; a cross-device rename (EXDEV) falls back to
     * copy-into-cache-dir + same-device rename, so readers still
     * only ever observe absent or complete entries. Every failure
     * path removes its staging file(s).
     */
    void storeText(const std::string &final_path,
                   const std::string &text) const;

    // RunCache holds no mutex by design: dir_ is immutable after
    // construction and all cross-thread/cross-process coordination is
    // delegated to the filesystem — store() writes a unique temp file
    // and publishes it with an atomic std::filesystem::rename, load()
    // treats any torn/mismatched file as a miss. Concurrent harnesses
    // sharing REDSOC_CACHE_DIR therefore need no locking protocol.
    std::string dir_ REDSOC_NOT_GUARDED;
};

/** Text codec for CoreStats (exposed for tests). */
std::string serializeStats(const std::string &key, const CoreStats &stats);
std::optional<CoreStats> deserializeStats(const std::string &text,
                                          const std::string &expect_key);

/** Text codec for multi-core ProcStats: per-core CoreStats blocks in
 *  core-id order followed by the shared-LLC block (exposed for tests
 *  — the determinism harness byte-compares serializations). */
std::string serializeProcStats(const std::string &key,
                               const ProcStats &stats);
std::optional<ProcStats> deserializeProcStats(const std::string &text,
                                              const std::string &expect_key);

} // namespace redsoc

#endif // REDSOC_SIM_RUN_CACHE_H

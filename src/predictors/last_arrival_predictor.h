/**
 * @file
 * Last-arriving-operand predictor for the Operational RSE design
 * (Sec.IV-C). A 1K-entry PC-indexed table stores one bit per entry:
 * which of a two-source instruction's operands arrives last. This
 * lets the RSE carry a single parent tag (and a single grandparent
 * tag) instead of two (and four). Predictions are validated by a
 * register scoreboard at register read; mispredictions replay like
 * latency mispredictions.
 */

#ifndef REDSOC_PREDICTORS_LAST_ARRIVAL_PREDICTOR_H
#define REDSOC_PREDICTORS_LAST_ARRIVAL_PREDICTOR_H

#include <vector>

#include "common/types.h"

namespace redsoc {

struct LastArrivalConfig
{
    unsigned entries = 1024; ///< paper: 1K-entry, 1 bit per entry
};

class LastArrivalPredictor
{
  public:
    explicit LastArrivalPredictor(LastArrivalConfig config = {});

    /**
     * Predicted last-arriving source slot (0 or 1) for the
     * two-source instruction at @p pc.
     */
    unsigned predict(u64 pc) const;

    /** Train with the observed last-arriving slot. */
    void update(u64 pc, unsigned actual_last_slot);

    u64 predictions() const { return predictions_; }
    u64 mispredictions() const { return mispredictions_; }

    /** Record a validated outcome (for accuracy statistics). */
    void recordOutcome(bool correct);

    u64 stateBytes() const { return (config_.entries + 7) / 8; }

    void resetStats();

  private:
    unsigned indexOf(u64 pc) const;

    LastArrivalConfig config_;
    std::vector<bool> last_is_slot1_;
    mutable u64 predictions_ = 0;
    u64 mispredictions_ = 0;
};

} // namespace redsoc

#endif // REDSOC_PREDICTORS_LAST_ARRIVAL_PREDICTOR_H

/**
 * @file
 * Front-end branch prediction: gshare direction predictor plus a
 * return-address stack. Direct branch targets come from the static
 * instruction at decode; RET targets come from the RAS. The core
 * charges a full pipeline redirect on any mispredicted direction or
 * target.
 */

#ifndef REDSOC_PREDICTORS_BRANCH_PREDICTOR_H
#define REDSOC_PREDICTORS_BRANCH_PREDICTOR_H

#include <vector>

#include "isa/inst.h"

namespace redsoc {

struct BranchPredictorConfig
{
    unsigned table_bits = 12; ///< 4K two-bit counters
    unsigned ras_entries = 16;
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(BranchPredictorConfig config = {});

    /**
     * Predict the dynamic successor of the branch at @p pc.
     * @param inst the static branch instruction
     * @param fallthrough pc+1
     * @return predicted next pc
     */
    u32 predict(u32 pc, const Inst &inst, u32 fallthrough);

    /**
     * Resolve the branch: trains the direction table / RAS and
     * reports whether the earlier prediction was wrong.
     * @param actual_next the architecturally correct successor
     * @param predicted_next what predict() returned
     */
    bool resolve(u32 pc, const Inst &inst, bool taken, u32 actual_next,
                 u32 predicted_next);

    u64 lookups() const { return lookups_; }
    u64 mispredictions() const { return mispredicts_; }

    void resetStats();

  private:
    unsigned indexOf(u32 pc) const;

    BranchPredictorConfig config_;
    std::vector<u8> counters_; ///< 2-bit saturating, taken if >= 2
    u64 history_ = 0;
    std::vector<u32> ras_;
    u64 lookups_ = 0;
    u64 mispredicts_ = 0;
};

} // namespace redsoc

#endif // REDSOC_PREDICTORS_BRANCH_PREDICTOR_H

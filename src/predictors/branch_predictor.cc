#include "predictors/branch_predictor.h"

#include "common/logging.h"

namespace redsoc {

BranchPredictor::BranchPredictor(BranchPredictorConfig config)
    : config_(config), counters_(1u << config.table_bits, 1)
{
    fatal_if(config.table_bits == 0 || config.table_bits > 24,
             "bad branch table size");
    ras_.reserve(config.ras_entries);
}

unsigned
BranchPredictor::indexOf(u32 pc) const
{
    const u64 mask = (u64{1} << config_.table_bits) - 1;
    return static_cast<unsigned>((pc ^ history_) & mask);
}

u32
BranchPredictor::predict(u32 pc, const Inst &inst, u32 fallthrough)
{
    ++lookups_;
    switch (inst.op) {
      case Opcode::B:
        return inst.target;
      case Opcode::BL:
        if (ras_.size() == config_.ras_entries)
            ras_.erase(ras_.begin());
        ras_.push_back(fallthrough);
        return inst.target;
      case Opcode::RET: {
        if (ras_.empty())
            return fallthrough; // cold RAS: certain mispredict
        const u32 target = ras_.back();
        ras_.pop_back();
        return target;
      }
      default:
        break;
    }
    panic_if(!isCondBranch(inst.op), "predict() on non-branch");
    const bool taken = counters_[indexOf(pc)] >= 2;
    return taken ? inst.target : fallthrough;
}

bool
BranchPredictor::resolve(u32 pc, const Inst &inst, bool taken,
                         u32 actual_next, u32 predicted_next)
{
    if (isCondBranch(inst.op)) {
        u8 &ctr = counters_[indexOf(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }
    const bool wrong = actual_next != predicted_next;
    if (wrong)
        ++mispredicts_;
    return wrong;
}

void
BranchPredictor::resetStats()
{
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace redsoc

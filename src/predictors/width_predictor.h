/**
 * @file
 * Loh-style resetting-counter data-width predictor (Sec.II-B).
 * Width-Slack information is needed at schedule time but operand
 * values only materialize at execute, so the width class is
 * predicted by PC. Below-saturation confidence predicts the maximum
 * width (conservative: never a correctness risk); at saturation the
 * stored width is predicted (aggressive mispredictions require
 * selective reissue, counted here and penalized by the core).
 */

#ifndef REDSOC_PREDICTORS_WIDTH_PREDICTOR_H
#define REDSOC_PREDICTORS_WIDTH_PREDICTOR_H

#include <vector>

#include "common/stats.h"
#include "timing/timing_model.h"

namespace redsoc {

struct WidthPredictorConfig
{
    unsigned entries = 4096;    ///< paper: 4K-entry table
    unsigned confidence_bits = 2;
};

class WidthPredictor
{
  public:
    explicit WidthPredictor(WidthPredictorConfig config = {});

    /** Predicted width class for the instruction at @p pc. */
    WidthClass predict(u64 pc) const;

    /**
     * Train with the resolved width class and classify the earlier
     * prediction. @return true if the prediction was aggressive-wrong
     * (predicted narrower than actual: needs reissue).
     */
    bool update(u64 pc, WidthClass actual);

    u64 predictions() const { return predictions_; }
    u64 aggressiveMispredictions() const { return aggressive_; }
    u64 conservativeMispredictions() const { return conservative_; }

    /** Predictor state in bytes (for the overhead discussion). */
    u64 stateBytes() const;

    void resetStats();

  private:
    struct Entry
    {
        WidthClass width = WidthClass::W64;
        u8 confidence = 0;
    };

    unsigned indexOf(u64 pc) const;

    WidthPredictorConfig config_;
    u8 max_confidence_;
    std::vector<Entry> table_;
    mutable u64 predictions_ = 0;
    u64 aggressive_ = 0;
    u64 conservative_ = 0;
};

} // namespace redsoc

#endif // REDSOC_PREDICTORS_WIDTH_PREDICTOR_H

#include "predictors/width_predictor.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace redsoc {

WidthPredictor::WidthPredictor(WidthPredictorConfig config)
    : config_(config),
      max_confidence_(static_cast<u8>((1u << config.confidence_bits) - 1)),
      table_(config.entries)
{
    fatal_if(!isPowerOfTwo(config.entries),
             "width predictor entries must be a power of two");
    fatal_if(config.confidence_bits == 0 || config.confidence_bits > 8,
             "bad confidence width");
}

unsigned
WidthPredictor::indexOf(u64 pc) const
{
    return static_cast<unsigned>(pc & (config_.entries - 1));
}

WidthClass
WidthPredictor::predict(u64 pc) const
{
    ++predictions_;
    const Entry &e = table_[indexOf(pc)];
    if (e.confidence < max_confidence_)
        return WidthClass::W64; // conservative: assume maximum size
    return e.width;
}

bool
WidthPredictor::update(u64 pc, WidthClass actual)
{
    Entry &e = table_[indexOf(pc)];
    const WidthClass predicted =
        e.confidence < max_confidence_ ? WidthClass::W64 : e.width;

    const bool aggressive_wrong = actual > predicted;
    if (actual > predicted)
        ++aggressive_;
    else if (actual < predicted)
        ++conservative_;

    if (e.width == actual) {
        if (e.confidence < max_confidence_)
            ++e.confidence;
    } else {
        e.width = actual;
        e.confidence = 0;
    }
    return aggressive_wrong;
}

u64
WidthPredictor::stateBytes() const
{
    // 2 bits of width class + confidence bits per entry.
    const u64 bits = u64{config_.entries} * (2 + config_.confidence_bits);
    return (bits + 7) / 8;
}

void
WidthPredictor::resetStats()
{
    predictions_ = aggressive_ = conservative_ = 0;
}

} // namespace redsoc

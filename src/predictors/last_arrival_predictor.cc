#include "predictors/last_arrival_predictor.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace redsoc {

LastArrivalPredictor::LastArrivalPredictor(LastArrivalConfig config)
    : config_(config), last_is_slot1_(config.entries, false)
{
    fatal_if(!isPowerOfTwo(config.entries),
             "last-arrival predictor entries must be a power of two");
}

unsigned
LastArrivalPredictor::indexOf(u64 pc) const
{
    return static_cast<unsigned>(pc & (config_.entries - 1));
}

unsigned
LastArrivalPredictor::predict(u64 pc) const
{
    ++predictions_;
    return last_is_slot1_[indexOf(pc)] ? 1 : 0;
}

void
LastArrivalPredictor::update(u64 pc, unsigned actual_last_slot)
{
    panic_if(actual_last_slot > 1, "bad operand slot");
    last_is_slot1_[indexOf(pc)] = actual_last_slot == 1;
}

void
LastArrivalPredictor::recordOutcome(bool correct)
{
    if (!correct)
        ++mispredictions_;
}

void
LastArrivalPredictor::resetStats()
{
    predictions_ = 0;
    mispredictions_ = 0;
}

} // namespace redsoc

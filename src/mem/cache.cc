#include "mem/cache.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace redsoc {

Cache::Cache(CacheConfig config)
    : config_(std::move(config)), line_bytes_(config_.line_bytes)
{
    fatal_if(config_.size_bytes == 0, "zero cache size");
    // Overflow guard: the tag array is materialized, so a corrupt or
    // adversarial size (e.g. a fuzzer knob gone wrong) must fail
    // loudly instead of attempting a multi-terabyte allocation.
    fatal_if(config_.size_bytes > (u64{1} << 32),
             "cache size over 4 GiB: likely an overflowing config");
    fatal_if(!isPowerOfTwo(config_.line_bytes), "line size not pow2");
    fatal_if(config_.assoc == 0, "zero associativity");
    fatal_if(config_.size_bytes % (config_.line_bytes * config_.assoc) != 0,
             "cache size not divisible by way size");
    num_sets_ = static_cast<unsigned>(
        config_.size_bytes / (config_.line_bytes * config_.assoc));
    fatal_if(!isPowerOfTwo(num_sets_), "set count not pow2");
    lines_.resize(u64{num_sets_} * config_.assoc);
}

unsigned
Cache::setOf(Addr addr) const
{
    return static_cast<unsigned>((addr / line_bytes_) & (num_sets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / line_bytes_ / num_sets_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const unsigned set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Line &line = lines_[u64{set} * config_.assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    AccessResult result;
    ++stamp_;
    if (Line *line = findLine(addr)) {
        ++hits_;
        result.hit = true;
        line->lru = stamp_;
        line->dirty |= is_write;
        return result;
    }

    ++misses_;
    const unsigned set = setOf(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Line &line = lines_[u64{set} * config_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }
    if (victim->valid) {
        result.had_victim = true;
        result.writeback = victim->dirty;
        result.victim_line =
            (victim->tag * num_sets_ + set) * line_bytes_;
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->dirty = is_write;
    victim->lru = stamp_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

Cache::InsertResult
Cache::insert(Addr addr)
{
    InsertResult result;
    if (findLine(addr))
        return result;
    // Reuse demand-allocation machinery but do not count stats:
    // prefetch fills are not demand accesses.
    const u64 saved_hits = hits_, saved_misses = misses_;
    const AccessResult fill = access(addr, false);
    hits_ = saved_hits;
    misses_ = saved_misses;
    result.allocated = true;
    result.writeback = fill.writeback;
    result.victim_line = fill.victim_line;
    result.had_victim = fill.had_victim;
    return result;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        const bool dirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        return dirty;
    }
    return false;
}

void
Cache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

} // namespace redsoc

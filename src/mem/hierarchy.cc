#include "mem/hierarchy.h"

#include <cmath>

#include "common/logging.h"

namespace redsoc {

MemHierarchy::MemHierarchy(HierarchyConfig config)
    : config_(std::move(config)),
      l1_(config_.l1),
      l2_(config_.l2),
      prefetcher_(config_.prefetcher)
{
    fatal_if(config_.offcore_latency_scale < 1.0,
             "off-core latency scale cannot shrink latency");
}

Cycle
MemHierarchy::scaled(Cycle lat) const
{
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(lat) *
                  config_.offcore_latency_scale));
}

MemHierarchy::AccessResult
MemHierarchy::access(u32 pc, Addr addr, bool is_store)
{
    AccessResult result;

    // The prefetcher trains on the full demand stream; confident
    // strides fill L2 and warm L1 ahead of the access pattern.
    if (config_.prefetch) {
        for (Addr pf : prefetcher_.observe(pc, addr)) {
            l2_.insert(pf);
            if (config_.prefetch_fill_l1)
                l1_.insert(pf);
        }
    }

    const auto l1_access = l1_.access(addr, is_store);
    result.l1_hit = l1_access.hit;

    if (l1_access.hit) {
        result.l2_hit = true; // inclusive enough for reporting
        result.latency = config_.l1_latency;
        return result;
    }

    // L1 miss: refill from L2 (writeback of a dirty victim is
    // absorbed by write buffers and not charged to the load).
    const auto l2_access = l2_.access(addr, false);
    result.l2_hit = l2_access.hit;

    if (is_store) {
        // Store-buffer absorbs the miss; the line is now allocated.
        result.latency = config_.l1_latency;
    } else {
        result.latency = config_.l1_latency +
                         scaled(config_.l2_latency) +
                         (l2_access.hit ? 0 : scaled(config_.mem_latency));
    }

    return result;
}

void
MemHierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
    prefetcher_.resetStats();
}

} // namespace redsoc

#include "mem/hierarchy.h"

#include <cmath>

#include "common/logging.h"
#include "proc/llc.h"

namespace redsoc {

MemHierarchy::MemHierarchy(HierarchyConfig config)
    : config_(std::move(config)),
      l1_(config_.l1),
      l2_(config_.l2),
      prefetcher_(config_.prefetcher)
{
    // NaN fails the >= comparison, so the negated form also rejects
    // a non-finite scale smuggled in through a parsed config.
    fatal_if(!(config_.offcore_latency_scale >= 1.0),
             "off-core latency scale cannot shrink latency");
    fatal_if(config_.l1_latency == 0,
             "zero L1 latency: loads must take at least one cycle");
}

void
MemHierarchy::attachSharedLlc(SharedLlc *llc, unsigned core_id,
                              Addr addr_offset)
{
    fatal_if(llc != nullptr &&
                 llc->tags().config().line_bytes !=
                     config_.l1.line_bytes,
             "shared LLC line size must match the L1 line size "
             "(back-invalidation is line-granular)");
    llc_ = llc;
    core_id_ = core_id;
    addr_offset_ = addr_offset;
}

Cycle
MemHierarchy::scaled(Cycle lat) const
{
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(lat) *
                  config_.offcore_latency_scale));
}

MemHierarchy::AccessResult
MemHierarchy::access(u32 pc, Addr addr, bool is_store, Cycle now)
{
    AccessResult result;

    // The per-core address-space tag (0 when detached or for core 0)
    // is applied before anything observes the address, so the
    // prefetcher, L1 tags and LLC all live in one consistent space.
    addr += addr_offset_;

    // The prefetcher trains on the full demand stream; confident
    // strides fill the outer level and warm L1 ahead of the access
    // pattern. Filling the outer level before the (optional) L1 copy
    // keeps the shared LLC inclusive at every step.
    if (config_.prefetch) {
        for (Addr pf : prefetcher_.observe(pc, addr)) {
            if (llc_ != nullptr)
                llc_->insertPrefetch(core_id_, pf);
            else
                l2_.insert(pf);
            if (config_.prefetch_fill_l1)
                l1_.insert(pf);
        }
    }

    const auto l1_access = l1_.access(addr, is_store);
    result.l1_hit = l1_access.hit;

    if (l1_access.hit) {
        result.l2_hit = true; // inclusive enough for reporting
        result.latency = config_.l1_latency;
        return result;
    }

    if (llc_ == nullptr) {
        // L1 miss: refill from L2 (writeback of a dirty victim is
        // absorbed by write buffers and not charged to the load).
        const auto l2_access = l2_.access(addr, false);
        result.l2_hit = l2_access.hit;

        if (is_store) {
            // Store-buffer absorbs the miss; the line is allocated.
            result.latency = config_.l1_latency;
        } else {
            result.latency =
                config_.l1_latency + scaled(config_.l2_latency) +
                (l2_access.hit ? 0 : scaled(config_.mem_latency));
        }
        return result;
    }

    // Shared-LLC path. The LLC decides hit / merge / miss and
    // contributes only *cross-core* wait cycles (MSHR merge windows,
    // DRAM bank queues); the latency ladder itself is built from this
    // hierarchy's own config exactly as the private path builds it,
    // which is what makes the 1-core attachment bit-identical to the
    // private L2 (every wait is 0 with one core).
    const SharedLlc::Result r =
        llc_->access(core_id_, addr, is_store, now);
    result.l2_hit = r.level == SharedLlc::Level::Hit;

    if (is_store) {
        result.latency = config_.l1_latency;
    } else if (r.level == SharedLlc::Level::Hit) {
        result.latency = config_.l1_latency + scaled(config_.l2_latency);
    } else if (r.level == SharedLlc::Level::Merge) {
        // Ride another core's in-flight fill: tag latency plus only
        // the remaining fill time (already in core cycles).
        result.latency = config_.l1_latency +
                         scaled(config_.l2_latency) + r.wait;
    } else {
        result.latency = config_.l1_latency +
                         scaled(config_.l2_latency) +
                         scaled(config_.mem_latency) + r.wait;
    }
    return result;
}

void
MemHierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
    prefetcher_.resetStats();
}

} // namespace redsoc

#include "mem/prefetcher.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace redsoc {

StridePrefetcher::StridePrefetcher(PrefetcherConfig config)
    : config_(config), table_(config.entries)
{
    fatal_if(!isPowerOfTwo(config.entries),
             "prefetcher entries must be a power of two");
}

std::vector<Addr>
StridePrefetcher::observe(u32 pc, Addr addr)
{
    Entry &e = table_[pc & (config_.entries - 1)];
    std::vector<Addr> fills;

    if (!e.valid || e.pc != pc) {
        e = Entry{};
        e.pc = pc;
        e.last_addr = addr;
        e.valid = true;
        return fills;
    }

    const s64 stride = static_cast<s64>(addr) -
                       static_cast<s64>(e.last_addr);
    if (stride == e.stride && stride != 0) {
        if (e.confidence < 15)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = 0;
    }
    e.last_addr = addr;

    if (e.confidence >= config_.min_confidence && e.stride != 0) {
        for (unsigned d = 1; d <= config_.degree; ++d) {
            fills.push_back(
                static_cast<Addr>(static_cast<s64>(addr) +
                                  e.stride * static_cast<s64>(d)));
        }
        issued_ += fills.size();
    }
    return fills;
}

} // namespace redsoc

/**
 * @file
 * PC-indexed stride prefetcher. Trained on the L1 demand-miss stream;
 * confident strides issue fills into the L2 (and optionally L1),
 * matching Table I's "L1/L2 cache w/ prefetch".
 */

#ifndef REDSOC_MEM_PREFETCHER_H
#define REDSOC_MEM_PREFETCHER_H

#include <vector>

#include "common/types.h"

namespace redsoc {

struct PrefetcherConfig
{
    unsigned entries = 256;
    unsigned degree = 2;      ///< lines fetched ahead per trigger
    unsigned min_confidence = 2;
};

class StridePrefetcher
{
  public:
    explicit StridePrefetcher(PrefetcherConfig config = {});

    /**
     * Observe a demand access; returns the list of line addresses to
     * prefetch (empty when the stride is not yet confident).
     */
    std::vector<Addr> observe(u32 pc, Addr addr);

    u64 issued() const { return issued_; }
    void resetStats() { issued_ = 0; }

  private:
    struct Entry
    {
        u32 pc = 0;
        Addr last_addr = 0;
        s64 stride = 0;
        u8 confidence = 0;
        bool valid = false;
    };

    PrefetcherConfig config_;
    std::vector<Entry> table_;
    u64 issued_ = 0;
};

} // namespace redsoc

#endif // REDSOC_MEM_PREFETCHER_H

/**
 * @file
 * Two-level data-cache hierarchy with stride prefetching (Table I:
 * 64kB L1 / 2MB L2 w/ prefetch) in front of a fixed-latency DRAM.
 * Latencies are expressed in cycles of the 2 GHz core clock; the TS
 * baseline rescales them when it speculatively shortens the period
 * (memory does not speed up with the core).
 */

#ifndef REDSOC_MEM_HIERARCHY_H
#define REDSOC_MEM_HIERARCHY_H

#include <memory>

#include "mem/cache.h"
#include "mem/prefetcher.h"

namespace redsoc {

class SharedLlc;

struct HierarchyConfig
{
    CacheConfig l1{"l1d", 64 * 1024, 4, 64};
    CacheConfig l2{"l2", 2 * 1024 * 1024, 16, 64};
    bool prefetch = true;
    /**
     * Timeliness model: confident-stride fills always land in L2;
     * filling L1 as well models a perfectly timely prefetcher (off
     * by default — streaming loads still pay the L1 miss to L2, as
     * the paper's memory-waiting ML kernels do).
     */
    bool prefetch_fill_l1 = false;
    PrefetcherConfig prefetcher{};

    Cycle l1_latency = 2;   ///< load-to-use on L1 hit
    Cycle l2_latency = 12;  ///< additional on L1 miss, L2 hit
    Cycle mem_latency = 200; ///< additional on L2 miss (~100 ns @2GHz)

    /**
     * Scale applied to L2/DRAM latencies when the core clock is
     * overclocked by timing speculation (period ratio > 1 means more
     * core cycles per fixed wall-clock memory access).
     */
    double offcore_latency_scale = 1.0;
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(HierarchyConfig config = {});

    struct AccessResult
    {
        Cycle latency = 0;
        bool l1_hit = false;
        bool l2_hit = false;
    };

    /**
     * Perform a demand access.
     * @param pc static-instruction index of the memory op (trains the
     *           prefetcher)
     * @param is_store store accesses mark lines dirty; their latency
     *        is the L1 pipeline latency (a store buffer absorbs miss
     *        latency), but tags still allocate so later loads hit.
     * @param now current core cycle. Only the shared-LLC path reads
     *        it (MSHR merge windows and DRAM bank queues are timed in
     *        global cycles); the private path ignores it, so
     *        single-hierarchy callers may omit it.
     */
    AccessResult access(u32 pc, Addr addr, bool is_store,
                        Cycle now = 0);

    /**
     * Replace the private L2 with a shared last-level cache: all L1
     * misses are routed to @p llc as core @p core_id, with
     * @p addr_offset added to every address first (the per-core
     * address-space tag of multi-programmed mixes; 0 shares the
     * space). The L2/DRAM latencies still come from this hierarchy's
     * config — the LLC only decides hit/merge/miss and contributes
     * cross-core wait cycles — so a 1-core attachment with LLC
     * geometry equal to the private L2 is bit-identical to the
     * unattached hierarchy (DESIGN.md §14). Pass nullptr to detach.
     */
    void attachSharedLlc(SharedLlc *llc, unsigned core_id,
                         Addr addr_offset);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const StridePrefetcher &prefetcher() const { return prefetcher_; }

    const HierarchyConfig &config() const { return config_; }

    void resetStats();

  private:
    Cycle scaled(Cycle lat) const;

    HierarchyConfig config_;
    Cache l1_;
    Cache l2_;
    StridePrefetcher prefetcher_;

    // Shared-LLC attachment (null = private L2, today's default).
    SharedLlc *llc_ = nullptr;
    unsigned core_id_ = 0;
    Addr addr_offset_ = 0;
};

} // namespace redsoc

#endif // REDSOC_MEM_HIERARCHY_H

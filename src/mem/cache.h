/**
 * @file
 * Set-associative cache tag array with true-LRU replacement and
 * write-back/write-allocate policy. This is a timing/tag model: data
 * values live in the functional MemoryImage, so the cache only tracks
 * presence and dirtiness.
 */

#ifndef REDSOC_MEM_CACHE_H
#define REDSOC_MEM_CACHE_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace redsoc {

struct CacheConfig
{
    std::string name = "cache";
    u64 size_bytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned line_bytes = 64;
};

class Cache
{
  public:
    explicit Cache(CacheConfig config);

    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;   ///< a dirty victim was evicted
        Addr victim_line = 0;     ///< line address of the victim
        bool had_victim = false;
    };

    /**
     * Look up @p addr; on miss, allocate the line (evicting LRU).
     * @param is_write marks the line dirty.
     */
    AccessResult access(Addr addr, bool is_write);

    /** Tag probe without allocation or LRU update. */
    bool contains(Addr addr) const;

    /** Result of a non-demand fill (insert()). */
    struct InsertResult
    {
        bool allocated = false;   ///< the line was newly brought in
        bool writeback = false;   ///< a dirty victim was evicted
        Addr victim_line = 0;     ///< line address of the victim
        bool had_victim = false;
    };

    /**
     * Insert a line without demand semantics (prefetch fill).
     * `allocated` is false when the line was already present; an
     * inclusive outer level needs the victim fields to back-
     * invalidate inner copies.
     */
    InsertResult insert(Addr addr);

    /** Invalidate a line if present (returns true if it was dirty). */
    bool invalidate(Addr addr);

    Addr lineAddr(Addr addr) const { return addr & ~(line_bytes_ - 1); }

    const CacheConfig &config() const { return config_; }
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    double missRate() const { return ratioOf(misses_, hits_ + misses_); }

    void resetStats();

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        u64 lru = 0; ///< last-touch stamp
    };

    unsigned setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    CacheConfig config_;
    Addr line_bytes_;
    unsigned num_sets_;
    std::vector<Line> lines_; ///< num_sets x assoc, row-major
    u64 stamp_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

} // namespace redsoc

#endif // REDSOC_MEM_CACHE_H

/**
 * @file
 * Shared last-level cache for the multi-core Processor: one inclusive
 * tag array shared by every core's private L1, an MSHR-style pending
 * table that merges cross-core requests for in-flight lines, and a
 * fixed-latency DRAM backend with a banked occupancy queue.
 *
 * Contention model (DESIGN.md §14): every wait the LLC charges is
 * *cross-core only*. The seed single-core hierarchy models unbounded
 * same-core memory-level parallelism — an access's latency is a pure
 * function of the level it hits in — so same-core MSHR overlap and
 * same-core bank reuse charge nothing here either. That rule is what
 * makes the 1-core shared-LLC attachment structurally bit-identical
 * to the private-L2 hierarchy: with one core every wait is zero by
 * construction, not just empirically.
 *
 * Timing discipline: the LLC keeps MSHR completion times and bank
 * busy windows in the requesting cores' cycle domain (all cores run
 * the same config, so the domains agree), with the full fill latency
 * supplied pre-scaled by the Processor. Hit/miss *latencies* are not
 * charged here at all — each core's MemHierarchy builds its latency
 * ladder from its own config and adds only the wait cycles returned.
 */

#ifndef REDSOC_PROC_LLC_H
#define REDSOC_PROC_LLC_H

#include <map>
#include <vector>

#include "mem/cache.h"

namespace redsoc {

/** Fixed-latency DRAM backend with per-bank occupancy windows. */
struct DramConfig
{
    /** Independent banks; a fill occupies line's bank for
     *  bank_occupancy cycles. Lines interleave bank = line % banks. */
    unsigned banks = 8;

    /**
     * Cycles a bank stays busy per fill it services. A *different*
     * core hitting a busy bank queues behind the window; the same
     * core pipelines freely (see the cross-core-only rule above).
     * 0 disables bank queueing entirely.
     */
    Cycle bank_occupancy = 16;
};

/** Per-core slice of the LLC statistics. */
struct LlcCoreStats
{
    u64 accesses = 0;           ///< demand lookups by this core
    u64 hits = 0;
    u64 misses = 0;             ///< fills initiated by this core
    u64 mshr_merges = 0;        ///< rode another core's in-flight fill
    u64 prefetch_fills = 0;     ///< prefetcher lines landed by this core
    u64 bank_wait_cycles = 0;   ///< DRAM bank queueing behind other cores
    u64 back_invalidations = 0; ///< L1 lines killed by LLC evictions
    u64 lines_owned = 0;        ///< census: lines this core last filled
};

/** Shared-LLC statistics: totals plus one per-core slice. */
struct LlcStats
{
    u64 evictions = 0;          ///< capacity/conflict victims
    u64 writebacks = 0;         ///< dirty victims
    std::vector<LlcCoreStats> per_core{};
};

class SharedLlc
{
  public:
    /** Outcome level of a demand lookup. */
    enum class Level : u8 {
        Hit,   ///< resident (or this core's own fill in flight)
        Merge, ///< another core's fill in flight: pay the remainder
        Miss,  ///< fill from DRAM
    };

    struct Result
    {
        Level level = Level::Hit;
        /** Cross-core wait cycles (merge remainder or bank queue). */
        Cycle wait = 0;
    };

    /**
     * @param geometry LLC tag-array geometry (line size must match
     *        the attached L1s' — enforced at attach time).
     * @param dram banked DRAM backend parameters.
     * @param num_cores cores sharing this LLC (stats slices).
     * @param fill_latency full miss-to-fill time in core cycles,
     *        pre-scaled by the caller (scaled L2 + DRAM latency):
     *        an MSHR entry allocated at @c now completes at
     *        @c now + wait + fill_latency.
     */
    SharedLlc(CacheConfig geometry, DramConfig dram, unsigned num_cores,
              Cycle fill_latency);

    /** Register core @p core_id's private L1 for inclusion
     *  back-invalidation (nullptr detaches). */
    void attachL1(unsigned core_id, Cache *l1);

    /** Demand lookup by @p core_id at its cycle @p now. Allocates on
     *  miss (tags fill immediately; timing via the MSHR window). */
    Result access(unsigned core_id, Addr addr, bool is_store, Cycle now);

    /** Prefetcher fill on behalf of @p core_id (no demand stats, no
     *  MSHR entry: timeliness is the prefetcher model's job). */
    void insertPrefetch(unsigned core_id, Addr addr);

    const Cache &tags() const { return tags_; }

    /** Statistics with the per-core lines_owned census filled in. */
    LlcStats collectStats() const;

  private:
    struct Pending
    {
        Cycle complete = 0; ///< fill completion (core-cycle domain)
        unsigned core = 0;  ///< the core whose miss started the fill
    };

    struct Bank
    {
        Cycle busy_until = 0;
        unsigned last_core = ~0u;
    };

    unsigned bankOf(Addr line) const;
    /** Evict bookkeeping: inclusion back-invalidation of every L1
     *  copy, owner-census and MSHR cleanup. */
    void retireVictim(const Cache::AccessResult &victim);
    void retireVictim(const Cache::InsertResult &victim);
    void noteEviction(Addr victim_line, bool writeback);
    /** Amortized cleanup of completed MSHR entries. */
    void pruneMshr(Cycle now);

    Cache tags_;
    DramConfig dram_;
    Cycle fill_latency_;
    std::vector<Cache *> l1s_;
    /** Ordered map: deterministic iteration during pruning. */
    std::map<Addr, Pending> mshr_;
    std::vector<Bank> banks_;
    /** line address -> core that last filled it (ownership census). */
    std::map<Addr, unsigned> owner_;
    LlcStats stats_;
};

} // namespace redsoc

#endif // REDSOC_PROC_LLC_H

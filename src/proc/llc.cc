#include "proc/llc.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

namespace {

/** Lazy-prune threshold: above this many MSHR entries, completed
 *  fills are swept out (amortized; the table tracks only in-flight
 *  windows plus stale leftovers awaiting re-access). */
constexpr size_t kMshrPruneAt = 1024;

} // namespace

SharedLlc::SharedLlc(CacheConfig geometry, DramConfig dram,
                     unsigned num_cores, Cycle fill_latency)
    : tags_(std::move(geometry)),
      dram_(dram),
      fill_latency_(fill_latency),
      l1s_(num_cores, nullptr),
      banks_(std::max(1u, dram.banks))
{
    fatal_if(num_cores == 0, "shared LLC with zero cores");
    fatal_if(dram_.banks == 0, "zero DRAM banks");
    stats_.per_core.resize(num_cores);
}

void
SharedLlc::attachL1(unsigned core_id, Cache *l1)
{
    fatal_if(core_id >= l1s_.size(), "attachL1: core id out of range");
    fatal_if(l1 != nullptr &&
                 l1->config().line_bytes != tags_.config().line_bytes,
             "L1 line size must match the LLC line size");
    l1s_[core_id] = l1;
}

unsigned
SharedLlc::bankOf(Addr line) const
{
    return static_cast<unsigned>((line / tags_.config().line_bytes) %
                                 dram_.banks);
}

void
SharedLlc::noteEviction(Addr victim_line, bool writeback)
{
    ++stats_.evictions;
    if (writeback)
        ++stats_.writebacks;
    // Inclusion: a line leaving the LLC must leave every L1 holding a
    // copy (the victim's dirty data is absorbed by write buffers,
    // like every other writeback in this timing model).
    for (size_t c = 0; c < l1s_.size(); ++c) {
        Cache *l1 = l1s_[c];
        if (l1 != nullptr && l1->contains(victim_line)) {
            l1->invalidate(victim_line);
            ++stats_.per_core[c].back_invalidations;
        }
    }
    owner_.erase(victim_line);
    // An in-flight fill for an evicted line is dead: without this, a
    // later access would merge into a window whose line is gone.
    mshr_.erase(victim_line);
}

void
SharedLlc::retireVictim(const Cache::AccessResult &victim)
{
    if (victim.had_victim)
        noteEviction(victim.victim_line, victim.writeback);
}

void
SharedLlc::retireVictim(const Cache::InsertResult &victim)
{
    if (victim.had_victim)
        noteEviction(victim.victim_line, victim.writeback);
}

void
SharedLlc::pruneMshr(Cycle now)
{
    if (mshr_.size() <= kMshrPruneAt)
        return;
    for (auto it = mshr_.begin(); it != mshr_.end();) {
        if (it->second.complete <= now)
            it = mshr_.erase(it);
        else
            ++it;
    }
}

SharedLlc::Result
SharedLlc::access(unsigned core_id, Addr addr, bool is_store, Cycle now)
{
    fatal_if(core_id >= stats_.per_core.size(),
             "LLC access: core id out of range");
    LlcCoreStats &cs = stats_.per_core[core_id];
    ++cs.accesses;

    const Addr line = tags_.lineAddr(addr);
    auto pending = mshr_.find(line);
    if (pending != mshr_.end() && pending->second.complete <= now) {
        mshr_.erase(pending);
        pending = mshr_.end();
    }

    if (pending != mshr_.end()) {
        // The line's tags were allocated when the fill started and an
        // eviction would have erased the MSHR entry, so this is a tag
        // hit; touch LRU and dirtiness as usual (victim handling kept
        // for defence in depth).
        retireVictim(tags_.access(addr, is_store));
        if (pending->second.core != core_id) {
            // Cross-core merge: ride the in-flight fill, paying only
            // the remaining window instead of a fresh DRAM round.
            ++cs.mshr_merges;
            return {Level::Merge, pending->second.complete - now};
        }
        // Same core: the seed model's unbounded same-core MLP — a
        // re-access of a line this core is already filling is a hit.
        ++cs.hits;
        return {Level::Hit, 0};
    }

    const auto tag_access = tags_.access(addr, is_store);
    if (tag_access.hit) {
        ++cs.hits;
        return {Level::Hit, 0};
    }

    ++cs.misses;
    retireVictim(tag_access);
    owner_[line] = core_id;

    // DRAM bank queue: a fill occupies the line's bank for a fixed
    // window; only a *different* core queues behind it.
    Cycle wait = 0;
    if (dram_.bank_occupancy > 0) {
        Bank &bank = banks_[bankOf(line)];
        if (bank.busy_until > now && bank.last_core != core_id) {
            wait = bank.busy_until - now;
            cs.bank_wait_cycles += wait;
        }
        bank.busy_until = std::max(bank.busy_until,
                                   now + wait + dram_.bank_occupancy);
        bank.last_core = core_id;
    }

    mshr_[line] = Pending{now + wait + fill_latency_, core_id};
    pruneMshr(now);
    return {Level::Miss, wait};
}

void
SharedLlc::insertPrefetch(unsigned core_id, Addr addr)
{
    fatal_if(core_id >= stats_.per_core.size(),
             "LLC prefetch: core id out of range");
    const auto fill = tags_.insert(addr);
    if (!fill.allocated)
        return;
    ++stats_.per_core[core_id].prefetch_fills;
    retireVictim(fill);
    owner_[tags_.lineAddr(addr)] = core_id;
}

LlcStats
SharedLlc::collectStats() const
{
    LlcStats out = stats_;
    for (LlcCoreStats &cs : out.per_core)
        cs.lines_owned = 0;
    for (const auto &[line, core] : owner_) {
        (void)line;
        ++out.per_core[core].lines_owned;
    }
    return out;
}

} // namespace redsoc

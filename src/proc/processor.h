/**
 * @file
 * N-core processor: a vector of unmodified OooCores (each keeping its
 * private L1 and prefetcher) in front of one shared inclusive LLC and
 * a banked DRAM backend, stepped in deterministic lockstep.
 *
 * Interleaving rule: every simulation step advances the *unfinished
 * core with the smallest current cycle* (ties broken by lowest core
 * id). The loop is purely sequential — no host threads, no wall-clock
 * reads — so an N-core run is a pure function of (config, traces)
 * regardless of host parallelism; tests/test_proc_equiv.cc races
 * several Processors on different threads and byte-compares the
 * serialized results to prove it.
 */

#ifndef REDSOC_PROC_PROCESSOR_H
#define REDSOC_PROC_PROCESSOR_H

#include <memory>
#include <string>
#include <vector>

#include "core/ooo_core.h"
#include "proc/proc_config.h"

namespace redsoc {

/** Result statistics of one multi-core run. */
struct ProcStats
{
    std::vector<CoreStats> cores{}; ///< one slice per core, in id order
    LlcStats llc{};
    Cycle cycles = 0; ///< slowest core's cycle count
};

class Processor
{
  public:
    explicit Processor(const ProcConfig &config);

    /**
     * Run one trace per core to completion (multi-programmed mix:
     * @p traces must hold exactly num_cores non-null pointers; traces
     * may repeat — each core replays its own copy of the stream).
     * Throws DeadlockError if any core's no-commit watchdog trips.
     */
    ProcStats run(const std::vector<const Trace *> &traces);

    /** Single-trace convenience: every core runs @p trace. */
    ProcStats run(const Trace &trace);

    /** Attach a pipeline tracer to core @p core_id (observation-only,
     *  exactly as OooCore::setTracer). */
    void setTracer(unsigned core_id, PipeTracer *tracer);

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    OooCore &core(unsigned i) { return *cores_[i]; }
    const OooCore &core(unsigned i) const { return *cores_[i]; }
    const ProcConfig &config() const { return config_; }

  private:
    ProcConfig config_;
    std::unique_ptr<SharedLlc> llc_;
    /** unique_ptr: OooCore owns large non-movable internal state. */
    std::vector<std::unique_ptr<OooCore>> cores_;
};

/**
 * Render the LLC contention picture as a table: one row per core with
 * demand mix, cross-core charges (MSHR merges, bank-wait cycles,
 * back-invalidations), footprint census, and the core's slack-vs-miss
 * balance (slack ticks recycled per L1 load miss — the headline
 * "does contention eat the recycling win" ratio).
 */
std::string renderContention(const ProcStats &stats);

} // namespace redsoc

#endif // REDSOC_PROC_PROCESSOR_H

#include "proc/processor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/shutdown.h"
#include "common/table.h"

namespace redsoc {

namespace {

/** Same rounding as MemHierarchy::scaled: the Processor pre-computes
 *  the full miss-to-fill window the LLC's MSHR entries carry, and it
 *  must agree cycle-for-cycle with the ladder each core charges. */
Cycle
scaledLat(Cycle lat, double scale)
{
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(lat) * scale));
}

} // namespace

Processor::Processor(const ProcConfig &config) : config_(config)
{
    validateProcConfig(config_);

    const HierarchyConfig &mem = config_.core.memory;
    const Cycle fill =
        scaledLat(mem.l2_latency, mem.offcore_latency_scale) +
        scaledLat(mem.mem_latency, mem.offcore_latency_scale);
    llc_ = std::make_unique<SharedLlc>(config_.llc, config_.dram,
                                       config_.num_cores, fill);

    cores_.reserve(config_.num_cores);
    for (unsigned i = 0; i < config_.num_cores; ++i) {
        cores_.push_back(std::make_unique<OooCore>(config_.core));
        cores_.back()->memory().attachSharedLlc(
            llc_.get(), i, config_.addrOffset(i));
        llc_->attachL1(i, &cores_.back()->memory().l1());
    }
}

ProcStats
Processor::run(const std::vector<const Trace *> &traces)
{
    fatal_if(traces.size() != cores_.size(),
             "processor mix needs exactly one trace per core");
    for (const Trace *trace : traces)
        fatal_if(trace == nullptr, "null trace in processor mix");

    std::vector<bool> live(cores_.size());
    for (size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->beginRun(*traces[i]);
        live[i] = !cores_[i]->runDone();
    }

    // Deterministic lockstep: always advance the unfinished core with
    // the smallest current cycle (ties to the lowest id), so every
    // LLC access happens in one well-defined global order no matter
    // how the host schedules us.
    u64 steps = 0;
    for (;;) {
        size_t pick = cores_.size();
        for (size_t i = 0; i < cores_.size(); ++i) {
            if (!live[i])
                continue;
            if (pick == cores_.size() ||
                cores_[i]->currentCycle() < cores_[pick]->currentCycle())
                pick = i;
        }
        if (pick == cores_.size())
            break;
        live[pick] = cores_[pick]->stepRun();
        if ((++steps & 0x3fffu) == 0 && simAbortRequested())
            throw ShutdownInterrupt();
    }

    ProcStats out;
    out.cores.reserve(cores_.size());
    for (auto &core : cores_) {
        out.cores.push_back(core->finishRun());
        out.cycles = std::max(out.cycles, out.cores.back().cycles);
    }
    out.llc = llc_->collectStats();
    return out;
}

ProcStats
Processor::run(const Trace &trace)
{
    std::vector<const Trace *> traces(cores_.size(), &trace);
    return run(traces);
}

void
Processor::setTracer(unsigned core_id, PipeTracer *tracer)
{
    fatal_if(core_id >= cores_.size(), "setTracer: core id out of range");
    cores_[core_id]->setTracer(tracer);
}

std::string
renderContention(const ProcStats &stats)
{
    Table table({"core", "ipc", "llc-acc", "llc-hit%", "merges",
                 "bank-wait", "back-inv", "lines", "l1-miss",
                 "slack-ticks/miss"});
    for (size_t i = 0; i < stats.cores.size(); ++i) {
        const CoreStats &core = stats.cores[i];
        const LlcCoreStats llc = i < stats.llc.per_core.size()
                                     ? stats.llc.per_core[i]
                                     : LlcCoreStats{};
        table.addRow({
            std::to_string(i),
            Table::num(core.ipc(), 3),
            std::to_string(llc.accesses),
            Table::pct(ratioOf(llc.hits, llc.accesses)),
            std::to_string(llc.mshr_merges),
            std::to_string(llc.bank_wait_cycles),
            std::to_string(llc.back_invalidations),
            std::to_string(llc.lines_owned),
            std::to_string(core.l1_load_misses),
            Table::num(asDouble(core.slack_recycled_ticks) /
                           std::max<u64>(1, core.l1_load_misses),
                       2),
        });
    }
    std::string out = table.render();
    out += "llc evictions " + std::to_string(stats.llc.evictions) +
           "  writebacks " + std::to_string(stats.llc.writebacks) +
           "\n";
    return out;
}

} // namespace redsoc

/**
 * @file
 * Multi-core processor configuration: N identical OooCores (each
 * keeping its private L1 and prefetcher), one shared inclusive LLC,
 * and a banked fixed-latency DRAM backend.
 *
 * Latency convention: the per-core HierarchyConfig keeps supplying
 * the L2/DRAM *latencies* (and the timing-speculation scale) even in
 * shared-LLC mode — ProcConfig::llc only sets the shared *geometry*.
 * A 1-core ProcConfig whose LLC geometry equals the core template's
 * private L2 is therefore bit-identical to the plain single-core
 * hierarchy (DESIGN.md §14).
 */

#ifndef REDSOC_PROC_PROC_CONFIG_H
#define REDSOC_PROC_PROC_CONFIG_H

#include "core/core_config.h"
#include "proc/llc.h"

namespace redsoc {

struct ProcConfig
{
    unsigned num_cores = 1;

    /** Per-core template: every core runs this exact configuration
     *  (homogeneous cores keep the cores' cycle domains — and thus
     *  the LLC's global-cycle bookkeeping — mutually consistent). */
    CoreConfig core{};

    /** Shared-LLC geometry (latency comes from core.memory, above).
     *  Defaults to the seed private-L2 geometry. */
    CacheConfig llc{"llc", 2 * 1024 * 1024, 16, 64};

    DramConfig dram{};

    /**
     * Multi-programmed mixes are the default (false): core i's
     * addresses are offset by i * kAsidStride, so cores can never
     * share or steal each other's lines — contention is purely
     * capacity, bank and MSHR occupancy. true runs every core in one
     * physical address space (lines genuinely shared: MSHR merges
     * and inter-core hits become possible).
     */
    bool share_address_space = false;

    /**
     * Address-space stride between cores (2^40 bytes): far above any
     * workload footprint, and a multiple of every power-of-two
     * set/bank geometry, so the offset never changes which set or
     * bank an access maps to. Core 0's offset is 0 — its address
     * stream is byte-identical to a single-core run.
     */
    static constexpr Addr kAsidStride = Addr{1} << 40;

    /** Core @p core_id's address-space offset under this config. */
    Addr addrOffset(unsigned core_id) const
    {
        return share_address_space ? 0
                                   : kAsidStride * Addr{core_id};
    }
};

/** Reject invalid configurations via fatal() (std::logic_error):
 *  zero cores, unreasonable core counts, LLC/L1 line-size mismatch
 *  (cache geometry itself is validated by the Cache constructor). */
void validateProcConfig(const ProcConfig &config);

} // namespace redsoc

#endif // REDSOC_PROC_PROC_CONFIG_H

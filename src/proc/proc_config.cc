#include "proc/proc_config.h"

#include "common/logging.h"

namespace redsoc {

void
validateProcConfig(const ProcConfig &config)
{
    fatal_if(config.num_cores == 0, "processor with zero cores");
    fatal_if(config.num_cores > 64,
             "more than 64 cores: likely an overflowing config");
    fatal_if(config.llc.line_bytes != config.core.memory.l1.line_bytes,
             "LLC line size must match the core L1 line size "
             "(back-invalidation is line-granular)");
    fatal_if(config.dram.banks == 0, "zero DRAM banks");
    // Cache geometry (power-of-two lines/sets, non-zero and
    // non-overflowing sizes) is validated by the Cache constructor;
    // build a throwaway tag array so a bad LLC geometry fails here,
    // at configuration time, instead of mid-construction.
    Cache probe(config.llc);
    (void)probe;
}

} // namespace redsoc

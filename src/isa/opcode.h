/**
 * @file
 * The µISA opcode set: an ARM-flavoured mix covering every operation
 * class in the paper's Fig.1 (logical, move/shift, arithmetic,
 * arithmetic with shifted second operand), plus multi-cycle integer,
 * floating point, NEON-style SIMD, memory and control flow.
 */

#ifndef REDSOC_ISA_OPCODE_H
#define REDSOC_ISA_OPCODE_H

#include <string_view>

#include "common/types.h"

namespace redsoc {

enum class Opcode : u8 {
    // Logical (single-cycle, width-independent delay)
    AND, BIC, ORR, EOR, MVN, TST, TEQ,
    // Moves and shifts (single-cycle)
    MOV, LSL, LSR, ASR, ROR, RRX,
    // Arithmetic (single-cycle, carry-chain width-dependent delay)
    ADD, ADC, SUB, SBC, RSB, RSC, CMP, CMN,
    // Multi-cycle integer
    MUL, MLA, SDIV, UDIV,
    // Floating point (multi-cycle; operate on the scalar reg file,
    // bits interpreted as IEEE double)
    FADD, FSUB, FMUL, FDIV, FMIN, FMAX, FCVTZS, SCVTF,
    // Memory (scalar)
    LDR, LDRW, LDRH, LDRB, STR, STRW, STRH, STRB,
    // Memory (vector, 128-bit)
    VLDR, VSTR,
    // SIMD integer (NEON-like on 128-bit vector regs; single-cycle
    // ALU-class ops are slack-eligible, per element type)
    VADD, VSUB, VAND, VORR, VEOR, VMAX, VMIN, VSHL, VSHR, VDUP, VMOV,
    // SIMD multiply / multiply-accumulate. VMLA supports late
    // forwarding of the accumulator operand: back-to-back VMLA chains
    // behave as single-cycle on the accumulate path (A57 SWOG).
    VMUL, VMLA,
    // SIMD horizontal reduce (sum of lanes into scalar reg)
    VREDSUM,
    // Control
    B, BEQZ, BNEZ, BLTZ, BGEZ, BGTZ, BLEZ, BL, RET,
    HALT,

    NUM_OPCODES,
};

/** Shift applied to the second operand of a data op (ARM op2). */
enum class ShiftKind : u8 { None, Lsl, Lsr, Asr, Ror };

/** SIMD element type (sub-word parallel precision). */
enum class VecType : u8 { I8, I16, I32, I64 };

/** Lanes in a 128-bit vector for an element type. */
unsigned vecLanes(VecType vt);

/** Element width in bits. */
unsigned vecElemBits(VecType vt);

/** Functional-unit class an opcode executes on. */
enum class FuClass : u8 {
    IntAlu,    ///< single-cycle integer (incl. branches)
    IntMul,    ///< pipelined multi-cycle integer multiply
    IntDiv,    ///< unpipelined integer divide
    Fp,        ///< pipelined floating point add/mul/cvt
    FpDiv,     ///< unpipelined floating-point divide
    SimdAlu,   ///< single-cycle SIMD integer
    SimdMul,   ///< pipelined SIMD multiply / multiply-accumulate
    MemRead,
    MemWrite,
    None,      ///< HALT
};

/** Slack category of a single-cycle operation (Sec.II-B LUT axes). */
enum class AluKind : u8 {
    Logic,     ///< bitwise; no carry chain
    MoveShift, ///< moves, shifts, rotates
    Arith,     ///< carry-chain ops (add/sub/compare family)
    NotAlu,    ///< not a single-cycle scalar integer op
};

const char *opcodeName(Opcode op);
const char *vecTypeName(VecType vt);

FuClass fuClass(Opcode op);
AluKind aluKind(Opcode op);

/** True for single-cycle scalar-integer ops (slack-recycling targets). */
bool isIntAlu(Opcode op);

/** True for SIMD ops that are single-cycle / slack-eligible. */
bool isSimdAlu(Opcode op);

bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isMem(Opcode op);
bool isBranch(Opcode op);
bool isCondBranch(Opcode op);
bool isSimd(Opcode op);
bool isFp(Opcode op);

/** Memory access size in bytes (loads/stores only). */
unsigned memAccessSize(Opcode op);

/** Execution latency in cycles for multi-cycle classes. */
unsigned fuLatency(FuClass fc);

/** True if the FU class is pipelined (can accept an op per cycle). */
bool fuPipelined(FuClass fc);

} // namespace redsoc

#endif // REDSOC_ISA_OPCODE_H

/**
 * @file
 * Static instruction representation. Registers live in a unified id
 * space: scalar x0..x30 are ids 0..30, the always-zero register xzr
 * is id 31, and vector v0..v31 are ids 32..63. xzr is never a true
 * dependency and is never renamed.
 */

#ifndef REDSOC_ISA_INST_H
#define REDSOC_ISA_INST_H

#include <array>

#include "isa/opcode.h"

namespace redsoc {

/** Unified register-id helpers. */
inline constexpr RegIdx kZeroReg = 31;
inline constexpr RegIdx kLinkReg = 30;
inline constexpr RegIdx kVecRegBase = 32;
inline constexpr unsigned kNumIntRegs = 32;
inline constexpr unsigned kNumVecRegs = 32;
inline constexpr unsigned kNumRegs = kNumIntRegs + kNumVecRegs;
inline constexpr RegIdx kNoReg = 0xff;

inline constexpr RegIdx
vreg(unsigned idx)
{
    return static_cast<RegIdx>(kVecRegBase + idx);
}

inline constexpr bool
isVecReg(RegIdx r)
{
    return r != kNoReg && r >= kVecRegBase;
}

/**
 * A static µISA instruction.
 *
 * Field usage by format:
 *  - data ops:    dst, src1, src2/imm (with optional op2 shift)
 *  - 3-src ops:   MLA/VMLA use src3 as the accumulate operand
 *  - loads:       dst, [src1 (base) + imm] or [src1 + src2 << shamt]
 *  - stores:      src3 (data), [src1 (base) + imm] or [src1 + src2 << shamt]
 *  - branches:    target (static inst index); conditional test src1
 *  - VDUP:        dst (vector), src1 (scalar)
 *  - VREDSUM:     dst (scalar), src1 (vector)
 */
struct Inst
{
    Opcode op = Opcode::HALT;
    RegIdx dst = kNoReg;
    RegIdx src1 = kNoReg;
    RegIdx src2 = kNoReg;
    RegIdx src3 = kNoReg;

    /** Second operand is the immediate, not src2. */
    bool use_imm = false;
    s64 imm = 0;

    /** Shift applied to the second operand (data ops), or the
     *  index-scaling amount (memory ops with register index). */
    ShiftKind op2_shift = ShiftKind::None;
    u8 shamt = 0;

    /** SIMD element type. */
    VecType vtype = VecType::I64;

    /** Branch target as a static instruction index (fixed up by the
     *  builder from labels). */
    u32 target = 0;

    /** True if this data op's delay includes a shifter stage. */
    bool
    hasShiftComponent() const
    {
        if (op2_shift != ShiftKind::None)
            return true;
        switch (op) {
          case Opcode::LSL: case Opcode::LSR: case Opcode::ASR:
          case Opcode::ROR: case Opcode::RRX:
            return true;
          case Opcode::VSHL: case Opcode::VSHR:
            return true;
          default:
            return false;
        }
    }

    /**
     * Source registers that create true dependencies, in a fixed
     * order (kNoReg entries for unused slots; xzr filtered out).
     */
    std::array<RegIdx, 3> sources() const;

    /** Destination register or kNoReg (stores, branches, compares to
     *  xzr, HALT have none). */
    RegIdx destination() const;

    /** Number of non-kNoReg entries in sources(). */
    unsigned numSources() const;
};

} // namespace redsoc

#endif // REDSOC_ISA_INST_H

#include "isa/disasm.h"

#include <sstream>

namespace redsoc {

namespace {

std::string
regName(RegIdx r)
{
    if (r == kNoReg)
        return "-";
    if (r == kZeroReg)
        return "xzr";
    std::ostringstream os;
    if (isVecReg(r))
        os << "v" << (r - kVecRegBase);
    else
        os << "x" << unsigned{r};
    return os.str();
}

const char *
shiftName(ShiftKind k)
{
    switch (k) {
      case ShiftKind::Lsl: return "lsl";
      case ShiftKind::Lsr: return "lsr";
      case ShiftKind::Asr: return "asr";
      case ShiftKind::Ror: return "ror";
      default: return "?";
    }
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    if (isSimd(inst.op))
        os << "." << vecTypeName(inst.vtype);
    os << " ";

    if (isMem(inst.op)) {
        RegIdx moved = isLoad(inst.op) ? inst.dst : inst.src3;
        os << regName(moved) << ", [" << regName(inst.src1);
        if (inst.use_imm) {
            if (inst.imm != 0)
                os << ", #" << inst.imm;
        } else if (inst.src2 != kNoReg) {
            os << ", " << regName(inst.src2);
            if (inst.shamt != 0)
                os << " lsl #" << unsigned{inst.shamt};
        }
        os << "]";
        return os.str();
    }

    if (isBranch(inst.op)) {
        if (isCondBranch(inst.op))
            os << regName(inst.src1) << ", ";
        if (inst.op != Opcode::RET)
            os << "@" << inst.target;
        else
            os << regName(inst.src1);
        return os.str();
    }

    if (inst.op == Opcode::HALT)
        return "HALT";

    bool first = true;
    auto put = [&](const std::string &s) {
        if (!first)
            os << ", ";
        os << s;
        first = false;
    };

    if (inst.dst != kNoReg)
        put(regName(inst.dst));
    if (inst.src1 != kNoReg)
        put(regName(inst.src1));
    if (inst.use_imm) {
        put("#" + std::to_string(inst.imm));
    } else if (inst.src2 != kNoReg) {
        put(regName(inst.src2));
        if (inst.op2_shift != ShiftKind::None)
            os << " " << shiftName(inst.op2_shift) << " #"
               << unsigned{inst.shamt};
    }
    if (inst.src3 != kNoReg && inst.src3 != inst.dst && !isMem(inst.op))
        put(regName(inst.src3));
    return os.str();
}

} // namespace redsoc

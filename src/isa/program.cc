#include "isa/program.h"

#include "common/logging.h"

namespace redsoc {

Program::Program(std::string name, std::vector<Inst> insts)
    : name_(std::move(name)), insts_(std::move(insts))
{
    fatal_if(insts_.empty(), "program '", name_, "' is empty");
    for (u32 pc = 0; pc < insts_.size(); ++pc) {
        const Inst &inst = insts_[pc];
        if (isBranch(inst.op) && inst.op != Opcode::RET) {
            fatal_if(inst.target >= insts_.size(),
                     "program '", name_, "': branch at ", pc,
                     " targets out-of-range ", inst.target);
        }
        if (!isMem(inst.op) && inst.op2_shift != ShiftKind::None) {
            fatal_if(aluKind(inst.op) != AluKind::Arith,
                     "program '", name_, "': shifted op2 at ", pc,
                     " on a non-arithmetic op");
        }
    }
}

} // namespace redsoc

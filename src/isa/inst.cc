#include "isa/inst.h"

namespace redsoc {

std::array<RegIdx, 3>
Inst::sources() const
{
    std::array<RegIdx, 3> srcs = {kNoReg, kNoReg, kNoReg};
    unsigned n = 0;
    auto add = [&](RegIdx r) {
        if (r != kNoReg && r != kZeroReg)
            srcs[n++] = r;
    };
    add(src1);
    if (!use_imm)
        add(src2);
    add(src3);
    return srcs;
}

RegIdx
Inst::destination() const
{
    if (dst == kNoReg || dst == kZeroReg)
        return kNoReg;
    return dst;
}

unsigned
Inst::numSources() const
{
    auto srcs = sources();
    unsigned n = 0;
    for (RegIdx r : srcs)
        if (r != kNoReg)
            ++n;
    return n;
}

} // namespace redsoc

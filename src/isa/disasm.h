/**
 * @file
 * Disassembler for debugging and trace dumps.
 */

#ifndef REDSOC_ISA_DISASM_H
#define REDSOC_ISA_DISASM_H

#include <string>

#include "isa/inst.h"

namespace redsoc {

/** Render a single instruction as assembler-ish text. */
std::string disassemble(const Inst &inst);

} // namespace redsoc

#endif // REDSOC_ISA_DISASM_H

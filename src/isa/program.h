/**
 * @file
 * A Program is a validated sequence of static instructions plus a
 * name. Programs are produced by ProgramBuilder and consumed by the
 * functional interpreter and (via traces) the core models.
 */

#ifndef REDSOC_ISA_PROGRAM_H
#define REDSOC_ISA_PROGRAM_H

#include <string>
#include <vector>

#include "isa/inst.h"

namespace redsoc {

class Program
{
  public:
    Program(std::string name, std::vector<Inst> insts);

    const std::string &name() const { return name_; }
    const std::vector<Inst> &insts() const { return insts_; }
    const Inst &inst(u32 pc) const { return insts_[pc]; }
    u32 size() const { return static_cast<u32>(insts_.size()); }

  private:
    std::string name_;
    std::vector<Inst> insts_;
};

} // namespace redsoc

#endif // REDSOC_ISA_PROGRAM_H

#include "isa/builder.h"

#include <cstring>

#include "common/logging.h"

namespace redsoc {

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    label_addr_.push_back(-1);
    return Label{static_cast<u32>(label_addr_.size() - 1)};
}

void
ProgramBuilder::bind(Label l)
{
    panic_if(l.id >= label_addr_.size(), "bind of unknown label");
    panic_if(label_addr_[l.id] >= 0, "label bound twice");
    label_addr_[l.id] = static_cast<s64>(insts_.size());
}

void
ProgramBuilder::emit(Inst inst)
{
    panic_if(built_, "builder reused after build()");
    insts_.push_back(inst);
}

void
ProgramBuilder::emitBranchTo(Inst inst, Label l)
{
    panic_if(l.id >= label_addr_.size(), "branch to unknown label");
    fixups_.emplace_back(static_cast<u32>(insts_.size()), l.id);
    emit(inst);
}

void
ProgramBuilder::alu(Opcode op, RegIdx dst, RegIdx a, RegIdx b)
{
    Inst i;
    i.op = op;
    i.dst = dst;
    i.src1 = a;
    i.src2 = b;
    emit(i);
}

void
ProgramBuilder::alui(Opcode op, RegIdx dst, RegIdx a, s64 imm)
{
    Inst i;
    i.op = op;
    i.dst = dst;
    i.src1 = a;
    i.use_imm = true;
    i.imm = imm;
    emit(i);
}

void
ProgramBuilder::aluShifted(Opcode op, RegIdx dst, RegIdx a, RegIdx b,
                           ShiftKind kind, u8 amount)
{
    // µISA rule: the shifted second operand is an *arithmetic*
    // datapath feature (the ARM-flavoured shift-and-add of Sec.II-A);
    // logical ops take plain operands. This keeps the logic+shift
    // LUT row anchored to the pure shift opcodes.
    panic_if(aluKind(op) != AluKind::Arith,
             "shifted op2 only on arithmetic ops");
    Inst i;
    i.op = op;
    i.dst = dst;
    i.src1 = a;
    i.src2 = b;
    i.op2_shift = kind;
    i.shamt = amount;
    emit(i);
}

void
ProgramBuilder::movImm(RegIdx dst, s64 imm)
{
    Inst i;
    i.op = Opcode::MOV;
    i.dst = dst;
    i.src1 = kZeroReg;
    i.use_imm = true;
    i.imm = imm;
    emit(i);
}

void
ProgramBuilder::mov(RegIdx dst, RegIdx src)
{
    Inst i;
    i.op = Opcode::MOV;
    i.dst = dst;
    i.src1 = src;
    emit(i);
}

void
ProgramBuilder::mvn(RegIdx dst, RegIdx src)
{
    Inst i;
    i.op = Opcode::MVN;
    i.dst = dst;
    i.src1 = src;
    emit(i);
}

void
ProgramBuilder::lslImm(RegIdx dst, RegIdx src, u8 amount)
{
    alui(Opcode::LSL, dst, src, amount);
}

void
ProgramBuilder::lsrImm(RegIdx dst, RegIdx src, u8 amount)
{
    alui(Opcode::LSR, dst, src, amount);
}

void
ProgramBuilder::asrImm(RegIdx dst, RegIdx src, u8 amount)
{
    alui(Opcode::ASR, dst, src, amount);
}

void
ProgramBuilder::rorImm(RegIdx dst, RegIdx src, u8 amount)
{
    alui(Opcode::ROR, dst, src, amount);
}

void
ProgramBuilder::lsl(RegIdx dst, RegIdx src, RegIdx amount)
{
    alu(Opcode::LSL, dst, src, amount);
}

void
ProgramBuilder::lsr(RegIdx dst, RegIdx src, RegIdx amount)
{
    alu(Opcode::LSR, dst, src, amount);
}

void
ProgramBuilder::mul(RegIdx dst, RegIdx a, RegIdx b)
{
    alu(Opcode::MUL, dst, a, b);
}

void
ProgramBuilder::mla(RegIdx dst, RegIdx a, RegIdx b, RegIdx acc)
{
    Inst i;
    i.op = Opcode::MLA;
    i.dst = dst;
    i.src1 = a;
    i.src2 = b;
    i.src3 = acc;
    emit(i);
}

void
ProgramBuilder::sdiv(RegIdx dst, RegIdx a, RegIdx b)
{
    alu(Opcode::SDIV, dst, a, b);
}

void
ProgramBuilder::udiv(RegIdx dst, RegIdx a, RegIdx b)
{
    alu(Opcode::UDIV, dst, a, b);
}

void
ProgramBuilder::fop(Opcode op, RegIdx dst, RegIdx a, RegIdx b)
{
    panic_if(!isFp(op), "fop with non-FP opcode");
    alu(op, dst, a, b);
}

void
ProgramBuilder::fmovImm(RegIdx dst, double value)
{
    s64 raw;
    static_assert(sizeof(raw) == sizeof(value));
    std::memcpy(&raw, &value, sizeof(raw));
    movImm(dst, raw);
}

void
ProgramBuilder::fcvtzs(RegIdx dst, RegIdx src)
{
    Inst i;
    i.op = Opcode::FCVTZS;
    i.dst = dst;
    i.src1 = src;
    emit(i);
}

void
ProgramBuilder::scvtf(RegIdx dst, RegIdx src)
{
    Inst i;
    i.op = Opcode::SCVTF;
    i.dst = dst;
    i.src1 = src;
    emit(i);
}

void
ProgramBuilder::load(Opcode op, RegIdx dst, RegIdx base, s64 offset)
{
    panic_if(!isLoad(op), "load with non-load opcode");
    Inst i;
    i.op = op;
    i.dst = dst;
    i.src1 = base;
    i.use_imm = true;
    i.imm = offset;
    emit(i);
}

void
ProgramBuilder::loadIdx(Opcode op, RegIdx dst, RegIdx base, RegIdx index,
                        u8 scale_shift)
{
    panic_if(!isLoad(op), "loadIdx with non-load opcode");
    Inst i;
    i.op = op;
    i.dst = dst;
    i.src1 = base;
    i.src2 = index;
    i.op2_shift = ShiftKind::Lsl;
    i.shamt = scale_shift;
    emit(i);
}

void
ProgramBuilder::store(Opcode op, RegIdx data, RegIdx base, s64 offset)
{
    panic_if(!isStore(op), "store with non-store opcode");
    Inst i;
    i.op = op;
    i.src3 = data;
    i.src1 = base;
    i.use_imm = true;
    i.imm = offset;
    emit(i);
}

void
ProgramBuilder::storeIdx(Opcode op, RegIdx data, RegIdx base, RegIdx index,
                         u8 scale_shift)
{
    panic_if(!isStore(op), "storeIdx with non-store opcode");
    Inst i;
    i.op = op;
    i.src3 = data;
    i.src1 = base;
    i.src2 = index;
    i.op2_shift = ShiftKind::Lsl;
    i.shamt = scale_shift;
    emit(i);
}

void
ProgramBuilder::vop(Opcode op, RegIdx vd, RegIdx va, RegIdx vb, VecType vt)
{
    panic_if(!isSimd(op), "vop with non-SIMD opcode");
    Inst i;
    i.op = op;
    i.dst = vd;
    i.src1 = va;
    i.src2 = vb;
    i.vtype = vt;
    emit(i);
}

void
ProgramBuilder::vshiftImm(Opcode op, RegIdx vd, RegIdx va, u8 amount,
                          VecType vt)
{
    Inst i;
    i.op = op;
    i.dst = vd;
    i.src1 = va;
    i.use_imm = true;
    i.imm = amount;
    i.vtype = vt;
    emit(i);
}

void
ProgramBuilder::vdup(RegIdx vd, RegIdx scalar, VecType vt)
{
    Inst i;
    i.op = Opcode::VDUP;
    i.dst = vd;
    i.src1 = scalar;
    i.vtype = vt;
    emit(i);
}

void
ProgramBuilder::vmov(RegIdx vd, RegIdx va)
{
    Inst i;
    i.op = Opcode::VMOV;
    i.dst = vd;
    i.src1 = va;
    emit(i);
}

void
ProgramBuilder::vmla(RegIdx vd, RegIdx va, RegIdx vb, VecType vt)
{
    Inst i;
    i.op = Opcode::VMLA;
    i.dst = vd;
    i.src1 = va;
    i.src2 = vb;
    i.src3 = vd; // accumulate input
    i.vtype = vt;
    emit(i);
}

void
ProgramBuilder::vmul(RegIdx vd, RegIdx va, RegIdx vb, VecType vt)
{
    vop(Opcode::VMUL, vd, va, vb, vt);
}

void
ProgramBuilder::vldr(RegIdx vd, RegIdx base, s64 offset)
{
    Inst i;
    i.op = Opcode::VLDR;
    i.dst = vd;
    i.src1 = base;
    i.use_imm = true;
    i.imm = offset;
    emit(i);
}

void
ProgramBuilder::vstr(RegIdx vs, RegIdx base, s64 offset)
{
    Inst i;
    i.op = Opcode::VSTR;
    i.src3 = vs;
    i.src1 = base;
    i.use_imm = true;
    i.imm = offset;
    emit(i);
}

void
ProgramBuilder::vredsum(RegIdx dst, RegIdx va, VecType vt)
{
    Inst i;
    i.op = Opcode::VREDSUM;
    i.dst = dst;
    i.src1 = va;
    i.vtype = vt;
    emit(i);
}

void
ProgramBuilder::b(Label l)
{
    Inst i;
    i.op = Opcode::B;
    emitBranchTo(i, l);
}

void
ProgramBuilder::branch(Opcode op, RegIdx test, Label l)
{
    panic_if(!isCondBranch(op), "branch() with non-conditional opcode");
    Inst i;
    i.op = op;
    i.src1 = test;
    emitBranchTo(i, l);
}

void
ProgramBuilder::bl(Label l)
{
    Inst i;
    i.op = Opcode::BL;
    i.dst = kLinkReg;
    emitBranchTo(i, l);
}

void
ProgramBuilder::ret()
{
    Inst i;
    i.op = Opcode::RET;
    i.src1 = kLinkReg;
    emit(i);
}

void
ProgramBuilder::halt()
{
    Inst i;
    i.op = Opcode::HALT;
    emit(i);
}

Program
ProgramBuilder::build()
{
    panic_if(built_, "build() called twice");
    built_ = true;
    for (auto [inst_idx, label_id] : fixups_) {
        fatal_if(label_addr_[label_id] < 0,
                 "program '", name_, "': unbound label ", label_id);
        insts_[inst_idx].target = static_cast<u32>(label_addr_[label_id]);
    }
    return Program(name_, std::move(insts_));
}

} // namespace redsoc

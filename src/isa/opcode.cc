#include "isa/opcode.h"

#include "common/logging.h"

namespace redsoc {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::AND: return "AND";
      case Opcode::BIC: return "BIC";
      case Opcode::ORR: return "ORR";
      case Opcode::EOR: return "EOR";
      case Opcode::MVN: return "MVN";
      case Opcode::TST: return "TST";
      case Opcode::TEQ: return "TEQ";
      case Opcode::MOV: return "MOV";
      case Opcode::LSL: return "LSL";
      case Opcode::LSR: return "LSR";
      case Opcode::ASR: return "ASR";
      case Opcode::ROR: return "ROR";
      case Opcode::RRX: return "RRX";
      case Opcode::ADD: return "ADD";
      case Opcode::ADC: return "ADC";
      case Opcode::SUB: return "SUB";
      case Opcode::SBC: return "SBC";
      case Opcode::RSB: return "RSB";
      case Opcode::RSC: return "RSC";
      case Opcode::CMP: return "CMP";
      case Opcode::CMN: return "CMN";
      case Opcode::MUL: return "MUL";
      case Opcode::MLA: return "MLA";
      case Opcode::SDIV: return "SDIV";
      case Opcode::UDIV: return "UDIV";
      case Opcode::FADD: return "FADD";
      case Opcode::FSUB: return "FSUB";
      case Opcode::FMUL: return "FMUL";
      case Opcode::FDIV: return "FDIV";
      case Opcode::FMIN: return "FMIN";
      case Opcode::FMAX: return "FMAX";
      case Opcode::FCVTZS: return "FCVTZS";
      case Opcode::SCVTF: return "SCVTF";
      case Opcode::LDR: return "LDR";
      case Opcode::LDRW: return "LDRW";
      case Opcode::LDRH: return "LDRH";
      case Opcode::LDRB: return "LDRB";
      case Opcode::STR: return "STR";
      case Opcode::STRW: return "STRW";
      case Opcode::STRH: return "STRH";
      case Opcode::STRB: return "STRB";
      case Opcode::VLDR: return "VLDR";
      case Opcode::VSTR: return "VSTR";
      case Opcode::VADD: return "VADD";
      case Opcode::VSUB: return "VSUB";
      case Opcode::VAND: return "VAND";
      case Opcode::VORR: return "VORR";
      case Opcode::VEOR: return "VEOR";
      case Opcode::VMAX: return "VMAX";
      case Opcode::VMIN: return "VMIN";
      case Opcode::VSHL: return "VSHL";
      case Opcode::VSHR: return "VSHR";
      case Opcode::VDUP: return "VDUP";
      case Opcode::VMOV: return "VMOV";
      case Opcode::VMUL: return "VMUL";
      case Opcode::VMLA: return "VMLA";
      case Opcode::VREDSUM: return "VREDSUM";
      case Opcode::B: return "B";
      case Opcode::BEQZ: return "BEQZ";
      case Opcode::BNEZ: return "BNEZ";
      case Opcode::BLTZ: return "BLTZ";
      case Opcode::BGEZ: return "BGEZ";
      case Opcode::BGTZ: return "BGTZ";
      case Opcode::BLEZ: return "BLEZ";
      case Opcode::BL: return "BL";
      case Opcode::RET: return "RET";
      case Opcode::HALT: return "HALT";
      default: panic("opcodeName: bad opcode ", static_cast<int>(op));
    }
}

const char *
vecTypeName(VecType vt)
{
    switch (vt) {
      case VecType::I8: return "i8";
      case VecType::I16: return "i16";
      case VecType::I32: return "i32";
      case VecType::I64: return "i64";
      default: panic("bad VecType");
    }
}

unsigned
vecLanes(VecType vt)
{
    return 128 / vecElemBits(vt);
}

unsigned
vecElemBits(VecType vt)
{
    switch (vt) {
      case VecType::I8: return 8;
      case VecType::I16: return 16;
      case VecType::I32: return 32;
      case VecType::I64: return 64;
      default: panic("bad VecType");
    }
}

FuClass
fuClass(Opcode op)
{
    switch (op) {
      case Opcode::AND: case Opcode::BIC: case Opcode::ORR:
      case Opcode::EOR: case Opcode::MVN: case Opcode::TST:
      case Opcode::TEQ: case Opcode::MOV: case Opcode::LSL:
      case Opcode::LSR: case Opcode::ASR: case Opcode::ROR:
      case Opcode::RRX: case Opcode::ADD: case Opcode::ADC:
      case Opcode::SUB: case Opcode::SBC: case Opcode::RSB:
      case Opcode::RSC: case Opcode::CMP: case Opcode::CMN:
      case Opcode::B: case Opcode::BEQZ: case Opcode::BNEZ:
      case Opcode::BLTZ: case Opcode::BGEZ: case Opcode::BGTZ:
      case Opcode::BLEZ: case Opcode::BL: case Opcode::RET:
        return FuClass::IntAlu;
      case Opcode::MUL: case Opcode::MLA:
        return FuClass::IntMul;
      case Opcode::SDIV: case Opcode::UDIV:
        return FuClass::IntDiv;
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FMIN: case Opcode::FMAX: case Opcode::FCVTZS:
      case Opcode::SCVTF:
        return FuClass::Fp;
      case Opcode::FDIV:
        return FuClass::FpDiv;
      case Opcode::LDR: case Opcode::LDRW: case Opcode::LDRH:
      case Opcode::LDRB: case Opcode::VLDR:
        return FuClass::MemRead;
      case Opcode::STR: case Opcode::STRW: case Opcode::STRH:
      case Opcode::STRB: case Opcode::VSTR:
        return FuClass::MemWrite;
      case Opcode::VADD: case Opcode::VSUB: case Opcode::VAND:
      case Opcode::VORR: case Opcode::VEOR: case Opcode::VMAX:
      case Opcode::VMIN: case Opcode::VSHL: case Opcode::VSHR:
      case Opcode::VDUP: case Opcode::VMOV: case Opcode::VREDSUM:
        return FuClass::SimdAlu;
      case Opcode::VMUL: case Opcode::VMLA:
        return FuClass::SimdMul;
      case Opcode::HALT:
        return FuClass::None;
      default: panic("fuClass: bad opcode");
    }
}

AluKind
aluKind(Opcode op)
{
    switch (op) {
      case Opcode::AND: case Opcode::BIC: case Opcode::ORR:
      case Opcode::EOR: case Opcode::MVN: case Opcode::TST:
      case Opcode::TEQ:
        return AluKind::Logic;
      case Opcode::MOV: case Opcode::LSL: case Opcode::LSR:
      case Opcode::ASR: case Opcode::ROR: case Opcode::RRX:
        return AluKind::MoveShift;
      case Opcode::ADD: case Opcode::ADC: case Opcode::SUB:
      case Opcode::SBC: case Opcode::RSB: case Opcode::RSC:
      case Opcode::CMP: case Opcode::CMN:
      // Conditional branches resolve through the adder/comparator.
      case Opcode::BEQZ: case Opcode::BNEZ: case Opcode::BLTZ:
      case Opcode::BGEZ: case Opcode::BGTZ: case Opcode::BLEZ:
        return AluKind::Arith;
      default:
        return AluKind::NotAlu;
    }
}

bool
isIntAlu(Opcode op)
{
    return fuClass(op) == FuClass::IntAlu;
}

bool
isSimdAlu(Opcode op)
{
    return fuClass(op) == FuClass::SimdAlu;
}

bool
isLoad(Opcode op)
{
    return fuClass(op) == FuClass::MemRead;
}

bool
isStore(Opcode op)
{
    return fuClass(op) == FuClass::MemWrite;
}

bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::B: case Opcode::BEQZ: case Opcode::BNEZ:
      case Opcode::BLTZ: case Opcode::BGEZ: case Opcode::BGTZ:
      case Opcode::BLEZ: case Opcode::BL: case Opcode::RET:
        return true;
      default:
        return false;
    }
}

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::BEQZ: case Opcode::BNEZ: case Opcode::BLTZ:
      case Opcode::BGEZ: case Opcode::BGTZ: case Opcode::BLEZ:
        return true;
      default:
        return false;
    }
}

bool
isSimd(Opcode op)
{
    switch (fuClass(op)) {
      case FuClass::SimdAlu: case FuClass::SimdMul:
        return true;
      default:
        return op == Opcode::VLDR || op == Opcode::VSTR;
    }
}

bool
isFp(Opcode op)
{
    FuClass fc = fuClass(op);
    return fc == FuClass::Fp || fc == FuClass::FpDiv;
}

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::LDR: case Opcode::STR: return 8;
      case Opcode::LDRW: case Opcode::STRW: return 4;
      case Opcode::LDRH: case Opcode::STRH: return 2;
      case Opcode::LDRB: case Opcode::STRB: return 1;
      case Opcode::VLDR: case Opcode::VSTR: return 16;
      default: panic("memAccessSize on non-memory opcode ",
                     opcodeName(op));
    }
}

unsigned
fuLatency(FuClass fc)
{
    switch (fc) {
      case FuClass::IntAlu: return 1;
      case FuClass::IntMul: return 3;
      case FuClass::IntDiv: return 12;
      case FuClass::Fp: return 4;
      case FuClass::FpDiv: return 16;
      case FuClass::SimdAlu: return 1;
      case FuClass::SimdMul: return 4;
      // Memory latency comes from the cache hierarchy, not here;
      // this is the address-generation + pipeline cost.
      case FuClass::MemRead: return 1;
      case FuClass::MemWrite: return 1;
      case FuClass::None: return 1;
      default: panic("fuLatency: bad class");
    }
}

bool
fuPipelined(FuClass fc)
{
    switch (fc) {
      case FuClass::IntDiv: case FuClass::FpDiv:
        return false;
      default:
        return true;
    }
}

} // namespace redsoc

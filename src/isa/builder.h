/**
 * @file
 * ProgramBuilder: a fluent in-C++ assembler for the µISA with
 * forward-referencing labels. The whole workload suite is written
 * against this interface.
 */

#ifndef REDSOC_ISA_BUILDER_H
#define REDSOC_ISA_BUILDER_H

#include <string>
#include <vector>

#include "isa/program.h"

namespace redsoc {

/** Scalar register shorthand: x(5) is register x5. */
inline constexpr RegIdx
x(unsigned idx)
{
    return static_cast<RegIdx>(idx);
}

/** Vector register shorthand: v(2) is register v2 (unified id). */
inline constexpr RegIdx
v(unsigned idx)
{
    return vreg(idx);
}

class ProgramBuilder
{
  public:
    /** An abstract code label; bind() attaches it to the next inst. */
    struct Label { u32 id; };

    explicit ProgramBuilder(std::string name);

    Label newLabel();
    /** Attach @p l to the address of the next emitted instruction. */
    void bind(Label l);

    // --- Scalar data ops (register or immediate second operand) ----
    void alu(Opcode op, RegIdx dst, RegIdx a, RegIdx b);
    void alui(Opcode op, RegIdx dst, RegIdx a, s64 imm);
    /** Arith op with shifted register second operand (ARM op2). */
    void aluShifted(Opcode op, RegIdx dst, RegIdx a, RegIdx b,
                    ShiftKind kind, u8 amount);

    void movImm(RegIdx dst, s64 imm);
    void mov(RegIdx dst, RegIdx src);
    void mvn(RegIdx dst, RegIdx src);
    void lslImm(RegIdx dst, RegIdx src, u8 amount);
    void lsrImm(RegIdx dst, RegIdx src, u8 amount);
    void asrImm(RegIdx dst, RegIdx src, u8 amount);
    void rorImm(RegIdx dst, RegIdx src, u8 amount);
    void lsl(RegIdx dst, RegIdx src, RegIdx amount);
    void lsr(RegIdx dst, RegIdx src, RegIdx amount);

    // --- Multi-cycle integer ---------------------------------------
    void mul(RegIdx dst, RegIdx a, RegIdx b);
    void mla(RegIdx dst, RegIdx a, RegIdx b, RegIdx acc);
    void sdiv(RegIdx dst, RegIdx a, RegIdx b);
    void udiv(RegIdx dst, RegIdx a, RegIdx b);

    // --- Floating point (bits of scalar regs as IEEE double) -------
    void fop(Opcode op, RegIdx dst, RegIdx a, RegIdx b);
    void fmovImm(RegIdx dst, double value);
    void fcvtzs(RegIdx dst, RegIdx src);
    void scvtf(RegIdx dst, RegIdx src);

    // --- Memory -----------------------------------------------------
    void load(Opcode op, RegIdx dst, RegIdx base, s64 offset);
    void loadIdx(Opcode op, RegIdx dst, RegIdx base, RegIdx index,
                 u8 scale_shift);
    void store(Opcode op, RegIdx data, RegIdx base, s64 offset);
    void storeIdx(Opcode op, RegIdx data, RegIdx base, RegIdx index,
                  u8 scale_shift);

    // --- SIMD -------------------------------------------------------
    void vop(Opcode op, RegIdx vd, RegIdx va, RegIdx vb, VecType vt);
    void vshiftImm(Opcode op, RegIdx vd, RegIdx va, u8 amount,
                   VecType vt);
    void vdup(RegIdx vd, RegIdx scalar, VecType vt);
    void vmov(RegIdx vd, RegIdx va);
    /** vd += va * vb (vd is also the accumulate source). */
    void vmla(RegIdx vd, RegIdx va, RegIdx vb, VecType vt);
    void vmul(RegIdx vd, RegIdx va, RegIdx vb, VecType vt);
    void vldr(RegIdx vd, RegIdx base, s64 offset);
    void vstr(RegIdx vs, RegIdx base, s64 offset);
    void vredsum(RegIdx dst, RegIdx va, VecType vt);

    // --- Control ----------------------------------------------------
    void b(Label l);
    void branch(Opcode op, RegIdx test, Label l);
    void beqz(RegIdx r, Label l) { branch(Opcode::BEQZ, r, l); }
    void bnez(RegIdx r, Label l) { branch(Opcode::BNEZ, r, l); }
    void bltz(RegIdx r, Label l) { branch(Opcode::BLTZ, r, l); }
    void bgez(RegIdx r, Label l) { branch(Opcode::BGEZ, r, l); }
    void bgtz(RegIdx r, Label l) { branch(Opcode::BGTZ, r, l); }
    void blez(RegIdx r, Label l) { branch(Opcode::BLEZ, r, l); }
    void bl(Label l);
    void ret();
    void halt();

    /** Current instruction count (address of the next emission). */
    u32 here() const { return static_cast<u32>(insts_.size()); }

    /** Validate labels, patch branch targets, and produce the
     *  immutable Program. The builder must not be reused after. */
    Program build();

  private:
    void emit(Inst inst);
    void emitBranchTo(Inst inst, Label l);

    std::string name_;
    std::vector<Inst> insts_;
    std::vector<s64> label_addr_;              // -1 = unbound
    std::vector<std::pair<u32, u32>> fixups_;  // (inst idx, label id)
    bool built_ = false;
};

} // namespace redsoc

#endif // REDSOC_ISA_BUILDER_H

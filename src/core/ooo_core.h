/**
 * @file
 * The out-of-order core timing model. Replays a functional trace
 * through fetch/dispatch, slack-aware wakeup+select, execution-unit
 * and memory timing, and in-order commit, at sub-cycle (tick)
 * resolution. Three scheduler modes share the pipeline:
 *
 *  - Baseline: conventional boundary-clocked scheduling;
 *  - ReDSOC:   transparent-dataflow slack recycling with eager
 *              grandparent wakeup and skewed selection (the paper);
 *  - MOS:      dynamic operation fusion (multiple ops per cycle on
 *              one FU) as the Sec.VI-D comparator.
 *
 * Per-op scheduling state is held structure-of-arrays (DESIGN.md
 * §12): the per-cycle loops touch a handful of dense lanes (status
 * byte, class byte, pending count, gate/arm/select cycles, completion
 * tick) that stream contiguously, while everything written once at
 * dispatch and read once at issue/commit lives in a cache-line-sized
 * cold record. Both scheduler kernels run on the same lanes, so the
 * layout cannot perturb the differential bit-identity contract.
 */

#ifndef REDSOC_CORE_OOO_CORE_H
#define REDSOC_CORE_OOO_CORE_H

#include <chrono>
#include <memory>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/core_config.h"
#include "core/fu_pool.h"
#include "core/invariant_audit.h"
#include "core/lsq.h"
#include "core/rat.h"
#include "core/rob.h"
#include "core/rs.h"
#include "func/trace.h"
#include "predictors/branch_predictor.h"
#include "redsoc/transparent.h"
#include "timing/slack_lut.h"
#include "trace/pipe_tracer.h"

namespace redsoc {

/** Result statistics of one core run. */
struct CoreStats
{
    Cycle cycles = 0;
    u64 committed = 0;

    u64 fu_stall_cycles = 0;      ///< cycles with a ready op denied a unit
    u64 recycled_ops = 0;         ///< transparent (mid-cycle) starts
    u64 two_cycle_holds = 0;      ///< IT3 boundary-crossing allocations
    Tick slack_recycled_ticks = 0;

    u64 egpw_requests = 0;
    u64 egpw_grants = 0;
    u64 egpw_wasted = 0;          ///< granted but recycle condition failed
    u64 fused_ops = 0;            ///< MOS fusions

    u64 la_predictions = 0;       ///< last-arrival (P/GP tag) predictions
    u64 la_mispredictions = 0;
    u64 width_predictions = 0;
    u64 width_aggressive = 0;
    u64 width_conservative = 0;
    u64 branch_lookups = 0;
    u64 branch_mispredicts = 0;

    u64 loads = 0;
    u64 stores = 0;
    u64 l1_load_misses = 0;
    u64 store_forwards = 0;

    /** Dynamic-threshold adaptation trace (min/max/final value). */
    Tick threshold_min = 0;
    Tick threshold_max = 0;
    Tick threshold_final = 0;

    Histogram chain_lengths{64};  ///< final transparent-sequence lengths
    double expected_chain_length = 0.0; ///< Fig.11 statistic

    /**
     * FNV-1a hash folded over every committed op's architectural
     * schedule (sequence number, select cycle, start/complete ticks,
     * transparent/fused flags) in commit order. Two runs with equal
     * checksums executed the same schedule op for op — the
     * scheduler-kernel differential harness compares it alongside
     * every counter above.
     */
    u64 commit_checksum = 0xcbf29ce484222325ull;

    /**
     * Host wall-clock seconds the simulation took. Observability
     * only: NOT part of the deterministic architectural result (the
     * determinism tests and table output ignore it), but preserved by
     * the run cache so throughput trends stay visible. Deliberately
     * absent from the kernel-equivalence comparator: wall-clock time
     * legitimately differs between bit-identical runs.
     */
    double sim_seconds = 0.0; // redsoc-lint: allow(stat-complete)

    /** Simulated millions of committed ops per host second. */
    double simMips() const
    {
        return sim_seconds <= 0.0
                   ? 0.0
                   : static_cast<double>(committed) / sim_seconds / 1e6;
    }

    double ipc() const { return ratioOf(committed, cycles); }
    double fuStallRate() const
    {
        return ratioOf(fu_stall_cycles, cycles);
    }
    double laMispredictRate() const
    {
        return ratioOf(la_mispredictions, la_predictions);
    }
    double widthAggressiveRate() const
    {
        return ratioOf(width_aggressive, width_predictions);
    }
    double branchMispredictRate() const
    {
        return ratioOf(branch_mispredicts, branch_lookups);
    }
};

/** Export run statistics as a named StatGroup (gem5-style dump). */
StatGroup toStatGroup(const CoreStats &stats, const std::string &name);

/**
 * Thrown when the no-commit watchdog trips (no op committed for
 * CoreConfig::no_commit_horizon cycles): the workload deadlocked the
 * pipeline model. Catchable — the differential harnesses compare the
 * abort cycle across scheduler kernels — and carries the cycle at
 * which the watchdog fired.
 */
class DeadlockError : public std::runtime_error
{
  public:
    DeadlockError(Cycle cycle, SeqNum committed, SeqNum total);

    Cycle cycle() const { return cycle_; }

  private:
    Cycle cycle_;
};

class OooCore
{
  public:
    explicit OooCore(CoreConfig config);

    /** Simulate the trace to completion and return the statistics. */
    CoreStats run(const Trace &trace);

    // --- Incremental stepping (the multi-core Processor driver) -----
    //
    // run() is exactly beginRun(); while (stepRun()) {}; finishRun().
    // The split exists so a Processor can interleave several cores in
    // deterministic global-cycle order while each core keeps its
    // whole single-core pipeline model untouched — a core stepped to
    // completion this way is bit-identical to a plain run()
    // (tests/test_proc_equiv.cc proves it on the acceptance grid).

    /** Reset all per-run state and attach @p trace (kept by
     *  reference until finishRun()). */
    void beginRun(const Trace &trace);

    /**
     * Simulate one iteration of the main loop: commit/issue/dispatch
     * for the current cycle, then advance (the event kernel may
     * fast-forward over provably idle cycles). Returns false once the
     * trace has fully committed. Throws DeadlockError exactly as
     * run() does.
     */
    bool stepRun();

    /** Finalize and return the statistics of the stepped run. */
    CoreStats finishRun();

    /** Current simulated cycle (the Processor's lockstep key). */
    Cycle currentCycle() const { return cycle_; }

    /** True once every op of the attached trace has committed. */
    bool runDone() const
    {
        return trace_ == nullptr || commit_ptr_ >= trace_->size();
    }

    /** The private memory hierarchy (the Processor attaches the
     *  shared LLC and the per-core address-space offset here). */
    MemHierarchy &memory() { return memory_; }
    const MemHierarchy &memory() const { return memory_; }

    /**
     * Attach (or detach, with nullptr) a pipeline event tracer for
     * subsequent run()s. The core does not own the tracer. Tracing is
     * observation-only: every event is emitted at a site both
     * scheduler kernels execute with identical arguments, and a
     * traced run's CoreStats are byte-identical to an untraced one
     * (tests/test_trace_equiv.cc).
     */
    void setTracer(PipeTracer *tracer) { tracer_ = tracer; }

    const CoreConfig &config() const { return config_; }

  private:
    /** The runtime invariant audit (REDSOC_AUDIT=1) reads core state
     *  directly at its hook points. */
    friend class InvariantAuditor;
    /** "no cycle" sentinel for event-kernel re-arm hints. */
    static constexpr Cycle kNoCycle = ~Cycle{0};
    /** Re-arm hint: parked behind an older unresolved store. */
    static constexpr Cycle kParkLoad = kNoCycle - 1;
    /** Consumer-edge list terminator. */
    static constexpr u32 kNoEdge = ~u32{0};

    // --- Per-op status lane encoding --------------------------------
    //
    // One byte per op: the lifecycle state in bits 0-1 plus the op's
    // immutable scheduling flags. The layout is load-bearing for the
    // hot loops: "producer not yet scheduled" is the branchless
    // (st & kStMask) < kStDone, and mem-ness is one masked test.

    enum class St : u8 { Fetched = 0, InRs = 1, Done = 2, Committed = 3 };

    static constexpr u8 kStMask = 0x3;
    static constexpr u8 kStFetched = 0;
    static constexpr u8 kStInRs = 1;
    static constexpr u8 kStDone = 2;
    static constexpr u8 kStCommitted = 3;
    static constexpr u8 kEligible = 1u << 2; ///< slack-recycling eligible
    static constexpr u8 kIsLoad = 1u << 3;
    static constexpr u8 kIsStore = 1u << 4;
    static constexpr u8 kIsBranch = 1u << 5;
    static constexpr u8 kInLsq = 1u << 6;
    /** Steady conventional requester: a prior full evaluation reached
     *  the FU check and was denied. Readiness is monotone (producers
     *  stay issued, the gate and LSQ order only resolve forward), so
     *  while the entry's pool has no free unit the whole evaluation
     *  is a provable deny with no simulated side effect and Phase A
     *  may skip it, leaving the entry resident in the ready set. */
    static constexpr u8 kReadyConv = 1u << 7;

    // --- Per-op class lane encoding ---------------------------------
    // FU pool in bits 0-1, FuClass in bits 2-7.
    static constexpr u8 kClsPoolMask = 0x3;
    static u8 packCls(FuPoolKind pool, FuClass fu)
    {
        return static_cast<u8>(static_cast<u8>(pool) |
                               (static_cast<u8>(fu) << 2));
    }

    /** Cold flags (OpCold::cflags): dispatch/issue/commit-time only. */
    static constexpr u8 kColdWidthPredicted = 1u << 0;
    static constexpr u8 kColdLaChecked = 1u << 1;
    static constexpr u8 kColdTransparent = 1u << 2;
    static constexpr u8 kColdFused = 1u << 3;
    static constexpr u8 kColdWidthReplayed = 1u << 4;
    static constexpr u8 kColdBranchMispred = 1u << 5;

    /**
     * Per-dynamic-op cold record: fields written at dispatch and read
     * at most once per issue/commit. Everything the per-cycle loops
     * test repeatedly lives in the dense lanes instead (st_, cls_,
     * pending_, gate_, armed_, sel_, done_). Kept to one cache line
     * so a cold touch costs a single fill.
     */
    struct OpCold
    {
        std::array<SeqNum, 3> prod{kNoSeq, kNoSeq, kNoSeq};
        Cycle dispatch_cycle = 0;
        Tick start_tick = 0;
        u32 predicted_next = 0;  ///< branch predictor outcome
        /** Head/tail of this op's consumer-edge list (kNoEdge = none). */
        u32 cons_head = kNoEdge;
        u32 cons_tail = kNoEdge;
        /** LUT estimate (predicted bucket); bounded by ticksPerCycle
         *  <= 2^ci_precision_bits, so 16 bits are exact. */
        u16 est_ticks = 0;
        u8 nprod = 0;
        /** Operational design: predicted last-arriving producer slot
         *  (index into prod), 0xff = no prediction needed. */
        u8 pred_last_slot = 0xff;
        WidthClass pred_wc = WidthClass::W64;
        WidthClass actual_wc = WidthClass::W64;
        u8 cflags = 0;
    };

    /**
     * Per-static-instruction scheduling metadata, precomputed once
     * per run so dispatch and fast-forward never re-derive opcode
     * properties through out-of-line classifier calls.
     */
    struct InstMeta
    {
        /** Status-lane seed: flag bits (kEligible/kIsLoad/...) without
         *  state or kInLsq; dispatch ORs the lifecycle state in. */
        u8 seed = 0;
        u8 cls = 0;      ///< packed pool|fu
        u8 flags = 0;    ///< kMeta* properties below
        u8 mem_size = 0; ///< access bytes (memory ops only)
    };

    static constexpr u8 kMetaMem = 1u << 0;
    static constexpr u8 kMetaHalt = 1u << 1;
    static constexpr u8 kMetaNeedsRs = 1u << 2;
    static constexpr u8 kMetaSimd = 1u << 3;
    static constexpr u8 kMetaWidthSens = 1u << 4;

    /** A select-stage request assembled during issue. */
    struct Candidate
    {
        SeqNum seq;
        bool speculative;   ///< EGPW (grandparent-woken) request
        Tick start;
        Tick complete;
        unsigned span;      ///< FU booking cycles
        bool transparent;
        bool recycle_ok;    ///< speculative only: conditions hold
    };

    // --- Lane accessors (hot; all inline) ---------------------------

    St stateOf(SeqNum seq) const
    {
        return static_cast<St>(st_[seq] & kStMask);
    }
    bool inRs(SeqNum seq) const
    {
        return (st_[seq] & kStMask) == kStInRs;
    }
    /** True iff the op has issued (Done or Committed): branchless
     *  producer-scheduled test. */
    bool issued(SeqNum seq) const
    {
        return (st_[seq] & kStMask) >= kStDone;
    }
    void setState(SeqNum seq, St st)
    {
        st_[seq] = static_cast<u8>((st_[seq] & ~kStMask) |
                                   static_cast<u8>(st));
    }
    FuPoolKind poolOf(SeqNum seq) const
    {
        return static_cast<FuPoolKind>(cls_[seq] & kClsPoolMask);
    }
    FuClass fuOf(SeqNum seq) const
    {
        return static_cast<FuClass>(cls_[seq] >> 2);
    }

    void commitPhase();
    void dispatchPhase(const Trace &trace);
    void issuePhase();
    /** Epoch boundary: hill-climb the slack threshold (Sec.IV-C
     *  dynamic-threshold extension). */
    void adaptThreshold();

    /**
     * Evaluate a conventional (parent-woken) candidate.
     *
     * When @p next_try is non-null (event kernel) and the entry is
     * not ready, it receives the earliest future cycle at which the
     * verdict can change: a concrete re-arm cycle, kParkLoad for a
     * load blocked on an older unresolved store, or kNoCycle when
     * only a producer wakeup can unblock the entry. Passing nullptr
     * (the legacy scan kernel) changes nothing.
     */
    bool evalConventional(SeqNum seq, Candidate &cand,
                          Cycle *next_try = nullptr);
    /** Evaluate an EGPW (grandparent-woken) candidate. */
    bool evalEager(SeqNum seq, Candidate &cand);
    /**
     * Phase-A select for one RS entry: evaluate (conventional, plus
     * inline EGPW when @p interleave_spec), grant units, issue.
     * Returns true iff the entry requested selection this cycle
     * (granted or denied); on false, *next_try carries the
     * evalConventional re-arm hint.
     */
    bool phaseAEntry(SeqNum seq, bool interleave_spec, bool &fu_denied,
                     Cycle *next_try);
    /** MOS: try to fuse consumer @p cseq into granted producer @p pg's
     *  cycle. Returns true on fusion. */
    bool tryFuse(const Candidate &pg, SeqNum cseq);

    // --- Event-kernel machinery (SchedKernel::Event) ---------------
    /** Schedule a (re-)evaluation of @p seq in cycle @p c. */
    void armAt(SeqNum seq, Cycle c);
    /** Move an entry into this cycle's candidate sets: the Phase-A
     *  ready set when the Phase-A scan is still running (the entry is
     *  always younger than the scan cursor), else next cycle's queue;
     *  plus the EGPW set when @p newly_woken in an EGPW config. */
    void scheduleEval(SeqNum seq, bool newly_woken);
    /** Broadcast an issued op's tag: decrement consumer pending
     *  counts, waking those that hit zero; a store also re-evaluates
     *  parked loads. */
    void broadcastWakeup(SeqNum seq);
    /** Pop due wake_pq_ arms into the Phase-A ready set. */
    void drainWakeQueue();
    /** Jump cycle_ forward to the next cycle any pipeline stage can
     *  make progress (stats-identical: skipped cycles are provably
     *  side-effect-free under the scan kernel). */
    void fastForward(bool adapting);
    /** Fill a candidate's start/complete/span per mode and op class. */
    void fillCompletion(Candidate &cand, SeqNum seq, Tick arrival,
                        Tick start, bool transparent);

    void issueOp(const Candidate &cand);
    Tick memCompleteTick(SeqNum seq, Tick arrival);

    /** Last-completing producer of @p seq (kNoSeq if none). */
    SeqNum lastProducer(SeqNum seq) const;
    /** Max producer completion tick (0 if no producers). */
    Tick producersComplete(SeqNum seq) const;
    /** Cycle from which conventional wakeup permits selection. */
    Cycle selGate(SeqNum seq) const;

    bool widthSensitive(const Inst &inst) const;
    /** Precompute meta_ for the trace's program. */
    void buildInstMeta(const Program &program);

    /** Trace-emission helper: one predictable branch when detached. */
    void emit(PipeEventKind kind, SeqNum seq, Tick tick, u8 arg = 0,
              SeqNum link = kNoSeq)
    {
        if (tracer_)
            tracer_->record(kind, seq, tick, arg, link);
    }
    /** The sub-cycle CI payload of a tick: ciOf() < ticks-per-cycle
     *  (at most 8), so the narrowing is lossless by construction. */
    u8 ciArg(Tick tick) const
    {
        // redsoc-lint: allow(cycle-narrow)
        return static_cast<u8>(clock_.ciOf(tick));
    }
    /** The full frontend ladder (one macro-stage in this model). */
    void emitFrontend(SeqNum seq);
    /** All issue-time events for a granted candidate. */
    void emitIssue(const Candidate &cand);

    CoreConfig config_;
    SubCycleClock clock_;
    TimingModel timing_;
    SlackLut lut_;
    MemHierarchy memory_;
    BranchPredictor branch_pred_;
    WidthPredictor width_pred_;
    LastArrivalPredictor la_pred_;

    Rob rob_;
    Lsq lsq_;
    ReservationStations rs_;
    FuPool fu_;
    Rat rat_;
    TransparentTracker chains_;

    const Trace *trace_ = nullptr;

    // --- SoA scheduler state, keyed by SeqNum (DESIGN.md §12) ------
    //
    // Lane ownership: st_/sel_/done_ transition at dispatch, issue and
    // commit; pending_/armed_ belong to the event kernel's wakeup
    // network; gate_ is the earliest-eval cycle max(dispatch_cycle+1,
    // retry_cycle); cold_ is written at dispatch and read at
    // issue/commit. Lanes are resized (not cleared) per run: every
    // field is fully initialized at the op's dispatch, and no lane is
    // read for an undispatched op.
    std::vector<u8> st_;       ///< lifecycle state + flag bits
    std::vector<u8> cls_;      ///< packed FU pool | FuClass
    std::vector<u8> pending_;  ///< producers still in RS (event kernel)
    std::vector<Cycle> gate_;  ///< earliest conventional-eval cycle
    std::vector<Cycle> armed_; ///< live wake_pq_ arm (stale-guard)
    std::vector<Cycle> sel_;   ///< select cycle (valid once issued)
    std::vector<Tick> done_;   ///< completion tick (valid once issued)
    std::vector<OpCold> cold_; ///< dispatch/commit-only record

    std::vector<InstMeta> meta_; ///< per static instruction
    const DynOp *dyn_ = nullptr; ///< trace_->ops().data() (hoisted)

    SeqNum next_fetch_ = 0;
    SeqNum commit_ptr_ = 0;
    Cycle cycle_ = 0;
    Cycle fetch_stall_until_ = 0;
    SeqNum fetch_blocked_on_ = kNoSeq;
    Cycle last_commit_cycle_ = 0;

    // Dynamic-threshold adaptation state.
    Tick cur_threshold_ = 0;
    int adapt_direction_ = 1;
    SeqNum epoch_start_commits_ = 0;
    SeqNum last_epoch_commits_ = 0;

    // Reusable per-cycle scratch buffers (hot path: issuePhase runs
    // every cycle and must not allocate or copy the RS wholesale).
    std::vector<SeqNum> scan_;        ///< RS snapshot for select scans
    std::vector<Candidate> conv_grants_; ///< this cycle's conv. grants

    // --- Event-kernel state (SchedKernel::Event) --------------------
    bool event_kernel_ = false;
    /** Maintain the separate EGPW candidate set (skewed Phase B). */
    bool collect_eager_ = false;
    bool in_phase_a_ = false;

    /** Per-producer consumer lists: edge pool + intrusive heads in
     *  OpCold. Edges append at consumer dispatch, so every list is
     *  age-ordered. */
    struct ConsumerEdge
    {
        SeqNum consumer;
        u32 next;
    };
    std::vector<ConsumerEdge> cons_edges_;

    /** Far-future re-evaluations: (cycle, seq) min-heap with lazy
     *  invalidation via armed_. */
    std::priority_queue<std::pair<Cycle, SeqNum>,
                        std::vector<std::pair<Cycle, SeqNum>>,
                        std::greater<>> wake_pq_;
    /** Next-cycle arms (the overwhelmingly common case: denied-grant
     *  retries, post-Phase-A wakeups, fresh dispatches) bypass the
     *  heap; drained by the following cycle's drainWakeQueue. */
    std::vector<SeqNum> next_arms_;
    ReadySet ready_;  ///< this cycle's Phase-A candidates
    ReadySet eager_;  ///< this cycle's EGPW (Phase-B) candidates
    /** Per-store parked-load lists (SoA lanes, mem ops only): a load
     *  blocked on an older unresolved store parks on one concrete
     *  blocker and re-evaluates only when that store resolves at
     *  issue — not on every store issue. park_head_[store] heads an
     *  intrusive list threaded through park_next_[load]; a parked
     *  load is marked by armed_[load] == kParkLoad. Both lanes are
     *  written at the op's dispatch before any read. */
    std::vector<SeqNum> park_head_;
    std::vector<SeqNum> park_next_;

    /** First cycle NOT covered by a parked span-denied steady
     *  requester. Every cycle below it holds at least one ready
     *  request the scan kernel would count as FU-stalled, so the
     *  event kernel charges fu_stall_cycles for simulated and
     *  fast-forwarded cycles under this horizon alike. */
    Cycle denied_horizon_ = 0;

    PipeTracer *tracer_ = nullptr; ///< not owned; nullptr = off

    /** REDSOC_AUDIT=1 at construction: run the invariant audit. When
     *  off, the whole subsystem costs one branch per hook site. */
    bool audit_on_ = false;
    InvariantAuditor audit_;
    /** prof::enabled() sampled once per run (hoists the check out of
     *  the per-cycle wakeup/select timers). */
    bool profiling_ = false;
    /** Dynamic-threshold adaptation active this run (mode + config). */
    bool adapting_ = false;
    /** beginRun() timestamp for the sim_seconds observability stat. */
    std::chrono::steady_clock::time_point wall_start_{};

    CoreStats stats_;

    // Lane geometry is part of the perf contract: the status/class/
    // pending lanes must stay one byte (64 entries per cache line),
    // the cycle/tick lanes one word, and the cold record one line.
    static_assert(sizeof(decltype(st_)::value_type) == 1,
                  "status lane must be 1 byte per op");
    static_assert(sizeof(decltype(cls_)::value_type) == 1,
                  "class lane must be 1 byte per op");
    static_assert(sizeof(decltype(pending_)::value_type) == 1,
                  "pending lane must be 1 byte per op");
    static_assert(sizeof(Cycle) == 8 && sizeof(Tick) == 8,
                  "cycle/tick lanes must be 8-byte words");
    static_assert(sizeof(OpCold) == 64 && alignof(OpCold) == 8,
                  "cold record must stay one 64-byte cache line");
    static_assert(std::is_trivially_copyable_v<OpCold>,
                  "cold record must be trivially copyable (bulk reset)");
    static_assert(sizeof(InstMeta) == 4,
                  "per-static-inst metadata must stay 4 bytes");
    static_assert(static_cast<u8>(FuPoolKind::NUM) <= 4,
                  "class lane reserves 2 bits for the FU pool");
    static_assert(static_cast<u8>(FuClass::None) < 64,
                  "class lane reserves 6 bits for the FU class");
};

} // namespace redsoc

#endif // REDSOC_CORE_OOO_CORE_H

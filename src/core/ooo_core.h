/**
 * @file
 * The out-of-order core timing model. Replays a functional trace
 * through fetch/dispatch, slack-aware wakeup+select, execution-unit
 * and memory timing, and in-order commit, at sub-cycle (tick)
 * resolution. Three scheduler modes share the pipeline:
 *
 *  - Baseline: conventional boundary-clocked scheduling;
 *  - ReDSOC:   transparent-dataflow slack recycling with eager
 *              grandparent wakeup and skewed selection (the paper);
 *  - MOS:      dynamic operation fusion (multiple ops per cycle on
 *              one FU) as the Sec.VI-D comparator.
 */

#ifndef REDSOC_CORE_OOO_CORE_H
#define REDSOC_CORE_OOO_CORE_H

#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/core_config.h"
#include "core/fu_pool.h"
#include "core/invariant_audit.h"
#include "core/lsq.h"
#include "core/rat.h"
#include "core/rob.h"
#include "core/rs.h"
#include "func/trace.h"
#include "predictors/branch_predictor.h"
#include "redsoc/transparent.h"
#include "timing/slack_lut.h"
#include "trace/pipe_tracer.h"

namespace redsoc {

/** Result statistics of one core run. */
struct CoreStats
{
    Cycle cycles = 0;
    u64 committed = 0;

    u64 fu_stall_cycles = 0;      ///< cycles with a ready op denied a unit
    u64 recycled_ops = 0;         ///< transparent (mid-cycle) starts
    u64 two_cycle_holds = 0;      ///< IT3 boundary-crossing allocations
    Tick slack_recycled_ticks = 0;

    u64 egpw_requests = 0;
    u64 egpw_grants = 0;
    u64 egpw_wasted = 0;          ///< granted but recycle condition failed
    u64 fused_ops = 0;            ///< MOS fusions

    u64 la_predictions = 0;       ///< last-arrival (P/GP tag) predictions
    u64 la_mispredictions = 0;
    u64 width_predictions = 0;
    u64 width_aggressive = 0;
    u64 width_conservative = 0;
    u64 branch_lookups = 0;
    u64 branch_mispredicts = 0;

    u64 loads = 0;
    u64 stores = 0;
    u64 l1_load_misses = 0;
    u64 store_forwards = 0;

    /** Dynamic-threshold adaptation trace (min/max/final value). */
    Tick threshold_min = 0;
    Tick threshold_max = 0;
    Tick threshold_final = 0;

    Histogram chain_lengths{64};  ///< final transparent-sequence lengths
    double expected_chain_length = 0.0; ///< Fig.11 statistic

    /**
     * FNV-1a hash folded over every committed op's architectural
     * schedule (sequence number, select cycle, start/complete ticks,
     * transparent/fused flags) in commit order. Two runs with equal
     * checksums executed the same schedule op for op — the
     * scheduler-kernel differential harness compares it alongside
     * every counter above.
     */
    u64 commit_checksum = 0xcbf29ce484222325ull;

    /**
     * Host wall-clock seconds the simulation took. Observability
     * only: NOT part of the deterministic architectural result (the
     * determinism tests and table output ignore it), but preserved by
     * the run cache so throughput trends stay visible. Deliberately
     * absent from the kernel-equivalence comparator: wall-clock time
     * legitimately differs between bit-identical runs.
     */
    double sim_seconds = 0.0; // redsoc-lint: allow(stat-complete)

    /** Simulated millions of committed ops per host second. */
    double simMips() const
    {
        return sim_seconds <= 0.0
                   ? 0.0
                   : static_cast<double>(committed) / sim_seconds / 1e6;
    }

    double ipc() const { return ratioOf(committed, cycles); }
    double fuStallRate() const
    {
        return ratioOf(fu_stall_cycles, cycles);
    }
    double laMispredictRate() const
    {
        return ratioOf(la_mispredictions, la_predictions);
    }
    double widthAggressiveRate() const
    {
        return ratioOf(width_aggressive, width_predictions);
    }
    double branchMispredictRate() const
    {
        return ratioOf(branch_mispredicts, branch_lookups);
    }
};

/** Export run statistics as a named StatGroup (gem5-style dump). */
StatGroup toStatGroup(const CoreStats &stats, const std::string &name);

/**
 * Thrown when the no-commit watchdog trips (no op committed for
 * CoreConfig::no_commit_horizon cycles): the workload deadlocked the
 * pipeline model. Catchable — the differential harnesses compare the
 * abort cycle across scheduler kernels — and carries the cycle at
 * which the watchdog fired.
 */
class DeadlockError : public std::runtime_error
{
  public:
    DeadlockError(Cycle cycle, SeqNum committed, SeqNum total);

    Cycle cycle() const { return cycle_; }

  private:
    Cycle cycle_;
};

class OooCore
{
  public:
    explicit OooCore(CoreConfig config);

    /** Simulate the trace to completion and return the statistics. */
    CoreStats run(const Trace &trace);

    /**
     * Attach (or detach, with nullptr) a pipeline event tracer for
     * subsequent run()s. The core does not own the tracer. Tracing is
     * observation-only: every event is emitted at a site both
     * scheduler kernels execute with identical arguments, and a
     * traced run's CoreStats are byte-identical to an untraced one
     * (tests/test_trace_equiv.cc).
     */
    void setTracer(PipeTracer *tracer) { tracer_ = tracer; }

    const CoreConfig &config() const { return config_; }

  private:
    /** The runtime invariant audit (REDSOC_AUDIT=1) reads core state
     *  directly at its hook points. */
    friend class InvariantAuditor;
    /** "no cycle" sentinel for event-kernel re-arm hints. */
    static constexpr Cycle kNoCycle = ~Cycle{0};
    /** Re-arm hint: parked behind an older unresolved store. */
    static constexpr Cycle kParkLoad = kNoCycle - 1;
    /** Consumer-edge list terminator. */
    static constexpr u32 kNoEdge = ~u32{0};

    /** Per-dynamic-op scheduling state. */
    struct OpState
    {
        enum class St : u8 { Fetched, InRs, Done, Committed };

        St st = St::Fetched;
        FuClass fu = FuClass::None;
        FuPoolKind pool = FuPoolKind::Alu;
        bool eligible = false;   ///< slack-recycling eligible
        bool is_load = false;
        bool is_store = false;
        bool is_branch = false;
        bool in_lsq = false;

        std::array<SeqNum, 3> prod{kNoSeq, kNoSeq, kNoSeq};
        u8 nprod = 0;

        Tick est_ticks = 0;      ///< LUT estimate (predicted bucket)
        WidthClass pred_wc = WidthClass::W64;
        WidthClass actual_wc = WidthClass::W64;
        bool width_predicted = false;

        /** Operational design: predicted last-arriving producer slot
         *  (index into prod), 0xff = no prediction needed. */
        u8 pred_last_slot = 0xff;
        bool la_checked = false;

        Cycle dispatch_cycle = 0;
        Cycle select_cycle = 0;
        Cycle retry_cycle = 0;   ///< replay gate after mispredicts
        Tick start_tick = 0;
        Tick complete_tick = 0;
        bool transparent = false;
        bool fused = false;
        bool width_replayed = false;

        u32 predicted_next = 0;  ///< branch predictor outcome
        bool branch_mispredicted = false;

        // --- Event-kernel wakeup state (SchedKernel::Event only) ---
        /** Distinct producers still in the RS (wakeups pending). */
        u8 pending = 0;
        /** Cycle of this entry's live wake_pq_ arm (stale-guard). */
        Cycle armed_cycle = kNoCycle;
        /** Head/tail of this op's consumer-edge list (kNoEdge = none). */
        u32 cons_head = kNoEdge;
        u32 cons_tail = kNoEdge;
    };

    /** A select-stage request assembled during issue. */
    struct Candidate
    {
        SeqNum seq;
        bool speculative;   ///< EGPW (grandparent-woken) request
        Tick start;
        Tick complete;
        unsigned span;      ///< FU booking cycles
        bool transparent;
        bool recycle_ok;    ///< speculative only: conditions hold
    };

    void commitPhase();
    void dispatchPhase(const Trace &trace);
    void issuePhase();
    /** Epoch boundary: hill-climb the slack threshold (Sec.IV-C
     *  dynamic-threshold extension). */
    void adaptThreshold();

    /**
     * Evaluate a conventional (parent-woken) candidate.
     *
     * When @p next_try is non-null (event kernel) and the entry is
     * not ready, it receives the earliest future cycle at which the
     * verdict can change: a concrete re-arm cycle, kParkLoad for a
     * load blocked on an older unresolved store, or kNoCycle when
     * only a producer wakeup can unblock the entry. Passing nullptr
     * (the legacy scan kernel) changes nothing.
     */
    bool evalConventional(SeqNum seq, Candidate &cand,
                          Cycle *next_try = nullptr);
    /** Evaluate an EGPW (grandparent-woken) candidate. */
    bool evalEager(SeqNum seq, Candidate &cand);
    /**
     * Phase-A select for one RS entry: evaluate (conventional, plus
     * inline EGPW when @p interleave_spec), grant units, issue.
     * Returns true iff the entry requested selection this cycle
     * (granted or denied); on false, *next_try carries the
     * evalConventional re-arm hint.
     */
    bool phaseAEntry(SeqNum seq, bool interleave_spec, bool &fu_denied,
                     Cycle *next_try);
    /** MOS: try to fuse consumer @p cseq into granted producer @p pg's
     *  cycle. Returns true on fusion. */
    bool tryFuse(const Candidate &pg, SeqNum cseq);

    // --- Event-kernel machinery (SchedKernel::Event) ---------------
    /** Schedule a (re-)evaluation of @p seq in cycle @p c. */
    void armAt(SeqNum seq, Cycle c);
    /** Move an entry into this cycle's candidate sets: the Phase-A
     *  ready set when the Phase-A scan is still running (the entry is
     *  always younger than the scan cursor), else next cycle's queue;
     *  plus the EGPW set when @p newly_woken in an EGPW config. */
    void scheduleEval(SeqNum seq, bool newly_woken);
    /** Broadcast an issued op's tag: decrement consumer pending
     *  counts, waking those that hit zero; a store also re-evaluates
     *  parked loads. */
    void broadcastWakeup(SeqNum seq);
    /** Pop due wake_pq_ arms into the Phase-A ready set. */
    void drainWakeQueue();
    /** Jump cycle_ forward to the next cycle any pipeline stage can
     *  make progress (stats-identical: skipped cycles are provably
     *  side-effect-free under the scan kernel). */
    void fastForward(bool adapting);
    /** Fill a candidate's start/complete/span per mode and op class. */
    void fillCompletion(Candidate &cand, OpState &op, Tick arrival,
                        Tick start, bool transparent);

    void issueOp(const Candidate &cand);
    Tick memCompleteTick(SeqNum seq, Tick arrival);

    /** Last-completing producer of @p op (kNoSeq if none). */
    SeqNum lastProducer(const OpState &op) const;
    /** Max producer completion tick (0 if no producers). */
    Tick producersComplete(const OpState &op) const;
    /** Cycle from which conventional wakeup permits selection. */
    Cycle selGate(const OpState &op) const;

    bool widthSensitive(const Inst &inst) const;

    /** Trace-emission helper: one predictable branch when detached. */
    void emit(PipeEventKind kind, SeqNum seq, Tick tick, u8 arg = 0,
              SeqNum link = kNoSeq)
    {
        if (tracer_)
            tracer_->record(kind, seq, tick, arg, link);
    }
    /** The sub-cycle CI payload of a tick: ciOf() < ticks-per-cycle
     *  (at most 8), so the narrowing is lossless by construction. */
    u8 ciArg(Tick tick) const
    {
        // redsoc-lint: allow(cycle-narrow)
        return static_cast<u8>(clock_.ciOf(tick));
    }
    /** The full frontend ladder (one macro-stage in this model). */
    void emitFrontend(SeqNum seq);
    /** All issue-time events for a granted candidate. */
    void emitIssue(const Candidate &cand, const OpState &op);

    CoreConfig config_;
    SubCycleClock clock_;
    TimingModel timing_;
    SlackLut lut_;
    MemHierarchy memory_;
    BranchPredictor branch_pred_;
    WidthPredictor width_pred_;
    LastArrivalPredictor la_pred_;

    Rob rob_;
    Lsq lsq_;
    ReservationStations rs_;
    FuPool fu_;
    Rat rat_;
    TransparentTracker chains_;

    const Trace *trace_ = nullptr;
    std::vector<OpState> ops_;
    SeqNum next_fetch_ = 0;
    SeqNum commit_ptr_ = 0;
    Cycle cycle_ = 0;
    Cycle fetch_stall_until_ = 0;
    SeqNum fetch_blocked_on_ = kNoSeq;
    Cycle last_commit_cycle_ = 0;

    // Dynamic-threshold adaptation state.
    Tick cur_threshold_ = 0;
    int adapt_direction_ = 1;
    SeqNum epoch_start_commits_ = 0;
    SeqNum last_epoch_commits_ = 0;

    // Reusable per-cycle scratch buffers (hot path: issuePhase runs
    // every cycle and must not allocate or copy the RS wholesale).
    std::vector<SeqNum> scan_;        ///< RS snapshot for select scans
    std::vector<SeqNum> mos_scan_;    ///< RS snapshot for MOS fusion
    std::vector<Candidate> conv_grants_; ///< this cycle's conv. grants

    // --- Event-kernel state (SchedKernel::Event) --------------------
    bool event_kernel_ = false;
    /** Maintain the separate EGPW candidate set (skewed Phase B). */
    bool collect_eager_ = false;
    bool in_phase_a_ = false;

    /** Per-producer consumer lists: edge pool + intrusive heads in
     *  OpState. Edges append at consumer dispatch, so every list is
     *  age-ordered. */
    struct ConsumerEdge
    {
        SeqNum consumer;
        u32 next;
    };
    std::vector<ConsumerEdge> cons_edges_;

    /** Far-future re-evaluations: (cycle, seq) min-heap with lazy
     *  invalidation via OpState::armed_cycle. */
    std::priority_queue<std::pair<Cycle, SeqNum>,
                        std::vector<std::pair<Cycle, SeqNum>>,
                        std::greater<>> wake_pq_;
    /** Next-cycle arms (the overwhelmingly common case: denied-grant
     *  retries, post-Phase-A wakeups, fresh dispatches) bypass the
     *  heap; drained by the following cycle's drainWakeQueue. */
    std::vector<SeqNum> next_arms_;
    ReadySet ready_;  ///< this cycle's Phase-A candidates
    ReadySet eager_;  ///< this cycle's EGPW (Phase-B) candidates
    /** Loads blocked on an older unresolved store; re-evaluated when
     *  any store issues. */
    std::vector<SeqNum> parked_loads_;

    PipeTracer *tracer_ = nullptr; ///< not owned; nullptr = off

    /** REDSOC_AUDIT=1 at construction: run the invariant audit. When
     *  off, the whole subsystem costs one branch per hook site. */
    bool audit_on_ = false;
    InvariantAuditor audit_;

    CoreStats stats_;
};

} // namespace redsoc

#endif // REDSOC_CORE_OOO_CORE_H

/**
 * @file
 * Reorder buffer: in-order dispatch/commit window bookkeeping.
 * The trace supplies program order, so the ROB tracks occupancy and
 * the commit frontier.
 */

#ifndef REDSOC_CORE_ROB_H
#define REDSOC_CORE_ROB_H

#include <cstddef>
#include <deque>

#include "common/types.h"

namespace redsoc {

class Rob
{
  public:
    explicit Rob(unsigned capacity);

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Dispatch @p seq (must be the next program-order op). */
    void push(SeqNum seq);

    /** Oldest in-flight op. */
    SeqNum head() const;

    /** Commit the head (must equal @p seq). */
    void pop(SeqNum seq);

    /** In-flight ops, oldest first (invariant audit / tests). */
    const std::deque<SeqNum> &entries() const { return entries_; }

  private:
    unsigned capacity_;
    std::deque<SeqNum> entries_;
};

} // namespace redsoc

#endif // REDSOC_CORE_ROB_H

/**
 * @file
 * Functional-unit pools with per-cycle occupancy accounting. Slack
 * recycling allocates an execution unit for *two* cycles when an
 * operation's transparent execution window crosses a clock boundary
 * (IT3, Sec.III), so availability is tracked per future cycle.
 */

#ifndef REDSOC_CORE_FU_POOL_H
#define REDSOC_CORE_FU_POOL_H

#include <array>
#include <vector>

#include "core/core_config.h"
#include "isa/opcode.h"

namespace redsoc {

/** Physical execution-port pool an FuClass maps onto. */
enum class FuPoolKind : u8 { Alu, Simd, Fp, Mem, NUM };

FuPoolKind fuPoolKind(FuClass fc);

class FuPool
{
  public:
    explicit FuPool(const CoreConfig &config);

    /** Units of @p kind free during @p cycle. */
    unsigned freeUnits(FuPoolKind kind, Cycle cycle) const;

    /** True iff one unit of @p kind is free on every cycle of
     *  [cycle, cycle+span) — the two-cycle-hold admission check,
     *  without re-hashing the ring slot per freeUnits call. */
    bool freeSpan(FuPoolKind kind, Cycle cycle, unsigned span) const;

    /**
     * Earliest cycle >= @p from where freeSpan(kind, cycle, span)
     * holds under the *current* bookings. Because bookings only ever
     * accumulate (release() has no caller in the simulator) and only
     * for cycles inside the look-ahead ring, the result is a sound
     * lower bound on when the span can actually be admitted: the
     * event kernel parks span-denied steady requesters until then
     * instead of re-evaluating them every cycle.
     */
    Cycle nextFreeSpanCycle(FuPoolKind kind, Cycle from,
                            unsigned span) const;

    /** Book one unit of @p kind for cycles [cycle, cycle+span). */
    void book(FuPoolKind kind, Cycle cycle, unsigned span = 1);

    /** Release one unit booked in error (misprediction cancel). */
    void release(FuPoolKind kind, Cycle cycle, unsigned span = 1);

    unsigned capacity(FuPoolKind kind) const;

    /**
     * Busy-unit count during @p cycle (for the FU-stall statistic of
     * Fig.14).
     */
    unsigned busyUnits(FuPoolKind kind, Cycle cycle) const;

    /** Drop accounting for cycles before @p cycle (ring advance). */
    void retireBefore(Cycle cycle);

  private:
    static constexpr unsigned kHorizon = 64; ///< booking look-ahead

    unsigned &slot(FuPoolKind kind, Cycle cycle);
    unsigned slotConst(FuPoolKind kind, Cycle cycle) const;

    std::array<unsigned, static_cast<size_t>(FuPoolKind::NUM)> capacity_;
    /** booked_[kind][cycle % kHorizon] with cycle tags. */
    std::array<std::array<unsigned, kHorizon>,
               static_cast<size_t>(FuPoolKind::NUM)> booked_{};
    std::array<Cycle, kHorizon> cycle_tag_{};
};

} // namespace redsoc

#endif // REDSOC_CORE_FU_POOL_H

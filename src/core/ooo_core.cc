#include "core/ooo_core.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.h"
#include "common/shutdown.h"
#include "sim/profile.h"

namespace redsoc {

namespace {

std::string
deadlockMessage(Cycle cycle, SeqNum committed, SeqNum total)
{
    std::ostringstream os;
    os << "no commit progress at cycle " << cycle << " (committed "
       << committed << "/" << total << ")";
    return os.str();
}

} // namespace

DeadlockError::DeadlockError(Cycle cycle, SeqNum committed, SeqNum total)
    : std::runtime_error(deadlockMessage(cycle, committed, total)),
      cycle_(cycle)
{
}

StatGroup
toStatGroup(const CoreStats &stats, const std::string &name)
{
    StatGroup group(name);
    group.recordScalar("cycles", static_cast<double>(stats.cycles));
    group.recordScalar("committed",
                       static_cast<double>(stats.committed));
    group.recordScalar("ipc", stats.ipc());
    group.recordScalar("fu_stall_rate", stats.fuStallRate());
    group.recordScalar("recycled_ops",
                       static_cast<double>(stats.recycled_ops));
    group.recordScalar("two_cycle_holds",
                       static_cast<double>(stats.two_cycle_holds));
    group.recordScalar("slack_recycled_ticks",
                       static_cast<double>(stats.slack_recycled_ticks));
    group.recordScalar("egpw_requests",
                       static_cast<double>(stats.egpw_requests));
    group.recordScalar("egpw_grants",
                       static_cast<double>(stats.egpw_grants));
    group.recordScalar("egpw_wasted",
                       static_cast<double>(stats.egpw_wasted));
    group.recordScalar("fused_ops",
                       static_cast<double>(stats.fused_ops));
    group.recordScalar("la_mispredict_rate", stats.laMispredictRate());
    group.recordScalar("width_aggressive_rate",
                       stats.widthAggressiveRate());
    group.recordScalar("branch_mispredict_rate",
                       stats.branchMispredictRate());
    group.recordScalar("loads", static_cast<double>(stats.loads));
    group.recordScalar("stores", static_cast<double>(stats.stores));
    group.recordScalar("l1_load_misses",
                       static_cast<double>(stats.l1_load_misses));
    group.recordScalar("store_forwards",
                       static_cast<double>(stats.store_forwards));
    group.recordScalar("expected_chain_length",
                       stats.expected_chain_length);
    group.recordScalar("threshold_final",
                       static_cast<double>(stats.threshold_final));
    group.recordScalar("sim_seconds", stats.sim_seconds);
    group.recordScalar("sim_mips", stats.simMips());
    return group;
}

OooCore::OooCore(CoreConfig config)
    : config_(std::move(config)),
      clock_(config_.ci_precision_bits, config_.timing.clock_period_ps),
      timing_(config_.timing),
      lut_(timing_, clock_),
      memory_(config_.memory),
      branch_pred_(config_.branch_pred),
      width_pred_(config_.width_pred),
      la_pred_(config_.last_arrival),
      rob_(config_.rob_entries),
      lsq_(config_.lsq_entries),
      rs_(config_.rs_entries),
      fu_(config_),
      chains_(config_.rob_entries)
{
    fatal_if(config_.slack_threshold_ticks > clock_.ticksPerCycle(),
             "slack threshold exceeds a full cycle");
    fatal_if(config_.no_commit_horizon == 0,
             "zero no-commit watchdog horizon");
    event_kernel_ = config_.sched_kernel == SchedKernel::Event;
    audit_on_ = InvariantAuditor::enabledFromEnv();
    // The EGPW candidate set only exists where a separate Phase-B
    // scan does: skewed selection. The non-skewed ablation evaluates
    // EGPW inline in Phase A on the same ready set.
    collect_eager_ = event_kernel_ &&
                     config_.mode == SchedMode::ReDSOC && config_.egpw &&
                     config_.skewed_select;

    // Candidate-set rings sized for the in-flight window, and every
    // per-cycle scratch vector reserved up front: the scheduler loops
    // must never allocate (redsoc_lint R8 hot-alloc).
    ready_.configure(config_.rob_entries);
    eager_.configure(config_.rob_entries);
    scan_.reserve(config_.rs_entries);
    conv_grants_.reserve(config_.rs_entries);
    next_arms_.reserve(2 * config_.rs_entries);
}

bool
OooCore::widthSensitive(const Inst &inst) const
{
    // Only carry-chain (arithmetic) operations have width-dependent
    // delay; logic and move/shift rows of the LUT collapse widths.
    return aluKind(inst.op) == AluKind::Arith;
}

void
OooCore::buildInstMeta(const Program &program)
{
    meta_.resize(program.size());
    for (u32 pc = 0; pc < program.size(); ++pc) {
        const Inst &inst = program.inst(pc);
        InstMeta m;

        const bool is_mem = isMem(inst.op);
        const bool is_halt = inst.op == Opcode::HALT;
        const bool needs_rs = !is_halt && inst.op != Opcode::B &&
                              inst.op != Opcode::BL &&
                              inst.op != Opcode::RET;
        u8 flags = 0;
        if (is_mem)
            flags |= kMetaMem;
        if (is_halt)
            flags |= kMetaHalt;
        if (needs_rs)
            flags |= kMetaNeedsRs;
        if (isSimd(inst.op))
            flags |= kMetaSimd;
        if (widthSensitive(inst))
            flags |= kMetaWidthSens;
        m.flags = flags;

        u8 seed = 0;
        if (TimingModel::isSlackEligible(inst.op))
            seed |= kEligible;
        if (isLoad(inst.op))
            seed |= kIsLoad;
        if (isStore(inst.op))
            seed |= kIsStore;
        if (isBranch(inst.op))
            seed |= kIsBranch;
        m.seed = seed;

        // Frontend-resolved ops never touch a pool: fuPoolKind(None)
        // is a modelling error by contract, so pin them to Alu|None.
        const FuClass fu = needs_rs ? fuClass(inst.op) : FuClass::None;
        m.cls = needs_rs ? packCls(fuPoolKind(fu), fu)
                         : packCls(FuPoolKind::Alu, FuClass::None);
        m.mem_size =
            is_mem ? static_cast<u8>(memAccessSize(inst.op)) : u8{0};
        meta_[pc] = m;
    }
}

SeqNum
OooCore::lastProducer(SeqNum seq) const
{
    const OpCold &oc = cold_[seq];
    SeqNum last = kNoSeq;
    Tick best = 0;
    for (unsigned i = 0; i < oc.nprod; ++i) {
        const SeqNum p = oc.prod[i];
        if (last == kNoSeq || done_[p] >= best) {
            best = done_[p];
            last = p;
        }
    }
    return last;
}

Tick
OooCore::producersComplete(SeqNum seq) const
{
    const OpCold &oc = cold_[seq];
    Tick t = 0;
    for (unsigned i = 0; i < oc.nprod; ++i)
        t = std::max(t, done_[oc.prod[i]]);
    return t;
}

Cycle
OooCore::selGate(SeqNum seq) const
{
    const OpCold &oc = cold_[seq];
    Cycle gate = oc.dispatch_cycle + 1;
    for (unsigned i = 0; i < oc.nprod; ++i)
        gate = std::max(gate, sel_[oc.prod[i]] + 1);
    return gate;
}

void
OooCore::emitFrontend(SeqNum seq)
{
    // The model's frontend is one macro-stage: all four events carry
    // the dispatch cycle's tick (trace_events.h).
    const Tick t = clock_.cycleStart(cycle_);
    emit(PipeEventKind::Fetch, seq, t);
    emit(PipeEventKind::Decode, seq, t);
    emit(PipeEventKind::Rename, seq, t);
    emit(PipeEventKind::Dispatch, seq, t);
}

void
OooCore::emitIssue(const Candidate &cand)
{
    // The entry's conventional wakeup cycle is the select gate; an
    // EGPW grant (and a MOS fusion) is woken in the grant cycle
    // itself. Every input below is part of the committed schedule,
    // so both scheduler kernels emit identical events.
    const SeqNum seq = cand.seq;
    const OpCold &oc = cold_[seq];
    const SeqNum last = lastProducer(seq);
    const Cycle wake = cand.speculative
                           ? cycle_
                           : std::min(selGate(seq), cycle_);
    emit(PipeEventKind::Wakeup, seq, clock_.cycleStart(wake), 0, last);
    emit(PipeEventKind::Select, seq, clock_.cycleStart(cycle_),
         cand.speculative ? u8{1} : u8{0});
    if (cand.speculative)
        emit(PipeEventKind::EgpwFire, seq, clock_.cycleStart(cycle_));
    if (oc.cflags & kColdTransparent) {
        emit(PipeEventKind::TransparentPass, seq, oc.start_tick,
             ciArg(oc.start_tick));
        emit(PipeEventKind::RecycleLink, seq, oc.start_tick, 0, last);
    }
    if (oc.cflags & kColdWidthReplayed)
        emit(PipeEventKind::Replay, seq, clock_.cycleStart(cycle_), 2);
    emit(PipeEventKind::ExecBegin, seq, oc.start_tick,
         ciArg(oc.start_tick));
    emit(PipeEventKind::Writeback, seq, done_[seq], ciArg(done_[seq]));
}

void
OooCore::dispatchPhase(const Trace &trace)
{
    if (fetch_blocked_on_ != kNoSeq) {
        if (!issued(fetch_blocked_on_))
            return; // mispredicted branch not resolved yet
        // The redirect starts at the clock edge after the cycle in
        // which resolution finished (a boundary-tick completion
        // belongs to the cycle it ends, hence the -1).
        fetch_stall_until_ =
            clock_.cycleOf(done_[fetch_blocked_on_] - 1) + 1 +
            config_.redirect_penalty;
        fetch_blocked_on_ = kNoSeq;
    }
    if (cycle_ < fetch_stall_until_)
        return;

    for (unsigned w = 0; w < config_.frontend_width; ++w) {
        if (next_fetch_ >= trace.size())
            return;
        const DynOp &dyn = dyn_[next_fetch_];
        const InstMeta &m = meta_[dyn.pc];
        const bool is_mem = (m.flags & kMetaMem) != 0;
        const bool needs_rs = (m.flags & kMetaNeedsRs) != 0;

        if (rob_.full())
            return;
        if (needs_rs && rs_.full())
            return;
        if (is_mem && lsq_.full())
            return;

        const SeqNum seq = next_fetch_++;
        rob_.push(seq);
        emitFrontend(seq);

        // Direct unconditional control flow is resolved entirely in
        // the front end (target known at decode, RAS for returns):
        // it occupies a ROB slot but no RS entry or execution port.
        if (!needs_rs) {
            st_[seq] = kStDone | (m.seed & kIsBranch);
            cls_[seq] = packCls(FuPoolKind::Alu, FuClass::None);
            sel_[seq] = cycle_;
            OpCold &oc = cold_[seq];
            oc = OpCold{};
            oc.dispatch_cycle = cycle_;
            oc.start_tick = clock_.cycleStart(cycle_ + 1);
            done_[seq] = oc.start_tick;
            // Frontend-resolved: no RS life, straight to writeback.
            emit(PipeEventKind::Writeback, seq, done_[seq],
                 ciArg(done_[seq]));
            if (m.seed & kIsBranch) {
                // Rename the link register and predict as usual.
                const Inst &inst = trace.inst(seq);
                const RegIdx dst = inst.destination();
                if (dst != kNoReg)
                    rat_.setWriter(dst, seq);
                ++stats_.branch_lookups;
                oc.predicted_next =
                    branch_pred_.predict(dyn.pc, inst, dyn.pc + 1);
                if (oc.predicted_next != dyn.next_pc) {
                    oc.cflags |= kColdBranchMispred;
                    fetch_blocked_on_ = seq;
                    return;
                }
            }
            continue;
        }

        const Inst &inst = trace.inst(seq);
        st_[seq] = kStInRs | m.seed;
        cls_[seq] = m.cls;
        gate_[seq] = cycle_ + 1;
        armed_[seq] = kNoCycle;
        pending_[seq] = 0;
        OpCold &oc = cold_[seq];
        oc = OpCold{};
        oc.dispatch_cycle = cycle_;

        // Rename: derive true dependencies and claim the destination.
        for (RegIdx r : inst.sources()) {
            if (r == kNoReg)
                continue;
            const SeqNum writer = rat_.writer(r);
            if (writer != kNoSeq)
                oc.prod[oc.nprod++] = writer;
        }
        const RegIdx dst = inst.destination();
        if (dst != kNoReg)
            rat_.setWriter(dst, seq);

        // EX-TIME estimate (Sec.IV-C step 5): LUT at decode, using
        // the predicted width class for width-sensitive scalar ops.
        if (m.seed & kEligible) {
            if ((m.flags & (kMetaSimd | kMetaWidthSens)) ==
                kMetaWidthSens) {
                oc.pred_wc = width_pred_.predict(dyn.pc);
                oc.actual_wc = classifyWidth(dyn.eff_width);
                oc.cflags |= kColdWidthPredicted;
                ++stats_.width_predictions;
            }
            // Bounded by ticksPerCycle <= 2^ci_precision_bits, so 16
            // bits are exact. redsoc-lint: allow(cycle-narrow)
            oc.est_ticks = static_cast<u16>(
                // redsoc-lint: allow(cycle-narrow)
                lut_.lookupTicks(inst, oc.pred_wc));
        }

        // Operational design: predict the last-arriving parent for
        // two-source slack-eligible ops.
        if (config_.rs_design == RsDesign::Operational &&
            (m.seed & kEligible) && oc.nprod == 2) {
            oc.pred_last_slot =
                static_cast<u8>(la_pred_.predict(dyn.pc));
            ++stats_.la_predictions;
        }

        if (m.seed & kIsBranch) {
            ++stats_.branch_lookups;
            oc.predicted_next =
                branch_pred_.predict(dyn.pc, inst, dyn.pc + 1);
            if (oc.predicted_next != dyn.next_pc)
                oc.cflags |= kColdBranchMispred;
        }

        rs_.insert(seq);
        if (is_mem) {
            lsq_.dispatch(seq, (m.seed & kIsStore) != 0);
            st_[seq] |= kInLsq;
            park_head_[seq] = kNoSeq;
            park_next_[seq] = kNoSeq;
        }

        if (event_kernel_) {
            // Wire the wakeup network: one consumer edge per distinct
            // producer still waiting in the RS. An op whose producers
            // are all already scheduled self-arms for its first
            // eligible cycle (dispatch_cycle + 1).
            u8 pending = 0;
            for (unsigned i = 0; i < oc.nprod; ++i) {
                bool dup = false;
                for (unsigned j = 0; j < i; ++j)
                    dup = dup || oc.prod[j] == oc.prod[i];
                if (dup)
                    continue;
                const SeqNum p = oc.prod[i];
                if (!inRs(p))
                    continue;
                ++pending;
                const u32 e = static_cast<u32>(cons_edges_.size());
                cons_edges_.push_back({seq, kNoEdge});
                OpCold &pcold = cold_[p];
                if (pcold.cons_tail == kNoEdge)
                    pcold.cons_head = e;
                else
                    cons_edges_[pcold.cons_tail].next = e;
                pcold.cons_tail = e;
            }
            pending_[seq] = pending;
            if (pending == 0)
                armAt(seq, cycle_ + 1);
        }

        if (oc.cflags & kColdBranchMispred) {
            // Everything younger is wrong-path until this resolves.
            fetch_blocked_on_ = seq;
            return;
        }
    }
}

bool
OooCore::evalConventional(SeqNum seq, Candidate &cand, Cycle *next_try)
{
    const u8 st = st_[seq];
    if ((st & kStMask) != kStInRs)
        return false;
    // gate_ folds max(dispatch_cycle + 1, LA-replay retry cycle).
    if (cycle_ < gate_[seq]) {
        if (next_try)
            *next_try = gate_[seq];
        return false;
    }

    // A steady requester (kReadyConv) already passed every monotone
    // check below on the cycle it was first denied an FU: producers
    // stay issued, the LA validation latched, the select gate and the
    // data boundary only recede into the past. Re-running them every
    // cycle is the single hottest redundancy in ILP-dense workloads,
    // so the fast path skips straight to the (cycle-dependent)
    // completion shaping.
    const bool steady = (st & kReadyConv) != 0;
    const bool maybe_transparent =
        config_.mode == SchedMode::ReDSOC && (st & kEligible);
    OpCold &oc = cold_[seq];
    if (!steady) {
        for (unsigned i = 0; i < oc.nprod; ++i) {
            if (!issued(oc.prod[i]))
                return false;
        }

        // Operational design: validate the last-arrival prediction
        // once all producers are scheduled. A wrong prediction means
        // the entry woke on the wrong tag and replays (Sec.IV-C).
        if (!(oc.cflags & kColdLaChecked) && oc.pred_last_slot != 0xff) {
            oc.cflags |= kColdLaChecked;
            auto gate_of = [&](SeqNum p) {
                const Cycle structural = sel_[p] + 1;
                const Cycle data_cycle =
                    clock_.cycleOf(clock_.ceilToBoundary(done_[p]));
                return std::max(structural,
                                data_cycle == 0 ? 0 : data_cycle - 1);
            };
            Cycle pred_ready =
                std::max(oc.dispatch_cycle + 1,
                         gate_of(oc.prod[oc.pred_last_slot]));
            Cycle true_ready = oc.dispatch_cycle + 1;
            for (unsigned i = 0; i < oc.nprod; ++i)
                true_ready = std::max(true_ready, gate_of(oc.prod[i]));
            // The scoreboard validation (Sec.IV-C): the prediction is
            // correct iff the other operand was already available when
            // the predicted-last tag woke the entry.
            const bool correct = pred_ready >= true_ready;
            la_pred_.recordOutcome(correct);
            if (!correct) {
                ++stats_.la_mispredictions;
                emit(PipeEventKind::Replay, seq,
                     clock_.cycleStart(cycle_), 1);
                // Woke early on the wrong tag: replay penalty.
                // true_ready >= dispatch_cycle + 1, so the gate fold
                // stays valid.
                static constexpr Cycle kLaReplayPenalty = 2;
                gate_[seq] = true_ready + kLaReplayPenalty;
                if (next_try)
                    *next_try = gate_[seq];
                return false;
            }
        }

        const Cycle sg = selGate(seq);
        if (cycle_ < sg) {
            if (next_try) {
                // Fold the data bound into the structural re-arm: the
                // first cycle whose *evaluation* can request is known
                // now (the LA validation above has latched, so every
                // cycle in between fails either this check or the
                // data check below with no side effect). An eligible
                // op still lands on c_data - 1 to test transparency.
                Cycle t = sg;
                const Tick producers_t = producersComplete(seq);
                if (producers_t > clock_.cycleStart(sg + 1)) {
                    const Tick tpc = clock_.ticksPerCycle();
                    const Cycle c_data =
                        (producers_t + tpc - 1) / tpc - 1;
                    const Cycle c_try =
                        (maybe_transparent && producers_t % tpc != 0)
                            ? c_data - 1
                            : c_data;
                    t = std::max(sg, c_try);
                }
                *next_try = t;
                // The re-arm cycle is chosen so every monotone check
                // above — and, for a non-eligible op, the data bound
                // too — is already proven there: promote to steady so
                // the next evaluation takes the fast path.
                st_[seq] |= kReadyConv;
            }
            return false;
        }
    }

    const Tick arrival = clock_.cycleStart(cycle_ + 1);

    bool transparent = false;
    Tick start = arrival;
    if (steady && !maybe_transparent) {
        // Data availability was proven at the first full evaluation
        // (producers_t <= that cycle's earlier arrival), and without
        // recycling eligibility the start is always the boundary.
    } else {
        const Tick producers_t = producersComplete(seq);
        if (producers_t <= arrival) {
            start = arrival;
        } else if (maybe_transparent &&
                   canRecycle(producers_t, arrival, clock_,
                              cur_threshold_)) {
            start = producers_t;
            transparent = true;
        } else {
            if (next_try) {
                // Data arrives by the boundary entering c_data; the
                // one cycle in which the producer's mid-cycle
                // completion can be recycled (arrival < completion <
                // arrival + period) is c_data - 1, so an eligible
                // consumer re-evaluates there first to test the
                // (possibly dynamic) threshold.
                const Tick tpc = clock_.ticksPerCycle();
                const Cycle c_data = (producers_t + tpc - 1) / tpc - 1;
                Cycle t = c_data;
                if (maybe_transparent && producers_t % tpc != 0 &&
                    cycle_ < c_data - 1)
                    t = c_data - 1;
                *next_try = t;
                st_[seq] |= kReadyConv; // proven at t: see above
            }
            return false;
        }
    }

    if ((st & kIsLoad) && lsq_.olderStoreUnresolved(seq)) {
        if (next_try)
            *next_try = kParkLoad;
        return false;
    }

    cand.seq = seq;
    cand.speculative = false;
    cand.recycle_ok = true;
    fillCompletion(cand, seq, arrival, start, transparent);
    return true;
}

void
OooCore::fillCompletion(Candidate &cand, SeqNum seq, Tick arrival,
                        Tick start, bool transparent)
{
    const Tick tpc = clock_.ticksPerCycle();
    const u8 st = st_[seq];
    cand.start = start;
    cand.transparent = transparent;

    if (st & (kIsLoad | kIsStore)) {
        // Real completion computed at issue (cache side effects).
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival; // placeholder
        cand.span = 1;
        return;
    }

    if (!(st & kEligible)) {
        const FuClass fu = fuOf(seq);
        const unsigned lat = fuLatency(fu);
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival + Tick{lat} * tpc;
        cand.span = fuPipelined(fu) ? 1 : lat;
        return;
    }

    // Slack-eligible single-cycle operation.
    if (config_.mode != SchedMode::ReDSOC) {
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival + tpc;
        cand.span = 1;
        return;
    }

    OpCold &oc = cold_[seq];
    if ((oc.cflags & kColdWidthPredicted) && oc.actual_wc > oc.pred_wc) {
        // Aggressive width misprediction, detected at execute:
        // conservative re-execution from the next boundary
        // (selective-reissue recovery, Sec.II-B).
        const Tick est = lut_.lookupTicks(trace_->inst(seq),
                                          oc.actual_wc);
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival + tpc + est;
        cand.span = 2;
        oc.cflags |= kColdWidthReplayed;
        return;
    }

    cand.complete = start + oc.est_ticks;
    cand.span = clock_.crossesBoundary(start, cand.complete) ? 2 : 1;
}

bool
OooCore::evalEager(SeqNum seq, Candidate &cand)
{
    const u8 st = st_[seq];
    if ((st & kStMask) != kStInRs || !(st & kEligible))
        return false;
    if (cycle_ < gate_[seq])
        return false;
    const OpCold &oc = cold_[seq];
    if (oc.nprod == 0)
        return false;
    if (st & (kIsLoad | kIsStore))
        return false;

    for (unsigned i = 0; i < oc.nprod; ++i) {
        if (!issued(oc.prod[i]))
            return false;
    }

    const SeqNum parent = lastProducer(seq);

    // The EGPW window: the (last-arriving) parent was granted this
    // very cycle, so the child's conventional wakeup is one cycle
    // away, but the grandparent broadcast (last cycle) can wake it.
    if (sel_[parent] != cycle_ || stateOf(parent) != St::Done)
        return false;
    const OpCold &pc = cold_[parent];
    if (pc.nprod == 0)
        return false; // no grandparent tags ever broadcast
    for (unsigned i = 0; i < pc.nprod; ++i) {
        // Grandparents must have broadcast in an earlier cycle.
        if (sel_[pc.prod[i]] >= cycle_)
            return false;
    }
    // Other parents must have been scheduled before this cycle too
    // (their tags cannot have woken the entry yet otherwise).
    for (unsigned i = 0; i < oc.nprod; ++i) {
        if (oc.prod[i] != parent && sel_[oc.prod[i]] >= cycle_)
            return false;
    }

    if (config_.rs_design == RsDesign::Operational) {
        // The single tracked parent tag must be the actual last
        // arriver, and the grandparent tag (the parent's predicted
        // last parent) must be the parent's actual last producer.
        if (oc.pred_last_slot != 0xff &&
            oc.prod[oc.pred_last_slot] != parent)
            return false;
        if (pc.nprod >= 2) {
            const SeqNum actual_gp = lastProducer(parent);
            const SeqNum predicted_gp =
                pc.pred_last_slot != 0xff ? pc.prod[pc.pred_last_slot]
                                          : actual_gp;
            if (predicted_gp != actual_gp)
                return false;
        }
    }

    const Tick arrival = clock_.cycleStart(cycle_ + 1);
    const Tick producers_t = producersComplete(seq);

    cand.seq = seq;
    cand.speculative = true;
    cand.recycle_ok = canRecycle(producers_t, arrival, clock_,
                                 cur_threshold_);
    if (cand.recycle_ok)
        fillCompletion(cand, seq, arrival, producers_t, true);
    else
        cand.span = 1;
    return true;
}

void
OooCore::issueOp(const Candidate &cand)
{
    const SeqNum seq = cand.seq;
    setState(seq, St::Done);
    sel_[seq] = cycle_;
    OpCold &oc = cold_[seq];
    oc.start_tick = cand.start;
    done_[seq] = cand.complete;
    if (cand.transparent)
        oc.cflags |= kColdTransparent;
    rs_.remove(seq);
    if (event_kernel_)
        ready_.erase(seq); // may be resident (Phase-A retention)

    const u8 st = st_[seq];
    if (st & (kIsLoad | kIsStore))
        done_[seq] = memCompleteTick(seq, cand.start);

    // Predictors train at execute, where operand values (and the
    // actual arrival order) become visible.
    if (oc.cflags & kColdWidthPredicted) {
        if (oc.actual_wc > oc.pred_wc)
            ++stats_.width_aggressive;
        else if (oc.actual_wc < oc.pred_wc)
            ++stats_.width_conservative;
        width_pred_.update(dyn_[seq].pc, oc.actual_wc);
    }
    if (oc.pred_last_slot != 0xff) {
        const Tick t0 = done_[oc.prod[0]];
        const Tick t1 = done_[oc.prod[1]];
        la_pred_.update(dyn_[seq].pc, t1 > t0 ? 1 : 0);
        if (!(oc.cflags & kColdLaChecked)) {
            // EGPW-issued: the tracked tag was verified to be the
            // actual last arriver on the eager path.
            oc.cflags |= kColdLaChecked;
            la_pred_.recordOutcome(true);
        }
    }

    if (st & kInLsq) {
        const DynOp &dyn = dyn_[seq];
        lsq_.resolve(seq, dyn.mem_addr, meta_[dyn.pc].mem_size,
                     done_[seq]);
    }

    if (cand.transparent) {
        ++stats_.recycled_ops;
        stats_.slack_recycled_ticks +=
            clock_.ceilToBoundary(cand.start) - cand.start;
        chains_.onExtend(lastProducer(seq), seq);
    } else if ((st & kEligible) && config_.mode == SchedMode::ReDSOC) {
        chains_.onRoot(seq);
    }
    if (cand.span == 2 && (st & kEligible) &&
        !(oc.cflags & kColdWidthReplayed))
        ++stats_.two_cycle_holds;

    if (tracer_)
        emitIssue(cand);
    if (audit_on_)
        audit_.onIssue(*this, seq);

    if (event_kernel_)
        broadcastWakeup(seq);
}

void
OooCore::armAt(SeqNum seq, Cycle c)
{
    armed_[seq] = c;
    if (c == cycle_ + 1)
        next_arms_.push_back(seq);
    else
        wake_pq_.emplace(c, seq);
}

void
OooCore::scheduleEval(SeqNum seq, bool newly_woken)
{
    if (in_phase_a_) {
        // The waker is older (smaller seq), so the Phase-A cursor has
        // not reached this entry yet: it gets evaluated this cycle,
        // exactly where the scan kernel's full pass would visit it.
        ready_.insert(seq);
        armed_[seq] = cycle_;
    } else {
        armAt(seq, cycle_ + 1);
    }
    // A newly-woken entry is an EGPW candidate this same cycle (its
    // last parent was granted this cycle).
    if (newly_woken && collect_eager_)
        eager_.insert(seq);
}

void
OooCore::broadcastWakeup(SeqNum seq)
{
    prof::ScopedTimer wt(prof::Phase::Wakeup, profiling_);
    const OpCold &oc = cold_[seq];
    for (u32 e = oc.cons_head; e != kNoEdge; e = cons_edges_[e].next) {
        const SeqNum cseq = cons_edges_[e].consumer;
        if (--pending_[cseq] == 0)
            scheduleEval(cseq, true);
    }
    // A store resolving its address unblocks exactly the loads parked
    // on it (memory-order wakeup rides the same broadcast port). A
    // woken load still blocked by a different older store re-parks on
    // that blocker.
    if (st_[seq] & kIsStore) {
        for (SeqNum l = park_head_[seq]; l != kNoSeq;
             l = park_next_[l])
            if (inRs(l))
                scheduleEval(l, false);
        park_head_[seq] = kNoSeq;
    }
}

void
OooCore::drainWakeQueue()
{
    if (!next_arms_.empty()) {
        // Arms pushed last cycle for this one (fastForward never
        // jumps over a pending next-cycle arm).
        for (SeqNum seq : next_arms_)
            if (inRs(seq) && armed_[seq] == cycle_)
                ready_.insert(seq);
        next_arms_.clear();
    }
    while (!wake_pq_.empty() && wake_pq_.top().first <= cycle_) {
        const auto [c, seq] = wake_pq_.top();
        wake_pq_.pop();
        if (!inRs(seq) || armed_[seq] != c)
            continue; // stale arm (issued, or re-armed since)
        ready_.insert(seq);
    }
}

Tick
OooCore::memCompleteTick(SeqNum seq, Tick arrival)
{
    const Tick tpc = clock_.ticksPerCycle();
    const DynOp &dyn = dyn_[seq];

    if (st_[seq] & kIsStore) {
        ++stats_.stores;
        memory_.access(dyn.pc, dyn.mem_addr, true, cycle_);
        return arrival + tpc;
    }

    ++stats_.loads;
    const unsigned size = meta_[dyn.pc].mem_size;
    const auto fwd = lsq_.forwardFrom(seq, dyn.mem_addr, size);
    if (fwd && fwd->full_cover) {
        ++stats_.store_forwards;
        lsq_.noteForward();
        const Tick ready =
            std::max(arrival, clock_.ceilToBoundary(fwd->store_complete));
        return ready + Tick{config_.memory.l1_latency} * tpc;
    }

    Tick ready = arrival;
    if (fwd && fwd->partial)
        ready = std::max(arrival,
                         clock_.ceilToBoundary(fwd->store_complete));
    const auto result =
        memory_.access(dyn.pc, dyn.mem_addr, false, cycle_);
    if (!result.l1_hit)
        ++stats_.l1_load_misses;
    return ready + Tick{result.latency} * tpc;
}

bool
OooCore::phaseAEntry(SeqNum seq, bool interleave_spec, bool &fu_denied,
                     Cycle *next_try)
{
    Candidate cand;
    bool is_req = evalConventional(seq, cand, next_try);
    if (!is_req && interleave_spec) {
        is_req = evalEager(seq, cand);
        if (is_req) {
            ++stats_.egpw_requests;
            if (tracer_) {
                const SeqNum parent = lastProducer(seq);
                emit(PipeEventKind::EgpwArm, seq,
                     clock_.cycleStart(cycle_), 0,
                     parent == kNoSeq ? kNoSeq : lastProducer(parent));
            }
        }
    }
    if (!is_req)
        return false;

    const FuPoolKind pool = poolOf(seq);
    if (cand.speculative) {
        if (fu_.freeUnits(pool, cycle_ + 1) == 0) {
            fu_denied = true;
            return true;
        }
        if (audit_on_)
            audit_.onEgpwGrant(*this, seq,
                               fu_.freeUnits(pool, cycle_ + 1));
        ++stats_.egpw_grants;
        if (!cand.recycle_ok) {
            fu_.book(pool, cycle_ + 1, 1);
            ++stats_.egpw_wasted;
            emit(PipeEventKind::EgpwWaste, seq,
                 clock_.cycleStart(cycle_), 0);
            return true;
        }
    }
    if (!fu_.freeSpan(pool, cycle_ + 1, cand.span)) {
        if (cand.speculative) {
            fu_.book(pool, cycle_ + 1, 1);
            ++stats_.egpw_wasted;
            emit(PipeEventKind::EgpwWaste, seq,
                 clock_.cycleStart(cycle_), 1);
        } else {
            fu_denied = true;
            st_[seq] |= kReadyConv; // steady requester: see Phase A
            // Park the requester until the pool can plausibly admit
            // its span. Bookings only accumulate, so the first cycle
            // where the span fits today is a lower bound on the first
            // cycle it can ever be granted; every request in between
            // is a provable re-denial with no simulated side effect.
            // ReDSOC-eligible entries are exempt: their span/start
            // shape depends on the (cycle-varying) transparency test,
            // so they stay resident and re-evaluate. The denied
            // cycles a parked entry skips still count as FU stalls
            // via denied_horizon_.
            if (next_try && !(config_.mode == SchedMode::ReDSOC &&
                              (st_[seq] & kEligible))) {
                const Cycle book_at = fu_.nextFreeSpanCycle(
                    pool, cycle_ + 1, cand.span);
                *next_try = book_at - 1; // request cycle for book_at
                denied_horizon_ =
                    std::max(denied_horizon_, book_at - 1);
            }
        }
        return true;
    }
    fu_.book(pool, cycle_ + 1, cand.span);
    issueOp(cand);
    if (!cand.speculative)
        conv_grants_.push_back(cand);
    return true;
}

bool
OooCore::tryFuse(const Candidate &pg, SeqNum cseq)
{
    const Tick tpc = clock_.ticksPerCycle();
    const Tick arrival = clock_.cycleStart(cycle_ + 1);
    const u8 cst = st_[cseq];
    if ((cst & kStMask) != kStInRs || !(cst & kEligible))
        return false;
    if (cycle_ < gate_[cseq])
        return false;
    if (poolOf(cseq) != poolOf(pg.seq))
        return false;
    const OpCold &cc = cold_[cseq];
    bool all_sched = true;
    bool parent_is_last = false;
    Tick others = 0;
    for (unsigned i = 0; i < cc.nprod; ++i) {
        const SeqNum p = cc.prod[i];
        if (!issued(p)) {
            all_sched = false;
            break;
        }
        if (p == pg.seq)
            parent_is_last = true;
        else
            others = std::max(others, done_[p]);
    }
    if (!all_sched || !parent_is_last || others > arrival)
        return false;
    if (Tick{cold_[pg.seq].est_ticks} + cc.est_ticks > tpc)
        return false;

    Candidate fc;
    fc.seq = cseq;
    fc.speculative = false;
    fc.recycle_ok = true;
    fc.start = arrival + cold_[pg.seq].est_ticks;
    fc.complete = arrival + tpc;
    fc.span = 0;
    fc.transparent = false;
    issueOp(fc);
    cold_[cseq].cflags |= kColdFused;
    ++stats_.fused_ops;
    emit(PipeEventKind::Fuse, cseq, clock_.cycleStart(cycle_), 0,
         pg.seq);
    return true;
}

void
OooCore::issuePhase()
{
    bool fu_denied = false;
    conv_grants_.clear();
    const bool redsoc = config_.mode == SchedMode::ReDSOC;
    const bool interleave_spec = redsoc && config_.egpw &&
                                 !config_.skewed_select;

    // Phase A: conventional (parent-woken) requests, oldest first.
    // With skewed selection disabled (ablation), speculative EGPW
    // requests compete purely by age and are interleaved here.
    if (event_kernel_) {
        // Only entries with a due re-arm or a fresh broadcast wakeup
        // can request (or have a side effect) this cycle; every entry
        // skipped here would evaluate to a pure false under the scan
        // kernel. Mid-scan wakeups land ahead of the cursor (a
        // consumer is always younger than its producer), preserving
        // the full scan's age-ordered select.
        {
            prof::ScopedTimer wt(prof::Phase::Wakeup, profiling_);
            drainWakeQueue();
        }
        prof::ScopedTimer st(prof::Phase::Select, profiling_);
        in_phase_a_ = true;
        SeqNum cur = 0;
        for (SeqNum seq; (seq = ready_.nextAtOrAfter(cur)) != kNoSeq;) {
            cur = seq + 1;
            Cycle next_try = kNoCycle;
            const bool requested =
                phaseAEntry(seq, interleave_spec, fu_denied, &next_try);
            if (!inRs(seq))
                continue; // issued (issueOp erases it from the set)
            if (requested && next_try == kNoCycle)
                continue; // denied or wasted: stays resident
            // Not ready, or denied with a provable re-grant bound
            // (span parking): sleep until the verdict can change.
            ready_.erase(seq);
            if (next_try == kParkLoad) {
                // Park on one concrete blocker: the youngest older
                // unresolved store. Its resolve (at issue) re-inserts
                // this load; if another blocker remains, the load
                // re-parks on it, consuming one blocker per wake.
                const SeqNum blocker =
                    lsq_.youngestUnresolvedStoreBefore(seq);
                panic_if(blocker == kNoSeq,
                         "parked load without a blocking store");
                park_next_[seq] = park_head_[blocker];
                park_head_[blocker] = seq;
                armed_[seq] = kParkLoad; // audit: "parked" marker
            } else if (next_try != kNoCycle) {
                armAt(seq, next_try);
            }
            // else: wake-driven (a producer broadcast re-inserts it)
        }
        in_phase_a_ = false;
    } else {
        // Snapshot into the reusable scan buffer: issueOp removes the
        // granted entry from the RS mid-scan. The oracle deliberately
        // keeps the copying shape the paper-era kernel had.
        prof::ScopedTimer st(prof::Phase::Select, profiling_);
        rs_.snapshot(scan_);
        for (SeqNum seq : scan_)
            phaseAEntry(seq, interleave_spec, fu_denied, nullptr);
    }

    // Phase B: EGPW speculative requests from leftover units (the
    // skewed-select ordering: conventional grants always first).
    if (redsoc && config_.egpw && !interleave_spec) {
        prof::ScopedTimer st(prof::Phase::Select, profiling_);
        auto phase_b = [&](SeqNum seq) {
            Candidate cand;
            if (!evalEager(seq, cand))
                return;
            ++stats_.egpw_requests;
            if (tracer_) {
                const SeqNum parent = lastProducer(seq);
                emit(PipeEventKind::EgpwArm, seq,
                     clock_.cycleStart(cycle_), 0,
                     parent == kNoSeq ? kNoSeq : lastProducer(parent));
            }
            const FuPoolKind pool = poolOf(seq);
            if (fu_.freeUnits(pool, cycle_ + 1) == 0) {
                // Not granted (no conventional op was displaced), but
                // a ready request stalled on busy units all the same.
                fu_denied = true;
                return;
            }
            if (audit_on_)
                audit_.onEgpwGrant(*this, seq,
                                   fu_.freeUnits(pool, cycle_ + 1));
            ++stats_.egpw_grants;
            if (!cand.recycle_ok) {
                // Granted, but there is no slack to recycle this
                // cycle: the reserved unit idles (Fig.7 grant AND
                // recycle gating).
                fu_.book(pool, cycle_ + 1, 1);
                ++stats_.egpw_wasted;
                emit(PipeEventKind::EgpwWaste, seq,
                     clock_.cycleStart(cycle_), 0);
                return;
            }
            if (!fu_.freeSpan(pool, cycle_ + 1, cand.span)) {
                fu_.book(pool, cycle_ + 1, 1);
                ++stats_.egpw_wasted;
                emit(PipeEventKind::EgpwWaste, seq,
                     clock_.cycleStart(cycle_), 1);
                return;
            }
            fu_.book(pool, cycle_ + 1, cand.span);
            issueOp(cand);
        };
        if (event_kernel_) {
            // Exactly the entries woken this cycle can pass the
            // evalEager window (their last parent was granted this
            // cycle); Phase-B cascades insert ahead of the cursor.
            SeqNum cur = 0;
            for (SeqNum seq;
                 (seq = eager_.popAtOrAfter(cur)) != kNoSeq;) {
                cur = seq + 1;
                phase_b(seq);
            }
        } else {
            // Copy-free live-slot walk: issueOp tombstones mid-scan,
            // and the guard defers compaction until the walk ends.
            // Entries issued earlier this cycle fail evalEager's
            // InRs check exactly as they did under the snapshot.
            ReservationStations::ScanGuard guard(rs_);
            const size_t nslots = rs_.slotCount();
            for (size_t i = 0; i < nslots; ++i) {
                const SeqNum seq = rs_.liveAt(i);
                if (seq != kNoSeq)
                    phase_b(seq);
            }
        }
    }

    // MOS: dynamic operation fusion. A granted producer may pull one
    // ready consumer into its own cycle when both computations fit.
    // Entries issued by earlier grants in this loop are filtered by
    // the InRs check in tryFuse. The event kernel walks the granted
    // producer's age-ordered consumer list instead (fusion requires
    // the producer among the consumer's sources, so non-consumers can
    // never match); the scan kernel walks the live RS slots in place.
    if (config_.mode == SchedMode::MOS) {
        prof::ScopedTimer st(prof::Phase::Select, profiling_);
        if (event_kernel_) {
            for (const Candidate &pg : conv_grants_) {
                const OpCold &pcold = cold_[pg.seq];
                if (!(st_[pg.seq] & kEligible) || pcold.est_ticks == 0)
                    continue;
                for (u32 e = pcold.cons_head; e != kNoEdge;
                     e = cons_edges_[e].next)
                    if (tryFuse(pg, cons_edges_[e].consumer))
                        break; // one fusion per producer
            }
        } else {
            ReservationStations::ScanGuard guard(rs_);
            const size_t nslots = rs_.slotCount();
            for (const Candidate &pg : conv_grants_) {
                if (!(st_[pg.seq] & kEligible) ||
                    cold_[pg.seq].est_ticks == 0)
                    continue;
                for (size_t i = 0; i < nslots; ++i) {
                    const SeqNum cseq = rs_.liveAt(i);
                    if (cseq != kNoSeq && tryFuse(pg, cseq))
                        break; // one fusion per producer
                }
            }
        }
    }

    // A cycle under denied_horizon_ holds a parked steady requester
    // the scan kernel would have evaluated to a request-and-deny, so
    // it is an FU-stall cycle even when nothing touched the pool here.
    if (fu_denied || cycle_ < denied_horizon_)
        ++stats_.fu_stall_cycles;
}

void
OooCore::adaptThreshold()
{
    // The Sec.IV-C dynamic-threshold extension: hill-climb on
    // observed commit throughput. If the last epoch's change hurt,
    // reverse direction; otherwise keep walking, clamped to
    // [0, ticksPerCycle].
    const SeqNum committed_this = commit_ptr_ - epoch_start_commits_;
    if (committed_this < last_epoch_commits_)
        adapt_direction_ = -adapt_direction_;
    last_epoch_commits_ = committed_this;
    epoch_start_commits_ = commit_ptr_;

    s64 next = static_cast<s64>(cur_threshold_) + adapt_direction_;
    const s64 tpc = static_cast<s64>(clock_.ticksPerCycle());
    if (next < 0) {
        next = 0;
        adapt_direction_ = 1;
    } else if (next > tpc) {
        next = tpc;
        adapt_direction_ = -1;
    }
    cur_threshold_ = static_cast<Tick>(next);
    stats_.threshold_min = std::min(stats_.threshold_min, cur_threshold_);
    stats_.threshold_max = std::max(stats_.threshold_max, cur_threshold_);
}

void
OooCore::commitPhase()
{
    unsigned committed = 0;
    const Tick now = clock_.cycleStart(cycle_);
    while (committed < config_.commit_width && !rob_.empty()) {
        const SeqNum seq = rob_.head();
        if (stateOf(seq) != St::Done || done_[seq] > now)
            break;

        rob_.pop(seq);
        const u8 st = st_[seq];
        if (st & kInLsq)
            lsq_.commit(seq);
        setState(seq, St::Committed);

        const OpCold &oc = cold_[seq];
        if (st & kIsBranch) {
            const DynOp &dyn = dyn_[seq];
            if (branch_pred_.resolve(dyn.pc, trace_->inst(seq),
                                     dyn.taken, dyn.next_pc,
                                     oc.predicted_next))
                ++stats_.branch_mispredicts;
        }

        chains_.onRetire(seq);

        // Fold the op's architectural schedule into the commit-trace
        // checksum (FNV-1a) so differential runs can prove the whole
        // schedule matched, not just the aggregate counters.
        auto fold = [this](u64 v) {
            stats_.commit_checksum ^= v;
            stats_.commit_checksum *= 0x100000001b3ull;
        };
        fold(seq);
        fold(sel_[seq]);
        fold(oc.start_tick);
        fold(done_[seq]);
        fold(((oc.cflags & kColdTransparent) ? 1u : 0u) |
             ((oc.cflags & kColdFused) ? 2u : 0u));

        emit(PipeEventKind::Commit, seq, now,
             (oc.cflags & kColdBranchMispred) ? u8{1} : u8{0});

        ++commit_ptr_;
        ++committed;
        last_commit_cycle_ = cycle_;
    }
}

void
OooCore::fastForward(bool adapting)
{
    // Arms buffered during the just-finished cycle are due exactly
    // now (cycle_ already advanced), and FU-denied entries resident
    // in the ready set re-request every cycle: nothing to skip.
    if (!next_arms_.empty() || !ready_.empty())
        return;

    // The next cycle the scheduler can do non-trivial work: the
    // earliest live arm in the wake queue. Every waiting RS entry is
    // either armed here, resident in the ready set, parked behind an
    // older store (itself an armed-or-parked chain rooted at an armed
    // entry), or waiting on a producer broadcast from one of those.
    Cycle target = kNoCycle;
    while (!wake_pq_.empty()) {
        const auto &[c, seq] = wake_pq_.top();
        if (!inRs(seq) || armed_[seq] != c) {
            wake_pq_.pop(); // stale arm
            continue;
        }
        target = c;
        break;
    }

    // The next commit: the ROB head's completion boundary. (A head
    // still in the RS becomes Done through a wake-queue event.)
    if (!rob_.empty()) {
        const SeqNum head = rob_.head();
        if (stateOf(head) == St::Done) {
            const Tick tpc = clock_.ticksPerCycle();
            target = std::min(target, (done_[head] + tpc - 1) / tpc);
        }
    }

    // The next dispatch. Structural stalls (ROB/RS/LSQ full) clear
    // through commits or issues, which the two events above already
    // bound; an unresolved-branch block clears when the blocker
    // issues (a wake event) or, once it is Done, at the redirect.
    if (next_fetch_ < trace_->size()) {
        if (fetch_blocked_on_ != kNoSeq) {
            if (issued(fetch_blocked_on_)) {
                const Cycle redirect =
                    clock_.cycleOf(done_[fetch_blocked_on_] - 1) + 1 +
                    config_.redirect_penalty;
                target = std::min(target, std::max(cycle_, redirect));
            }
        } else {
            const InstMeta &m = meta_[dyn_[next_fetch_].pc];
            const bool blocked =
                rob_.full() ||
                ((m.flags & kMetaNeedsRs) != 0 && rs_.full()) ||
                ((m.flags & kMetaMem) != 0 && lsq_.full());
            if (!blocked)
                target = std::min(
                    target, std::max(cycle_, fetch_stall_until_));
        }
    }

    // Never jump past the no-commit watchdog horizon (a deadlocked
    // simulation must still abort at the same cycle as the scan
    // kernel: the clamp lands exactly one cycle short of the strict->
    // check in run(), so both kernels throw at horizon + 1), nor past
    // a dynamic-threshold epoch boundary (the adaptation at each
    // boundary is a side effect of its own).
    const Cycle horizon = last_commit_cycle_ + config_.no_commit_horizon;
    if (target > horizon)
        target = horizon;
    if (adapting) {
        const Cycle epoch = config_.threshold_epoch;
        target = std::min(target, (cycle_ / epoch + 1) * epoch - 1);
    }
    if (target > cycle_) {
        // Cycles skipped under the denied horizon each hold a parked
        // steady requester the scan kernel would count as FU-stalled.
        if (cycle_ < denied_horizon_)
            stats_.fu_stall_cycles +=
                std::min(target, denied_horizon_) - cycle_;
        cycle_ = target;
    }
}

void
OooCore::beginRun(const Trace &trace)
{
    wall_start_ = std::chrono::steady_clock::now();

    // Reset all run state so a core object can be reused. The SoA
    // lanes are resized, not cleared: every lane field is written at
    // the op's dispatch before any read (DESIGN.md §12), so stale
    // values from a previous run are unobservable.
    trace_ = &trace;
    dyn_ = trace.ops().data();
    buildInstMeta(trace.program());
    const size_t n = static_cast<size_t>(trace.size());
    st_.resize(n);
    cls_.resize(n);
    pending_.resize(n);
    gate_.resize(n);
    armed_.resize(n);
    sel_.resize(n);
    done_.resize(n);
    cold_.resize(n);
    park_head_.resize(n);
    park_next_.resize(n);
    next_fetch_ = 0;
    commit_ptr_ = 0;
    cycle_ = 0;
    fetch_stall_until_ = 0;
    fetch_blocked_on_ = kNoSeq;
    last_commit_cycle_ = 0;
    rat_.reset();
    stats_ = CoreStats{};
    chains_.reset();
    cur_threshold_ = config_.slack_threshold_ticks;
    adapt_direction_ = 1;
    epoch_start_commits_ = 0;
    last_epoch_commits_ = 0;
    stats_.threshold_min = cur_threshold_;
    stats_.threshold_max = cur_threshold_;
    rs_.clear();
    cons_edges_.clear();
    // Pre-size the consumer-edge pool to the common case (about one
    // in-RS consumer edge per op); heavier fan-out traces grow it
    // amortized, outside the per-cycle loops (redsoc_lint R8).
    cons_edges_.reserve(n);
    {
        // Rebuild the wake heap on reserved storage (move-from keeps
        // the capacity) so steady-state arms never allocate.
        std::vector<std::pair<Cycle, SeqNum>> pq_store;
        pq_store.reserve(2 * config_.rs_entries);
        wake_pq_ = decltype(wake_pq_)(std::greater<>{},
                                      std::move(pq_store));
    }
    next_arms_.clear();
    ready_.clear();
    eager_.clear();
    denied_horizon_ = 0;
    in_phase_a_ = false;
    if (tracer_)
        tracer_->beginRun(clock_.ticksPerCycle());

    adapting_ = config_.dynamic_threshold &&
                config_.mode == SchedMode::ReDSOC;
    profiling_ = prof::enabled();
}

bool
OooCore::stepRun()
{
    const SeqNum total = trace_->size();
    if (commit_ptr_ >= total)
        return false;
    if (profiling_) {
        {
            prof::ScopedTimer t(prof::Phase::Commit, true);
            commitPhase();
        }
        {
            prof::ScopedTimer t(prof::Phase::Issue, true);
            issuePhase();
        }
        {
            prof::ScopedTimer t(prof::Phase::Dispatch, true);
            dispatchPhase(*trace_);
        }
    } else {
        commitPhase();
        issuePhase();
        dispatchPhase(*trace_);
    }
    if (audit_on_)
        audit_.onCycleEnd(*this);
    ++cycle_;
    if (adapting_ && cycle_ % config_.threshold_epoch == 0)
        adaptThreshold();
    if (cycle_ - last_commit_cycle_ > config_.no_commit_horizon)
        throw DeadlockError(cycle_, commit_ptr_, total);
    if (event_kernel_ && commit_ptr_ < total)
        fastForward(adapting_);
    return commit_ptr_ < total;
}

CoreStats
OooCore::finishRun()
{
    stats_.threshold_final = cur_threshold_;
    stats_.cycles = cycle_;
    stats_.committed = trace_->size();
    stats_.chain_lengths = chains_.lengths();
    stats_.expected_chain_length = chains_.expectedRecycledLength();
    stats_.sim_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start_)
            .count();
    return stats_;
}

CoreStats
OooCore::run(const Trace &trace)
{
    beginRun(trace);
    prof::ScopedTimer run_timer(prof::Phase::Run, profiling_);
    // The shutdown poll lives here rather than in stepRun() so the
    // Processor lockstep (which drives stepRun() directly) stays
    // byte-identical to the seed hot path; Processor::run has its own
    // poll at the same granularity.
    u64 steps = 0;
    while (stepRun()) {
        if ((++steps & 0x3fffu) == 0 && simAbortRequested())
            throw ShutdownInterrupt();
    }
    return finishRun();
}

} // namespace redsoc

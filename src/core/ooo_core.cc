#include "core/ooo_core.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.h"
#include "sim/profile.h"

namespace redsoc {

namespace {

std::string
deadlockMessage(Cycle cycle, SeqNum committed, SeqNum total)
{
    std::ostringstream os;
    os << "no commit progress at cycle " << cycle << " (committed "
       << committed << "/" << total << ")";
    return os.str();
}

} // namespace

DeadlockError::DeadlockError(Cycle cycle, SeqNum committed, SeqNum total)
    : std::runtime_error(deadlockMessage(cycle, committed, total)),
      cycle_(cycle)
{
}

StatGroup
toStatGroup(const CoreStats &stats, const std::string &name)
{
    StatGroup group(name);
    group.recordScalar("cycles", static_cast<double>(stats.cycles));
    group.recordScalar("committed",
                       static_cast<double>(stats.committed));
    group.recordScalar("ipc", stats.ipc());
    group.recordScalar("fu_stall_rate", stats.fuStallRate());
    group.recordScalar("recycled_ops",
                       static_cast<double>(stats.recycled_ops));
    group.recordScalar("two_cycle_holds",
                       static_cast<double>(stats.two_cycle_holds));
    group.recordScalar("slack_recycled_ticks",
                       static_cast<double>(stats.slack_recycled_ticks));
    group.recordScalar("egpw_requests",
                       static_cast<double>(stats.egpw_requests));
    group.recordScalar("egpw_grants",
                       static_cast<double>(stats.egpw_grants));
    group.recordScalar("egpw_wasted",
                       static_cast<double>(stats.egpw_wasted));
    group.recordScalar("fused_ops",
                       static_cast<double>(stats.fused_ops));
    group.recordScalar("la_mispredict_rate", stats.laMispredictRate());
    group.recordScalar("width_aggressive_rate",
                       stats.widthAggressiveRate());
    group.recordScalar("branch_mispredict_rate",
                       stats.branchMispredictRate());
    group.recordScalar("loads", static_cast<double>(stats.loads));
    group.recordScalar("stores", static_cast<double>(stats.stores));
    group.recordScalar("l1_load_misses",
                       static_cast<double>(stats.l1_load_misses));
    group.recordScalar("store_forwards",
                       static_cast<double>(stats.store_forwards));
    group.recordScalar("expected_chain_length",
                       stats.expected_chain_length);
    group.recordScalar("threshold_final",
                       static_cast<double>(stats.threshold_final));
    group.recordScalar("sim_seconds", stats.sim_seconds);
    group.recordScalar("sim_mips", stats.simMips());
    return group;
}

OooCore::OooCore(CoreConfig config)
    : config_(std::move(config)),
      clock_(config_.ci_precision_bits, config_.timing.clock_period_ps),
      timing_(config_.timing),
      lut_(timing_, clock_),
      memory_(config_.memory),
      branch_pred_(config_.branch_pred),
      width_pred_(config_.width_pred),
      la_pred_(config_.last_arrival),
      rob_(config_.rob_entries),
      lsq_(config_.lsq_entries),
      rs_(config_.rs_entries),
      fu_(config_)
{
    fatal_if(config_.slack_threshold_ticks > clock_.ticksPerCycle(),
             "slack threshold exceeds a full cycle");
    fatal_if(config_.no_commit_horizon == 0,
             "zero no-commit watchdog horizon");
    event_kernel_ = config_.sched_kernel == SchedKernel::Event;
    audit_on_ = InvariantAuditor::enabledFromEnv();
    // The EGPW candidate set only exists where a separate Phase-B
    // scan does: skewed selection. The non-skewed ablation evaluates
    // EGPW inline in Phase A on the same ready set.
    collect_eager_ = event_kernel_ &&
                     config_.mode == SchedMode::ReDSOC && config_.egpw &&
                     config_.skewed_select;
}

bool
OooCore::widthSensitive(const Inst &inst) const
{
    // Only carry-chain (arithmetic) operations have width-dependent
    // delay; logic and move/shift rows of the LUT collapse widths.
    return aluKind(inst.op) == AluKind::Arith;
}

SeqNum
OooCore::lastProducer(const OpState &op) const
{
    SeqNum last = kNoSeq;
    Tick best = 0;
    for (unsigned i = 0; i < op.nprod; ++i) {
        const OpState &ps = ops_[op.prod[i]];
        if (last == kNoSeq || ps.complete_tick >= best) {
            best = ps.complete_tick;
            last = op.prod[i];
        }
    }
    return last;
}

Tick
OooCore::producersComplete(const OpState &op) const
{
    Tick t = 0;
    for (unsigned i = 0; i < op.nprod; ++i)
        t = std::max(t, ops_[op.prod[i]].complete_tick);
    return t;
}

Cycle
OooCore::selGate(const OpState &op) const
{
    Cycle gate = op.dispatch_cycle + 1;
    for (unsigned i = 0; i < op.nprod; ++i)
        gate = std::max(gate, ops_[op.prod[i]].select_cycle + 1);
    return gate;
}

void
OooCore::emitFrontend(SeqNum seq)
{
    // The model's frontend is one macro-stage: all four events carry
    // the dispatch cycle's tick (trace_events.h).
    const Tick t = clock_.cycleStart(cycle_);
    emit(PipeEventKind::Fetch, seq, t);
    emit(PipeEventKind::Decode, seq, t);
    emit(PipeEventKind::Rename, seq, t);
    emit(PipeEventKind::Dispatch, seq, t);
}

void
OooCore::emitIssue(const Candidate &cand, const OpState &op)
{
    // The entry's conventional wakeup cycle is the select gate; an
    // EGPW grant (and a MOS fusion) is woken in the grant cycle
    // itself. Every input below is part of the committed schedule,
    // so both scheduler kernels emit identical events.
    const SeqNum last = lastProducer(op);
    const Cycle wake = cand.speculative
                           ? cycle_
                           : std::min(selGate(op), cycle_);
    emit(PipeEventKind::Wakeup, cand.seq, clock_.cycleStart(wake), 0,
         last);
    emit(PipeEventKind::Select, cand.seq, clock_.cycleStart(cycle_),
         cand.speculative ? u8{1} : u8{0});
    if (cand.speculative)
        emit(PipeEventKind::EgpwFire, cand.seq,
             clock_.cycleStart(cycle_));
    if (op.transparent) {
        emit(PipeEventKind::TransparentPass, cand.seq, op.start_tick,
             ciArg(op.start_tick));
        emit(PipeEventKind::RecycleLink, cand.seq, op.start_tick, 0,
             last);
    }
    if (op.width_replayed)
        emit(PipeEventKind::Replay, cand.seq, clock_.cycleStart(cycle_),
             2);
    emit(PipeEventKind::ExecBegin, cand.seq, op.start_tick,
         ciArg(op.start_tick));
    emit(PipeEventKind::Writeback, cand.seq, op.complete_tick,
         ciArg(op.complete_tick));
}

void
OooCore::dispatchPhase(const Trace &trace)
{
    if (fetch_blocked_on_ != kNoSeq) {
        const OpState &blocker = ops_[fetch_blocked_on_];
        if (blocker.st == OpState::St::InRs ||
            blocker.st == OpState::St::Fetched) {
            return; // mispredicted branch not resolved yet
        }
        // The redirect starts at the clock edge after the cycle in
        // which resolution finished (a boundary-tick completion
        // belongs to the cycle it ends, hence the -1).
        fetch_stall_until_ = clock_.cycleOf(blocker.complete_tick - 1) +
                             1 + config_.redirect_penalty;
        fetch_blocked_on_ = kNoSeq;
    }
    if (cycle_ < fetch_stall_until_)
        return;

    for (unsigned w = 0; w < config_.frontend_width; ++w) {
        if (next_fetch_ >= trace.size())
            return;
        const DynOp &dyn = trace.op(next_fetch_);
        const Inst &inst = trace.inst(next_fetch_);
        const bool is_mem = isMem(inst.op);
        const bool is_halt = inst.op == Opcode::HALT;
        const bool needs_rs = !is_halt && inst.op != Opcode::B &&
                              inst.op != Opcode::BL &&
                              inst.op != Opcode::RET;

        if (rob_.full())
            return;
        if (needs_rs && rs_.full())
            return;
        if (is_mem && lsq_.full())
            return;

        const SeqNum seq = next_fetch_++;
        OpState &op = ops_[seq];
        op.dispatch_cycle = cycle_;
        rob_.push(seq);
        emitFrontend(seq);

        // Direct unconditional control flow is resolved entirely in
        // the front end (target known at decode, RAS for returns):
        // it occupies a ROB slot but no RS entry or execution port.
        if (!needs_rs) {
            op.fu = FuClass::None;
            op.st = OpState::St::Done;
            op.select_cycle = cycle_;
            op.start_tick = clock_.cycleStart(cycle_ + 1);
            op.complete_tick = op.start_tick;
            // Frontend-resolved: no RS life, straight to writeback.
            emit(PipeEventKind::Writeback, seq, op.complete_tick,
                 ciArg(op.complete_tick));
            op.is_branch = isBranch(inst.op);
            if (op.is_branch) {
                // Rename the link register and predict as usual.
                const RegIdx dst = inst.destination();
                if (dst != kNoReg)
                    rat_.setWriter(dst, seq);
                ++stats_.branch_lookups;
                op.predicted_next =
                    branch_pred_.predict(dyn.pc, inst, dyn.pc + 1);
                op.branch_mispredicted = op.predicted_next != dyn.next_pc;
                if (op.branch_mispredicted) {
                    fetch_blocked_on_ = seq;
                    return;
                }
            }
            continue;
        }

        op.fu = fuClass(inst.op);
        op.pool = fuPoolKind(op.fu);
        op.eligible = TimingModel::isSlackEligible(inst.op);
        op.is_load = isLoad(inst.op);
        op.is_store = isStore(inst.op);
        op.is_branch = isBranch(inst.op);

        // Rename: derive true dependencies and claim the destination.
        for (RegIdx r : inst.sources()) {
            if (r == kNoReg)
                continue;
            const SeqNum writer = rat_.writer(r);
            if (writer != kNoSeq)
                op.prod[op.nprod++] = writer;
        }
        const RegIdx dst = inst.destination();
        if (dst != kNoReg)
            rat_.setWriter(dst, seq);

        // EX-TIME estimate (Sec.IV-C step 5): LUT at decode, using
        // the predicted width class for width-sensitive scalar ops.
        if (op.eligible) {
            if (!isSimd(inst.op) && widthSensitive(inst)) {
                op.pred_wc = width_pred_.predict(dyn.pc);
                op.actual_wc = classifyWidth(dyn.eff_width);
                op.width_predicted = true;
                ++stats_.width_predictions;
            }
            op.est_ticks = lut_.lookupTicks(inst, op.pred_wc);
        }

        // Operational design: predict the last-arriving parent for
        // two-source slack-eligible ops.
        if (config_.rs_design == RsDesign::Operational && op.eligible &&
            op.nprod == 2) {
            op.pred_last_slot =
                static_cast<u8>(la_pred_.predict(dyn.pc));
            ++stats_.la_predictions;
        }

        if (op.is_branch) {
            ++stats_.branch_lookups;
            op.predicted_next =
                branch_pred_.predict(dyn.pc, inst, dyn.pc + 1);
            op.branch_mispredicted = op.predicted_next != dyn.next_pc;
        }

        op.st = OpState::St::InRs;
        rs_.insert(seq);
        if (is_mem) {
            lsq_.dispatch(seq, op.is_store);
            op.in_lsq = true;
        }

        if (event_kernel_) {
            // Wire the wakeup network: one consumer edge per distinct
            // producer still waiting in the RS. An op whose producers
            // are all already scheduled self-arms for its first
            // eligible cycle (dispatch_cycle + 1).
            for (unsigned i = 0; i < op.nprod; ++i) {
                bool dup = false;
                for (unsigned j = 0; j < i; ++j)
                    dup = dup || op.prod[j] == op.prod[i];
                if (dup)
                    continue;
                OpState &ps = ops_[op.prod[i]];
                if (ps.st != OpState::St::InRs)
                    continue;
                ++op.pending;
                const u32 e = static_cast<u32>(cons_edges_.size());
                cons_edges_.push_back({seq, kNoEdge});
                if (ps.cons_tail == kNoEdge)
                    ps.cons_head = e;
                else
                    cons_edges_[ps.cons_tail].next = e;
                ps.cons_tail = e;
            }
            if (op.pending == 0)
                armAt(seq, cycle_ + 1);
        }

        if (op.is_branch && op.branch_mispredicted) {
            // Everything younger is wrong-path until this resolves.
            fetch_blocked_on_ = seq;
            return;
        }
    }
}

bool
OooCore::evalConventional(SeqNum seq, Candidate &cand, Cycle *next_try)
{
    OpState &op = ops_[seq];
    if (op.st != OpState::St::InRs)
        return false;
    if (cycle_ < op.dispatch_cycle + 1 || cycle_ < op.retry_cycle) {
        if (next_try)
            *next_try = std::max(op.dispatch_cycle + 1, op.retry_cycle);
        return false;
    }

    for (unsigned i = 0; i < op.nprod; ++i) {
        if (ops_[op.prod[i]].st == OpState::St::InRs ||
            ops_[op.prod[i]].st == OpState::St::Fetched) {
            return false; // a producer is not yet scheduled
        }
    }

    // Operational design: validate the last-arrival prediction once
    // all producers are scheduled. A wrong prediction means the entry
    // woke on the wrong tag and replays (Sec.IV-C).
    if (!op.la_checked && op.pred_last_slot != 0xff) {
        op.la_checked = true;
        auto gate_of = [&](SeqNum p) {
            const OpState &ps = ops_[p];
            const Cycle structural = ps.select_cycle + 1;
            const Cycle data_cycle =
                clock_.cycleOf(clock_.ceilToBoundary(ps.complete_tick));
            return std::max(structural,
                            data_cycle == 0 ? 0 : data_cycle - 1);
        };
        Cycle pred_ready = std::max(op.dispatch_cycle + 1,
                                    gate_of(op.prod[op.pred_last_slot]));
        Cycle true_ready = op.dispatch_cycle + 1;
        for (unsigned i = 0; i < op.nprod; ++i)
            true_ready = std::max(true_ready, gate_of(op.prod[i]));
        // The scoreboard validation (Sec.IV-C): the prediction is
        // correct iff the other operand was already available when
        // the predicted-last tag woke the entry.
        const bool correct = pred_ready >= true_ready;
        la_pred_.recordOutcome(correct);
        if (!correct) {
            ++stats_.la_mispredictions;
            emit(PipeEventKind::Replay, seq, clock_.cycleStart(cycle_),
                 1);
            // Woke early on the wrong tag: replay penalty.
            static constexpr Cycle kLaReplayPenalty = 2;
            op.retry_cycle = true_ready + kLaReplayPenalty;
            if (next_try)
                *next_try = op.retry_cycle;
            return false;
        }
    }

    if (cycle_ < selGate(op)) {
        if (next_try)
            *next_try = selGate(op);
        return false;
    }

    const Tick arrival = clock_.cycleStart(cycle_ + 1);
    const Tick producers_t = producersComplete(op);

    bool transparent = false;
    Tick start = arrival;
    if (producers_t <= arrival) {
        start = arrival;
    } else if (config_.mode == SchedMode::ReDSOC && op.eligible &&
               canRecycle(producers_t, arrival, clock_,
                          cur_threshold_)) {
        start = producers_t;
        transparent = true;
    } else {
        if (next_try) {
            // Data arrives by the boundary entering c_data; the one
            // cycle in which the producer's mid-cycle completion can
            // be recycled (arrival < completion < arrival + period)
            // is c_data - 1, so an eligible consumer re-evaluates
            // there first to test the (possibly dynamic) threshold.
            const Tick tpc = clock_.ticksPerCycle();
            const Cycle c_data = (producers_t + tpc - 1) / tpc - 1;
            Cycle t = c_data;
            if (config_.mode == SchedMode::ReDSOC && op.eligible &&
                producers_t % tpc != 0 && cycle_ < c_data - 1)
                t = c_data - 1;
            *next_try = t;
        }
        return false; // data not available (or not recyclable)
    }

    if (op.is_load && lsq_.olderStoreUnresolved(seq)) {
        if (next_try)
            *next_try = kParkLoad;
        return false;
    }

    cand.seq = seq;
    cand.speculative = false;
    cand.recycle_ok = true;
    fillCompletion(cand, op, arrival, start, transparent);
    return true;
}

void
OooCore::fillCompletion(Candidate &cand, OpState &op, Tick arrival,
                        Tick start, bool transparent)
{
    const Tick tpc = clock_.ticksPerCycle();
    cand.start = start;
    cand.transparent = transparent;

    if (op.is_load || op.is_store) {
        // Real completion computed at issue (cache side effects).
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival; // placeholder
        cand.span = 1;
        return;
    }

    if (!op.eligible) {
        const unsigned lat = fuLatency(op.fu);
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival + Tick{lat} * tpc;
        cand.span = fuPipelined(op.fu) ? 1 : lat;
        return;
    }

    // Slack-eligible single-cycle operation.
    if (config_.mode != SchedMode::ReDSOC) {
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival + tpc;
        cand.span = 1;
        return;
    }

    const Inst &inst = trace_->inst(cand.seq);
    if (op.width_predicted && op.actual_wc > op.pred_wc) {
        // Aggressive width misprediction, detected at execute:
        // conservative re-execution from the next boundary
        // (selective-reissue recovery, Sec.II-B).
        const Tick est = lut_.lookupTicks(inst, op.actual_wc);
        cand.start = arrival;
        cand.transparent = false;
        cand.complete = arrival + tpc + est;
        cand.span = 2;
        op.width_replayed = true;
        return;
    }

    cand.complete = start + op.est_ticks;
    cand.span = clock_.crossesBoundary(start, cand.complete) ? 2 : 1;
}

bool
OooCore::evalEager(SeqNum seq, Candidate &cand)
{
    OpState &op = ops_[seq];
    if (op.st != OpState::St::InRs || !op.eligible)
        return false;
    if (cycle_ < op.dispatch_cycle + 1 || cycle_ < op.retry_cycle)
        return false;
    if (op.nprod == 0)
        return false;
    if (op.is_load || op.is_store)
        return false;

    for (unsigned i = 0; i < op.nprod; ++i) {
        const auto st = ops_[op.prod[i]].st;
        if (st == OpState::St::InRs || st == OpState::St::Fetched)
            return false;
    }

    const SeqNum parent = lastProducer(op);
    const OpState &ps = ops_[parent];

    // The EGPW window: the (last-arriving) parent was granted this
    // very cycle, so the child's conventional wakeup is one cycle
    // away, but the grandparent broadcast (last cycle) can wake it.
    if (ps.select_cycle != cycle_ || ps.st != OpState::St::Done)
        return false;
    if (ps.nprod == 0)
        return false; // no grandparent tags ever broadcast
    for (unsigned i = 0; i < ps.nprod; ++i) {
        // Grandparents must have broadcast in an earlier cycle.
        if (ops_[ps.prod[i]].select_cycle >= cycle_)
            return false;
    }
    // Other parents must have been scheduled before this cycle too
    // (their tags cannot have woken the entry yet otherwise).
    for (unsigned i = 0; i < op.nprod; ++i) {
        if (op.prod[i] != parent &&
            ops_[op.prod[i]].select_cycle >= cycle_)
            return false;
    }

    if (config_.rs_design == RsDesign::Operational) {
        // The single tracked parent tag must be the actual last
        // arriver, and the grandparent tag (the parent's predicted
        // last parent) must be the parent's actual last producer.
        if (op.pred_last_slot != 0xff &&
            op.prod[op.pred_last_slot] != parent)
            return false;
        if (ps.nprod >= 2) {
            const SeqNum actual_gp = lastProducer(ps);
            const SeqNum predicted_gp =
                ps.pred_last_slot != 0xff ? ps.prod[ps.pred_last_slot]
                                          : actual_gp;
            if (predicted_gp != actual_gp)
                return false;
        }
    }

    const Tick arrival = clock_.cycleStart(cycle_ + 1);
    const Tick producers_t = producersComplete(op);

    cand.seq = seq;
    cand.speculative = true;
    cand.recycle_ok = canRecycle(producers_t, arrival, clock_,
                                 cur_threshold_);
    if (cand.recycle_ok)
        fillCompletion(cand, op, arrival, producers_t, true);
    else
        cand.span = 1;
    return true;
}

void
OooCore::issueOp(const Candidate &cand)
{
    OpState &op = ops_[cand.seq];
    op.st = OpState::St::Done;
    op.select_cycle = cycle_;
    op.start_tick = cand.start;
    op.complete_tick = cand.complete;
    op.transparent = cand.transparent;
    rs_.remove(cand.seq);

    if (op.is_load || op.is_store)
        op.complete_tick = memCompleteTick(cand.seq, cand.start);

    // Predictors train at execute, where operand values (and the
    // actual arrival order) become visible.
    if (op.width_predicted) {
        if (op.actual_wc > op.pred_wc)
            ++stats_.width_aggressive;
        else if (op.actual_wc < op.pred_wc)
            ++stats_.width_conservative;
        width_pred_.update(trace_->op(cand.seq).pc, op.actual_wc);
    }
    if (op.pred_last_slot != 0xff) {
        const Tick t0 = ops_[op.prod[0]].complete_tick;
        const Tick t1 = ops_[op.prod[1]].complete_tick;
        la_pred_.update(trace_->op(cand.seq).pc, t1 > t0 ? 1 : 0);
        if (!op.la_checked) {
            // EGPW-issued: the tracked tag was verified to be the
            // actual last arriver on the eager path.
            op.la_checked = true;
            la_pred_.recordOutcome(true);
        }
    }

    if (op.in_lsq) {
        const DynOp &dyn = trace_->op(cand.seq);
        lsq_.resolve(cand.seq, dyn.mem_addr,
                     memAccessSize(trace_->inst(cand.seq).op),
                     op.complete_tick);
    }

    if (cand.transparent) {
        ++stats_.recycled_ops;
        stats_.slack_recycled_ticks +=
            clock_.ceilToBoundary(cand.start) - cand.start;
        chains_.onExtend(lastProducer(op), cand.seq);
    } else if (op.eligible && config_.mode == SchedMode::ReDSOC) {
        chains_.onRoot(cand.seq);
    }
    if (cand.span == 2 && op.eligible && !op.width_replayed)
        ++stats_.two_cycle_holds;

    if (tracer_)
        emitIssue(cand, op);
    if (audit_on_)
        audit_.onIssue(*this, cand.seq);

    if (event_kernel_)
        broadcastWakeup(cand.seq);
}

void
OooCore::armAt(SeqNum seq, Cycle c)
{
    ops_[seq].armed_cycle = c;
    if (c == cycle_ + 1)
        next_arms_.push_back(seq);
    else
        wake_pq_.emplace(c, seq);
}

void
OooCore::scheduleEval(SeqNum seq, bool newly_woken)
{
    OpState &op = ops_[seq];
    if (in_phase_a_) {
        // The waker is older (smaller seq), so the Phase-A cursor has
        // not reached this entry yet: it gets evaluated this cycle,
        // exactly where the scan kernel's full pass would visit it.
        ready_.insert(seq, op.pool);
        op.armed_cycle = cycle_;
    } else {
        armAt(seq, cycle_ + 1);
    }
    // A newly-woken entry is an EGPW candidate this same cycle (its
    // last parent was granted this cycle).
    if (newly_woken && collect_eager_)
        eager_.insert(seq, op.pool);
}

void
OooCore::broadcastWakeup(SeqNum seq)
{
    const OpState &op = ops_[seq];
    for (u32 e = op.cons_head; e != kNoEdge; e = cons_edges_[e].next) {
        const SeqNum cseq = cons_edges_[e].consumer;
        if (--ops_[cseq].pending == 0)
            scheduleEval(cseq, true);
    }
    // A store resolving its address can unblock any younger parked
    // load (memory-order wakeup rides the same broadcast port).
    if (op.is_store && !parked_loads_.empty()) {
        for (SeqNum l : parked_loads_)
            if (ops_[l].st == OpState::St::InRs)
                scheduleEval(l, false);
        parked_loads_.clear();
    }
}

void
OooCore::drainWakeQueue()
{
    if (!next_arms_.empty()) {
        // Arms pushed last cycle for this one (fastForward never
        // jumps over a pending next-cycle arm).
        for (SeqNum seq : next_arms_) {
            const OpState &op = ops_[seq];
            if (op.st == OpState::St::InRs && op.armed_cycle == cycle_)
                ready_.insert(seq, op.pool);
        }
        next_arms_.clear();
    }
    while (!wake_pq_.empty() && wake_pq_.top().first <= cycle_) {
        const auto [c, seq] = wake_pq_.top();
        wake_pq_.pop();
        const OpState &op = ops_[seq];
        if (op.st != OpState::St::InRs || op.armed_cycle != c)
            continue; // stale arm (issued, or re-armed since)
        ready_.insert(seq, op.pool);
    }
}

Tick
OooCore::memCompleteTick(SeqNum seq, Tick arrival)
{
    const Tick tpc = clock_.ticksPerCycle();
    const DynOp &dyn = trace_->op(seq);
    const Inst &inst = trace_->inst(seq);
    OpState &op = ops_[seq];

    if (op.is_store) {
        ++stats_.stores;
        memory_.access(dyn.pc, dyn.mem_addr, true);
        return arrival + tpc;
    }

    ++stats_.loads;
    const unsigned size = memAccessSize(inst.op);
    const auto fwd = lsq_.forwardFrom(seq, dyn.mem_addr, size);
    if (fwd && fwd->full_cover) {
        ++stats_.store_forwards;
        lsq_.noteForward();
        const Tick ready =
            std::max(arrival, clock_.ceilToBoundary(fwd->store_complete));
        return ready + Tick{config_.memory.l1_latency} * tpc;
    }

    Tick ready = arrival;
    if (fwd && fwd->partial)
        ready = std::max(arrival,
                         clock_.ceilToBoundary(fwd->store_complete));
    const auto result = memory_.access(dyn.pc, dyn.mem_addr, false);
    if (!result.l1_hit)
        ++stats_.l1_load_misses;
    return ready + Tick{result.latency} * tpc;
}

bool
OooCore::phaseAEntry(SeqNum seq, bool interleave_spec, bool &fu_denied,
                     Cycle *next_try)
{
    Candidate cand;
    bool is_req = evalConventional(seq, cand, next_try);
    if (!is_req && interleave_spec) {
        is_req = evalEager(seq, cand);
        if (is_req) {
            ++stats_.egpw_requests;
            if (tracer_) {
                const SeqNum parent = lastProducer(ops_[seq]);
                emit(PipeEventKind::EgpwArm, seq,
                     clock_.cycleStart(cycle_), 0,
                     parent == kNoSeq ? kNoSeq
                                      : lastProducer(ops_[parent]));
            }
        }
    }
    if (!is_req)
        return false;

    const FuPoolKind pool = ops_[seq].pool;
    if (cand.speculative) {
        if (fu_.freeUnits(pool, cycle_ + 1) == 0) {
            fu_denied = true;
            return true;
        }
        if (audit_on_)
            audit_.onEgpwGrant(*this, seq,
                               fu_.freeUnits(pool, cycle_ + 1));
        ++stats_.egpw_grants;
        if (!cand.recycle_ok) {
            fu_.book(pool, cycle_ + 1, 1);
            ++stats_.egpw_wasted;
            emit(PipeEventKind::EgpwWaste, seq,
                 clock_.cycleStart(cycle_), 0);
            return true;
        }
    }
    if (!fu_.freeSpan(pool, cycle_ + 1, cand.span)) {
        if (cand.speculative) {
            fu_.book(pool, cycle_ + 1, 1);
            ++stats_.egpw_wasted;
            emit(PipeEventKind::EgpwWaste, seq,
                 clock_.cycleStart(cycle_), 1);
        } else {
            fu_denied = true;
        }
        return true;
    }
    fu_.book(pool, cycle_ + 1, cand.span);
    issueOp(cand);
    if (!cand.speculative)
        conv_grants_.push_back(cand);
    return true;
}

bool
OooCore::tryFuse(const Candidate &pg, SeqNum cseq)
{
    const Tick tpc = clock_.ticksPerCycle();
    const Tick arrival = clock_.cycleStart(cycle_ + 1);
    const OpState &pop = ops_[pg.seq];
    OpState &cop = ops_[cseq];
    if (cop.st != OpState::St::InRs || !cop.eligible)
        return false;
    if (cycle_ < cop.dispatch_cycle + 1 || cycle_ < cop.retry_cycle)
        return false;
    if (cop.pool != pop.pool)
        return false;
    bool all_sched = true;
    bool parent_is_last = false;
    Tick others = 0;
    for (unsigned i = 0; i < cop.nprod; ++i) {
        const OpState &xs = ops_[cop.prod[i]];
        if (xs.st == OpState::St::InRs ||
            xs.st == OpState::St::Fetched) {
            all_sched = false;
            break;
        }
        if (cop.prod[i] == pg.seq)
            parent_is_last = true;
        else
            others = std::max(others, xs.complete_tick);
    }
    if (!all_sched || !parent_is_last || others > arrival)
        return false;
    if (pop.est_ticks + cop.est_ticks > tpc)
        return false;

    Candidate fc;
    fc.seq = cseq;
    fc.speculative = false;
    fc.recycle_ok = true;
    fc.start = arrival + pop.est_ticks;
    fc.complete = arrival + tpc;
    fc.span = 0;
    fc.transparent = false;
    issueOp(fc);
    cop.fused = true;
    ++stats_.fused_ops;
    emit(PipeEventKind::Fuse, cseq, clock_.cycleStart(cycle_), 0,
         pg.seq);
    return true;
}

void
OooCore::issuePhase()
{
    bool fu_denied = false;
    conv_grants_.clear();
    const bool redsoc = config_.mode == SchedMode::ReDSOC;
    const bool interleave_spec = redsoc && config_.egpw &&
                                 !config_.skewed_select;

    // Phase A: conventional (parent-woken) requests, oldest first.
    // With skewed selection disabled (ablation), speculative EGPW
    // requests compete purely by age and are interleaved here.
    if (event_kernel_) {
        // Only entries with a due re-arm or a fresh broadcast wakeup
        // can request (or have a side effect) this cycle; every entry
        // skipped here would evaluate to a pure false under the scan
        // kernel. Mid-scan wakeups land ahead of the cursor (a
        // consumer is always younger than its producer), preserving
        // the full scan's age-ordered select.
        drainWakeQueue();
        in_phase_a_ = true;
        SeqNum cur = 0;
        for (SeqNum seq; (seq = ready_.nextAtOrAfter(cur)) != kNoSeq;) {
            ready_.erase(seq, ops_[seq].pool);
            cur = seq + 1;
            Cycle next_try = kNoCycle;
            const bool requested =
                phaseAEntry(seq, interleave_spec, fu_denied, &next_try);
            const OpState &op = ops_[seq];
            if (op.st != OpState::St::InRs)
                continue; // issued
            if (requested)
                armAt(seq, cycle_ + 1); // denied or wasted: retry
            else if (next_try == kParkLoad)
                parked_loads_.push_back(seq);
            else if (next_try != kNoCycle)
                armAt(seq, next_try);
            // else: wake-driven (a producer broadcast re-inserts it)
        }
        in_phase_a_ = false;
    } else {
        // Snapshot into the reusable scan buffer: issueOp removes the
        // granted entry from the RS mid-scan.
        rs_.snapshot(scan_);
        for (SeqNum seq : scan_)
            phaseAEntry(seq, interleave_spec, fu_denied, nullptr);
    }

    // Phase B: EGPW speculative requests from leftover units (the
    // skewed-select ordering: conventional grants always first).
    if (redsoc && config_.egpw && !interleave_spec) {
        auto phase_b = [&](SeqNum seq) {
            Candidate cand;
            if (!evalEager(seq, cand))
                return;
            ++stats_.egpw_requests;
            if (tracer_) {
                const SeqNum parent = lastProducer(ops_[seq]);
                emit(PipeEventKind::EgpwArm, seq,
                     clock_.cycleStart(cycle_), 0,
                     parent == kNoSeq ? kNoSeq
                                      : lastProducer(ops_[parent]));
            }
            const FuPoolKind pool = ops_[seq].pool;
            if (fu_.freeUnits(pool, cycle_ + 1) == 0) {
                // Not granted (no conventional op was displaced), but
                // a ready request stalled on busy units all the same.
                fu_denied = true;
                return;
            }
            if (audit_on_)
                audit_.onEgpwGrant(*this, seq,
                                   fu_.freeUnits(pool, cycle_ + 1));
            ++stats_.egpw_grants;
            if (!cand.recycle_ok) {
                // Granted, but there is no slack to recycle this
                // cycle: the reserved unit idles (Fig.7 grant AND
                // recycle gating).
                fu_.book(pool, cycle_ + 1, 1);
                ++stats_.egpw_wasted;
                emit(PipeEventKind::EgpwWaste, seq,
                     clock_.cycleStart(cycle_), 0);
                return;
            }
            if (!fu_.freeSpan(pool, cycle_ + 1, cand.span)) {
                fu_.book(pool, cycle_ + 1, 1);
                ++stats_.egpw_wasted;
                emit(PipeEventKind::EgpwWaste, seq,
                     clock_.cycleStart(cycle_), 1);
                return;
            }
            fu_.book(pool, cycle_ + 1, cand.span);
            issueOp(cand);
        };
        if (event_kernel_) {
            // Exactly the entries woken this cycle can pass the
            // evalEager window (their last parent was granted this
            // cycle); Phase-B cascades insert ahead of the cursor.
            SeqNum cur = 0;
            for (SeqNum seq;
                 (seq = eager_.nextAtOrAfter(cur)) != kNoSeq;) {
                eager_.erase(seq, ops_[seq].pool);
                cur = seq + 1;
                phase_b(seq);
            }
        } else {
            rs_.snapshot(scan_);
            for (SeqNum seq : scan_)
                phase_b(seq);
        }
    }

    // MOS: dynamic operation fusion. A granted producer may pull one
    // ready consumer into its own cycle when both computations fit.
    // One RS view serves the whole cycle: entries issued by earlier
    // grants in this loop are filtered by the St::InRs check, so the
    // old per-producer re-snapshot was pure overhead. The event
    // kernel walks the granted producer's age-ordered consumer list
    // instead (fusion requires the producer among the consumer's
    // sources, so non-consumers can never match).
    if (config_.mode == SchedMode::MOS) {
        if (!event_kernel_)
            rs_.snapshot(mos_scan_);
        for (const Candidate &pg : conv_grants_) {
            const OpState &pop = ops_[pg.seq];
            if (!pop.eligible || pop.est_ticks == 0)
                continue;
            if (event_kernel_) {
                for (u32 e = pop.cons_head; e != kNoEdge;
                     e = cons_edges_[e].next)
                    if (tryFuse(pg, cons_edges_[e].consumer))
                        break; // one fusion per producer
            } else {
                for (SeqNum cseq : mos_scan_)
                    if (tryFuse(pg, cseq))
                        break; // one fusion per producer
            }
        }
    }

    if (fu_denied)
        ++stats_.fu_stall_cycles;
}

void
OooCore::adaptThreshold()
{
    // The Sec.IV-C dynamic-threshold extension: hill-climb on
    // observed commit throughput. If the last epoch's change hurt,
    // reverse direction; otherwise keep walking, clamped to
    // [0, ticksPerCycle].
    const SeqNum committed_this = commit_ptr_ - epoch_start_commits_;
    if (committed_this < last_epoch_commits_)
        adapt_direction_ = -adapt_direction_;
    last_epoch_commits_ = committed_this;
    epoch_start_commits_ = commit_ptr_;

    s64 next = static_cast<s64>(cur_threshold_) + adapt_direction_;
    const s64 tpc = static_cast<s64>(clock_.ticksPerCycle());
    if (next < 0) {
        next = 0;
        adapt_direction_ = 1;
    } else if (next > tpc) {
        next = tpc;
        adapt_direction_ = -1;
    }
    cur_threshold_ = static_cast<Tick>(next);
    stats_.threshold_min = std::min(stats_.threshold_min, cur_threshold_);
    stats_.threshold_max = std::max(stats_.threshold_max, cur_threshold_);
}

void
OooCore::commitPhase()
{
    unsigned committed = 0;
    const Tick now = clock_.cycleStart(cycle_);
    while (committed < config_.commit_width && !rob_.empty()) {
        const SeqNum seq = rob_.head();
        OpState &op = ops_[seq];
        if (op.st != OpState::St::Done || op.complete_tick > now)
            break;

        rob_.pop(seq);
        if (op.in_lsq)
            lsq_.commit(seq);
        op.st = OpState::St::Committed;

        const DynOp &dyn = trace_->op(seq);
        const Inst &inst = trace_->inst(seq);

        if (op.is_branch) {
            if (branch_pred_.resolve(dyn.pc, inst, dyn.taken,
                                     dyn.next_pc, op.predicted_next))
                ++stats_.branch_mispredicts;
        }

        chains_.onRetire(seq);

        // Fold the op's architectural schedule into the commit-trace
        // checksum (FNV-1a) so differential runs can prove the whole
        // schedule matched, not just the aggregate counters.
        auto fold = [this](u64 v) {
            stats_.commit_checksum ^= v;
            stats_.commit_checksum *= 0x100000001b3ull;
        };
        fold(seq);
        fold(op.select_cycle);
        fold(op.start_tick);
        fold(op.complete_tick);
        fold((op.transparent ? 1u : 0u) | (op.fused ? 2u : 0u));

        emit(PipeEventKind::Commit, seq, now);

        ++commit_ptr_;
        ++committed;
        last_commit_cycle_ = cycle_;
    }
}

void
OooCore::fastForward(bool adapting)
{
    // Arms buffered during the just-finished cycle are due exactly
    // now (cycle_ already advanced): nothing to skip.
    if (!next_arms_.empty())
        return;

    // The next cycle the scheduler can do non-trivial work: the
    // earliest live arm in the wake queue. Every waiting RS entry is
    // either armed here, parked behind an older store (itself an
    // armed-or-parked chain rooted at an armed entry), or waiting on
    // a producer broadcast from one of those.
    Cycle target = kNoCycle;
    while (!wake_pq_.empty()) {
        const auto &[c, seq] = wake_pq_.top();
        const OpState &op = ops_[seq];
        if (op.st != OpState::St::InRs || op.armed_cycle != c) {
            wake_pq_.pop(); // stale arm
            continue;
        }
        target = c;
        break;
    }

    // The next commit: the ROB head's completion boundary. (A head
    // still in the RS becomes Done through a wake-queue event.)
    if (!rob_.empty()) {
        const OpState &head = ops_[rob_.head()];
        if (head.st == OpState::St::Done) {
            const Tick tpc = clock_.ticksPerCycle();
            target =
                std::min(target, (head.complete_tick + tpc - 1) / tpc);
        }
    }

    // The next dispatch. Structural stalls (ROB/RS/LSQ full) clear
    // through commits or issues, which the two events above already
    // bound; an unresolved-branch block clears when the blocker
    // issues (a wake event) or, once it is Done, at the redirect.
    if (next_fetch_ < trace_->size()) {
        if (fetch_blocked_on_ != kNoSeq) {
            const OpState &b = ops_[fetch_blocked_on_];
            if (b.st != OpState::St::InRs &&
                b.st != OpState::St::Fetched) {
                const Cycle redirect =
                    clock_.cycleOf(b.complete_tick - 1) + 1 +
                    config_.redirect_penalty;
                target = std::min(target, std::max(cycle_, redirect));
            }
        } else {
            const Inst &inst = trace_->inst(next_fetch_);
            const bool is_mem = isMem(inst.op);
            const bool is_halt = inst.op == Opcode::HALT;
            const bool needs_rs = !is_halt && inst.op != Opcode::B &&
                                  inst.op != Opcode::BL &&
                                  inst.op != Opcode::RET;
            const bool blocked = rob_.full() ||
                                 (needs_rs && rs_.full()) ||
                                 (is_mem && lsq_.full());
            if (!blocked)
                target = std::min(
                    target, std::max(cycle_, fetch_stall_until_));
        }
    }

    // Never jump past the no-commit watchdog horizon (a deadlocked
    // simulation must still abort at the same cycle as the scan
    // kernel: the clamp lands exactly one cycle short of the strict->
    // check in run(), so both kernels throw at horizon + 1), nor past
    // a dynamic-threshold epoch boundary (the adaptation at each
    // boundary is a side effect of its own).
    const Cycle horizon = last_commit_cycle_ + config_.no_commit_horizon;
    if (target > horizon)
        target = horizon;
    if (adapting) {
        const Cycle epoch = config_.threshold_epoch;
        target = std::min(target, (cycle_ / epoch + 1) * epoch - 1);
    }
    if (target > cycle_)
        cycle_ = target;
}

CoreStats
OooCore::run(const Trace &trace)
{
    const auto wall_start = std::chrono::steady_clock::now();

    // Reset all run state so a core object can be reused.
    trace_ = &trace;
    ops_.assign(trace.size(), OpState{});
    next_fetch_ = 0;
    commit_ptr_ = 0;
    cycle_ = 0;
    fetch_stall_until_ = 0;
    fetch_blocked_on_ = kNoSeq;
    last_commit_cycle_ = 0;
    rat_.reset();
    stats_ = CoreStats{};
    chains_ = TransparentTracker{};
    cur_threshold_ = config_.slack_threshold_ticks;
    adapt_direction_ = 1;
    epoch_start_commits_ = 0;
    last_epoch_commits_ = 0;
    stats_.threshold_min = cur_threshold_;
    stats_.threshold_max = cur_threshold_;
    rs_.clear();
    cons_edges_.clear();
    wake_pq_ = {};
    next_arms_.clear();
    ready_.clear();
    eager_.clear();
    parked_loads_.clear();
    in_phase_a_ = false;
    if (tracer_)
        tracer_->beginRun(clock_.ticksPerCycle());

    const bool adapting = config_.dynamic_threshold &&
                          config_.mode == SchedMode::ReDSOC;
    const bool profiling = prof::enabled();

    const SeqNum total = trace.size();
    prof::ScopedTimer run_timer(prof::Phase::Run, profiling);
    while (commit_ptr_ < total) {
        if (profiling) {
            {
                prof::ScopedTimer t(prof::Phase::Commit, true);
                commitPhase();
            }
            {
                prof::ScopedTimer t(prof::Phase::Issue, true);
                issuePhase();
            }
            {
                prof::ScopedTimer t(prof::Phase::Dispatch, true);
                dispatchPhase(trace);
            }
        } else {
            commitPhase();
            issuePhase();
            dispatchPhase(trace);
        }
        if (audit_on_)
            audit_.onCycleEnd(*this);
        ++cycle_;
        if (adapting && cycle_ % config_.threshold_epoch == 0)
            adaptThreshold();
        if (cycle_ - last_commit_cycle_ > config_.no_commit_horizon)
            throw DeadlockError(cycle_, commit_ptr_, total);
        if (event_kernel_ && commit_ptr_ < total)
            fastForward(adapting);
    }

    stats_.threshold_final = cur_threshold_;
    stats_.cycles = cycle_;
    stats_.committed = total;
    stats_.chain_lengths = chains_.lengths();
    stats_.expected_chain_length = chains_.expectedRecycledLength();
    stats_.sim_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return stats_;
}

} // namespace redsoc

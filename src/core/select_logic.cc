#include "core/select_logic.h"

#include "common/logging.h"

namespace redsoc {

SelectArbiter::SelectArbiter(unsigned entries)
    : entries_(entries), masks_(entries, 0)
{
    fatal_if(entries == 0 || entries > 64,
             "select arbiter supports 1..64 entries");
}

void
SelectArbiter::setMask(unsigned idx, u64 older_mask)
{
    panic_if(idx >= entries_, "mask index out of range");
    masks_[idx] = older_mask;
}

void
SelectArbiter::setAgeOrder(const std::vector<unsigned> &age_rank)
{
    panic_if(age_rank.size() != entries_, "age rank arity mismatch");
    for (unsigned i = 0; i < entries_; ++i) {
        u64 mask = 0;
        for (unsigned j = 0; j < entries_; ++j)
            if (j != i && age_rank[j] < age_rank[i])
                mask |= u64{1} << j;
        masks_[i] = mask;
    }
}

int
SelectArbiter::grantOne(u64 wakeup, const std::vector<u64> &masks) const
{
    for (unsigned i = 0; i < entries_; ++i) {
        if (!(wakeup & (u64{1} << i)))
            continue;
        // Granted iff no higher-priority entry is also awake.
        if ((masks[i] & wakeup) == 0)
            return static_cast<int>(i);
    }
    return -1;
}

std::vector<unsigned>
SelectArbiter::arbitrate(u64 wakeup, unsigned max_grants) const
{
    std::vector<unsigned> grants;
    while (grants.size() < max_grants) {
        const int g = grantOne(wakeup, masks_);
        if (g < 0)
            break;
        grants.push_back(static_cast<unsigned>(g));
        wakeup &= ~(u64{1} << g);
    }
    return grants;
}

} // namespace redsoc

#include "core/rob.h"

#include "common/logging.h"

namespace redsoc {

Rob::Rob(unsigned capacity) : capacity_(capacity)
{
    fatal_if(capacity == 0, "zero-entry ROB");
}

void
Rob::push(SeqNum seq)
{
    panic_if(full(), "push into full ROB");
    panic_if(!entries_.empty() && seq <= entries_.back(),
             "out-of-order ROB dispatch");
    entries_.push_back(seq);
}

SeqNum
Rob::head() const
{
    panic_if(entries_.empty(), "head of empty ROB");
    return entries_.front();
}

void
Rob::pop(SeqNum seq)
{
    panic_if(entries_.empty() || entries_.front() != seq,
             "out-of-order ROB commit");
    entries_.pop_front();
}

} // namespace redsoc

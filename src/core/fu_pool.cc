#include "core/fu_pool.h"

#include "common/logging.h"

namespace redsoc {

FuPoolKind
fuPoolKind(FuClass fc)
{
    switch (fc) {
      case FuClass::IntAlu: case FuClass::IntMul: case FuClass::IntDiv:
        return FuPoolKind::Alu;
      case FuClass::SimdAlu: case FuClass::SimdMul:
        return FuPoolKind::Simd;
      case FuClass::Fp: case FuClass::FpDiv:
        return FuPoolKind::Fp;
      case FuClass::MemRead: case FuClass::MemWrite:
        return FuPoolKind::Mem;
      default:
        panic("no pool for FuClass::None");
    }
}

FuPool::FuPool(const CoreConfig &config)
{
    capacity_[static_cast<size_t>(FuPoolKind::Alu)] = config.alu_units;
    capacity_[static_cast<size_t>(FuPoolKind::Simd)] = config.simd_units;
    capacity_[static_cast<size_t>(FuPoolKind::Fp)] = config.fp_units;
    capacity_[static_cast<size_t>(FuPoolKind::Mem)] = config.mem_ports;
    cycle_tag_.fill(~Cycle{0});
}

unsigned &
FuPool::slot(FuPoolKind kind, Cycle cycle)
{
    const size_t idx = cycle % kHorizon;
    if (cycle_tag_[idx] != cycle) {
        // The ring wrapped onto a stale cycle: recycle the bucket.
        cycle_tag_[idx] = cycle;
        for (auto &per_kind : booked_)
            per_kind[idx] = 0;
    }
    return booked_[static_cast<size_t>(kind)][idx];
}

unsigned
FuPool::slotConst(FuPoolKind kind, Cycle cycle) const
{
    const size_t idx = cycle % kHorizon;
    if (cycle_tag_[idx] != cycle)
        return 0;
    return booked_[static_cast<size_t>(kind)][idx];
}

unsigned
FuPool::freeUnits(FuPoolKind kind, Cycle cycle) const
{
    const unsigned cap = capacity(kind);
    const unsigned busy = slotConst(kind, cycle);
    return busy >= cap ? 0 : cap - busy;
}

bool
FuPool::freeSpan(FuPoolKind kind, Cycle cycle, unsigned span) const
{
    const unsigned cap = capacity(kind);
    const auto &per_kind = booked_[static_cast<size_t>(kind)];
    for (unsigned i = 0; i < span; ++i) {
        const Cycle c = cycle + i;
        const unsigned idx = c % kHorizon;
        if (cycle_tag_[idx] == c && per_kind[idx] >= cap)
            return false;
    }
    return true;
}

Cycle
FuPool::nextFreeSpanCycle(FuPoolKind kind, Cycle from,
                          unsigned span) const
{
    const unsigned cap = capacity(kind);
    const auto &per_kind = booked_[static_cast<size_t>(kind)];
    Cycle base = from;
    unsigned run = 0;
    for (Cycle c = from;; ++c) {
        if (c >= from + kHorizon) {
            // Bookings live only inside the ring: everything from
            // here on is free, so the pending run (or this cycle)
            // completes the span unobstructed.
            return base;
        }
        const unsigned idx = c % kHorizon;
        const bool full = cycle_tag_[idx] == c && per_kind[idx] >= cap;
        if (full) {
            base = c + 1;
            run = 0;
        } else if (++run >= span) {
            return base;
        }
    }
}

void
FuPool::book(FuPoolKind kind, Cycle cycle, unsigned span)
{
    panic_if(span == 0 || span >= kHorizon, "bad booking span ", span);
    for (unsigned i = 0; i < span; ++i) {
        unsigned &busy = slot(kind, cycle + i);
        panic_if(busy >= capacity(kind),
                 "overbooked FU pool in cycle ", cycle + i);
        ++busy;
    }
}

void
FuPool::release(FuPoolKind kind, Cycle cycle, unsigned span)
{
    for (unsigned i = 0; i < span; ++i) {
        unsigned &busy = slot(kind, cycle + i);
        panic_if(busy == 0, "releasing an unbooked FU");
        --busy;
    }
}

unsigned
FuPool::capacity(FuPoolKind kind) const
{
    return capacity_[static_cast<size_t>(kind)];
}

unsigned
FuPool::busyUnits(FuPoolKind kind, Cycle cycle) const
{
    return slotConst(kind, cycle);
}

void
FuPool::retireBefore(Cycle cycle)
{
    (void)cycle; // tags lazily recycle; nothing to do eagerly
}

} // namespace redsoc

#include "core/core_config.h"

#include "common/logging.h"

namespace redsoc {

const char *
schedModeName(SchedMode mode)
{
    switch (mode) {
      case SchedMode::Baseline: return "baseline";
      case SchedMode::ReDSOC: return "redsoc";
      case SchedMode::MOS: return "mos";
      default: panic("bad sched mode");
    }
}

const char *
rsDesignName(RsDesign design)
{
    switch (design) {
      case RsDesign::Illustrative: return "illustrative";
      case RsDesign::Operational: return "operational";
      default: panic("bad RS design");
    }
}

const char *
schedKernelName(SchedKernel kernel)
{
    switch (kernel) {
      case SchedKernel::Scan: return "scan";
      case SchedKernel::Event: return "event";
      default: panic("bad sched kernel");
    }
}

CoreConfig
smallCore()
{
    CoreConfig c;
    c.name = "small";
    c.frontend_width = 3;
    c.commit_width = 3;
    c.rob_entries = 40;
    c.lsq_entries = 16;
    c.rs_entries = 32;
    c.alu_units = 3;
    c.simd_units = 2;
    c.fp_units = 2;
    c.mem_ports = 2;
    return c;
}

CoreConfig
mediumCore()
{
    CoreConfig c;
    c.name = "medium";
    c.frontend_width = 4;
    c.commit_width = 4;
    c.rob_entries = 80;
    c.lsq_entries = 32;
    c.rs_entries = 64;
    c.alu_units = 4;
    c.simd_units = 3;
    c.fp_units = 3;
    c.mem_ports = 2;
    return c;
}

CoreConfig
bigCore()
{
    CoreConfig c;
    c.name = "big";
    c.frontend_width = 8;
    c.commit_width = 8;
    c.rob_entries = 160;
    c.lsq_entries = 64;
    c.rs_entries = 128;
    c.alu_units = 6;
    c.simd_units = 4;
    c.fp_units = 4;
    c.mem_ports = 3;
    return c;
}

CoreConfig
coreByName(const std::string &name)
{
    if (name == "small")
        return smallCore();
    if (name == "medium")
        return mediumCore();
    if (name == "big")
        return bigCore();
    fatal("unknown core preset '", name, "'");
}

} // namespace redsoc

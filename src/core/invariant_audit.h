/**
 * @file
 * Runtime structural-invariant audit for the out-of-order core.
 *
 * The differential suites (tests/test_sched_equiv.cc, the fuzzing
 * harness in tools/fuzz/) compare whole-run statistics post-hoc; this
 * checker asserts the structural invariants *inside* the run, at the
 * cycle boundaries where they must hold, so a violation aborts at the
 * first corrupt cycle instead of surfacing thousands of cycles later
 * as a checksum mismatch:
 *
 *   rs-age-order         RS snapshots are strictly ascending in
 *                        sequence number (age order is what both
 *                        select phases walk).
 *   rs-pending-count     Event kernel: every waiting entry's pending
 *                        wakeup count equals a recount of its distinct
 *                        producers still in the RS.
 *   rob-program-order    ROB contents are strictly program-ordered.
 *   lsq-program-order    LSQ contents are strictly program-ordered.
 *   ci-range             Every issued op's sub-cycle completion
 *                        instant lies in [0, ticksPerCycle).
 *   egpw-leftover-slot   An EGPW grant only ever consumes a leftover
 *                        FU slot (skewed select: conventional grants
 *                        book first).
 *   transparent-link     A transparent (recycled) start names a
 *                        producer whose writeback tick is exactly the
 *                        consumer's start tick, strictly inside the
 *                        arrival cycle.
 *   ready-rs-agreement   Event kernel liveness: at a cycle boundary
 *                        every waiting RS entry is reachable by some
 *                        future event — a pending producer broadcast,
 *                        a live future arm, or the parked-load list.
 *
 * The audit is debug-gated: OooCore reads REDSOC_AUDIT=1 from the
 * environment once at construction, and a disabled audit costs one
 * predictable branch per cycle. Each check is a pure static function
 * returning the violation (if any) so unit tests can corrupt inputs
 * directly and assert the exact failure message without death tests;
 * the member hooks gather real core state and panic on a violation.
 */

#ifndef REDSOC_CORE_INVARIANT_AUDIT_H
#define REDSOC_CORE_INVARIANT_AUDIT_H

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace redsoc {

class OooCore;

/** The invariant catalogue (DESIGN.md §11). */
enum class InvariantAudit : u8 {
    RsAgeOrder,
    RsPendingCount,
    RobProgramOrder,
    LsqProgramOrder,
    CiRange,
    EgpwLeftoverSlot,
    TransparentLink,
    ReadyRsAgreement,
    NUM,
};

const char *invariantAuditName(InvariantAudit kind);

/** A failed check: which invariant, and a human-readable account. */
struct AuditViolation
{
    InvariantAudit kind = InvariantAudit::NUM;
    std::string message;
};

class InvariantAuditor
{
  public:
    /** "armed at no cycle" sentinel, mirrors OooCore::kNoCycle. */
    static constexpr Cycle kNeverArmed = ~Cycle{0};

    /** True iff REDSOC_AUDIT is set to a non-empty, non-"0" value. */
    static bool enabledFromEnv();

    // --- Pure checks (unit-testable without a core) -----------------

    /** rs-age-order: @p rs_entries strictly ascending. */
    static std::optional<AuditViolation>
    checkAgeOrder(const std::vector<SeqNum> &rs_entries);

    /** rs-pending-count: recorded pending == producer recount. */
    static std::optional<AuditViolation>
    checkPendingCount(SeqNum seq, unsigned recorded, unsigned recounted);

    /** rob-/lsq-program-order: @p order strictly ascending. @p which
     *  must be RobProgramOrder or LsqProgramOrder. */
    static std::optional<AuditViolation>
    checkProgramOrder(InvariantAudit which,
                      const std::vector<SeqNum> &order);

    /** ci-range: @p ci < @p ticks_per_cycle. */
    static std::optional<AuditViolation>
    checkCiRange(SeqNum seq, Tick ci, Tick ticks_per_cycle);

    /** egpw-leftover-slot: a grant needs @p free_units > 0. */
    static std::optional<AuditViolation>
    checkEgpwLeftover(SeqNum seq, unsigned free_units);

    /** transparent-link: @p producer exists and wrote back exactly at
     *  the consumer's @p start_tick, strictly mid-cycle (ci != 0). */
    static std::optional<AuditViolation>
    checkTransparentLink(SeqNum seq, SeqNum producer,
                         Tick producer_complete, Tick start_tick,
                         Tick ci);

    /** ready-rs-agreement: a waiting entry must have @p pending > 0,
     *  a live arm strictly after @p now, sit in the ready set (a
     *  mid-scan wakeup older than the Phase-A cursor is revisited
     *  next cycle), or be parked. */
    static std::optional<AuditViolation>
    checkReadyAgreement(SeqNum seq, unsigned pending, Cycle armed_cycle,
                        Cycle now, bool parked, bool in_ready_set);

    // --- Core hooks (friend access; defined in the .cc) -------------

    /** End-of-cycle sweep: structure order, pending counts, liveness. */
    void onCycleEnd(const OooCore &core);
    /** Issue-time checks for one granted candidate. */
    void onIssue(const OooCore &core, SeqNum seq);
    /** EGPW grant-time check (called before the unit is booked). */
    void onEgpwGrant(const OooCore &core, SeqNum seq,
                     unsigned free_units);

  private:
    /** Panic with the audit tag if @p v holds a violation. */
    static void report(const std::optional<AuditViolation> &v);

    std::vector<SeqNum> rs_scratch_;
    std::vector<SeqNum> order_scratch_;
};

} // namespace redsoc

#endif // REDSOC_CORE_INVARIANT_AUDIT_H

/**
 * @file
 * Register alias table. Besides the usual youngest-writer mapping
 * used to derive true dependencies, the RAT carries the slack-aware
 * metadata of Sec.IV-C: each rename reads its parents' EX-TIME and
 * (in the Operational design) the parents' own predicted-last-parent,
 * which becomes the child's predicted last *grandparent* tag.
 */

#ifndef REDSOC_CORE_RAT_H
#define REDSOC_CORE_RAT_H

#include <array>

#include "isa/inst.h"

namespace redsoc {

class Rat
{
  public:
    Rat();

    /** Youngest in-flight writer of @p reg, or kNoSeq. */
    SeqNum writer(RegIdx reg) const;

    /** Record @p seq as the writer of @p reg (rename). */
    void setWriter(RegIdx reg, SeqNum seq);

    /** Forget writers (used between independent runs). */
    void reset();

  private:
    std::array<SeqNum, kNumRegs> writer_;
};

} // namespace redsoc

#endif // REDSOC_CORE_RAT_H

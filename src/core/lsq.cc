#include "core/lsq.h"

#include "common/logging.h"

namespace redsoc {

Lsq::Lsq(unsigned capacity) : capacity_(capacity)
{
    fatal_if(capacity == 0, "zero-entry LSQ");
}

void
Lsq::dispatch(SeqNum seq, bool is_store)
{
    panic_if(full(), "dispatch into full LSQ");
    panic_if(!entries_.empty() && seq <= entries_.back().seq,
             "out-of-order LSQ dispatch");
    entries_.push_back(Entry{seq, is_store});
}

Lsq::Entry *
Lsq::find(SeqNum seq)
{
    for (Entry &e : entries_)
        if (e.seq == seq)
            return &e;
    return nullptr;
}

const Lsq::Entry *
Lsq::find(SeqNum seq) const
{
    return const_cast<Lsq *>(this)->find(seq);
}

void
Lsq::resolve(SeqNum seq, Addr addr, unsigned size, Tick complete)
{
    Entry *e = find(seq);
    panic_if(!e, "resolve of op not in LSQ");
    e->resolved = true;
    e->addr = addr;
    e->size = size;
    e->complete = complete;
}

void
Lsq::setComplete(SeqNum seq, Tick complete)
{
    Entry *e = find(seq);
    panic_if(!e, "setComplete of op not in LSQ");
    e->complete = complete;
}

bool
Lsq::olderStoreUnresolved(SeqNum seq) const
{
    for (const Entry &e : entries_) {
        if (e.seq >= seq)
            break;
        if (e.is_store && !e.resolved)
            return true;
    }
    return false;
}

std::optional<Lsq::ForwardResult>
Lsq::forwardFrom(SeqNum load_seq, Addr addr, unsigned size) const
{
    // Scan youngest-older-store first so the latest producer wins.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const Entry &e = *it;
        if (e.seq >= load_seq || !e.is_store || !e.resolved)
            continue;
        const Addr lo = std::max(e.addr, addr);
        const Addr hi = std::min(e.addr + e.size, addr + size);
        if (lo >= hi)
            continue; // no overlap
        ForwardResult result;
        result.store_complete = e.complete;
        result.full_cover = e.addr <= addr && e.addr + e.size >= addr + size;
        result.partial = !result.full_cover;
        return result;
    }
    return std::nullopt;
}

void
Lsq::commit(SeqNum seq)
{
    panic_if(entries_.empty() || entries_.front().seq != seq,
             "out-of-order LSQ commit");
    entries_.pop_front();
}

} // namespace redsoc

#include "core/lsq.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

Lsq::Lsq(unsigned capacity) : capacity_(capacity)
{
    fatal_if(capacity == 0, "zero-entry LSQ");
}

void
Lsq::dispatch(SeqNum seq, bool is_store)
{
    panic_if(full(), "dispatch into full LSQ");
    panic_if(!entries_.empty() && seq <= entries_.back().seq,
             "out-of-order LSQ dispatch");
    entries_.push_back(Entry{seq, is_store});
}

Lsq::Entry *
Lsq::find(SeqNum seq)
{
    // dispatch() asserts program order, so the deque is sorted by
    // sequence number: resolve/setComplete lookups are O(log n).
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), seq,
        [](const Entry &e, SeqNum s) { return e.seq < s; });
    if (it == entries_.end() || it->seq != seq)
        return nullptr;
    return &*it;
}

const Lsq::Entry *
Lsq::find(SeqNum seq) const
{
    return const_cast<Lsq *>(this)->find(seq);
}

void
Lsq::resolve(SeqNum seq, Addr addr, unsigned size, Tick complete)
{
    Entry *e = find(seq);
    panic_if(!e, "resolve of op not in LSQ");
    e->resolved = true;
    e->addr = addr;
    e->size = size;
    e->complete = complete;
}

void
Lsq::setComplete(SeqNum seq, Tick complete)
{
    Entry *e = find(seq);
    panic_if(!e, "setComplete of op not in LSQ");
    e->complete = complete;
}

bool
Lsq::olderStoreUnresolved(SeqNum seq) const
{
    for (const Entry &e : entries_) {
        if (e.seq >= seq)
            break;
        if (e.is_store && !e.resolved)
            return true;
    }
    return false;
}

SeqNum
Lsq::youngestUnresolvedStoreBefore(SeqNum seq) const
{
    SeqNum found = kNoSeq;
    for (const Entry &e : entries_) {
        if (e.seq >= seq)
            break;
        if (e.is_store && !e.resolved)
            found = e.seq; // program order: the last hit is youngest
    }
    return found;
}

std::optional<Lsq::ForwardResult>
Lsq::forwardFrom(SeqNum load_seq, Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 64,
             "load size outside the byte-mask window");
    // Youngest-older-store first: a younger store's bytes shadow an
    // older store's, so each store contributes only the load bytes
    // still uncovered when the scan reaches it. The load's timing
    // must honor *every* contributing store — waiting only on the
    // youngest overlap would read bytes a still-pending older store
    // owns.
    const u64 all =
        size >= 64 ? ~u64{0} : (u64{1} << size) - 1;
    u64 need = all;
    unsigned contributors = 0;
    bool single_store_covers = false;
    Tick complete = 0;
    for (auto it = entries_.rbegin();
         it != entries_.rend() && need != 0; ++it) {
        const Entry &e = *it;
        if (e.seq >= load_seq || !e.is_store || !e.resolved)
            continue;
        const Addr lo = std::max(e.addr, addr);
        const Addr hi = std::min(e.addr + e.size, addr + size);
        if (lo >= hi)
            continue; // no overlap
        const u64 span = hi - lo;
        const u64 mask =
            (span >= 64 ? ~u64{0} : (u64{1} << span) - 1) << (lo - addr);
        if ((mask & need) == 0)
            continue; // fully shadowed by younger stores
        need &= ~mask;
        ++contributors;
        if (contributors == 1 && mask == all)
            single_store_covers = true;
        complete = std::max(complete, e.complete);
    }
    if (contributors == 0)
        return std::nullopt;
    ForwardResult result;
    result.full_cover = single_store_covers;
    result.partial = !result.full_cover;
    result.store_complete = complete;
    return result;
}

void
Lsq::seqs(std::vector<SeqNum> &out) const
{
    out.clear();
    for (const Entry &e : entries_)
        out.push_back(e.seq);
}

void
Lsq::commit(SeqNum seq)
{
    panic_if(entries_.empty() || entries_.front().seq != seq,
             "out-of-order LSQ commit");
    entries_.pop_front();
}

} // namespace redsoc

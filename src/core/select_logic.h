/**
 * @file
 * Conventional N:M select arbitration (Fig.9.a): each entry carries a
 * priority mask whose bit i indicates "entry i is older than me"; an
 * awake entry is granted when no older entry is also awake. M grants
 * are produced by repeated arbitration with granted entries removed
 * from the wake-up array.
 */

#ifndef REDSOC_CORE_SELECT_LOGIC_H
#define REDSOC_CORE_SELECT_LOGIC_H

#include <vector>

#include "common/types.h"

namespace redsoc {

class SelectArbiter
{
  public:
    /** @param entries table size (<= 64). */
    explicit SelectArbiter(unsigned entries);

    /**
     * Install an entry's priority mask. Bit i of @p older_mask set
     * means entry i has priority over this entry.
     */
    void setMask(unsigned idx, u64 older_mask);

    /**
     * Build masks for age order: @p age_rank[i] is entry i's age
     * (0 = oldest = highest priority).
     */
    void setAgeOrder(const std::vector<unsigned> &age_rank);

    /**
     * Arbitrate: grant up to @p max_grants awake entries in priority
     * order. @p wakeup bit i = entry i requests.
     * @return granted entry indices, highest priority first.
     */
    std::vector<unsigned> arbitrate(u64 wakeup,
                                    unsigned max_grants) const;

    unsigned entries() const { return entries_; }

  protected:
    /** One arbitration round: highest-priority awake entry or -1. */
    int grantOne(u64 wakeup, const std::vector<u64> &masks) const;

    unsigned entries_;
    std::vector<u64> masks_;
};

} // namespace redsoc

#endif // REDSOC_CORE_SELECT_LOGIC_H

/**
 * @file
 * Unified load/store queue: occupancy, conservative load ordering
 * (loads issue only after all older store addresses are resolved)
 * and store-to-load forwarding.
 */

#ifndef REDSOC_CORE_LSQ_H
#define REDSOC_CORE_LSQ_H

#include <deque>
#include <optional>

#include "common/types.h"

namespace redsoc {

class Lsq
{
  public:
    explicit Lsq(unsigned capacity);

    bool full() const { return entries_.size() >= capacity_; }
    size_t size() const { return entries_.size(); }

    /** Allocate an entry at dispatch (program order). */
    void dispatch(SeqNum seq, bool is_store);

    /** Record the resolved address/size at issue. */
    void resolve(SeqNum seq, Addr addr, unsigned size, Tick complete);

    /** Update a resolved entry's completion time. */
    void setComplete(SeqNum seq, Tick complete);

    /**
     * True if any store older than @p seq has an unresolved address
     * (the conservative ordering gate for load issue).
     */
    bool olderStoreUnresolved(SeqNum seq) const;

    struct ForwardResult
    {
        bool full_cover = false; ///< store data fully covers the load
        bool partial = false;    ///< overlap without full cover
        Tick store_complete = 0; ///< producing store's completion
    };

    /**
     * Search older stores (youngest first) for one overlapping
     * [addr, addr+size). Empty result if none overlap.
     */
    std::optional<ForwardResult>
    forwardFrom(SeqNum load_seq, Addr addr, unsigned size) const;

    /** Release the entry at commit. */
    void commit(SeqNum seq);

    u64 forwards() const { return forwards_; }
    void noteForward() { ++forwards_; }

  private:
    struct Entry
    {
        SeqNum seq;
        bool is_store;
        bool resolved = false;
        Addr addr = 0;
        unsigned size = 0;
        Tick complete = 0;
    };

    const Entry *find(SeqNum seq) const;
    Entry *find(SeqNum seq);

    unsigned capacity_;
    std::deque<Entry> entries_; ///< program order
    u64 forwards_ = 0;
};

} // namespace redsoc

#endif // REDSOC_CORE_LSQ_H

/**
 * @file
 * Unified load/store queue: occupancy, conservative load ordering
 * (loads issue only after all older store addresses are resolved)
 * and store-to-load forwarding.
 */

#ifndef REDSOC_CORE_LSQ_H
#define REDSOC_CORE_LSQ_H

#include <deque>
#include <optional>
#include <vector>

#include "common/types.h"

namespace redsoc {

class Lsq
{
  public:
    explicit Lsq(unsigned capacity);

    bool full() const { return entries_.size() >= capacity_; }
    size_t size() const { return entries_.size(); }

    /** Allocate an entry at dispatch (program order). */
    void dispatch(SeqNum seq, bool is_store);

    /** Record the resolved address/size at issue. */
    void resolve(SeqNum seq, Addr addr, unsigned size, Tick complete);

    /** Update a resolved entry's completion time. */
    void setComplete(SeqNum seq, Tick complete);

    /**
     * True if any store older than @p seq has an unresolved address
     * (the conservative ordering gate for load issue).
     */
    bool olderStoreUnresolved(SeqNum seq) const;

    /**
     * The youngest store older than @p seq whose address is still
     * unresolved, or kNoSeq when none. The event kernel parks a
     * blocked load on one concrete blocker and re-evaluates only
     * when *that* store resolves (re-parking if another older store
     * is still pending), instead of re-checking every parked load on
     * every store issue.
     */
    SeqNum youngestUnresolvedStoreBefore(SeqNum seq) const;

    struct ForwardResult
    {
        bool full_cover = false; ///< one store sources every byte
        bool partial = false;    ///< overlap without single-store cover
        /** Max completion over every *contributing* store (a store
         *  contributes only the load bytes no younger store covers). */
        Tick store_complete = 0;
    };

    /**
     * Byte-accurate store-to-load forwarding query over the resolved
     * older stores, youngest first (DESIGN.md §11.4):
     *
     *  - a store contributes only the load bytes not covered by a
     *    younger store; a fully shadowed store has no timing effect;
     *  - full_cover: exactly one store contributes and it covers the
     *    whole load — its data can be forwarded;
     *  - partial: any other overlap (one partial store, or several
     *    stores jointly sourcing the load). The load must wait for
     *    every contributing store (store_complete is their max) and
     *    then read the cache.
     *
     * Empty result if no older resolved store overlaps the load.
     */
    std::optional<ForwardResult>
    forwardFrom(SeqNum load_seq, Addr addr, unsigned size) const;

    /** Sequence numbers in queue (program) order, into @p out
     *  (cleared first): invariant audit / tests. */
    void seqs(std::vector<SeqNum> &out) const;

    /** Release the entry at commit. */
    void commit(SeqNum seq);

    u64 forwards() const { return forwards_; }
    void noteForward() { ++forwards_; }

  private:
    struct Entry
    {
        SeqNum seq;
        bool is_store;
        bool resolved = false;
        Addr addr = 0;
        unsigned size = 0;
        Tick complete = 0;
    };

    const Entry *find(SeqNum seq) const;
    Entry *find(SeqNum seq);

    unsigned capacity_;
    std::deque<Entry> entries_; ///< program order
    u64 forwards_ = 0;
};

} // namespace redsoc

#endif // REDSOC_CORE_LSQ_H

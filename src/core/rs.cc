#include "core/rs.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

ReservationStations::ReservationStations(unsigned capacity)
    : capacity_(capacity)
{
    fatal_if(capacity == 0, "zero-entry reservation stations");
    slots_.reserve(2 * capacity);
}

void
ReservationStations::insert(SeqNum seq)
{
    panic_if(full(), "insert into full RS");
    panic_if(seq & kDeadBit, "sequence number overflows the RS");
    panic_if(!slots_.empty() && seq <= (slots_.back() & ~kDeadBit),
             "RS inserts must be in program order");
    slots_.push_back(seq);
    ++live_;
}

void
ReservationStations::remove(SeqNum seq)
{
    // Slot values are immutable and ascending (tombstoning only sets
    // the top bit), so the position is a binary search away.
    auto it = std::lower_bound(slots_.begin(), slots_.end(), seq,
                               [](SeqNum slot, SeqNum want) {
                                   return (slot & ~kDeadBit) < want;
                               });
    panic_if(it == slots_.end() || (*it & ~kDeadBit) != seq ||
                 (*it & kDeadBit),
             "remove of op not in RS");
    *it |= kDeadBit;
    --live_;
    // Amortized sweep: at most one compaction per live_-many removes,
    // so remove() stays O(log n) amortized.
    if (slots_.size() - live_ > live_ + 8)
        compact();
}

void
ReservationStations::clear()
{
    slots_.clear();
    live_ = 0;
}

void
ReservationStations::compact()
{
    slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                [](SeqNum slot) {
                                    return (slot & kDeadBit) != 0;
                                }),
                 slots_.end());
}

void
ReservationStations::snapshot(std::vector<SeqNum> &out) const
{
    out.clear();
    for (SeqNum slot : slots_)
        if (!(slot & kDeadBit))
            out.push_back(slot);
}

std::vector<SeqNum>
ReservationStations::entries() const
{
    std::vector<SeqNum> out;
    out.reserve(live_);
    snapshot(out);
    return out;
}

void
ReadySet::insert(SeqNum seq, FuPoolKind pool)
{
    auto &v = pools_[static_cast<size_t>(pool)];
    const auto it = std::lower_bound(v.begin(), v.end(), seq);
    if (it != v.end() && *it == seq)
        return; // already present
    v.insert(it, seq);
    ++size_;
}

void
ReadySet::erase(SeqNum seq, FuPoolKind pool)
{
    auto &v = pools_[static_cast<size_t>(pool)];
    const auto it = std::lower_bound(v.begin(), v.end(), seq);
    if (it == v.end() || *it != seq)
        return;
    v.erase(it);
    --size_;
}

SeqNum
ReadySet::nextAtOrAfter(SeqNum seq) const
{
    SeqNum best = kNoSeq;
    for (const auto &v : pools_) {
        const auto it = std::lower_bound(v.begin(), v.end(), seq);
        if (it != v.end() && *it < best)
            best = *it;
    }
    return best;
}

SeqNum
ReadySet::nextAtOrAfter(SeqNum seq, FuPoolKind pool) const
{
    const auto &v = pools_[static_cast<size_t>(pool)];
    const auto it = std::lower_bound(v.begin(), v.end(), seq);
    return it == v.end() ? kNoSeq : *it;
}

void
ReadySet::clear()
{
    for (auto &pool : pools_)
        pool.clear();
    size_ = 0;
}

} // namespace redsoc

#include "core/rs.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

ReservationStations::ReservationStations(unsigned capacity)
    : capacity_(capacity)
{
    fatal_if(capacity == 0, "zero-entry reservation stations");
}

void
ReservationStations::insert(SeqNum seq)
{
    panic_if(full(), "insert into full RS");
    panic_if(!entries_.empty() && seq <= entries_.back(),
             "RS inserts must be in program order");
    entries_.push_back(seq);
}

void
ReservationStations::remove(SeqNum seq)
{
    auto it = std::find(entries_.begin(), entries_.end(), seq);
    panic_if(it == entries_.end(), "remove of op not in RS");
    entries_.erase(it);
}

} // namespace redsoc

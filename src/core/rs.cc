#include "core/rs.h"

#include <algorithm>

#include "common/logging.h"

namespace redsoc {

ReservationStations::ReservationStations(unsigned capacity)
    : capacity_(capacity)
{
    fatal_if(capacity == 0, "zero-entry reservation stations");
    slots_.reserve(2 * capacity);
}

void
ReservationStations::insert(SeqNum seq)
{
    panic_if(full(), "insert into full RS");
    panic_if(seq & kDeadBit, "sequence number overflows the RS");
    panic_if(!slots_.empty() && seq <= (slots_.back() & ~kDeadBit),
             "RS inserts must be in program order");
    panic_if(open_scans_ != 0, "RS insert during an open scan");
    slots_.push_back(seq);
    ++live_;
}

void
ReservationStations::remove(SeqNum seq)
{
    // Slot values are immutable and ascending (tombstoning only sets
    // the top bit), so the position is a binary search away.
    auto it = std::lower_bound(slots_.begin(), slots_.end(), seq,
                               [](SeqNum slot, SeqNum want) {
                                   return (slot & ~kDeadBit) < want;
                               });
    panic_if(it == slots_.end() || (*it & ~kDeadBit) != seq ||
                 (*it & kDeadBit),
             "remove of op not in RS");
    *it |= kDeadBit;
    --live_;
    // Amortized sweep: at most one compaction per live_-many removes,
    // so remove() stays O(log n) amortized. Deferred while a scan
    // walks the slots in place (compaction moves them).
    if (slots_.size() - live_ > live_ + 8) {
        if (open_scans_ != 0)
            compact_pending_ = true;
        else
            compact();
    }
}

void
ReservationStations::clear()
{
    slots_.clear();
    live_ = 0;
    compact_pending_ = false;
}

void
ReservationStations::compact()
{
    slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                [](SeqNum slot) {
                                    return (slot & kDeadBit) != 0;
                                }),
                 slots_.end());
}

void
ReservationStations::snapshot(std::vector<SeqNum> &out) const
{
    out.clear();
    for (SeqNum slot : slots_)
        if (!(slot & kDeadBit))
            out.push_back(slot);
}

std::vector<SeqNum>
ReservationStations::entries() const
{
    std::vector<SeqNum> out;
    out.reserve(live_);
    snapshot(out);
    return out;
}

void
ReadySet::configure(unsigned window)
{
    // Live seqs span at most `window`, i.e. window/64 + 1 consecutive
    // occupancy words; two extra slots guarantee distinct ring slots
    // for every live word, so claimWord() never grows in steady state.
    const size_t words =
        std::bit_ceil(static_cast<size_t>(window) / 64 + 3);
    bits_.assign(words, 0);
    word_id_.assign(words, kNoWord);
    mask_ = words - 1;
    size_ = 0;
    min_word_ = kNoWord;
    max_word_ = 0;
}

size_t
ReadySet::claimWord(u64 w)
{
    for (;;) {
        const size_t slot = slotOf(w);
        if (word_id_[slot] == w)
            return slot;
        if (word_id_[slot] == kNoWord || bits_[slot] == 0) {
            // Empty or fully-drained slot: lazily recycle it.
            word_id_[slot] = w;
            bits_[slot] = 0;
            return slot;
        }
        grow(); // live collision: the window underestimated the span
    }
}

void
ReadySet::grow()
{
    // Cold path (never taken when configure() saw the true ROB
    // window): rebuild at the smallest power-of-two size where no two
    // live words collide.
    std::vector<std::pair<u64, u64>> live;
    for (size_t i = 0; i < bits_.size(); ++i)
        if (word_id_[i] != kNoWord && bits_[i] != 0)
            live.emplace_back(word_id_[i], bits_[i]);

    size_t words = bits_.size();
    for (bool ok = false; !ok;) {
        words *= 2;
        ok = true;
        std::vector<bool> used(words, false);
        for (const auto &[w, b] : live) {
            const size_t slot = static_cast<size_t>(w) & (words - 1);
            if (used[slot]) {
                ok = false;
                break;
            }
            used[slot] = true;
        }
    }

    bits_.assign(words, 0);
    word_id_.assign(words, kNoWord);
    mask_ = words - 1;
    for (const auto &[w, b] : live) {
        const size_t slot = slotOf(w);
        word_id_[slot] = w;
        bits_[slot] = b;
    }
}

void
ReadySet::insert(SeqNum seq)
{
    const u64 w = seq >> 6;
    const size_t slot = claimWord(w);
    const u64 bit = u64{1} << (seq & 63);
    if (bits_[slot] & bit)
        return; // already present
    bits_[slot] |= bit;
    ++size_;
    min_word_ = std::min(min_word_, w);
    max_word_ = std::max(max_word_, w);
}

void
ReadySet::erase(SeqNum seq)
{
    const u64 w = seq >> 6;
    const size_t slot = slotOf(w);
    if (word_id_[slot] != w)
        return;
    const u64 bit = u64{1} << (seq & 63);
    if (!(bits_[slot] & bit))
        return;
    bits_[slot] &= ~bit;
    --size_;
    if (size_ == 0) {
        // The per-cycle drain discipline: an emptied set resets its
        // live-word bounds, keeping every scan's span tight.
        min_word_ = kNoWord;
        max_word_ = 0;
    }
}

bool
ReadySet::contains(SeqNum seq) const
{
    const u64 w = seq >> 6;
    const size_t slot = slotOf(w);
    return word_id_[slot] == w &&
           (bits_[slot] & (u64{1} << (seq & 63))) != 0;
}

SeqNum
ReadySet::nextAtOrAfter(SeqNum seq)
{
    if (size_ == 0)
        return kNoSeq;
    const u64 first = seq >> 6;
    // When the walk starts at (or below) the conservative lower
    // bound, every empty word it crosses is provably dead: advance
    // min_word_ past it so entries resident across cycles (the
    // FU-denied retention set) never re-pay the scan-in. A word that
    // only *looks* empty under the first-word mask still holds live
    // older bits, so the bound may move onto it but not past it.
    bool from_min = first <= min_word_;
    for (u64 w = std::max(first, min_word_); w <= max_word_; ++w) {
        const size_t slot = slotOf(w);
        if (word_id_[slot] != w || bits_[slot] == 0) {
            if (from_min)
                min_word_ = w + 1;
            continue;
        }
        if (from_min) {
            // First live word: the bound lands here and stops — bits
            // masked off below @p seq are still live (entries older
            // than the cursor stay resident across Phase-A passes).
            min_word_ = w;
            from_min = false;
        }
        u64 m = bits_[slot];
        if (w == first)
            m &= ~u64{0} << (seq & 63);
        if (m)
            return w * 64 + static_cast<u64>(std::countr_zero(m));
    }
    return kNoSeq;
}

SeqNum
ReadySet::popAtOrAfter(SeqNum seq)
{
    if (size_ == 0)
        return kNoSeq;
    const u64 first = seq >> 6;
    bool from_min = first <= min_word_; // see nextAtOrAfter
    for (u64 w = std::max(first, min_word_); w <= max_word_; ++w) {
        const size_t slot = slotOf(w);
        if (word_id_[slot] != w || bits_[slot] == 0) {
            if (from_min)
                min_word_ = w + 1;
            continue;
        }
        if (from_min) {
            min_word_ = w;
            from_min = false;
        }
        u64 m = bits_[slot];
        if (w == first)
            m &= ~u64{0} << (seq & 63);
        if (!m)
            continue;
        const unsigned b = static_cast<unsigned>(std::countr_zero(m));
        bits_[slot] &= ~(u64{1} << b);
        --size_;
        if (size_ == 0) {
            min_word_ = kNoWord;
            max_word_ = 0;
        }
        return w * 64 + b;
    }
    return kNoSeq;
}

void
ReadySet::clear()
{
    std::fill(bits_.begin(), bits_.end(), 0);
    std::fill(word_id_.begin(), word_id_.end(), kNoWord);
    size_ = 0;
    min_word_ = kNoWord;
    max_word_ = 0;
}

} // namespace redsoc

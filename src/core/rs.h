/**
 * @file
 * Reservation-station pool: capacity-bounded, age-ordered container
 * of waiting operations. Entries are allocated at dispatch and freed
 * at issue. The slack-aware RSE fields of Figs.7-8 (parent/
 * grandparent tags, EX-TIME, COMP-INST) live in the core's per-op
 * scheduling state; this class owns occupancy and ordering.
 *
 * Removal is the scheduler's hot path (every issued op frees its
 * entry mid-scan), so it is O(log n): sequence numbers only ever
 * arrive in program order, which keeps the slot array sorted, and a
 * freed slot is tombstoned in place rather than erased from the
 * middle. Tombstones are swept by an amortized compaction that
 * trivially preserves oldest-first age order.
 */

#ifndef REDSOC_CORE_RS_H
#define REDSOC_CORE_RS_H

#include <array>
#include <cstddef>
#include <vector>

#include "common/types.h"
#include "core/fu_pool.h"

namespace redsoc {

class ReservationStations
{
  public:
    explicit ReservationStations(unsigned capacity);

    bool full() const { return size() >= capacity_; }
    bool empty() const { return live_ == 0; }
    size_t size() const { return live_; }
    unsigned capacity() const { return capacity_; }

    /** Allocate an entry (program order = age order). */
    void insert(SeqNum seq);

    /** Free an entry at issue (O(log n): tombstone + amortized sweep). */
    void remove(SeqNum seq);

    /** Drop all slots, tombstoned or not. A drained pool can still
     *  hold up to a sweep's worth of tombstones whose raw values
     *  would trip the program-order assert on the next run; core
     *  reset clears them. */
    void clear();

    /**
     * Copy the waiting ops, oldest first, into @p out (cleared
     * first). The select loops snapshot into a reusable buffer so
     * they can issue (and thus remove) entries mid-scan.
     */
    void snapshot(std::vector<SeqNum> &out) const;

    /** Waiting ops, oldest first (convenience/tests). */
    std::vector<SeqNum> entries() const;

  private:
    void compact();

    /** Tombstone marker: real sequence numbers never set the top bit
     *  (a trace would need 2^63 dynamic ops). */
    static constexpr SeqNum kDeadBit = SeqNum{1} << 63;

    unsigned capacity_;
    std::vector<SeqNum> slots_; ///< ascending seqs; dead = top bit set
    size_t live_ = 0;
};

/**
 * Age-ordered per-pool candidate sets for the event-driven scheduler
 * kernel (the "ready sets" of the Fig.7 RSE wakeup array, split by
 * execution-port pool). Broadcast wakeups insert newly-woken entries;
 * the select loop walks candidates in global age order via a cursor,
 * which stays valid across mid-iteration insertions because a wakeup
 * can only insert a consumer younger than the op being granted.
 */
class ReadySet
{
  public:
    static constexpr size_t kNumPools =
        static_cast<size_t>(FuPoolKind::NUM);

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    /** Insert @p seq into the @p pool set (idempotent). */
    void insert(SeqNum seq, FuPoolKind pool);

    /** Remove @p seq from the @p pool set (no-op if absent). */
    void erase(SeqNum seq, FuPoolKind pool);

    /** Oldest candidate with seq >= @p seq across all pools, or
     *  kNoSeq when none (the global age-order merge point). */
    SeqNum nextAtOrAfter(SeqNum seq) const;

    /** Oldest candidate of one pool with seq >= @p seq, or kNoSeq. */
    SeqNum nextAtOrAfter(SeqNum seq, FuPoolKind pool) const;

    void clear();

  private:
    /** Sorted flat vectors: the sets hold at most an RS worth of
     *  entries (tens), where binary search + memmove beat node-based
     *  containers and never allocate in steady state. */
    std::array<std::vector<SeqNum>, kNumPools> pools_;
    size_t size_ = 0;
};

} // namespace redsoc

#endif // REDSOC_CORE_RS_H

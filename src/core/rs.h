/**
 * @file
 * Reservation-station pool: capacity-bounded, age-ordered container
 * of waiting operations. Entries are allocated at dispatch and freed
 * at issue. The slack-aware RSE fields of Figs.7-8 (parent/
 * grandparent tags, EX-TIME, COMP-INST) live in the core's per-op
 * scheduling state; this class owns occupancy and ordering.
 *
 * Removal is the scheduler's hot path (every issued op frees its
 * entry mid-scan), so it is O(log n): sequence numbers only ever
 * arrive in program order, which keeps the slot array sorted, and a
 * freed slot is tombstoned in place rather than erased from the
 * middle. Tombstones are swept by an amortized compaction that
 * trivially preserves oldest-first age order.
 */

#ifndef REDSOC_CORE_RS_H
#define REDSOC_CORE_RS_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace redsoc {

class ReservationStations
{
  public:
    explicit ReservationStations(unsigned capacity);

    bool full() const { return size() >= capacity_; }
    bool empty() const { return live_ == 0; }
    size_t size() const { return live_; }
    unsigned capacity() const { return capacity_; }

    /** Allocate an entry (program order = age order). */
    void insert(SeqNum seq);

    /** Free an entry at issue (O(log n): tombstone + amortized sweep). */
    void remove(SeqNum seq);

    /**
     * Copy the waiting ops, oldest first, into @p out (cleared
     * first). The select loops snapshot into a reusable buffer so
     * they can issue (and thus remove) entries mid-scan.
     */
    void snapshot(std::vector<SeqNum> &out) const;

    /** Waiting ops, oldest first (convenience/tests). */
    std::vector<SeqNum> entries() const;

  private:
    void compact();

    /** Tombstone marker: real sequence numbers never set the top bit
     *  (a trace would need 2^63 dynamic ops). */
    static constexpr SeqNum kDeadBit = SeqNum{1} << 63;

    unsigned capacity_;
    std::vector<SeqNum> slots_; ///< ascending seqs; dead = top bit set
    size_t live_ = 0;
};

} // namespace redsoc

#endif // REDSOC_CORE_RS_H

/**
 * @file
 * Reservation-station pool: capacity-bounded, age-ordered container
 * of waiting operations. Entries are allocated at dispatch and freed
 * at issue. The slack-aware RSE fields of Figs.7-8 (parent/
 * grandparent tags, EX-TIME, COMP-INST) live in the core's per-op
 * scheduling state; this class owns occupancy and ordering.
 *
 * Removal is the scheduler's hot path (every issued op frees its
 * entry mid-scan), so it is O(log n): sequence numbers only ever
 * arrive in program order, which keeps the slot array sorted, and a
 * freed slot is tombstoned in place rather than erased from the
 * middle. Tombstones are swept by an amortized compaction that
 * trivially preserves oldest-first age order.
 */

#ifndef REDSOC_CORE_RS_H
#define REDSOC_CORE_RS_H

#include <bit>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/types.h"
#include "core/fu_pool.h"

namespace redsoc {

class ReservationStations
{
  public:
    explicit ReservationStations(unsigned capacity);

    bool full() const { return size() >= capacity_; }
    bool empty() const { return live_ == 0; }
    size_t size() const { return live_; }
    unsigned capacity() const { return capacity_; }

    /** Allocate an entry (program order = age order). */
    void insert(SeqNum seq);

    /** Free an entry at issue (O(log n): tombstone + amortized sweep). */
    void remove(SeqNum seq);

    /** Drop all slots, tombstoned or not. A drained pool can still
     *  hold up to a sweep's worth of tombstones whose raw values
     *  would trip the program-order assert on the next run; core
     *  reset clears them. */
    void clear();

    /**
     * Copy the waiting ops, oldest first, into @p out (cleared
     * first). The legacy scan kernel's select loops snapshot into a
     * reusable buffer so they can issue (and thus remove) entries
     * mid-scan; the oracle deliberately keeps this shape.
     */
    void snapshot(std::vector<SeqNum> &out) const;

    /** Waiting ops, oldest first (convenience/tests). */
    std::vector<SeqNum> entries() const;

    // --- Copy-free live-slot iteration ------------------------------
    //
    // The alternative to snapshot(): walk the slot array in place,
    // oldest first, skipping tombstones. Legal while entries are
    // being remove()d mid-walk because removal only sets the dead
    // bit; a ScanGuard defers the amortized compaction (which moves
    // slots) until every open scan closes. Insertions during a scan
    // remain illegal (the walkers run before dispatch each cycle).

    /** Raw slot count (live + tombstoned) for index-based walks. */
    size_t slotCount() const { return slots_.size(); }

    /** The live seq in slot @p i, or kNoSeq when tombstoned. */
    SeqNum liveAt(size_t i) const
    {
        const SeqNum slot = slots_[i];
        return (slot & kDeadBit) ? kNoSeq : slot;
    }

    /** RAII compaction deferral for in-place scans. */
    class ScanGuard
    {
      public:
        explicit ScanGuard(ReservationStations &rs) : rs_(rs)
        {
            ++rs_.open_scans_;
        }
        ~ScanGuard()
        {
            if (--rs_.open_scans_ == 0 && rs_.compact_pending_) {
                rs_.compact_pending_ = false;
                rs_.compact();
            }
        }
        ScanGuard(const ScanGuard &) = delete;
        ScanGuard &operator=(const ScanGuard &) = delete;

      private:
        ReservationStations &rs_;
    };

  private:
    void compact();

    /** Tombstone marker: real sequence numbers never set the top bit
     *  (a trace would need 2^63 dynamic ops). */
    static constexpr SeqNum kDeadBit = SeqNum{1} << 63;

    unsigned capacity_;
    std::vector<SeqNum> slots_; ///< ascending seqs; dead = top bit set
    size_t live_ = 0;
    unsigned open_scans_ = 0;   ///< live ScanGuards (defer compaction)
    bool compact_pending_ = false;
};

/**
 * The event-driven kernel's candidate set (the "ready set" of the
 * Fig.7 RSE wakeup array): a windowed ring of 64-bit occupancy words
 * indexed by sequence number. Wakeup inserts set one bit; the select
 * loop pops candidates in global age order with a word-at-a-time
 * count-trailing-zeros scan, which stays valid across mid-iteration
 * insertions because a wakeup can only insert a consumer younger
 * than the op being granted.
 *
 * The ring exploits the scheduler's windowing discipline: the live
 * seqs a set ever holds are RS residents, which span at most the ROB
 * window, so a ring of word slots tagged with their absolute word
 * index never aliases two live words. A tag mismatch on insert lazily
 * recycles the stale slot; a live collision (possible only if the
 * configured window was too small) grows the ring. Scans advance the
 * conservative lower bound past dead words, so FU-denied entries may
 * stay resident across cycles (Phase A retention) without the
 * emptied-set bound reset ever firing.
 */
class ReadySet
{
  public:
    ReadySet() { configure(kDefaultWindow); }

    /** Size the ring for an in-flight window of @p window seqs (the
     *  ROB bound). Clears the set. */
    void configure(unsigned window);

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    /** Insert @p seq (idempotent). */
    void insert(SeqNum seq);

    /** Remove @p seq (no-op if absent). */
    void erase(SeqNum seq);

    /** True iff @p seq is in the set. */
    bool contains(SeqNum seq) const;

    /** Oldest candidate with seq >= @p seq, or kNoSeq when none.
     *  Non-const: a walk that starts at the conservative lower bound
     *  advances it past provably-dead words (resident-set scans stay
     *  O(live span) even when the set never drains). */
    SeqNum nextAtOrAfter(SeqNum seq);

    /** nextAtOrAfter + erase fused into one word walk (the Phase-A /
     *  Phase-B pop). */
    SeqNum popAtOrAfter(SeqNum seq);

    void clear();

  private:
    static constexpr unsigned kDefaultWindow = 256;
    static constexpr u64 kNoWord = ~u64{0}; ///< empty-slot tag

    /** Slot index of absolute word @p w. */
    size_t slotOf(u64 w) const { return static_cast<size_t>(w) & mask_; }

    /** Ensure @p w owns its slot; grows the ring on a live collision. */
    size_t claimWord(u64 w);

    void grow();

    std::vector<u64> bits_;    ///< ring of 64-seq occupancy words
    std::vector<u64> word_id_; ///< absolute word index per slot
    u64 mask_ = 0;             ///< bits_.size() - 1 (power of two)
    size_t size_ = 0;
    u64 min_word_ = kNoWord;   ///< conservative live-word bounds
    u64 max_word_ = 0;
};

// One cache line holds eight ready-set words = a 512-seq window: the
// whole set is a handful of lines for any realistic ROB.
static_assert(sizeof(u64) == 8 && alignof(u64) == 8,
              "ready-set occupancy lane must be 8-byte words");

} // namespace redsoc

#endif // REDSOC_CORE_RS_H

/**
 * @file
 * Reservation-station pool: capacity-bounded, age-ordered container
 * of waiting operations. Entries are allocated at dispatch and freed
 * at issue. The slack-aware RSE fields of Figs.7-8 (parent/
 * grandparent tags, EX-TIME, COMP-INST) live in the core's per-op
 * scheduling state; this class owns occupancy and ordering.
 */

#ifndef REDSOC_CORE_RS_H
#define REDSOC_CORE_RS_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace redsoc {

class ReservationStations
{
  public:
    explicit ReservationStations(unsigned capacity);

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Allocate an entry (program order = age order). */
    void insert(SeqNum seq);

    /** Free an entry at issue. */
    void remove(SeqNum seq);

    /** Waiting ops, oldest first. */
    const std::vector<SeqNum> &entries() const { return entries_; }

  private:
    unsigned capacity_;
    std::vector<SeqNum> entries_;
};

} // namespace redsoc

#endif // REDSOC_CORE_RS_H

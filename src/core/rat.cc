#include "core/rat.h"

#include "common/logging.h"

namespace redsoc {

Rat::Rat()
{
    reset();
}

SeqNum
Rat::writer(RegIdx reg) const
{
    panic_if(reg >= kNumRegs, "RAT index out of range");
    return writer_[reg];
}

void
Rat::setWriter(RegIdx reg, SeqNum seq)
{
    panic_if(reg >= kNumRegs, "RAT index out of range");
    panic_if(reg == kZeroReg, "renaming the zero register");
    writer_[reg] = seq;
}

void
Rat::reset()
{
    writer_.fill(kNoSeq);
}

} // namespace redsoc

#include "core/invariant_audit.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "core/ooo_core.h"

namespace redsoc {

const char *
invariantAuditName(InvariantAudit kind)
{
    switch (kind) {
      case InvariantAudit::RsAgeOrder: return "rs-age-order";
      case InvariantAudit::RsPendingCount: return "rs-pending-count";
      case InvariantAudit::RobProgramOrder: return "rob-program-order";
      case InvariantAudit::LsqProgramOrder: return "lsq-program-order";
      case InvariantAudit::CiRange: return "ci-range";
      case InvariantAudit::EgpwLeftoverSlot: return "egpw-leftover-slot";
      case InvariantAudit::TransparentLink: return "transparent-link";
      case InvariantAudit::ReadyRsAgreement:
        return "ready-rs-agreement";
      case InvariantAudit::NUM: break;
    }
    return "?";
}

bool
InvariantAuditor::enabledFromEnv()
{
    const char *v = std::getenv("REDSOC_AUDIT");
    return v && *v && std::string(v) != "0";
}

namespace {

AuditViolation
make(InvariantAudit kind, const std::ostringstream &os)
{
    return AuditViolation{kind, os.str()};
}

} // namespace

std::optional<AuditViolation>
InvariantAuditor::checkAgeOrder(const std::vector<SeqNum> &rs_entries)
{
    for (size_t i = 1; i < rs_entries.size(); ++i) {
        if (rs_entries[i - 1] >= rs_entries[i]) {
            std::ostringstream os;
            os << "RS slots out of age order: slot " << i - 1
               << " holds seq " << rs_entries[i - 1] << " >= slot " << i
               << " seq " << rs_entries[i];
            return make(InvariantAudit::RsAgeOrder, os);
        }
    }
    return std::nullopt;
}

std::optional<AuditViolation>
InvariantAuditor::checkPendingCount(SeqNum seq, unsigned recorded,
                                    unsigned recounted)
{
    if (recorded == recounted)
        return std::nullopt;
    std::ostringstream os;
    os << "op " << seq << " records " << recorded
       << " pending wakeups but " << recounted
       << " distinct producers are still in the RS";
    return make(InvariantAudit::RsPendingCount, os);
}

std::optional<AuditViolation>
InvariantAuditor::checkProgramOrder(InvariantAudit which,
                                    const std::vector<SeqNum> &order)
{
    panic_if(which != InvariantAudit::RobProgramOrder &&
                 which != InvariantAudit::LsqProgramOrder,
             "checkProgramOrder on non-order invariant");
    const char *what =
        which == InvariantAudit::RobProgramOrder ? "ROB" : "LSQ";
    for (size_t i = 1; i < order.size(); ++i) {
        if (order[i - 1] >= order[i]) {
            std::ostringstream os;
            os << what << " violates program order: entry " << i - 1
               << " holds seq " << order[i - 1] << " >= entry " << i
               << " seq " << order[i];
            return make(which, os);
        }
    }
    return std::nullopt;
}

std::optional<AuditViolation>
InvariantAuditor::checkCiRange(SeqNum seq, Tick ci,
                               Tick ticks_per_cycle)
{
    if (ci < ticks_per_cycle)
        return std::nullopt;
    std::ostringstream os;
    os << "op " << seq << " has completion instant " << ci
       << " outside [0, " << ticks_per_cycle << ")";
    return make(InvariantAudit::CiRange, os);
}

std::optional<AuditViolation>
InvariantAuditor::checkEgpwLeftover(SeqNum seq, unsigned free_units)
{
    if (free_units > 0)
        return std::nullopt;
    std::ostringstream os;
    os << "EGPW grant for op " << seq
       << " with no leftover FU slot (skewed select books "
          "conventional grants first)";
    return make(InvariantAudit::EgpwLeftoverSlot, os);
}

std::optional<AuditViolation>
InvariantAuditor::checkTransparentLink(SeqNum seq, SeqNum producer,
                                       Tick producer_complete,
                                       Tick start_tick, Tick ci)
{
    std::ostringstream os;
    if (producer == kNoSeq) {
        os << "transparent op " << seq << " names no producer";
        return make(InvariantAudit::TransparentLink, os);
    }
    if (producer_complete != start_tick) {
        os << "transparent op " << seq << " starts at tick "
           << start_tick << " but its latched producer " << producer
           << " wrote back at tick " << producer_complete;
        return make(InvariantAudit::TransparentLink, os);
    }
    if (ci == 0) {
        os << "transparent op " << seq << " starts on a cycle boundary "
           << "(tick " << start_tick
           << "): nothing was recycled mid-cycle";
        return make(InvariantAudit::TransparentLink, os);
    }
    return std::nullopt;
}

std::optional<AuditViolation>
InvariantAuditor::checkReadyAgreement(SeqNum seq, unsigned pending,
                                      Cycle armed_cycle, Cycle now,
                                      bool parked, bool in_ready_set)
{
    if (pending > 0 || parked || in_ready_set)
        return std::nullopt;
    if (armed_cycle != kNeverArmed && armed_cycle > now)
        return std::nullopt;
    std::ostringstream os;
    os << "waiting op " << seq << " is unreachable at end of cycle "
       << now << ": no pending wakeup, not parked, not in a ready "
       << "set, ";
    if (armed_cycle == kNeverArmed)
        os << "never armed";
    else
        os << "last armed for past cycle " << armed_cycle;
    return make(InvariantAudit::ReadyRsAgreement, os);
}

void
InvariantAuditor::report(const std::optional<AuditViolation> &v)
{
    if (v)
        panic("invariant-audit [", invariantAuditName(v->kind), "] ",
              v->message);
}

void
InvariantAuditor::onCycleEnd(const OooCore &core)
{
    core.rs_.snapshot(rs_scratch_);
    report(checkAgeOrder(rs_scratch_));

    order_scratch_.assign(core.rob_.entries().begin(),
                          core.rob_.entries().end());
    report(checkProgramOrder(InvariantAudit::RobProgramOrder,
                             order_scratch_));
    core.lsq_.seqs(order_scratch_);
    report(checkProgramOrder(InvariantAudit::LsqProgramOrder,
                             order_scratch_));

    if (!core.event_kernel_)
        return;
    for (SeqNum seq : rs_scratch_) {
        const auto &oc = core.cold_[seq];
        unsigned recount = 0;
        for (unsigned i = 0; i < oc.nprod; ++i) {
            bool dup = false;
            for (unsigned j = 0; j < i; ++j)
                dup = dup || oc.prod[j] == oc.prod[i];
            if (!dup && core.inRs(oc.prod[i]))
                ++recount;
        }
        report(checkPendingCount(seq, core.pending_[seq], recount));
        const bool parked =
            core.armed_[seq] == OooCore::kParkLoad;
        const bool in_ready = core.ready_.contains(seq);
        report(checkReadyAgreement(seq, core.pending_[seq],
                                   core.armed_[seq], core.cycle_,
                                   parked, in_ready));
    }
}

void
InvariantAuditor::onIssue(const OooCore &core, SeqNum seq)
{
    const Tick start = core.cold_[seq].start_tick;
    const Tick tpc = core.clock_.ticksPerCycle();
    report(checkCiRange(seq, core.clock_.ciOf(start), tpc));
    report(checkCiRange(seq, core.clock_.ciOf(core.done_[seq]), tpc));
    if (core.cold_[seq].cflags & OooCore::kColdTransparent) {
        const SeqNum producer = core.lastProducer(seq);
        const Tick producer_complete =
            producer == kNoSeq ? 0 : core.done_[producer];
        report(checkTransparentLink(seq, producer, producer_complete,
                                    start,
                                    core.clock_.ciOf(start)));
    }
}

void
InvariantAuditor::onEgpwGrant(const OooCore &core, SeqNum seq,
                              unsigned free_units)
{
    (void)core;
    report(checkEgpwLeftover(seq, free_units));
}

} // namespace redsoc

/**
 * @file
 * Core configuration: the three processor baselines of Table I
 * (Small / Medium / Big) plus the scheduler-mode and slack-recycling
 * knobs of Secs. III-IV.
 */

#ifndef REDSOC_CORE_CORE_CONFIG_H
#define REDSOC_CORE_CORE_CONFIG_H

#include <string>

#include "mem/hierarchy.h"
#include "predictors/branch_predictor.h"
#include "predictors/last_arrival_predictor.h"
#include "predictors/width_predictor.h"
#include "timing/timing_model.h"

namespace redsoc {

/** Instruction scheduling mode. */
enum class SchedMode : u8 {
    Baseline, ///< conventional boundary-clocked OOO scheduling
    ReDSOC,   ///< slack recycling via transparent dataflow (the paper)
    MOS,      ///< Multiple-Operations-in-Single-cycle fusion comparator
};

const char *schedModeName(SchedMode mode);

/** Reservation-station design for slack-aware scheduling (Sec.IV-C). */
enum class RsDesign : u8 {
    /** Full tag set: 2 parent + 4 grandparent tags, max trees. */
    Illustrative,
    /** Predicted last-arriving parent/grandparent tag only. */
    Operational,
};

const char *rsDesignName(RsDesign design);

/**
 * Scheduler simulation kernel. Both kernels model the exact same
 * machine and produce bit-identical CoreStats (enforced by the
 * differential suite in tests/test_sched_equiv.cc); they differ only
 * in how the simulator finds work each cycle.
 */
enum class SchedKernel : u8 {
    /** Legacy oracle: re-evaluate every waiting RS entry every cycle
     *  (O(RS x producers) per cycle). Kept as the reference model. */
    Scan,
    /** Event-driven: tag-broadcast wakeup through per-producer
     *  consumer lists, age-ordered per-pool ready sets, and
     *  idle-cycle fast-forward. The default. */
    Event,
};

const char *schedKernelName(SchedKernel kernel);

struct CoreConfig
{
    std::string name = "medium";

    // --- Table I parameters -----------------------------------------
    unsigned frontend_width = 4;   ///< fetch/rename/dispatch per cycle
    unsigned commit_width = 4;
    unsigned rob_entries = 80;
    unsigned lsq_entries = 32;
    unsigned rs_entries = 64;
    unsigned alu_units = 4;
    unsigned simd_units = 3;
    unsigned fp_units = 3;
    unsigned mem_ports = 2;

    /** Pipeline refill penalty on a branch mispredict (cycles from
     *  resolve to first new op entering rename). */
    Cycle redirect_penalty = 10;

    HierarchyConfig memory{};
    TimingConfig timing{};
    BranchPredictorConfig branch_pred{};
    WidthPredictorConfig width_pred{};
    LastArrivalConfig last_arrival{};

    // --- Scheduling / ReDSOC knobs ----------------------------------
    SchedMode mode = SchedMode::Baseline;
    RsDesign rs_design = RsDesign::Operational;
    SchedKernel sched_kernel = SchedKernel::Event;

    /** CI field precision in bits (paper: 3; Sec.V sweep 1..8). */
    unsigned ci_precision_bits = 3;

    /**
     * Slack threshold (Sec.IV-C step 10) in ticks: a consumer is
     * issued into its producer's completion cycle only if the
     * producer's CI is <= this value, balancing recycling opportunity
     * against 2-cycle FU over-allocation. Expressed at the configured
     * CI precision.
     */
    Tick slack_threshold_ticks = 6;

    /**
     * The paper's proposed extension (Sec.IV-C): "a simple but
     * intelligent dynamic mechanism can be used to increase or
     * decrease this threshold based on overall observed benefits."
     * When enabled, the core hill-climbs the threshold once per
     * epoch on observed commit throughput, starting from
     * slack_threshold_ticks.
     */
    bool dynamic_threshold = false;

    /** Adaptation epoch in cycles (Tribeca-style fine-grained
     *  adaptation granularity). */
    Cycle threshold_epoch = 2000;

    /**
     * Deadlock watchdog: abort the simulation (DeadlockError) once no
     * op has committed for this many cycles. Both scheduler kernels
     * abort at exactly last_commit_cycle + horizon + 1 — the event
     * kernel's idle fast-forward clamps to the horizon so the final
     * watchdog check runs on the same cycle the scan kernel reaches
     * step by step (tests/test_fuzz_regress.cc proves the equality).
     */
    Cycle no_commit_horizon = 50'000;

    /** Enable eager grandparent wakeup (required for same-cycle
     *  parent/child issue; disabling it is an ablation). */
    bool egpw = true;

    /** Enable skewed selection (ablation: plain oldest-first treats
     *  speculative and conventional requests equally). */
    bool skewed_select = true;
};

/** Table I presets. */
CoreConfig smallCore();
CoreConfig mediumCore();
CoreConfig bigCore();

/** Preset by name ("small"/"medium"/"big"). */
CoreConfig coreByName(const std::string &name);

} // namespace redsoc

#endif // REDSOC_CORE_CORE_CONFIG_H

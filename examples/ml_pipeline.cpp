/**
 * @file
 * An end-to-end ML inference micro-pipeline (conv -> relu -> pool ->
 * softmax, the Table II kernels) simulated stage by stage on all
 * three cores, with and without slack recycling — the use case the
 * paper's introduction motivates: limited-precision arithmetic is
 * full of type slack.
 */

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "power/dvfs.h"
#include "sim/driver.h"

using namespace redsoc;

int
main()
{
    SimDriver driver;
    const std::vector<std::string> stages = {"conv", "act", "pool0",
                                             "softmax"};
    const DvfsModel dvfs;

    for (const std::string &core : {std::string("small"),
                                    std::string("medium"),
                                    std::string("big")}) {
        const CoreConfig base = configFor(core, SchedMode::Baseline);
        const CoreConfig red = configFor(core, SchedMode::ReDSOC);

        Table t({"stage", "base cycles", "redsoc cycles", "speedup",
                 "iso-perf power saving"});
        Cycle total_base = 0, total_red = 0;
        for (const std::string &stage : stages) {
            const CoreStats &b = driver.run(stage, base);
            const CoreStats &r = driver.run(stage, red);
            total_base += b.cycles;
            total_red += r.cycles;
            const double s = ratioOf(b.cycles, r.cycles);
            t.addRow({stage, std::to_string(b.cycles),
                      std::to_string(r.cycles),
                      Table::num(s, 3),
                      Table::pct(dvfs.powerSavingForSpeedup(s))});
        }
        const double pipeline_speedup = ratioOf(total_base, total_red);
        std::printf("=== %s core ===\n%s", core.c_str(),
                    t.render().c_str());
        std::printf("pipeline: %llu -> %llu cycles (%.1f%% speedup, "
                    "%.1f%% power saving at baseline performance)\n\n",
                    static_cast<unsigned long long>(total_base),
                    static_cast<unsigned long long>(total_red),
                    (pipeline_speedup - 1.0) * 100.0,
                    dvfs.powerSavingForSpeedup(pipeline_speedup) * 100.0);
    }
    return 0;
}

/**
 * @file
 * Design-space exploration with the public API: sweep the ReDSOC
 * design knobs (slack threshold, CI precision, EGPW, skewed select,
 * RSE design) on one workload and report where the paper's defaults
 * sit. This is the ablation companion to Sec.IV.
 */

#include <cstdio>

#include "common/table.h"
#include "sim/driver.h"

using namespace redsoc;

namespace {

double
speedupOf(SimDriver &driver, const std::string &workload,
          const CoreConfig &variant)
{
    return driver.speedup(workload,
                          configFor(variant.name, SchedMode::Baseline),
                          variant);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "crc";
    SimDriver driver;

    std::printf("design-space sweep on '%s' (medium core)\n\n",
                workload.c_str());

    // 1. Slack threshold (Sec.IV-C step 10).
    Table thr({"threshold (ticks/8)", "speedup", "recycled ops",
               "EGPW wasted"});
    for (Tick t = 0; t <= 8; t += 2) {
        CoreConfig cfg = configFor("medium", SchedMode::ReDSOC);
        cfg.slack_threshold_ticks = t;
        const CoreStats &stats = driver.run(workload, cfg);
        thr.addRow({std::to_string(t),
                    Table::num(speedupOf(driver, workload, cfg), 3),
                    std::to_string(stats.recycled_ops),
                    std::to_string(stats.egpw_wasted)});
    }
    std::printf("slack threshold:\n%s\n", thr.render().c_str());

    // 2. CI precision (Sec.V: saturates at 3 bits).
    Table prec({"CI bits", "speedup"});
    for (unsigned bits = 1; bits <= 8; ++bits) {
        CoreConfig cfg = configFor("medium", SchedMode::ReDSOC);
        cfg.ci_precision_bits = bits;
        cfg.slack_threshold_ticks = (Tick{1} << bits) * 3 / 4;
        prec.addRow({std::to_string(bits),
                     Table::num(speedupOf(driver, workload, cfg), 3)});
    }
    std::printf("CI precision:\n%s\n", prec.render().c_str());

    // 3. Mechanism ablations.
    Table abl({"configuration", "speedup"});
    {
        CoreConfig full = configFor("medium", SchedMode::ReDSOC);
        abl.addRow({"full ReDSOC",
                    Table::num(speedupOf(driver, workload, full), 3)});
        CoreConfig no_egpw = full;
        no_egpw.egpw = false;
        abl.addRow({"- eager grandparent wakeup",
                    Table::num(speedupOf(driver, workload, no_egpw), 3)});
        CoreConfig no_skew = full;
        no_skew.skewed_select = false;
        abl.addRow({"- skewed selection",
                    Table::num(speedupOf(driver, workload, no_skew), 3)});
        CoreConfig illus = full;
        illus.rs_design = RsDesign::Illustrative;
        abl.addRow({"illustrative RSE (full tags)",
                    Table::num(speedupOf(driver, workload, illus), 3)});
    }
    std::printf("ablations:\n%s", abl.render().c_str());
    return 0;
}

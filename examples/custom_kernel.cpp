/**
 * @file
 * Writing your own workload against the public API: build a µISA
 * program with ProgramBuilder, prepare inputs in a MemoryImage,
 * trace it functionally, and compare scheduler modes — including a
 * look at the slack profile that explains the result.
 *
 * The kernel: a Fibonacci-flavoured hash mixing loop with a narrow
 * accumulator — a long dependent chain of high-slack operations, the
 * best case for slack recycling.
 */

#include <cstdio>
#include <memory>

#include "common/table.h"
#include "core/ooo_core.h"
#include "func/interpreter.h"
#include "isa/builder.h"
#include "timing/slack_lut.h"
#include "workloads/op_mix.h"

using namespace redsoc;

namespace {

Trace
buildMixerTrace()
{
    ProgramBuilder b("mixer");
    const RegIdx h = x(1), n = x(2), k = x(3);
    b.movImm(h, 0x9e);
    b.movImm(k, 0x85);
    b.movImm(n, 400);
    auto loop = b.newLabel();
    b.bind(loop);
    // A dependent chain of narrow logical/shift/add steps.
    b.alui(Opcode::EOR, h, h, 0x2d);
    b.rorImm(h, h, 3);
    b.alu(Opcode::ADD, h, h, k);
    b.alui(Opcode::AND, h, h, 0xff); // keep it narrow: width slack
    b.alui(Opcode::SUB, n, n, 1);
    b.bnez(n, loop);
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    return traceProgram(program, mem);
}

} // namespace

int
main()
{
    const Trace trace = buildMixerTrace();
    std::printf("custom kernel: %llu dynamic ops\n\n",
                static_cast<unsigned long long>(trace.size()));

    // Where does the slack come from? Print the kernel's op mix and
    // the LUT buckets its operations fall into.
    const TimingModel timing;
    const OpMix mix = computeOpMix(trace, timing);
    std::printf("op mix: %.0f%% ALU-HS, %.0f%% ALU-LS, %.0f%% other\n",
                mix.alu_hs * 100, mix.alu_ls * 100,
                (1 - mix.alu_hs - mix.alu_ls) * 100);

    const SubCycleClock clock(3, timing.clockPeriodPs());
    const SlackLut lut(timing, clock);
    Table buckets({"bucket", "worst-case", "estimate"});
    for (const SlackBucket &bkt : lut.buckets()) {
        buckets.addRow({bkt.name,
                        std::to_string(bkt.worst_case_ps) + " ps",
                        std::to_string(bkt.ticks) + "/8 cycle"});
    }
    std::printf("\nslack LUT (14 buckets):\n%s\n",
                buckets.render().c_str());

    Table results({"mode", "cycles", "IPC", "recycled", "2-cyc holds"});
    for (SchedMode mode :
         {SchedMode::Baseline, SchedMode::MOS, SchedMode::ReDSOC}) {
        CoreConfig cfg = mediumCore();
        cfg.mode = mode;
        OooCore core(cfg);
        const CoreStats stats = core.run(trace);
        results.addRow({schedModeName(mode),
                        std::to_string(stats.cycles),
                        Table::num(stats.ipc()),
                        std::to_string(stats.recycled_ops),
                        std::to_string(stats.two_cycle_holds)});
    }
    std::printf("%s", results.render().c_str());
    return 0;
}

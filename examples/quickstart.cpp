/**
 * @file
 * Quickstart: run one bundled workload on a baseline core and on the
 * same core with ReDSOC slack recycling, and print the speedup.
 *
 *   ./quickstart [workload] [core]
 *   e.g. ./quickstart crc big
 */

#include <cstdio>
#include <string>

#include "common/table.h"
#include "sim/driver.h"

using namespace redsoc;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "crc";
    const std::string core = argc > 2 ? argv[2] : "big";

    SimDriver driver;
    std::printf("Tracing workload '%s'...\n", workload.c_str());
    const Trace &trace = driver.trace(workload);
    std::printf("  %llu dynamic ops from program '%s'\n",
                static_cast<unsigned long long>(trace.size()),
                trace.program().name().c_str());

    const CoreConfig base = configFor(core, SchedMode::Baseline);
    const CoreConfig red = configFor(core, SchedMode::ReDSOC);

    const CoreStats &b = driver.run(workload, base);
    const CoreStats &r = driver.run(workload, red);

    Table t({"metric", "baseline", "redsoc"});
    t.addRow({"cycles", std::to_string(b.cycles),
              std::to_string(r.cycles)});
    t.addRow({"IPC", Table::num(b.ipc()), Table::num(r.ipc())});
    t.addRow({"recycled ops", std::to_string(b.recycled_ops),
              std::to_string(r.recycled_ops)});
    t.addRow({"E[transparent seq len]", Table::num(
                  b.expected_chain_length),
              Table::num(r.expected_chain_length)});
    t.addRow({"FU stall rate", Table::pct(b.fuStallRate()),
              Table::pct(r.fuStallRate())});
    std::printf("\n%s\n", t.render().c_str());

    const double speedup =
        static_cast<double>(b.cycles) / static_cast<double>(r.cycles);
    std::printf("ReDSOC speedup on %s core: %.1f%%\n", core.c_str(),
                (speedup - 1.0) * 100.0);
    return 0;
}

/**
 * @file
 * redsoc_fuzz CLI — differential fuzzing of the scheduler kernels.
 *
 *   redsoc_fuzz --seed 1 --budget 60          # 60s smoke sweep
 *   redsoc_fuzz --seed 1 --count 5000         # fixed point count
 *   redsoc_fuzz --seed 1 --count 100 --minimize --out tests/fuzz_corpus
 *   redsoc_fuzz --proc --seed 1 --budget 60   # multi-core mixes
 *   redsoc_fuzz --replay tests/fuzz_corpus/foo.fuzz
 *   redsoc_fuzz --dump-seed 42                # print the fixture text
 *
 * --proc draws multi-core Processor points (1-3 cores, randomized
 * LLC geometry, DRAM banking, shared/split address spaces) and runs
 * the differential oracle over per-core and LLC statistics.
 *
 * Exit status 0 when every point agrees, 1 on any divergence (or a
 * failing replay), 2 on usage errors.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fuzz_lib.h"

namespace {

using namespace redsoc;
using namespace redsoc::fuzz;

struct Options
{
    u64 seed = 1;
    u64 count = 0;       ///< 0 = budget-driven
    double budget_s = 0; ///< 0 = count-driven (default: 60s budget)
    bool minimize = false;
    bool proc = false; ///< sweep multi-core Processor points
    std::string out_dir;
    std::string replay_path;
    bool dump_seed = false;
    u64 dump_seed_value = 0;
};

void
usage(std::ostream &os)
{
    os << "usage: redsoc_fuzz [--seed N] [--count N | --budget SECONDS]\n"
          "                   [--proc] [--minimize] [--out DIR]\n"
          "       redsoc_fuzz --replay FIXTURE\n"
          "       redsoc_fuzz [--proc] --dump-seed N\n";
}

std::optional<Options>
parseArgs(int argc, char **argv)
{
    Options opt;
    auto num_arg = [&](int &i, const char *flag) -> std::optional<u64> {
        if (i + 1 >= argc) {
            std::cerr << "redsoc_fuzz: " << flag
                      << " needs a value\n";
            return std::nullopt;
        }
        return std::strtoull(argv[++i], nullptr, 10);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed") {
            const auto v = num_arg(i, "--seed");
            if (!v)
                return std::nullopt;
            opt.seed = *v;
        } else if (arg == "--count") {
            const auto v = num_arg(i, "--count");
            if (!v)
                return std::nullopt;
            opt.count = *v;
        } else if (arg == "--budget") {
            const auto v = num_arg(i, "--budget");
            if (!v)
                return std::nullopt;
            opt.budget_s = static_cast<double>(*v);
        } else if (arg == "--minimize") {
            opt.minimize = true;
        } else if (arg == "--proc") {
            opt.proc = true;
        } else if (arg == "--out") {
            if (i + 1 >= argc) {
                std::cerr << "redsoc_fuzz: --out needs a directory\n";
                return std::nullopt;
            }
            opt.out_dir = argv[++i];
        } else if (arg == "--replay") {
            if (i + 1 >= argc) {
                std::cerr << "redsoc_fuzz: --replay needs a fixture\n";
                return std::nullopt;
            }
            opt.replay_path = argv[++i];
        } else if (arg == "--dump-seed") {
            const auto v = num_arg(i, "--dump-seed");
            if (!v)
                return std::nullopt;
            opt.dump_seed = true;
            opt.dump_seed_value = *v;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else {
            std::cerr << "redsoc_fuzz: unknown flag '" << arg << "'\n";
            usage(std::cerr);
            return std::nullopt;
        }
    }
    if (opt.count == 0 && opt.budget_s == 0)
        opt.budget_s = 60;
    return opt;
}

int
replay(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "redsoc_fuzz: cannot open " << path << '\n';
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const FuzzCase fc = parseCase(text.str());
    const std::string diff = checkCase(fc);
    if (diff.empty()) {
        std::cout << path << ": " << fc.name << " agrees ("
                  << fc.prog.size() << " recipes)\n";
        return 0;
    }
    std::cout << path << ": " << fc.name << " DIVERGES: " << diff
              << '\n';
    return 1;
}

/** Report one divergence, optionally minimizing and writing a
 *  fixture; returns the fixture path message for the summary. */
void
handleDivergence(const Options &opt, const FuzzCase &fc,
                 const std::string &diff)
{
    std::cout << "DIVERGENCE at " << fc.name << ": " << diff << '\n';
    FuzzCase repro = fc;
    if (opt.minimize) {
        repro = minimizeCase(fc);
        std::cout << "  minimized " << fc.prog.size() << " -> "
                  << repro.prog.size()
                  << " recipes; still diverges: " << checkCase(repro)
                  << '\n';
    }
    if (!opt.out_dir.empty()) {
        const std::string path =
            opt.out_dir + "/" + repro.name + ".fuzz";
        std::ofstream out(path);
        out << serializeCase(repro);
        std::cout << "  fixture written to " << path << '\n';
    } else {
        std::cout << serializeCase(repro);
    }
}

int
sweep(const Options &opt)
{
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    auto elapsed_s = [&start] {
        return std::chrono::duration<double>(clock::now() - start)
            .count();
    };

    u64 checked = 0;
    u64 diverged = 0;
    u64 seed = opt.seed;
    while (true) {
        if (opt.count != 0 && checked >= opt.count)
            break;
        if (opt.count == 0 && elapsed_s() >= opt.budget_s)
            break;
        const FuzzCase fc =
            opt.proc ? randomProcCase(seed++) : randomCase(seed++);
        const std::string diff = checkCase(fc);
        ++checked;
        if (!diff.empty()) {
            ++diverged;
            handleDivergence(opt, fc, diff);
        }
        if (checked % 500 == 0)
            std::cout << "  ... " << checked << " points, "
                      << diverged << " divergent, "
                      << static_cast<u64>(static_cast<double>(checked) /
                                          elapsed_s() * 60)
                      << " points/min\n";
    }

    const double secs = elapsed_s();
    std::cout << "redsoc_fuzz: " << checked << " points in " << secs
              << "s ("
              << static_cast<u64>(
                     secs > 0 ? static_cast<double>(checked) / secs * 60
                              : 0)
              << " points/min), " << diverged << " divergent\n";
    return diverged == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parseArgs(argc, argv);
    if (!opt) {
        usage(std::cerr);
        return 2;
    }
    if (opt->dump_seed) {
        std::cout << serializeCase(
            opt->proc ? randomProcCase(opt->dump_seed_value)
                      : randomCase(opt->dump_seed_value));
        return 0;
    }
    if (!opt->replay_path.empty())
        return replay(opt->replay_path);
    return sweep(*opt);
}

#include "fuzz_lib.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "trace/pipe_tracer.h"

namespace redsoc::fuzz {

namespace {

/** The x1..x8 data web a register selector indexes into. */
constexpr unsigned kDataRegs = 8;

RegIdx
dataReg(u8 selector)
{
    return x(1u + selector % kDataRegs);
}

constexpr Opcode kAluOps[] = {Opcode::ADD, Opcode::SUB, Opcode::AND,
                              Opcode::ORR, Opcode::EOR};
constexpr Opcode kLoadOps[] = {Opcode::LDR, Opcode::LDRW, Opcode::LDRH,
                               Opcode::LDRB};
constexpr Opcode kStoreOps[] = {Opcode::STR, Opcode::STRW, Opcode::STRH,
                                Opcode::STRB};

/** Aliasing window: byte-granular offsets over a few cache lines so
 *  different access widths overlap partially, not just exactly. */
s64
memOffset(s64 imm)
{
    return static_cast<s64>(static_cast<u64>(imm) % 96);
}

} // namespace

const char *
fuzzKindName(FuzzInst::Kind kind)
{
    switch (kind) {
      case FuzzInst::Kind::MovImm: return "movimm";
      case FuzzInst::Kind::Alu: return "alu";
      case FuzzInst::Kind::AluImm: return "alui";
      case FuzzInst::Kind::Mul: return "mul";
      case FuzzInst::Kind::Sdiv: return "sdiv";
      case FuzzInst::Kind::Load: return "load";
      case FuzzInst::Kind::Store: return "store";
      case FuzzInst::Kind::Fop: return "fop";
      case FuzzInst::Kind::Branch: return "branch";
      case FuzzInst::Kind::NUM: break;
    }
    return "?";
}

std::optional<FuzzInst::Kind>
fuzzKindByName(const std::string &name)
{
    for (unsigned k = 0; k < static_cast<unsigned>(FuzzInst::Kind::NUM);
         ++k) {
        const auto kind = static_cast<FuzzInst::Kind>(k);
        if (name == fuzzKindName(kind))
            return kind;
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

CoreConfig
randomConfig(Rng &rng)
{
    static const char *kBases[] = {"small", "medium", "big"};
    CoreConfig cfg = coreByName(kBases[rng.below(3)]);

    cfg.frontend_width = static_cast<unsigned>(1 + rng.below(5));
    cfg.commit_width = static_cast<unsigned>(1 + rng.below(5));
    cfg.rob_entries = static_cast<unsigned>(4 + rng.below(93));
    cfg.rs_entries = static_cast<unsigned>(2 + rng.below(63));
    cfg.lsq_entries = static_cast<unsigned>(2 + rng.below(31));
    cfg.alu_units = static_cast<unsigned>(1 + rng.below(4));
    cfg.simd_units = static_cast<unsigned>(1 + rng.below(3));
    cfg.fp_units = static_cast<unsigned>(1 + rng.below(3));
    cfg.mem_ports = static_cast<unsigned>(1 + rng.below(2));
    cfg.redirect_penalty = 1 + rng.below(14);

    const double mode_roll = rng.uniform();
    cfg.mode = mode_roll < 0.5   ? SchedMode::ReDSOC
               : mode_roll < 0.8 ? SchedMode::Baseline
                                 : SchedMode::MOS;
    cfg.rs_design = rng.chance(0.5) ? RsDesign::Operational
                                    : RsDesign::Illustrative;

    // CI precision bounds ticksPerCycle (2^bits); the threshold must
    // stay within one cycle or the core (correctly) refuses to run.
    cfg.ci_precision_bits = static_cast<unsigned>(1 + rng.below(4));
    const Tick tpc = Tick{1} << cfg.ci_precision_bits;
    cfg.slack_threshold_ticks = rng.below(tpc + 1);

    cfg.dynamic_threshold = rng.chance(0.3);
    static constexpr Cycle kEpochs[] = {200, 500, 1000, 2000};
    cfg.threshold_epoch = kEpochs[rng.below(4)];
    cfg.egpw = rng.chance(0.8);
    cfg.skewed_select = rng.chance(0.8);

    cfg.memory.l1_latency = 1 + rng.below(3);
    cfg.memory.l2_latency = 6 + rng.below(10);
    cfg.memory.mem_latency = 50 + rng.below(250);
    cfg.memory.prefetch = rng.chance(0.7);
    cfg.memory.prefetch_fill_l1 = rng.chance(0.3);

    // Hierarchy geometry: power-of-two sizes/associativities only
    // (the tag model requires power-of-two set counts). Tiny L1s
    // push the workload into the L2/LLC where the shared-path timing
    // actually differs.
    cfg.memory.l1.size_bytes = u64{8 * 1024} << rng.below(4);
    cfg.memory.l1.assoc = 1u << rng.below(4);
    cfg.memory.l2.size_bytes = u64{256 * 1024} << rng.below(4);
    cfg.memory.l2.assoc = 4u << rng.below(3);

    // Timing-speculation rescale of off-core latencies (>= 1.0; the
    // hierarchy rejects shrinking memory latency with the core clock).
    static constexpr double kScales[] = {1.0, 1.0, 1.25, 1.5, 2.0};
    cfg.memory.offcore_latency_scale = kScales[rng.below(5)];

    // Capacity boundaries: a quarter of the cases pin one structure
    // at its floor (or flood it) so the kernels are differentially
    // tested exactly where a structure fills — RS-full dispatch
    // stalls, ready-set saturation under a starved select, and a
    // floor-sized LSQ where every memory op contends.
    switch (rng.below(12)) {
      case 0: // RS fills within a few cycles: wide frontend, tiny RS
        cfg.rs_entries = static_cast<unsigned>(2 + rng.below(3));
        cfg.frontend_width = static_cast<unsigned>(4 + rng.below(2));
        break;
      case 1: // ready-set saturation: big RS, one unit per pool
        cfg.rs_entries = static_cast<unsigned>(48 + rng.below(17));
        cfg.frontend_width = static_cast<unsigned>(4 + rng.below(2));
        cfg.alu_units = 1;
        cfg.simd_units = 1;
        cfg.fp_units = 1;
        cfg.mem_ports = 1;
        break;
      case 2: // LSQ at its floor
        cfg.lsq_entries = static_cast<unsigned>(2 + rng.below(2));
        break;
      default: // leave the uniform draw above untouched
        break;
    }

    // Small horizon: a genuine scheduler deadlock aborts quickly, and
    // the watchdog-cycle equality between kernels gets fuzzed too.
    cfg.no_commit_horizon = 10'000;
    return cfg;
}

namespace {

/** Biased op-mix profiles: each stresses a different interaction. */
enum class Profile : u8 {
    AluHeavy,   ///< wide dependence webs, select pressure
    Chain,      ///< tight serial chains (maximal recycling)
    MemAlias,   ///< store/load aliasing, parking, forwarding
    Branchy,    ///< mispredict redirects and squashes
    MixedWidth, ///< narrow/wide operand swings (width predictor)
    FpMix,      ///< cross-pool pressure, non-eligible producers
    FanOut,     ///< one hot producer register read by nearly every op
    NUM,
};

FuzzInst
randomInst(Rng &rng, Profile profile)
{
    FuzzInst fi;
    fi.sel = static_cast<u8>(rng.below(256));
    fi.dst = static_cast<u8>(rng.below(256));
    fi.a = static_cast<u8>(rng.below(256));
    fi.b = static_cast<u8>(rng.below(256));
    fi.imm = static_cast<s64>(rng.below(1u << 16));

    const double roll = rng.uniform();
    using K = FuzzInst::Kind;
    switch (profile) {
      case Profile::AluHeavy:
        fi.kind = roll < 0.45   ? K::Alu
                  : roll < 0.8  ? K::AluImm
                  : roll < 0.9  ? K::Mul
                  : roll < 0.95 ? K::Load
                                : K::Store;
        break;
      case Profile::Chain:
        // Serial chain: mostly reuse one register as both source and
        // destination, salted with long-latency producers.
        fi.kind = roll < 0.7    ? K::Alu
                  : roll < 0.85 ? K::Mul
                                : K::Sdiv;
        fi.a = fi.dst;
        if (rng.chance(0.8))
            fi.b = fi.dst;
        break;
      case Profile::MemAlias:
        fi.kind = roll < 0.3   ? K::Store
                  : roll < 0.6 ? K::Load
                  : roll < 0.9 ? K::Alu
                               : K::Mul;
        // Tight window: maximal overlap between mixed-width accesses.
        fi.imm = static_cast<s64>(rng.below(24));
        break;
      case Profile::Branchy:
        fi.kind = roll < 0.35  ? K::Branch
                  : roll < 0.7 ? K::Alu
                  : roll < 0.8 ? K::MovImm
                  : roll < 0.9 ? K::Load
                               : K::Store;
        break;
      case Profile::MixedWidth:
        fi.kind = roll < 0.3    ? K::MovImm
                  : roll < 0.75 ? K::Alu
                  : roll < 0.9  ? K::AluImm
                                : K::Mul;
        // Alternate tiny and huge immediates: operand widths swing.
        if (fi.kind == K::MovImm)
            fi.imm = rng.chance(0.5)
                         ? static_cast<s64>(rng.below(4))
                         : static_cast<s64>(rng.next() >> 8);
        break;
      case Profile::FpMix:
        fi.kind = roll < 0.3    ? K::Fop
                  : roll < 0.6  ? K::Alu
                  : roll < 0.75 ? K::Mul
                  : roll < 0.9  ? K::Load
                                : K::Branch;
        break;
      case Profile::FanOut:
        // Almost every op reads the same hot register, so one
        // producer's consumer-edge list grows toward the RS limit
        // (maximum wakeup fanout); the hot register is redefined only
        // rarely, starting the next fanout web.
        fi.kind = roll < 0.7    ? K::Alu
                  : roll < 0.85 ? K::AluImm
                  : roll < 0.95 ? K::Mul
                                : K::Load;
        fi.a = 0;
        if (rng.chance(0.9))
            fi.b = 0;
        if (rng.chance(0.95) && fi.dst % kDataRegs == 0)
            fi.dst = static_cast<u8>(fi.dst + 1); // keep x1 live
        break;
      case Profile::NUM:
        break;
    }
    return fi;
}

} // namespace

std::vector<FuzzInst>
randomProgram(Rng &rng)
{
    const auto profile = static_cast<Profile>(
        rng.below(static_cast<u64>(Profile::NUM)));
    const size_t len = 24 + rng.below(140);
    std::vector<FuzzInst> prog;
    prog.reserve(len);
    for (size_t i = 0; i < len; ++i)
        prog.push_back(randomInst(rng, profile));
    return prog;
}

FuzzCase
randomCase(u64 seed)
{
    Rng rng(seed ^ 0x8f0c7a2d11235813ull);
    FuzzCase fc;
    fc.name = "seed" + std::to_string(seed);
    fc.config = randomConfig(rng);
    fc.prog = randomProgram(rng);
    return fc;
}

FuzzCase
randomProcCase(u64 seed)
{
    Rng rng(seed ^ 0x3c6ef372fe94f82bull);
    FuzzCase fc;
    fc.name = "proc" + std::to_string(seed);
    fc.config = randomConfig(rng);
    fc.prog = randomProgram(rng);

    fc.cores = static_cast<unsigned>(1 + rng.below(3));
    for (unsigned i = 1; i < fc.cores; ++i)
        fc.extra_progs.push_back(randomProgram(rng));

    // LLC geometry down to a quarter of the big-core L2 so capacity
    // contention (and back-invalidation) actually fires; DRAM from a
    // single serializing bank up to the default eight.
    fc.llc_kb = u64{256} << rng.below(4);
    fc.llc_assoc = 4u << rng.below(3);
    fc.dram_banks = 1u << rng.below(4);
    static constexpr Cycle kOccupancies[] = {0, 8, 16, 64};
    fc.bank_occupancy = kOccupancies[rng.below(4)];
    fc.share_addr = rng.chance(0.25);
    return fc;
}

ProcConfig
procConfigOf(const FuzzCase &fc)
{
    ProcConfig pc;
    pc.num_cores = fc.cores;
    pc.core = fc.config;
    pc.llc.size_bytes = fc.llc_kb * 1024;
    pc.llc.assoc = fc.llc_assoc;
    pc.llc.line_bytes = fc.config.memory.l1.line_bytes;
    pc.dram.banks = fc.dram_banks;
    pc.dram.bank_occupancy = fc.bank_occupancy;
    pc.share_address_space = fc.share_addr;
    return pc;
}

namespace {

Trace
buildProgTrace(const std::string &name, const std::vector<FuzzInst> &prog)
{
    ProgramBuilder b(name);

    // Fixed prologue: the register web every recipe indexes into.
    // x1..x8 data, x9 FP seed, x10 nonzero divisor, x11 memory base.
    for (unsigned r = 1; r <= kDataRegs; ++r)
        b.movImm(x(r), static_cast<s64>(7 * r + 1));
    b.fmovImm(x(9), 1.5);
    b.movImm(x(10), 7);
    b.movImm(x(11), 0x1000);

    using K = FuzzInst::Kind;
    for (const FuzzInst &fi : prog) {
        switch (fi.kind) {
          case K::MovImm:
            b.movImm(dataReg(fi.dst), fi.imm);
            break;
          case K::Alu:
            b.alu(kAluOps[fi.sel % 5], dataReg(fi.dst), dataReg(fi.a),
                  dataReg(fi.b));
            break;
          case K::AluImm:
            b.alui(kAluOps[fi.sel % 5], dataReg(fi.dst), dataReg(fi.a),
                   fi.imm & 0x3f);
            break;
          case K::Mul:
            b.mul(dataReg(fi.dst), dataReg(fi.a), dataReg(fi.b));
            break;
          case K::Sdiv:
            b.sdiv(dataReg(fi.dst), dataReg(fi.a), x(10));
            break;
          case K::Load:
            b.load(kLoadOps[fi.sel % 4], dataReg(fi.dst), x(11),
                   memOffset(fi.imm));
            break;
          case K::Store:
            b.store(kStoreOps[fi.sel % 4], dataReg(fi.a), x(11),
                    memOffset(fi.imm));
            break;
          case K::Fop:
            b.fop(fi.sel % 2 ? Opcode::FMUL : Opcode::FADD, x(9), x(9),
                  x(9));
            break;
          case K::Branch: {
            // Forward conditional over a small internal block: the
            // recipe is self-contained, so any subsequence of recipes
            // still builds (ddmin never breaks label structure).
            ProgramBuilder::Label skip = b.newLabel();
            b.branch(fi.sel % 2 ? Opcode::BNEZ : Opcode::BGTZ,
                     dataReg(fi.a), skip);
            const unsigned block =
                1 + static_cast<unsigned>(static_cast<u64>(fi.imm) % 3);
            for (unsigned k = 0; k < block; ++k)
                b.alui(Opcode::ADD, dataReg(fi.dst), dataReg(fi.dst),
                       static_cast<s64>(k + 1));
            b.bind(skip);
            break;
          }
          case K::NUM:
            break;
        }
    }
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    return traceProgram(program, mem);
}

} // namespace

Trace
buildTrace(const FuzzCase &fc)
{
    return buildProgTrace(fc.name, fc.prog);
}

std::vector<Trace>
buildTraces(const FuzzCase &fc)
{
    std::vector<Trace> traces;
    traces.push_back(buildProgTrace(fc.name, fc.prog));
    for (size_t i = 0; i < fc.extra_progs.size(); ++i)
        traces.push_back(buildProgTrace(
            fc.name + ".core" + std::to_string(i + 1),
            fc.extra_progs[i]));
    return traces;
}

// ---------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------

RunOutcome
runOne(const Trace &trace, CoreConfig config, SchedKernel kernel,
       bool traced)
{
    config.sched_kernel = kernel;
    OooCore core(std::move(config));
    PipeTracer tracer(1u << 14);
    if (traced)
        core.setTracer(&tracer);
    RunOutcome out;
    try {
        out.stats = core.run(trace);
    } catch (const DeadlockError &e) {
        out.deadlock = true;
        out.deadlock_cycle = e.cycle();
    }
    return out;
}

std::string
diffOutcome(const RunOutcome &a, const RunOutcome &b)
{
    std::ostringstream os;
    if (a.deadlock != b.deadlock) {
        os << "deadlock: " << a.deadlock << " vs " << b.deadlock;
        return os.str();
    }
    if (a.deadlock) {
        if (a.deadlock_cycle != b.deadlock_cycle) {
            os << "deadlock_cycle: " << a.deadlock_cycle << " vs "
               << b.deadlock_cycle;
            return os.str();
        }
        return "";
    }

    const CoreStats &s = a.stats;
    const CoreStats &t = b.stats;
    auto field = [&os](const char *fname, auto va, auto vb) {
        if (va == vb)
            return false;
        os << fname << ": " << va << " vs " << vb;
        return true;
    };
#define REDSOC_FUZZ_FIELD(f)                                           \
    if (field(#f, s.f, t.f))                                           \
        return os.str();
    REDSOC_FUZZ_FIELD(cycles)
    REDSOC_FUZZ_FIELD(committed)
    REDSOC_FUZZ_FIELD(fu_stall_cycles)
    REDSOC_FUZZ_FIELD(recycled_ops)
    REDSOC_FUZZ_FIELD(two_cycle_holds)
    REDSOC_FUZZ_FIELD(slack_recycled_ticks)
    REDSOC_FUZZ_FIELD(egpw_requests)
    REDSOC_FUZZ_FIELD(egpw_grants)
    REDSOC_FUZZ_FIELD(egpw_wasted)
    REDSOC_FUZZ_FIELD(fused_ops)
    REDSOC_FUZZ_FIELD(la_predictions)
    REDSOC_FUZZ_FIELD(la_mispredictions)
    REDSOC_FUZZ_FIELD(width_predictions)
    REDSOC_FUZZ_FIELD(width_aggressive)
    REDSOC_FUZZ_FIELD(width_conservative)
    REDSOC_FUZZ_FIELD(branch_lookups)
    REDSOC_FUZZ_FIELD(branch_mispredicts)
    REDSOC_FUZZ_FIELD(loads)
    REDSOC_FUZZ_FIELD(stores)
    REDSOC_FUZZ_FIELD(l1_load_misses)
    REDSOC_FUZZ_FIELD(store_forwards)
    REDSOC_FUZZ_FIELD(threshold_min)
    REDSOC_FUZZ_FIELD(threshold_max)
    REDSOC_FUZZ_FIELD(threshold_final)
    REDSOC_FUZZ_FIELD(commit_checksum)
    REDSOC_FUZZ_FIELD(expected_chain_length)
#undef REDSOC_FUZZ_FIELD
    if (field("chain_lengths.count", s.chain_lengths.count(),
              t.chain_lengths.count()))
        return os.str();
    if (field("chain_lengths.total", s.chain_lengths.total(),
              t.chain_lengths.total()))
        return os.str();
    if (field("chain_lengths.maxSample", s.chain_lengths.maxSample(),
              t.chain_lengths.maxSample()))
        return os.str();
    if (field("chain_lengths.sumSquares", s.chain_lengths.sumSquares(),
              t.chain_lengths.sumSquares()))
        return os.str();
    if (s.chain_lengths.rawBuckets() != t.chain_lengths.rawBuckets()) {
        os << "chain_lengths.rawBuckets differ";
        return os.str();
    }
    return "";
}

ProcOutcome
runProcOne(const std::vector<Trace> &traces, ProcConfig config,
           SchedKernel kernel, bool traced)
{
    config.core.sched_kernel = kernel;
    Processor proc(config);
    std::vector<std::unique_ptr<PipeTracer>> tracers;
    if (traced) {
        for (unsigned i = 0; i < proc.numCores(); ++i) {
            tracers.push_back(std::make_unique<PipeTracer>(1u << 14));
            proc.setTracer(i, tracers.back().get());
        }
    }
    std::vector<const Trace *> ptrs;
    ptrs.reserve(traces.size());
    for (const Trace &t : traces)
        ptrs.push_back(&t);
    ProcOutcome out;
    try {
        out.stats = proc.run(ptrs);
    } catch (const DeadlockError &e) {
        out.deadlock = true;
        out.deadlock_cycle = e.cycle();
    }
    return out;
}

std::string
diffProcOutcome(const ProcOutcome &a, const ProcOutcome &b)
{
    std::ostringstream os;
    if (a.deadlock != b.deadlock) {
        os << "deadlock: " << a.deadlock << " vs " << b.deadlock;
        return os.str();
    }
    if (a.deadlock) {
        if (a.deadlock_cycle != b.deadlock_cycle) {
            os << "deadlock_cycle: " << a.deadlock_cycle << " vs "
               << b.deadlock_cycle;
            return os.str();
        }
        return "";
    }

    if (a.stats.cycles != b.stats.cycles) {
        os << "cycles: " << a.stats.cycles << " vs " << b.stats.cycles;
        return os.str();
    }
    if (a.stats.cores.size() != b.stats.cores.size()) {
        os << "core count: " << a.stats.cores.size() << " vs "
           << b.stats.cores.size();
        return os.str();
    }
    for (size_t i = 0; i < a.stats.cores.size(); ++i) {
        // Reuse the single-core field walk on each core's stats.
        RunOutcome ra;
        RunOutcome rb;
        ra.stats = a.stats.cores[i];
        rb.stats = b.stats.cores[i];
        const std::string d = diffOutcome(ra, rb);
        if (!d.empty())
            return "core " + std::to_string(i) + " " + d;
    }

    const LlcStats &la = a.stats.llc;
    const LlcStats &lb = b.stats.llc;
    auto field = [&os](const char *fname, u64 va, u64 vb) {
        if (va == vb)
            return false;
        os << fname << ": " << va << " vs " << vb;
        return true;
    };
    if (field("llc.evictions", la.evictions, lb.evictions))
        return os.str();
    if (field("llc.writebacks", la.writebacks, lb.writebacks))
        return os.str();
    if (la.per_core.size() != lb.per_core.size()) {
        os << "llc.per_core size: " << la.per_core.size() << " vs "
           << lb.per_core.size();
        return os.str();
    }
    for (size_t i = 0; i < la.per_core.size(); ++i) {
        const LlcCoreStats &s = la.per_core[i];
        const LlcCoreStats &t = lb.per_core[i];
        os << "llc core " << i << ' ';
#define REDSOC_FUZZ_LLC_FIELD(f)                                       \
    if (field(#f, s.f, t.f))                                           \
        return os.str();
        REDSOC_FUZZ_LLC_FIELD(accesses)
        REDSOC_FUZZ_LLC_FIELD(hits)
        REDSOC_FUZZ_LLC_FIELD(misses)
        REDSOC_FUZZ_LLC_FIELD(mshr_merges)
        REDSOC_FUZZ_LLC_FIELD(prefetch_fills)
        REDSOC_FUZZ_LLC_FIELD(bank_wait_cycles)
        REDSOC_FUZZ_LLC_FIELD(back_invalidations)
        REDSOC_FUZZ_LLC_FIELD(lines_owned)
#undef REDSOC_FUZZ_LLC_FIELD
        os.str(""); // slice agreed: drop the speculative prefix
    }
    return "";
}

namespace {

std::string
checkProcCase(const FuzzCase &fc)
{
    const std::vector<Trace> traces = buildTraces(fc);
    const ProcConfig config = procConfigOf(fc);
    const ProcOutcome scan =
        runProcOne(traces, config, SchedKernel::Scan, false);
    const ProcOutcome event =
        runProcOne(traces, config, SchedKernel::Event, false);
    std::string d = diffProcOutcome(scan, event);
    if (!d.empty())
        return "proc scan/event: " + d;
    const ProcOutcome event_traced =
        runProcOne(traces, config, SchedKernel::Event, true);
    d = diffProcOutcome(event, event_traced);
    if (!d.empty())
        return "proc event traced/untraced: " + d;
    const ProcOutcome scan_traced =
        runProcOne(traces, config, SchedKernel::Scan, true);
    d = diffProcOutcome(scan, scan_traced);
    if (!d.empty())
        return "proc scan traced/untraced: " + d;
    return "";
}

} // namespace

std::string
checkCase(const FuzzCase &fc)
{
    if (fc.cores > 1)
        return checkProcCase(fc);
    const Trace trace = buildTrace(fc);
    const RunOutcome scan =
        runOne(trace, fc.config, SchedKernel::Scan, false);
    const RunOutcome event =
        runOne(trace, fc.config, SchedKernel::Event, false);
    std::string d = diffOutcome(scan, event);
    if (!d.empty())
        return "scan/event: " + d;
    const RunOutcome event_traced =
        runOne(trace, fc.config, SchedKernel::Event, true);
    d = diffOutcome(event, event_traced);
    if (!d.empty())
        return "event traced/untraced: " + d;
    const RunOutcome scan_traced =
        runOne(trace, fc.config, SchedKernel::Scan, true);
    d = diffOutcome(scan, scan_traced);
    if (!d.empty())
        return "scan traced/untraced: " + d;
    return "";
}

// ---------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------

FuzzCase
minimizeCase(const FuzzCase &orig)
{
    FuzzCase cur = orig;
    if (checkCase(cur).empty())
        return cur; // nothing to minimize

    // Multi-core collapse first: a divergence that survives with one
    // core is a scalar-kernel bug and gets the (far cheaper) scalar
    // repro; otherwise shed cores one at a time, then normalize the
    // shared-hierarchy knobs toward their defaults.
    if (cur.cores > 1) {
        FuzzCase solo = cur;
        solo.cores = 1;
        solo.extra_progs.clear();
        if (!checkCase(solo).empty()) {
            cur = std::move(solo);
        } else {
            while (cur.cores > 2) {
                FuzzCase fewer = cur;
                --fewer.cores;
                fewer.extra_progs.pop_back();
                if (checkCase(fewer).empty())
                    break;
                cur = std::move(fewer);
            }
        }
    }
    if (cur.cores > 1) {
        const FuzzCase def;
        auto try_proc = [&cur](auto mutate) {
            FuzzCase cand = cur;
            mutate(cand);
            if (!checkCase(cand).empty())
                cur = std::move(cand);
        };
        try_proc([](FuzzCase &c) { c.share_addr = false; });
        try_proc([&](FuzzCase &c) {
            c.bank_occupancy = def.bank_occupancy;
        });
        try_proc([&](FuzzCase &c) { c.dram_banks = def.dram_banks; });
        try_proc([&](FuzzCase &c) {
            c.llc_kb = def.llc_kb;
            c.llc_assoc = def.llc_assoc;
        });
    }

    // ddmin over each surviving recipe program: drop chunks while
    // the divergence persists, halving the chunk until single
    // recipes.
    auto ddmin = [&cur](auto prog_of) {
        size_t chunk = std::max<size_t>(1, prog_of(cur).size() / 2);
        while (true) {
            bool shrunk = false;
            for (size_t start = 0; start < prog_of(cur).size();) {
                const size_t end =
                    std::min(prog_of(cur).size(), start + chunk);
                FuzzCase cand = cur;
                std::vector<FuzzInst> &prog = prog_of(cand);
                prog.erase(prog.begin() +
                               static_cast<std::ptrdiff_t>(start),
                           prog.begin() +
                               static_cast<std::ptrdiff_t>(end));
                if (!prog.empty() && !checkCase(cand).empty()) {
                    cur = std::move(cand);
                    shrunk = true; // keep start: the tail shifted down
                } else {
                    start = end;
                }
            }
            if (chunk == 1) {
                if (!shrunk)
                    break;
                continue; // another single-recipe pass until fixpoint
            }
            chunk = std::max<size_t>(1, chunk / 2);
        }
    };
    ddmin([](FuzzCase &c) -> std::vector<FuzzInst> & { return c.prog; });
    for (size_t i = 0; i < cur.extra_progs.size(); ++i)
        ddmin([i](FuzzCase &c) -> std::vector<FuzzInst> & {
            return c.extra_progs[i];
        });

    // Config normalization: reset each knob toward the medium-core
    // default, keeping a reset only if the divergence survives it.
    const CoreConfig def = mediumCore();
    auto try_reset = [&cur](auto mutate) {
        FuzzCase cand = cur;
        mutate(cand.config);
        if (!checkCase(cand).empty())
            cur = std::move(cand);
    };
    try_reset([&](CoreConfig &c) { c.dynamic_threshold =
                                       def.dynamic_threshold; });
    try_reset([&](CoreConfig &c) { c.mode = def.mode; });
    try_reset([&](CoreConfig &c) { c.rs_design = def.rs_design; });
    try_reset([&](CoreConfig &c) { c.egpw = def.egpw; });
    try_reset([&](CoreConfig &c) { c.skewed_select = def.skewed_select; });
    try_reset([&](CoreConfig &c) {
        c.ci_precision_bits = def.ci_precision_bits;
        c.slack_threshold_ticks = def.slack_threshold_ticks;
    });
    try_reset([&](CoreConfig &c) { c.slack_threshold_ticks =
                                       def.slack_threshold_ticks; });
    try_reset([&](CoreConfig &c) { c.threshold_epoch =
                                       def.threshold_epoch; });
    try_reset([&](CoreConfig &c) { c.memory = def.memory; });
    try_reset([&](CoreConfig &c) { c.redirect_penalty =
                                       def.redirect_penalty; });
    try_reset([&](CoreConfig &c) {
        c.frontend_width = def.frontend_width;
        c.commit_width = def.commit_width;
    });
    try_reset([&](CoreConfig &c) {
        c.rob_entries = def.rob_entries;
        c.rs_entries = def.rs_entries;
        c.lsq_entries = def.lsq_entries;
    });
    try_reset([&](CoreConfig &c) {
        c.alu_units = def.alu_units;
        c.simd_units = def.simd_units;
        c.fp_units = def.fp_units;
        c.mem_ports = def.mem_ports;
    });
    return cur;
}

// ---------------------------------------------------------------------
// Corpus fixtures
// ---------------------------------------------------------------------

std::string
serializeCase(const FuzzCase &fc)
{
    const CoreConfig &c = fc.config;
    std::ostringstream os;
    os << "# redsoc_fuzz fixture (replayed by test_fuzz_regress)\n";
    os << "name " << fc.name << '\n';
    os << "config core=" << c.name << " mode=" << schedModeName(c.mode)
       << " rsd=" << rsDesignName(c.rs_design)
       << " fw=" << c.frontend_width << " cw=" << c.commit_width
       << " rob=" << c.rob_entries << " lsq=" << c.lsq_entries
       << " rs=" << c.rs_entries << " alu=" << c.alu_units
       << " simd=" << c.simd_units << " fp=" << c.fp_units
       << " memports=" << c.mem_ports
       << " redirect=" << c.redirect_penalty
       << " ci=" << c.ci_precision_bits
       << " thr=" << c.slack_threshold_ticks
       << " dyn=" << c.dynamic_threshold
       << " epoch=" << c.threshold_epoch << " egpw=" << c.egpw
       << " skew=" << c.skewed_select
       << " horizon=" << c.no_commit_horizon
       << " l1=" << c.memory.l1_latency << " l2=" << c.memory.l2_latency
       << " mem=" << c.memory.mem_latency
       << " prefetch=" << c.memory.prefetch
       << " pfl1=" << c.memory.prefetch_fill_l1
       << " l1kb=" << c.memory.l1.size_bytes / 1024
       << " l1assoc=" << c.memory.l1.assoc
       << " l2kb=" << c.memory.l2.size_bytes / 1024
       << " l2assoc=" << c.memory.l2.assoc
       << " scale=" << c.memory.offcore_latency_scale << '\n';
    if (fc.cores > 1) {
        os << "proc cores=" << fc.cores << " llckb=" << fc.llc_kb
           << " llcassoc=" << fc.llc_assoc
           << " banks=" << fc.dram_banks
           << " occ=" << fc.bank_occupancy
           << " share=" << fc.share_addr << '\n';
    }
    auto emit_prog = [&os](const std::vector<FuzzInst> &prog) {
        for (const FuzzInst &fi : prog) {
            os << "inst " << fuzzKindName(fi.kind)
               << " sel=" << static_cast<unsigned>(fi.sel)
               << " d=" << static_cast<unsigned>(fi.dst)
               << " a=" << static_cast<unsigned>(fi.a)
               << " b=" << static_cast<unsigned>(fi.b)
               << " imm=" << fi.imm << '\n';
        }
    };
    emit_prog(fc.prog);
    for (size_t i = 0; i < fc.extra_progs.size(); ++i) {
        os << "core " << (i + 1) << '\n';
        emit_prog(fc.extra_progs[i]);
    }
    return os.str();
}

namespace {

[[noreturn]] void
malformed(const std::string &what)
{
    throw std::runtime_error("malformed fuzz fixture: " + what);
}

/** Split "key=value", throwing on anything else. */
std::pair<std::string, std::string>
splitKv(const std::string &tok)
{
    const size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
        malformed("expected key=value, got '" + tok + "'");
    return {tok.substr(0, eq), tok.substr(eq + 1)};
}

s64
parseNum(const std::string &v)
{
    try {
        size_t used = 0;
        const s64 n = std::stoll(v, &used);
        if (used != v.size())
            malformed("trailing junk in number '" + v + "'");
        return n;
    } catch (const std::logic_error &) {
        malformed("bad number '" + v + "'");
    }
}

unsigned
parseUnsigned(const std::string &v)
{
    const s64 n = parseNum(v);
    if (n < 0)
        malformed("negative value '" + v + "'");
    return static_cast<unsigned>(n);
}

double
parseDouble(const std::string &v)
{
    try {
        size_t used = 0;
        const double d = std::stod(v, &used);
        if (used != v.size())
            malformed("trailing junk in number '" + v + "'");
        return d;
    } catch (const std::logic_error &) {
        malformed("bad number '" + v + "'");
    }
}

} // namespace

FuzzCase
parseCase(const std::string &text)
{
    FuzzCase fc;
    bool saw_config = false;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word) || word[0] == '#')
            continue;
        if (word == "name") {
            if (!(ls >> fc.name))
                malformed("name line without a value");
        } else if (word == "config") {
            saw_config = true;
            // The preset establishes everything not overridden
            // (cache geometry, predictors, timing model).
            std::vector<std::pair<std::string, std::string>> kvs;
            std::string core = "medium";
            while (ls >> word) {
                auto [k, v] = splitKv(word);
                if (k == "core")
                    core = v;
                else
                    kvs.emplace_back(k, v);
            }
            if (core != "small" && core != "medium" && core != "big")
                malformed("unknown core preset '" + core + "'");
            CoreConfig &c = fc.config;
            c = coreByName(core);
            for (const auto &[k, v] : kvs) {
                if (k == "mode") {
                    if (v == "baseline")
                        c.mode = SchedMode::Baseline;
                    else if (v == "redsoc")
                        c.mode = SchedMode::ReDSOC;
                    else if (v == "mos")
                        c.mode = SchedMode::MOS;
                    else
                        malformed("unknown mode '" + v + "'");
                } else if (k == "rsd") {
                    if (v == "operational")
                        c.rs_design = RsDesign::Operational;
                    else if (v == "illustrative")
                        c.rs_design = RsDesign::Illustrative;
                    else
                        malformed("unknown RS design '" + v + "'");
                } else if (k == "fw") {
                    c.frontend_width = parseUnsigned(v);
                } else if (k == "cw") {
                    c.commit_width = parseUnsigned(v);
                } else if (k == "rob") {
                    c.rob_entries = parseUnsigned(v);
                } else if (k == "lsq") {
                    c.lsq_entries = parseUnsigned(v);
                } else if (k == "rs") {
                    c.rs_entries = parseUnsigned(v);
                } else if (k == "alu") {
                    c.alu_units = parseUnsigned(v);
                } else if (k == "simd") {
                    c.simd_units = parseUnsigned(v);
                } else if (k == "fp") {
                    c.fp_units = parseUnsigned(v);
                } else if (k == "memports") {
                    c.mem_ports = parseUnsigned(v);
                } else if (k == "redirect") {
                    c.redirect_penalty = parseUnsigned(v);
                } else if (k == "ci") {
                    c.ci_precision_bits = parseUnsigned(v);
                } else if (k == "thr") {
                    c.slack_threshold_ticks = parseUnsigned(v);
                } else if (k == "dyn") {
                    c.dynamic_threshold = parseUnsigned(v) != 0;
                } else if (k == "epoch") {
                    c.threshold_epoch = parseUnsigned(v);
                } else if (k == "egpw") {
                    c.egpw = parseUnsigned(v) != 0;
                } else if (k == "skew") {
                    c.skewed_select = parseUnsigned(v) != 0;
                } else if (k == "horizon") {
                    c.no_commit_horizon = parseUnsigned(v);
                } else if (k == "l1") {
                    c.memory.l1_latency = parseUnsigned(v);
                } else if (k == "l2") {
                    c.memory.l2_latency = parseUnsigned(v);
                } else if (k == "mem") {
                    c.memory.mem_latency = parseUnsigned(v);
                } else if (k == "prefetch") {
                    c.memory.prefetch = parseUnsigned(v) != 0;
                } else if (k == "pfl1") {
                    c.memory.prefetch_fill_l1 = parseUnsigned(v) != 0;
                } else if (k == "l1kb") {
                    c.memory.l1.size_bytes =
                        u64{parseUnsigned(v)} * 1024;
                } else if (k == "l1assoc") {
                    c.memory.l1.assoc = parseUnsigned(v);
                } else if (k == "l2kb") {
                    c.memory.l2.size_bytes =
                        u64{parseUnsigned(v)} * 1024;
                } else if (k == "l2assoc") {
                    c.memory.l2.assoc = parseUnsigned(v);
                } else if (k == "scale") {
                    c.memory.offcore_latency_scale = parseDouble(v);
                } else {
                    malformed("unknown config key '" + k + "'");
                }
            }
        } else if (word == "proc") {
            while (ls >> word) {
                auto [k, v] = splitKv(word);
                if (k == "cores")
                    fc.cores = parseUnsigned(v);
                else if (k == "llckb")
                    fc.llc_kb = parseUnsigned(v);
                else if (k == "llcassoc")
                    fc.llc_assoc = parseUnsigned(v);
                else if (k == "banks")
                    fc.dram_banks = parseUnsigned(v);
                else if (k == "occ")
                    fc.bank_occupancy = parseUnsigned(v);
                else if (k == "share")
                    fc.share_addr = parseUnsigned(v) != 0;
                else
                    malformed("unknown proc key '" + k + "'");
            }
            if (fc.cores == 0 || fc.cores > 64)
                malformed("proc cores out of range");
        } else if (word == "core") {
            if (!(ls >> word))
                malformed("core line without an index");
            const unsigned idx = parseUnsigned(word);
            if (idx != fc.extra_progs.size() + 1 || idx >= fc.cores)
                malformed("core index " + word + " out of sequence");
            fc.extra_progs.emplace_back();
        } else if (word == "inst") {
            if (!(ls >> word))
                malformed("inst line without a kind");
            const auto kind = fuzzKindByName(word);
            if (!kind)
                malformed("unknown inst kind '" + word + "'");
            FuzzInst fi;
            fi.kind = *kind;
            while (ls >> word) {
                auto [k, v] = splitKv(word);
                if (k == "sel")
                    fi.sel = static_cast<u8>(parseUnsigned(v));
                else if (k == "d")
                    fi.dst = static_cast<u8>(parseUnsigned(v));
                else if (k == "a")
                    fi.a = static_cast<u8>(parseUnsigned(v));
                else if (k == "b")
                    fi.b = static_cast<u8>(parseUnsigned(v));
                else if (k == "imm")
                    fi.imm = parseNum(v);
                else
                    malformed("unknown inst key '" + k + "'");
            }
            if (fc.extra_progs.empty())
                fc.prog.push_back(fi);
            else
                fc.extra_progs.back().push_back(fi);
        } else {
            malformed("unknown directive '" + word + "'");
        }
    }
    if (!saw_config)
        malformed("missing config line");
    if (fc.prog.empty())
        malformed("empty program");
    if (fc.cores > 1 && fc.extra_progs.size() != fc.cores - 1)
        malformed("expected " + std::to_string(fc.cores - 1) +
                  " extra core programs, got " +
                  std::to_string(fc.extra_progs.size()));
    if (fc.cores == 1 && !fc.extra_progs.empty())
        malformed("core sections without a multi-core proc line");
    for (const std::vector<FuzzInst> &prog : fc.extra_progs)
        if (prog.empty())
            malformed("empty core program");
    return fc;
}

} // namespace redsoc::fuzz

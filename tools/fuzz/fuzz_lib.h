/**
 * @file
 * redsoc_fuzz — differential fuzzing of the scheduler kernels.
 *
 * The harness generates random (trace, CoreConfig) points from a
 * seed, runs each through the Scan and Event kernels and through
 * traced and untraced paths, and compares every deterministic
 * CoreStats field plus the commit-schedule checksum (the same oracle
 * the hand-written differential suites use, tests/test_sched_equiv.cc
 * / test_trace_equiv.cc — but over generated op mixes and config
 * points instead of a fixed grid). A mismatching point is shrunk by a
 * ddmin-style minimizer to a minimal repro and serialized as a
 * self-contained text fixture that the test_fuzz_regress suite
 * replays from tests/fuzz_corpus/.
 *
 * Programs are generated as a recipe IR (FuzzInst) rather than raw
 * instructions so that (a) every recipe subsequence still builds into
 * a valid, halting program — the minimizer can drop any subset — and
 * (b) fixtures stay readable and diffable.
 */

#ifndef REDSOC_TOOLS_FUZZ_FUZZ_LIB_H
#define REDSOC_TOOLS_FUZZ_FUZZ_LIB_H

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ooo_core.h"
#include "func/interpreter.h"
#include "isa/builder.h"
#include "proc/processor.h"

namespace redsoc::fuzz {

/**
 * One program-recipe step. Fields are interpreted per kind; register
 * selectors index the x1..x8 data web (reduced modulo 8), `sel`
 * picks an opcode variant within the kind, `imm` is an immediate /
 * address offset / block-size selector. Every combination of field
 * values is valid by construction.
 */
struct FuzzInst
{
    enum class Kind : u8 {
        MovImm, ///< reseed a data register (imm)
        Alu,    ///< reg-reg ALU op (sel: ADD/SUB/AND/ORR/EOR)
        AluImm, ///< reg-imm ALU op (sel as Alu, imm & 0x3f)
        Mul,    ///< multi-cycle integer producer
        Sdiv,   ///< long-latency producer (divisor x10, never zero)
        Load,   ///< load from the aliasing window (sel: width 8/4/2/1)
        Store,  ///< store into the aliasing window (sel: width)
        Fop,    ///< FP op on x9 (sel: FADD/FMUL)
        Branch, ///< forward conditional over a small internal block
        NUM,
    };

    Kind kind = Kind::Alu;
    u8 sel = 0;
    u8 dst = 0; ///< destination selector (mod 8 -> x1..x8)
    u8 a = 0;   ///< first source selector
    u8 b = 0;   ///< second source selector
    s64 imm = 0;
};

const char *fuzzKindName(FuzzInst::Kind kind);
std::optional<FuzzInst::Kind> fuzzKindByName(const std::string &name);

/**
 * One fuzz point: a recipe program plus a full core configuration.
 * With `cores > 1` the point is a multi-programmed Processor mix:
 * core 0 runs `prog`, core i runs `extra_progs[i-1]`, and the LLC /
 * DRAM knobs shape the shared hierarchy (DESIGN.md §14). `cores == 1`
 * is the classic single-core differential point.
 */
struct FuzzCase
{
    std::string name = "case";
    CoreConfig config{};
    std::vector<FuzzInst> prog;

    // Multi-core section (inert at the default cores == 1).
    unsigned cores = 1;
    std::vector<std::vector<FuzzInst>> extra_progs{};
    u64 llc_kb = 2048;
    unsigned llc_assoc = 16;
    unsigned dram_banks = 8;
    Cycle bank_occupancy = 16;
    bool share_addr = false;
};

/** The ProcConfig a multi-core case describes (LLC line size pinned
 *  to the core's L1 line, as validateProcConfig requires). */
ProcConfig procConfigOf(const FuzzCase &fc);

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

/** Random core configuration, always valid (every structure nonzero,
 *  slack threshold within a cycle, both kernels representable). */
CoreConfig randomConfig(Rng &rng);

/** Random recipe program: one of several biased op-mix profiles
 *  (ALU-heavy, tight dependence chains, store/load aliasing,
 *  branch-heavy, mixed-width, FP/mixed pools). */
std::vector<FuzzInst> randomProgram(Rng &rng);

/** A full random point derived from @p seed (deterministic). */
FuzzCase randomCase(u64 seed);

/** A random multi-core point: 1-3 cores with independent programs,
 *  randomized LLC geometry, DRAM banking, and address-space sharing
 *  on top of the same config/program distributions. */
FuzzCase randomProcCase(u64 seed);

/** Build the executable trace: register-seed prologue, recipes,
 *  HALT. Any recipe sequence builds and halts. */
Trace buildTrace(const FuzzCase &fc);

/** One trace per core: core 0 from `prog`, the rest from
 *  `extra_progs`. */
std::vector<Trace> buildTraces(const FuzzCase &fc);

// ---------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------

/** Result of one kernel run: stats, or the deadlock-watchdog cycle. */
struct RunOutcome
{
    bool deadlock = false;
    Cycle deadlock_cycle = 0;
    CoreStats stats{};
};

/** Run @p trace under @p kernel (optionally traced), catching the
 *  deadlock watchdog. */
RunOutcome runOne(const Trace &trace, CoreConfig config,
                  SchedKernel kernel, bool traced);

/** First differing field between two outcomes ("" if identical):
 *  deadlock flag and cycle, every deterministic CoreStats field, the
 *  commit checksum, and the chain-length histogram. */
std::string diffOutcome(const RunOutcome &a, const RunOutcome &b);

/** Result of one multi-core run: per-core + LLC stats, or the first
 *  deadlock-watchdog cycle. */
struct ProcOutcome
{
    bool deadlock = false;
    Cycle deadlock_cycle = 0;
    ProcStats stats{};
};

/** Run the mix under @p kernel (optionally traced), catching the
 *  deadlock watchdog. */
ProcOutcome runProcOne(const std::vector<Trace> &traces,
                       ProcConfig config, SchedKernel kernel,
                       bool traced);

/** First differing field between two multi-core outcomes ("" if
 *  identical): total cycles, every per-core CoreStats field, and
 *  every LLC counter down to the per-core slices. */
std::string diffProcOutcome(const ProcOutcome &a, const ProcOutcome &b);

/**
 * The full oracle for one point: Scan vs Event untraced, then
 * traced-vs-untraced under each kernel. Returns "" when every pair
 * agrees, else a description of the first divergence. Multi-core
 * cases run the same three pairs through the Processor, comparing
 * per-core and LLC statistics.
 */
std::string checkCase(const FuzzCase &fc);

// ---------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------

/**
 * Shrink a diverging case: for multi-core points, first try
 * collapsing to one core and normalizing the LLC/DRAM knobs; then
 * ddmin over every surviving recipe program (drop chunks, halving
 * the chunk size, while the divergence persists), then per-field
 * config normalization toward the medium-core defaults. Requires
 * checkCase(fc) to be non-empty; the returned case still diverges.
 */
FuzzCase minimizeCase(const FuzzCase &fc);

// ---------------------------------------------------------------------
// Corpus fixtures
// ---------------------------------------------------------------------

/** Serialize to the self-contained text fixture format (see
 *  DESIGN.md §11.3 and tests/fuzz_corpus/). */
std::string serializeCase(const FuzzCase &fc);

/** Parse a fixture; throws std::runtime_error on malformed input. */
FuzzCase parseCase(const std::string &text);

} // namespace redsoc::fuzz

#endif // REDSOC_TOOLS_FUZZ_FUZZ_LIB_H

/**
 * @file
 * redsoc_sweep_client: command-line client for redsoc_sweepd.
 *
 *   redsoc_sweep_client --socket PATH ping
 *   redsoc_sweep_client --socket PATH stats
 *   redsoc_sweep_client --socket PATH shutdown
 *   redsoc_sweep_client --socket PATH run --workload NAME
 *       [--core small|medium|big] [--mode baseline|redsoc|mos]
 *       [--max-ops N] [--stats-text]
 *
 * "run" submits one point, waits, and prints the cycle count and IPC
 * (or, with --stats-text, the raw run-cache serialization the server
 * returned — the bit-exact wire payload, useful for diffing against
 * a local run). Exit status: 0 ok, 1 failure, 2 usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/config_codec.h"
#include "server/sweep_client.h"
#include "sim/driver.h"
#include "sim/run_cache.h"

using namespace redsoc;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH ping|stats|shutdown\n"
        "       %s --socket PATH run --workload NAME [--core NAME]\n"
        "          [--mode baseline|redsoc|mos] [--max-ops N] "
        "[--stats-text]\n",
        argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string command;
    std::string workload;
    std::string core = "medium";
    std::string mode = "redsoc";
    SeqNum max_ops = 2'000'000;
    bool stats_text = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--core") {
            core = next();
        } else if (arg == "--mode") {
            mode = next();
        } else if (arg == "--max-ops") {
            max_ops = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--stats-text") {
            stats_text = true;
        } else if (arg == "ping" || arg == "stats" ||
                   arg == "shutdown" || arg == "run") {
            command = arg;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (socket_path.empty() || command.empty()) {
        usage(argv[0]);
        return 2;
    }

    auto client = SweepClient::connect(socket_path);
    if (!client) {
        std::fprintf(stderr, "cannot connect to '%s'\n",
                     socket_path.c_str());
        return 1;
    }

    if (command == "ping") {
        if (!client->ping()) {
            std::fprintf(stderr, "ping failed\n");
            return 1;
        }
        std::printf("ok\n");
        return 0;
    }
    if (command == "stats") {
        const std::string stats = client->statsJson();
        if (stats.empty()) {
            std::fprintf(stderr, "stats failed\n");
            return 1;
        }
        std::printf("%s\n", stats.c_str());
        return 0;
    }
    if (command == "shutdown") {
        if (!client->requestShutdown()) {
            std::fprintf(stderr, "shutdown request failed\n");
            return 1;
        }
        std::printf("ok\n");
        return 0;
    }

    // run
    if (workload.empty()) {
        usage(argv[0]);
        return 2;
    }
    CoreConfig config = coreByName(core);
    if (mode == "baseline")
        config.mode = SchedMode::Baseline;
    else if (mode == "redsoc")
        config.mode = SchedMode::ReDSOC;
    else if (mode == "mos")
        config.mode = SchedMode::MOS;
    else {
        usage(argv[0]);
        return 2;
    }

    if (stats_text) {
        SweepClient::PointRequest p;
        p.workload = workload;
        p.config_text = serializeCoreConfig(config);
        p.max_ops = max_ops;
        const auto results = client->runBatch({p});
        if (!results || results->size() != 1 || !(*results)[0].ok) {
            std::fprintf(stderr, "point failed%s%s\n",
                         results && !results->empty() ? ": " : "",
                         results && !results->empty()
                             ? (*results)[0].error.c_str()
                             : "");
            return 1;
        }
        std::fputs((*results)[0].payload.c_str(), stdout);
        return 0;
    }

    const auto stats = client->runPoint(workload, config, max_ops);
    if (!stats) {
        std::fprintf(stderr, "point failed\n");
        return 1;
    }
    std::printf("%s/%s on %s: %llu cycles, IPC %.3f (server)\n",
                core.c_str(), mode.c_str(), workload.c_str(),
                static_cast<unsigned long long>(stats->cycles),
                stats->ipc());
    return 0;
}

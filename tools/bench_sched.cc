/**
 * @file
 * bench_sched: scheduler-kernel microbenchmark. Runs a workload x
 * mode grid under both simulation kernels (legacy full-scan vs
 * event-driven) on cold, single-threaded, uncached OooCore runs and
 * reports simulator throughput (kilo-cycles/s and simulated MIPS)
 * plus the event/scan speedup per point.
 *
 *   bench_sched [fast] [--max-ops N] [--reps N] [--baseline FILE]
 *               [--tolerance PCT]
 *
 * Each grid point is run --reps times (default 3) and the *minimum*
 * wall-clock is reported: on a noisy host the minimum is the least
 * contaminated estimate of the kernel's true cost, and the
 * architectural results (cycles, committed ops, commit checksum) are
 * cross-checked for bit-identity across the repetitions.
 *
 * Human-readable table goes to stderr; a JSON array of every grid
 * point goes to stdout (for scripted regression tracking — the
 * committed BENCH_sched.json is this output).
 *
 * --baseline FILE re-reads a previous stdout capture and diffs the
 * current run against it:
 *   - architectural stats (cycles, committed, commit checksum) must
 *    match the baseline EXACTLY — they are machine-independent;
 *   - wall-clock is compared only *relatively*: a global calibration
 *     factor (the median of current/baseline sim_seconds over the
 *     shared points) absorbs the overall speed difference between
 *     hosts, and each point must then sit within --tolerance percent
 *     (default 15) of the calibrated baseline.
 * Exit status 1 on any architectural mismatch or out-of-tolerance
 * point, so CI can gate on it. When REDSOC_PROFILE is set the
 * per-phase host profile is appended to stderr.
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "core/ooo_core.h"
#include "sim/profile.h"
#include "workloads/registry.h"

using namespace redsoc;

namespace {

struct GridPoint
{
    std::string workload;
    std::string mode;
    std::string kernel;
    Cycle cycles = 0;
    u64 committed = 0;
    u64 checksum = 0;
    double sim_seconds = 0.0;

    std::string key() const
    {
        return workload + "/" + mode + "/" + kernel;
    }
    double kcps() const
    {
        return sim_seconds <= 0.0 ? 0.0
                                  : static_cast<double>(cycles) /
                                        sim_seconds / 1e3;
    }
    double mips() const
    {
        return sim_seconds <= 0.0 ? 0.0
                                  : static_cast<double>(committed) /
                                        sim_seconds / 1e6;
    }
};

CoreConfig
gridConfig(SchedMode mode, SchedKernel kernel)
{
    CoreConfig cfg = bigCore();
    cfg.mode = mode;
    cfg.sched_kernel = kernel;
    return cfg;
}

/**
 * Minimal field extraction for bench_sched's own JSON output (one
 * object per line, fixed key set written by this file). Not a general
 * JSON parser: good enough to round-trip the committed baseline
 * without growing a dependency.
 */
bool
jsonStr(const std::string &line, const char *field, std::string &out)
{
    const std::string pat = std::string("\"") + field + "\": \"";
    const size_t at = line.find(pat);
    if (at == std::string::npos)
        return false;
    const size_t start = at + pat.size();
    const size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    out = line.substr(start, end - start);
    return true;
}

bool
jsonNum(const std::string &line, const char *field, double &out)
{
    const std::string pat = std::string("\"") + field + "\": ";
    const size_t at = line.find(pat);
    if (at == std::string::npos)
        return false;
    out = std::atof(line.c_str() + at + pat.size());
    return true;
}

bool
jsonU64(const std::string &line, const char *field, u64 &out)
{
    const std::string pat = std::string("\"") + field + "\": ";
    const size_t at = line.find(pat);
    if (at == std::string::npos)
        return false;
    out = std::strtoull(line.c_str() + at + pat.size(), nullptr, 10);
    return true;
}

bool
loadBaseline(const std::string &path, std::vector<GridPoint> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_sched: cannot open baseline %s\n",
                     path.c_str());
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        GridPoint p;
        if (!jsonStr(line, "workload", p.workload))
            continue; // array brackets / malformed line
        if (!jsonStr(line, "mode", p.mode) ||
            !jsonStr(line, "kernel", p.kernel))
            continue;
        u64 cyc = 0;
        jsonU64(line, "cycles", cyc);
        p.cycles = static_cast<Cycle>(cyc);
        jsonU64(line, "committed", p.committed);
        jsonU64(line, "checksum", p.checksum);
        jsonNum(line, "sim_seconds", p.sim_seconds);
        out.push_back(std::move(p));
    }
    if (out.empty()) {
        std::fprintf(stderr,
                     "bench_sched: baseline %s has no grid points\n",
                     path.c_str());
        return false;
    }
    return true;
}

const GridPoint *
findPoint(const std::vector<GridPoint> &points, const std::string &key)
{
    for (const GridPoint &p : points)
        if (p.key() == key)
            return &p;
    return nullptr;
}

/**
 * Diff @p current against @p baseline (see the file comment for the
 * contract). Returns the number of failures; prints one line per
 * compared point to stderr.
 */
unsigned
diffBaseline(const std::vector<GridPoint> &current,
             const std::vector<GridPoint> &baseline, double tolerance)
{
    // Global host-speed calibration: median of current/baseline
    // wall-clock ratios over the shared points. A different machine
    // (or compiler) shifts every point by roughly the same factor;
    // only *relative* movement flags a regression.
    std::vector<double> ratios;
    for (const GridPoint &c : current) {
        const GridPoint *b = findPoint(baseline, c.key());
        if (b && b->sim_seconds > 0.0 && c.sim_seconds > 0.0)
            ratios.push_back(c.sim_seconds / b->sim_seconds);
    }
    double calib = 1.0;
    if (!ratios.empty()) {
        std::sort(ratios.begin(), ratios.end());
        calib = ratios[ratios.size() / 2];
    }

    unsigned failures = 0;
    unsigned compared = 0;
    for (const GridPoint &c : current) {
        const GridPoint *b = findPoint(baseline, c.key());
        if (!b) {
            std::fprintf(stderr, "  %-24s not in baseline (skipped)\n",
                         c.key().c_str());
            continue;
        }
        ++compared;
        if (c.cycles != b->cycles || c.committed != b->committed ||
            c.checksum != b->checksum) {
            ++failures;
            std::fprintf(
                stderr,
                "  %-24s ARCH MISMATCH: cycles %llu vs %llu, "
                "committed %llu vs %llu, checksum %016llx vs %016llx\n",
                c.key().c_str(),
                static_cast<unsigned long long>(c.cycles),
                static_cast<unsigned long long>(b->cycles),
                static_cast<unsigned long long>(c.committed),
                static_cast<unsigned long long>(b->committed),
                static_cast<unsigned long long>(c.checksum),
                static_cast<unsigned long long>(b->checksum));
            continue;
        }
        if (b->sim_seconds <= 0.0 || c.sim_seconds <= 0.0) {
            std::fprintf(stderr, "  %-24s arch ok (no wall-clock)\n",
                         c.key().c_str());
            continue;
        }
        const double rel =
            c.sim_seconds / (b->sim_seconds * calib);
        const bool slow = rel > 1.0 + tolerance / 100.0;
        const bool fast = rel < 1.0 / (1.0 + tolerance / 100.0);
        if (slow)
            ++failures;
        std::fprintf(stderr,
                     "  %-24s arch ok, calibrated wall-clock %+.1f%%%s\n",
                     c.key().c_str(), (rel - 1.0) * 100.0,
                     slow ? "  ** REGRESSION **"
                          : fast ? "  (faster than baseline)" : "");
    }
    std::fprintf(stderr,
                 "baseline diff: %u points compared, calibration "
                 "x%.2f, tolerance +/-%.0f%%, %u failure(s)\n",
                 compared, calib, tolerance, failures);
    if (compared == 0)
        ++failures; // an empty comparison must not pass CI
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    SeqNum max_ops = 2'000'000;
    unsigned reps = 3;
    double tolerance = 15.0;
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "fast") {
            fast = true;
        } else if (arg == "--max-ops" && i + 1 < argc) {
            max_ops = static_cast<SeqNum>(std::atoll(argv[++i]));
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
            if (reps == 0)
                reps = 1;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [fast] [--max-ops N] [--reps N] "
                         "[--baseline FILE] [--tolerance PCT]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::string> workloads =
        fast ? std::vector<std::string>{"crc", "act"}
             : std::vector<std::string>{"crc", "gsm", "act", "conv"};
    const std::vector<std::pair<std::string, SchedMode>> modes = {
        {"baseline", SchedMode::Baseline},
        {"redsoc", SchedMode::ReDSOC},
        {"mos", SchedMode::MOS},
    };
    const std::vector<std::pair<std::string, SchedKernel>> kernels = {
        {"scan", SchedKernel::Scan},
        {"event", SchedKernel::Event},
    };

    std::vector<GridPoint> points;
    Table table({"workload", "mode", "scan kc/s", "event kc/s",
                 "scan MIPS", "event MIPS", "speedup"});
    double log_speedup_sum = 0.0;
    unsigned speedup_count = 0;

    for (const std::string &workload : workloads) {
        // One trace per workload, shared by every grid point; runs
        // themselves are cold (fresh core, no run cache, one thread).
        const Trace trace = traceWorkload(workload, max_ops);
        for (const auto &[mode_name, mode] : modes) {
            double kcps[2] = {0.0, 0.0};
            double mips[2] = {0.0, 0.0};
            for (unsigned k = 0; k < kernels.size(); ++k) {
                GridPoint p;
                p.workload = workload;
                p.mode = mode_name;
                p.kernel = kernels[k].first;
                // Best-of-N: keep the minimum wall-clock (least host
                // contamination) and insist the architectural result
                // is bit-identical on every repetition.
                for (unsigned r = 0; r < reps; ++r) {
                    OooCore core(gridConfig(mode, kernels[k].second));
                    const CoreStats stats = core.run(trace);
                    if (r == 0) {
                        p.cycles = stats.cycles;
                        p.committed = stats.committed;
                        p.checksum = stats.commit_checksum;
                        p.sim_seconds = stats.sim_seconds;
                    } else {
                        fatal_if(stats.cycles != p.cycles ||
                                     stats.committed != p.committed ||
                                     stats.commit_checksum != p.checksum,
                                 "bench_sched: nondeterministic rerun "
                                 "of ", p.key());
                        p.sim_seconds =
                            std::min(p.sim_seconds, stats.sim_seconds);
                    }
                }
                kcps[k] = p.kcps();
                mips[k] = p.mips();
                points.push_back(std::move(p));
            }
            const double speedup =
                kcps[0] > 0.0 ? kcps[1] / kcps[0] : 0.0;
            if (speedup > 0.0) {
                log_speedup_sum += std::log(speedup);
                ++speedup_count;
            }
            table.addRow({workload, mode_name, Table::num(kcps[0], 1),
                          Table::num(kcps[1], 1), Table::num(mips[0], 3),
                          Table::num(mips[1], 3),
                          Table::num(speedup, 2)});
        }
    }

    const double geomean =
        speedup_count > 0
            ? std::exp(log_speedup_sum / speedup_count)
            : 0.0;
    std::fprintf(stderr, "=== bench_sched (event vs scan kernel) ===\n%s\n",
                 table.render().c_str());
    std::fprintf(stderr, "geomean event/scan speedup: %.2fx over %u "
                         "points (max_ops=%llu, best of %u rep%s%s)\n",
                 geomean, speedup_count,
                 static_cast<unsigned long long>(max_ops), reps,
                 reps == 1 ? "" : "s", fast ? ", fast mode" : "");
    prof::report(std::cerr);

    // JSON to stdout for scripted consumption (and the committed
    // BENCH_sched.json baseline). One object per line: the baseline
    // loader in this file depends on that shape.
    std::printf("[\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const GridPoint &p = points[i];
        std::printf("  {\"workload\": \"%s\", \"mode\": \"%s\", "
                    "\"kernel\": \"%s\", \"cycles\": %llu, "
                    "\"committed\": %llu, \"checksum\": %llu, "
                    "\"sim_seconds\": %.6f, "
                    "\"kcycles_per_sec\": %.1f, \"sim_mips\": %.3f}%s\n",
                    p.workload.c_str(), p.mode.c_str(), p.kernel.c_str(),
                    static_cast<unsigned long long>(p.cycles),
                    static_cast<unsigned long long>(p.committed),
                    static_cast<unsigned long long>(p.checksum),
                    p.sim_seconds, p.kcps(), p.mips(),
                    i + 1 < points.size() ? "," : "");
    }
    std::printf("]\n");

    if (!baseline_path.empty()) {
        std::vector<GridPoint> baseline;
        if (!loadBaseline(baseline_path, baseline))
            return 1;
        std::fprintf(stderr, "=== baseline diff vs %s ===\n",
                     baseline_path.c_str());
        if (diffBaseline(points, baseline, tolerance) != 0)
            return 1;
    }
    return 0;
}

/**
 * @file
 * bench_sched: scheduler-kernel microbenchmark. Runs a workload x
 * mode grid under both simulation kernels (legacy full-scan vs
 * event-driven) on cold, single-threaded, uncached OooCore runs and
 * reports simulator throughput (kilo-cycles/s and simulated MIPS)
 * plus the event/scan speedup per point.
 *
 *   bench_sched [fast] [--max-ops N]
 *
 * Human-readable table goes to stderr; a JSON array of every grid
 * point goes to stdout (for scripted regression tracking). When
 * REDSOC_PROFILE is set the per-phase host profile is appended to
 * stderr.
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/ooo_core.h"
#include "sim/profile.h"
#include "workloads/registry.h"

using namespace redsoc;

namespace {

struct GridPoint
{
    std::string workload;
    std::string mode;
    std::string kernel;
    Cycle cycles = 0;
    u64 committed = 0;
    double sim_seconds = 0.0;

    double kcps() const
    {
        return sim_seconds <= 0.0 ? 0.0
                                  : static_cast<double>(cycles) /
                                        sim_seconds / 1e3;
    }
    double mips() const
    {
        return sim_seconds <= 0.0 ? 0.0
                                  : static_cast<double>(committed) /
                                        sim_seconds / 1e6;
    }
};

CoreConfig
gridConfig(SchedMode mode, SchedKernel kernel)
{
    CoreConfig cfg = bigCore();
    cfg.mode = mode;
    cfg.sched_kernel = kernel;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    SeqNum max_ops = 2'000'000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "fast") {
            fast = true;
        } else if (arg == "--max-ops" && i + 1 < argc) {
            max_ops = static_cast<SeqNum>(std::atoll(argv[++i]));
        } else {
            std::fprintf(stderr, "usage: %s [fast] [--max-ops N]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::string> workloads =
        fast ? std::vector<std::string>{"crc", "act"}
             : std::vector<std::string>{"crc", "gsm", "act", "conv"};
    const std::vector<std::pair<std::string, SchedMode>> modes = {
        {"baseline", SchedMode::Baseline},
        {"redsoc", SchedMode::ReDSOC},
        {"mos", SchedMode::MOS},
    };
    const std::vector<std::pair<std::string, SchedKernel>> kernels = {
        {"scan", SchedKernel::Scan},
        {"event", SchedKernel::Event},
    };

    std::vector<GridPoint> points;
    Table table({"workload", "mode", "scan kc/s", "event kc/s",
                 "scan MIPS", "event MIPS", "speedup"});
    double log_speedup_sum = 0.0;
    unsigned speedup_count = 0;

    for (const std::string &workload : workloads) {
        // One trace per workload, shared by every grid point; runs
        // themselves are cold (fresh core, no run cache, one thread).
        const Trace trace = traceWorkload(workload, max_ops);
        for (const auto &[mode_name, mode] : modes) {
            double kcps[2] = {0.0, 0.0};
            double mips[2] = {0.0, 0.0};
            for (unsigned k = 0; k < kernels.size(); ++k) {
                OooCore core(gridConfig(mode, kernels[k].second));
                const CoreStats stats = core.run(trace);
                GridPoint p;
                p.workload = workload;
                p.mode = mode_name;
                p.kernel = kernels[k].first;
                p.cycles = stats.cycles;
                p.committed = stats.committed;
                p.sim_seconds = stats.sim_seconds;
                kcps[k] = p.kcps();
                mips[k] = p.mips();
                points.push_back(std::move(p));
            }
            const double speedup =
                kcps[0] > 0.0 ? kcps[1] / kcps[0] : 0.0;
            if (speedup > 0.0) {
                log_speedup_sum += std::log(speedup);
                ++speedup_count;
            }
            table.addRow({workload, mode_name, Table::num(kcps[0], 1),
                          Table::num(kcps[1], 1), Table::num(mips[0], 3),
                          Table::num(mips[1], 3),
                          Table::num(speedup, 2)});
        }
    }

    const double geomean =
        speedup_count > 0
            ? std::exp(log_speedup_sum / speedup_count)
            : 0.0;
    std::fprintf(stderr, "=== bench_sched (event vs scan kernel) ===\n%s\n",
                 table.render().c_str());
    std::fprintf(stderr, "geomean event/scan speedup: %.2fx over %u "
                         "points (max_ops=%llu%s)\n",
                 geomean, speedup_count,
                 static_cast<unsigned long long>(max_ops),
                 fast ? ", fast mode" : "");
    prof::report(std::cerr);

    // JSON to stdout for scripted consumption.
    std::printf("[\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const GridPoint &p = points[i];
        std::printf("  {\"workload\": \"%s\", \"mode\": \"%s\", "
                    "\"kernel\": \"%s\", \"cycles\": %llu, "
                    "\"committed\": %llu, \"sim_seconds\": %.6f, "
                    "\"kcycles_per_sec\": %.1f, \"sim_mips\": %.3f}%s\n",
                    p.workload.c_str(), p.mode.c_str(), p.kernel.c_str(),
                    static_cast<unsigned long long>(p.cycles),
                    static_cast<unsigned long long>(p.committed),
                    p.sim_seconds, p.kcps(), p.mips(),
                    i + 1 < points.size() ? "," : "");
    }
    std::printf("]\n");
    return 0;
}

/**
 * @file
 * redsoc_lint CLI.
 *
 *   redsoc_lint [--root DIR] [--baseline FILE]
 *               [--write-baseline FILE] [--jobs N] [--list-rules]
 *               [paths...]
 *
 * Paths default to src tools tests (relative to --root, default cwd);
 * tests/lint_fixtures and build trees are always excluded. --jobs
 * parallelizes the per-file scan (the semantic rules lex and walk
 * every file); findings are byte-identical for every N. Exits 0 when
 * no findings outside the baseline remain, 1 otherwise, 2 on
 * usage/I-O errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void
usage()
{
    std::fputs(
        "usage: redsoc_lint [--root DIR] [--baseline FILE]\n"
        "                   [--write-baseline FILE] [--jobs N]\n"
        "                   [--list-rules] [paths...]\n"
        "Simulator determinism lint; see DESIGN.md section 9.\n",
        stderr);
}

void
listRules()
{
    std::fputs(
        "init-field     *Config/*Stats fields need in-class "
        "initializers\n"
        "nondet-api     banned wall-clock / unseeded-randomness APIs\n"
        "nondet-iter    range-for over unordered containers\n"
        "ptr-key-order  associative containers keyed by pointers\n"
        "cycle-narrow   cycle/tick values narrowed below 64 bits\n"
        "float-accum    float accumulation in per-cycle loops\n"
        "stat-complete  CoreStats fields must reach the run-cache "
        "codec and the equivalence comparator\n"
        "trace-complete PipeEventKind enumerators must reach every "
        "trace exporter switch\n"
        "audit-complete InvariantAudit enumerators must each have a "
        "corrupting unit test\n"
        "critpath-complete PipeEventKind enumerators must reach the "
        "critpath dependence-graph builder\n"
        "hot-alloc      no heap allocation in per-cycle scheduler "
        "functions\n"
        "guarded-by     REDSOC_GUARDED_BY fields only touched with "
        "their mutex held; mutex-owning classes annotate every field\n"
        "lock-order     global mutex-acquisition graph must be "
        "acyclic\n"
        "nondet-taint   wall-clock/random/pointer-cast/unordered "
        "values must not flow into stats, trace events or findings\n"
        "suppress with: // redsoc-lint: allow(rule-id[,rule-id...])\n",
        stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace redsoc::lint;

    Options opt;
    std::string write_baseline;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "redsoc_lint: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root")
            opt.root = value("--root");
        else if (arg == "--baseline")
            opt.baseline_path = value("--baseline");
        else if (arg == "--write-baseline")
            write_baseline = value("--write-baseline");
        else if (arg == "--jobs") {
            const long n = std::strtol(value("--jobs"), nullptr, 10);
            if (n < 1) {
                std::fprintf(stderr,
                             "redsoc_lint: --jobs needs a positive "
                             "integer\n");
                return 2;
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "redsoc_lint: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (!paths.empty())
        opt.paths = paths;

    try {
        const std::vector<Finding> all = lintTree(opt);

        if (!write_baseline.empty()) {
            std::ofstream out(write_baseline);
            if (!out) {
                std::fprintf(stderr,
                             "redsoc_lint: cannot write '%s'\n",
                             write_baseline.c_str());
                return 2;
            }
            out << "# redsoc_lint baseline — grandfathered findings."
                   "\n# Every entry must carry a justification "
                   "comment above it.\n";
            for (const Finding &f : all)
                out << f.key() << '\n';
            std::fprintf(stderr, "redsoc_lint: wrote %zu entries to %s\n",
                         all.size(), write_baseline.c_str());
            return 0;
        }

        const std::set<std::string> base =
            opt.baseline_path.empty()
                ? std::set<std::string>{}
                : loadBaseline(opt.baseline_path);
        const std::vector<Finding> fresh = newFindings(all, base);
        for (const Finding &f : fresh)
            std::fprintf(stdout, "%s\n", f.pretty().c_str());
        const size_t grandfathered = all.size() - fresh.size();
        if (grandfathered > 0)
            std::fprintf(stderr,
                         "redsoc_lint: %zu finding(s) matched the "
                         "baseline\n",
                         grandfathered);
        if (!fresh.empty()) {
            std::fprintf(stderr,
                         "redsoc_lint: %zu new finding(s)\n",
                         fresh.size());
            return 1;
        }
        std::fprintf(stderr, "redsoc_lint: clean\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "redsoc_lint: %s\n", e.what());
        return 2;
    }
}

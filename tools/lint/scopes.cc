/**
 * @file
 * Scope-tree construction: one forward pass, every '{' matched and
 * classified from the statement slice in front of it. See scopes.h
 * for the contract and the approximation boundaries.
 */

#include "scopes.h"

namespace redsoc::lint {

namespace {

bool
isPunct(const Token &t, const char *s)
{
    return t.kind == TokKind::Punct && t.text == s;
}

bool
isIdent(const Token &t, const char *s)
{
    return t.kind == TokKind::Ident && t.text == s;
}

bool
isAnnotationIdent(const Token &t)
{
    return t.kind == TokKind::Ident &&
           t.text.rfind("REDSOC_", 0) == 0;
}

/** Keywords whose statement owns a '{' that is a plain block. */
bool
controlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "do" || s == "else" || s == "try" || s == "catch" ||
           s == "case" || s == "default" || s == "extern" ||
           s == "return";
}

/** Forward match of the '>' closing the '<' at @p open ('<' and '>'
 *  lex as single-char puncts, so nested template argument lists are
 *  plain depth counting). Returns @p end if unmatched. */
size_t
matchAngle(const std::vector<Token> &t, size_t open, size_t end)
{
    int depth = 0;
    for (size_t i = open; i < end; ++i) {
        if (isPunct(t[i], "<"))
            ++depth;
        else if (isPunct(t[i], ">") && --depth == 0)
            return i;
        // A ';' or '{' inside an "argument list" means the '<' was a
        // comparison after all: give up.
        else if (isPunct(t[i], ";") || isPunct(t[i], "{"))
            return end;
    }
    return end;
}

/** Forward match of the ')' closing the '(' at @p open. */
size_t
matchParen(const std::vector<Token> &t, size_t open, size_t end)
{
    int depth = 0;
    for (size_t i = open; i < end; ++i) {
        if (isPunct(t[i], "("))
            ++depth;
        else if (isPunct(t[i], ")") && --depth == 0)
            return i;
    }
    return end;
}

/** Backward match of the '(' opening the ')' at @p close; @p lo is
 *  the slice start. Returns @p close if unmatched. */
size_t
matchParenBack(const std::vector<Token> &t, size_t close, size_t lo)
{
    int depth = 0;
    for (size_t i = close + 1; i-- > lo;) {
        if (isPunct(t[i], ")"))
            ++depth;
        else if (isPunct(t[i], "(") && --depth == 0)
            return i;
    }
    return close;
}

struct Classified
{
    ScopeKind kind = ScopeKind::Block;
    std::string name;
    std::string class_name; ///< only the X:: qualifier, Function only
    std::vector<std::string> requires_;
    std::vector<std::string> excludes_;
};

/** Classify the '{' at @p brace from the statement slice
 *  [@p lo, @p brace). */
Classified
classify(const std::vector<Token> &t, size_t lo, size_t brace)
{
    Classified c;
    if (lo >= brace)
        return c; // empty slice: bare block

    // Skip a leading template<...> head.
    size_t b = lo;
    if (isIdent(t[b], "template") && b + 1 < brace &&
        isPunct(t[b + 1], "<")) {
        size_t close = matchAngle(t, b + 1, brace);
        if (close == brace)
            return c;
        b = close + 1;
        if (b >= brace)
            return c;
    }

    if (isIdent(t[b], "namespace")) {
        c.kind = ScopeKind::Namespace;
        for (size_t i = b + 1; i < brace; ++i)
            if (t[i].kind == TokKind::Ident)
                c.name += (c.name.empty() ? "" : "::") + t[i].text;
        return c;
    }
    if (isIdent(t[b], "struct") || isIdent(t[b], "class") ||
        isIdent(t[b], "union")) {
        c.kind = ScopeKind::Class;
        for (size_t i = b + 1; i < brace; ++i) {
            if (isAnnotationIdent(t[i])) { // e.g. a capability attr
                if (i + 1 < brace && isPunct(t[i + 1], "("))
                    i = matchParen(t, i + 1, brace);
                continue;
            }
            if (t[i].kind == TokKind::Ident) {
                c.name = t[i].text;
                break;
            }
            if (isPunct(t[i], ":")) // unnamed with base? stop anyway
                break;
        }
        return c;
    }
    if (isIdent(t[b], "enum")) {
        c.kind = ScopeKind::Enum;
        for (size_t i = b + 1; i < brace; ++i) {
            if (isIdent(t[i], "class") || isIdent(t[i], "struct"))
                continue;
            if (isPunct(t[i], ":"))
                break;
            if (t[i].kind == TokKind::Ident) {
                c.name = t[i].text;
                break;
            }
        }
        return c;
    }
    if (t[b].kind == TokKind::Ident && controlKeyword(t[b].text))
        return c; // Block

    // Lambda: slice ends with "...]" or "...](params) specifiers".
    {
        size_t e = brace;
        while (e > b) {
            const Token &tk = t[e - 1];
            if (tk.kind == TokKind::Ident || isPunct(tk, "->") ||
                isPunct(tk, "&") || isPunct(tk, "*") ||
                isPunct(tk, "::")) {
                --e;
                continue;
            }
            if (isPunct(tk, ">")) {
                // Skip a template-argument group of a trailing
                // return type, backwards.
                int depth = 0;
                size_t i = e;
                while (i-- > b) {
                    if (isPunct(t[i], ">"))
                        ++depth;
                    else if (isPunct(t[i], "<") && --depth == 0)
                        break;
                }
                if (depth != 0)
                    break;
                e = i;
                continue;
            }
            break;
        }
        if (e > b && isPunct(t[e - 1], "]")) {
            c.kind = ScopeKind::Lambda;
            return c;
        }
        if (e > b && isPunct(t[e - 1], ")")) {
            size_t open = matchParenBack(t, e - 1, b);
            if (open != e - 1 && open > b && isPunct(t[open - 1], "]")) {
                c.kind = ScopeKind::Lambda;
                return c;
            }
        }
    }

    // Brace initializer: "Type name = {...}" / "auto x = Foo{...}".
    {
        int pd = 0, ad = 0;
        for (size_t i = b; i < brace; ++i) {
            if (isPunct(t[i], "("))
                ++pd;
            else if (isPunct(t[i], ")"))
                --pd;
            else if (pd == 0 && isPunct(t[i], "<"))
                ++ad;
            else if (pd == 0 && ad > 0 && isPunct(t[i], ">"))
                --ad;
            else if (pd == 0 && ad == 0 && isPunct(t[i], "=") &&
                     (i == b || (!isPunct(t[i - 1], "<") &&
                                 !isPunct(t[i - 1], ">"))))
                return c; // Block
        }
    }

    // Constructor member-initializer with brace init ("...: v_{1}"):
    // the '{' after "v_" is an initializer, not the body.
    if (t[brace - 1].kind != TokKind::Punct) {
        int pd = 0;
        bool after_parens = false;
        for (size_t i = b; i < brace; ++i) {
            if (isPunct(t[i], "("))
                ++pd;
            else if (isPunct(t[i], ")")) {
                --pd;
                after_parens = true;
            } else if (pd == 0 && after_parens && isPunct(t[i], ":"))
                return c; // Block (and so is the real body: caveat)
        }
    }

    // Function definition: first top-level '(' preceded by a plain
    // identifier names the function (constructors included — their
    // member-initializer parens come later).
    {
        int ad = 0;
        for (size_t i = b; i < brace; ++i) {
            if (isPunct(t[i], "<")) {
                size_t close = matchAngle(t, i, brace);
                if (close != brace) {
                    i = close;
                    continue;
                }
                ++ad;
            } else if (isPunct(t[i], ">") && ad > 0) {
                --ad;
            } else if (ad == 0 && isPunct(t[i], "(") && i > b &&
                       t[i - 1].kind == TokKind::Ident) {
                if (isAnnotationIdent(t[i - 1])) {
                    i = matchParen(t, i, brace);
                    continue;
                }
                c.kind = ScopeKind::Function;
                c.name = t[i - 1].text;
                // X:: qualifier (destructors: skip the '~').
                size_t n = i - 1;
                if (n > b && isPunct(t[n - 1], "~"))
                    --n;
                if (n >= b + 2 && isPunct(t[n - 1], "::") &&
                    t[n - 2].kind == TokKind::Ident)
                    c.class_name = t[n - 2].text;
                // Annotations between the parameter list and '{'.
                size_t close = matchParen(t, i, brace);
                for (size_t j = close; j < brace; ++j) {
                    if (t[j].kind != TokKind::Ident ||
                        j + 1 >= brace || !isPunct(t[j + 1], "("))
                        continue;
                    if (t[j].text == "REDSOC_REQUIRES")
                        for (std::string &m :
                             parseMutexArgs(t, j + 1))
                            c.requires_.push_back(std::move(m));
                    else if (t[j].text == "REDSOC_EXCLUDES")
                        for (std::string &m :
                             parseMutexArgs(t, j + 1))
                            c.excludes_.push_back(std::move(m));
                }
                return c;
            }
        }
    }
    return c; // Block
}

} // namespace

std::vector<std::string>
parseMutexArgs(const std::vector<Token> &toks, size_t open)
{
    std::vector<std::string> names;
    const size_t close = matchParen(toks, open, toks.size());
    std::string last;
    int depth = 0;
    for (size_t i = open + 1; i < close; ++i) {
        if (isPunct(toks[i], "(") || isPunct(toks[i], "[") ||
            isPunct(toks[i], "{"))
            ++depth;
        else if (isPunct(toks[i], ")") || isPunct(toks[i], "]") ||
                 isPunct(toks[i], "}"))
            --depth;
        else if (depth == 0 && isPunct(toks[i], ",")) {
            if (!last.empty())
                names.push_back(last);
            last.clear();
        } else if (toks[i].kind == TokKind::Ident) {
            last = toks[i].text;
        }
    }
    if (!last.empty())
        names.push_back(last);
    return names;
}

ScopeTree
buildScopeTree(const SourceFile &sf)
{
    const auto &t = sf.toks;
    ScopeTree tree;
    Scope file;
    file.kind = ScopeKind::File;
    file.open_tok = 0;
    file.close_tok = t.size();
    file.line = t.empty() ? 1 : t.front().line;
    tree.scopes.push_back(std::move(file));

    std::vector<int> stack = {0}; ///< open scope indices
    size_t anchor = 0;            ///< start of the current statement

    for (size_t i = 0; i < t.size(); ++i) {
        if (isPunct(t[i], "#")) {
            // Preprocessor directive: consume to the end of its line
            // so "#include <x>" in front of a declaration cannot
            // pollute the classifying statement slice (backslash
            // continuations are out of contract, like all macros).
            const int line = t[i].line;
            while (i + 1 < t.size() && t[i + 1].line == line)
                ++i;
            anchor = i + 1;
            continue;
        }
        if (isPunct(t[i], ";")) {
            anchor = i + 1;
            continue;
        }
        if (isPunct(t[i], "}")) {
            anchor = i + 1;
            if (stack.size() > 1) {
                tree.scopes[static_cast<size_t>(stack.back())]
                    .close_tok = i;
                stack.pop_back();
            }
            continue;
        }
        if (!isPunct(t[i], "{"))
            continue;

        Classified c = classify(t, anchor, i);
        Scope s;
        s.kind = c.kind;
        s.name = std::move(c.name);
        s.class_name = std::move(c.class_name);
        s.requires_ = std::move(c.requires_);
        s.excludes_ = std::move(c.excludes_);
        s.line = t[i].line;
        s.open_tok = i;
        s.close_tok = t.size(); // fixed up when the '}' arrives
        s.parent = stack.back();

        if (s.kind == ScopeKind::Function && s.class_name.empty()) {
            // Method defined inside its class body: qualify from the
            // nearest enclosing Class scope.
            for (size_t k = stack.size(); k-- > 0;) {
                const Scope &up =
                    tree.scopes[static_cast<size_t>(stack[k])];
                if (up.kind == ScopeKind::Class) {
                    s.class_name = up.name;
                    break;
                }
                if (up.kind == ScopeKind::Function ||
                    up.kind == ScopeKind::Namespace)
                    break; // a local class's methods stay local
            }
        }

        const int idx = static_cast<int>(tree.scopes.size());
        tree.scopes[static_cast<size_t>(stack.back())]
            .children.push_back(idx);
        tree.scopes.push_back(std::move(s));
        stack.push_back(idx);
        anchor = i + 1;
    }
    return tree;
}

} // namespace redsoc::lint

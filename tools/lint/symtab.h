/**
 * @file
 * Per-class symbol tables for the semantic rules: every class's
 * instance fields (with their thread-safety annotations and whether
 * they are themselves mutexes / condition variables) and every
 * method's REDSOC_REQUIRES / REDSOC_EXCLUDES contract. Built from
 * the scope tree; tables from many files merge by class name, so the
 * R10 walk over a .cc file sees the annotations its header declared.
 *
 * Only what the concurrency rules consume is modeled: instance data
 * members and method lock contracts. Types are not resolved beyond
 * "is this declarator a std::mutex / condition_variable"; overloads
 * collapse onto one method entry per name (their lock contracts are
 * expected to agree — they describe the protected state, not the
 * signature).
 */

#ifndef REDSOC_TOOLS_LINT_SYMTAB_H
#define REDSOC_TOOLS_LINT_SYMTAB_H

#include <map>
#include <string>
#include <vector>

#include "scopes.h"

namespace redsoc::lint {

struct FieldSym
{
    std::string name;
    int line = 0;
    /** Mutex named by REDSOC_GUARDED_BY ("" when unannotated). */
    std::string guarded_by;
    /** Carries the explicit REDSOC_NOT_GUARDED marker. */
    bool not_guarded = false;
    bool is_mutex = false; ///< std::mutex / shared/recursive/timed
    bool is_cv = false;    ///< std::condition_variable(_any)
};

struct MethodSym
{
    std::string name;
    int line = 0;
    std::vector<std::string> requires_; ///< mutexes held on entry
    std::vector<std::string> excludes_; ///< mutexes that must be free
};

struct ClassSym
{
    std::string name;
    std::vector<FieldSym> fields;
    std::vector<MethodSym> methods;

    const FieldSym *field(const std::string &n) const;
    const MethodSym *method(const std::string &n) const;
    bool ownsMutex() const;
};

struct SymbolTable
{
    std::map<std::string, ClassSym> classes;

    /** Parse every Class scope of @p tree and merge into the table
     *  (fields dedupe by name, first declaration wins — the header
     *  is lexed before the .cc in tree order). */
    void addFile(const SourceFile &sf, const ScopeTree &tree);

    const ClassSym *find(const std::string &name) const;
};

/** Convenience: table of a single file. */
SymbolTable buildSymbolTable(const SourceFile &sf,
                             const ScopeTree &tree);

} // namespace redsoc::lint

#endif // REDSOC_TOOLS_LINT_SYMTAB_H

/**
 * @file
 * Brace-matched scope tree over the redsoc_lint token stream — the
 * structural substrate of the semantic rules (R10-R12). Where R1-R9
 * are token- and line-local, the concurrency rules need to answer
 * "which function body am I in, of which class, annotated how?" —
 * this module answers exactly that and nothing more.
 *
 * The tree is built by a single forward walk that matches every '{'
 * to its '}' and classifies the opener from the statement slice in
 * front of it (the tokens since the last ';', '{' or '}'):
 * namespace, class/struct, enum, function definition (with its name,
 * qualifying class, and any REDSOC_REQUIRES / REDSOC_EXCLUDES
 * annotations between the parameter list and the body), lambda, or
 * plain block. Everything the classifier cannot prove stays a Block,
 * which downstream rules treat as "inside the enclosing function" —
 * misclassification degrades to fewer checks, never to a parse
 * failure.
 *
 * Like the rest of the linter this is a deliberate approximation of
 * C++, not a front end: preprocessor conditionals that unbalance
 * braces, macros that expand to braces, and declarations of the form
 * `Type var(args);` at namespace scope are out of contract (none
 * occur in this tree; the fixture suite pins the constructs that do).
 */

#ifndef REDSOC_TOOLS_LINT_SCOPES_H
#define REDSOC_TOOLS_LINT_SCOPES_H

#include <string>
#include <vector>

#include "lint.h"

namespace redsoc::lint {

enum class ScopeKind {
    File,      ///< synthetic root covering the whole token stream
    Namespace, ///< namespace N { } (anonymous: empty name)
    Class,     ///< struct/class/union definition body
    Enum,      ///< enum / enum class body
    Function,  ///< function definition body (methods included)
    Lambda,    ///< lambda body
    Block,     ///< everything else: control flow, bare blocks,
               ///< brace initializers the classifier rejected
};

struct Scope
{
    ScopeKind kind = ScopeKind::Block;
    /** Class/namespace/enum/function name ("" when anonymous or not
     *  applicable). For Function: the unqualified name. */
    std::string name;
    /** Function scopes: the class the function belongs to — the
     *  `C::` qualifier of an out-of-line definition, else the
     *  enclosing Class scope's name, else "". */
    std::string class_name;
    int line = 0;        ///< line of the opening token
    size_t open_tok = 0; ///< index of '{' (File: 0)
    size_t close_tok = 0; ///< index of matching '}' (File: toks.size())
    int parent = -1;
    std::vector<int> children;
    /** Function scopes: mutex names from REDSOC_REQUIRES(...) between
     *  the parameter list and the body (held on entry). */
    std::vector<std::string> requires_;
    /** Function scopes: mutex names from REDSOC_EXCLUDES(...). */
    std::vector<std::string> excludes_;
};

struct ScopeTree
{
    /** Preorder; scopes[0] is the File root. */
    std::vector<Scope> scopes;

    const Scope &fileScope() const { return scopes.front(); }
};

/** Build the scope tree of one lexed file. Never fails: unmatched
 *  braces truncate the affected scopes at end-of-file. */
ScopeTree buildScopeTree(const SourceFile &sf);

/** Parse a comma-separated REDSOC_REQUIRES/EXCLUDES argument list
 *  starting at the '(' at @p open: the canonical mutex name of each
 *  argument is its last identifier token (`foo.mu_` -> `mu_`),
 *  matching how the R10 walk canonicalizes guard expressions. */
std::vector<std::string> parseMutexArgs(const std::vector<Token> &toks,
                                        size_t open);

} // namespace redsoc::lint

#endif // REDSOC_TOOLS_LINT_SCOPES_H

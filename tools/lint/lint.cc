/**
 * @file
 * redsoc_lint driver: file discovery, rule orchestration, baseline
 * load/compare.
 */

#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

namespace redsoc::lint {

namespace {

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp";
}

bool
excluded(const std::string &rel, const Options &opt)
{
    for (const std::string &s : opt.exclude_substrings)
        if (rel.find(s) != std::string::npos)
            return true;
    return false;
}

std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    return (ec ? p : rel).generic_string();
}

} // namespace

std::string
Finding::pretty() const
{
    return path + ":" + std::to_string(line) + ": [" + rule + "] " +
           message;
}

std::string
Finding::key() const
{
    return path + " [" + rule + "] " + message;
}

std::vector<Finding>
lintFile(const SourceFile &sf, const Options &opt)
{
    std::vector<Finding> out;
    ruleInitField(sf, out);
    ruleNondetApi(sf, out);
    ruleNondetIter(sf, out);
    rulePtrKeyOrder(sf, out);
    ruleCycleNarrow(sf, out);
    ruleFloatAccum(sf, opt.float_accum_exempt, out);
    ruleHotAlloc(sf, opt.hot_alloc_paths, opt.hot_functions, out);
    return out;
}

std::vector<Finding>
lintTree(const Options &opt)
{
    const fs::path root(opt.root);
    std::vector<std::string> files;
    for (const std::string &p : opt.paths) {
        const fs::path base = root / p;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(relPath(base, root));
            continue;
        }
        for (auto it = fs::recursive_directory_iterator(base, ec);
             !ec && it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (!it->is_regular_file() ||
                !lintableExtension(it->path()))
                continue;
            const std::string rel = relPath(it->path(), root);
            if (!excluded(rel, opt))
                files.push_back(rel);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> out;
    for (const std::string &rel : files) {
        SourceFile sf = lexFile((root / rel).string(), rel);
        std::vector<Finding> fs_ = lintFile(sf, opt);
        out.insert(out.end(), fs_.begin(), fs_.end());
    }

    // R4 runs once over its designated file triple.
    std::error_code ec;
    if (fs::exists(root / opt.stats_header, ec) &&
        fs::exists(root / opt.serializer, ec) &&
        fs::exists(root / opt.comparator, ec)) {
        SourceFile header = lexFile((root / opt.stats_header).string(),
                                    opt.stats_header);
        SourceFile ser =
            lexFile((root / opt.serializer).string(), opt.serializer);
        SourceFile cmp =
            lexFile((root / opt.comparator).string(), opt.comparator);
        ruleStatComplete(header, opt.stats_struct, ser, cmp, out);
    }

    // R5 runs once over the trace-event schema and its exporters.
    if (fs::exists(root / opt.trace_header, ec) &&
        fs::exists(root / opt.trace_exporter, ec)) {
        SourceFile header = lexFile((root / opt.trace_header).string(),
                                    opt.trace_header);
        SourceFile exp = lexFile((root / opt.trace_exporter).string(),
                                 opt.trace_exporter);
        ruleTraceComplete(header, opt.trace_enum, exp, out);
    }

    // R6 runs once over the invariant catalogue and its test suite.
    if (fs::exists(root / opt.audit_header, ec) &&
        fs::exists(root / opt.audit_tests, ec)) {
        SourceFile header = lexFile((root / opt.audit_header).string(),
                                    opt.audit_header);
        SourceFile tst = lexFile((root / opt.audit_tests).string(),
                                 opt.audit_tests);
        ruleAuditComplete(header, opt.audit_enum, tst, out);
    }

    // R9 runs once over the trace-event schema and the critpath
    // dependence-graph builder.
    if (fs::exists(root / opt.critpath_header, ec) &&
        fs::exists(root / opt.critpath_builder, ec)) {
        SourceFile header = lexFile(
            (root / opt.critpath_header).string(), opt.critpath_header);
        SourceFile bld = lexFile(
            (root / opt.critpath_builder).string(),
            opt.critpath_builder);
        ruleCritpathComplete(header, opt.critpath_enum, bld, out);
    }

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.message < b.message;
              });
    return out;
}

std::set<std::string>
loadBaseline(const std::string &path)
{
    std::set<std::string> keys;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        // Trim trailing CR / whitespace.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' ' ||
                line.back() == '\t'))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        keys.insert(line);
    }
    return keys;
}

std::vector<Finding>
newFindings(const std::vector<Finding> &all,
            const std::set<std::string> &baseline)
{
    std::vector<Finding> fresh;
    for (const Finding &f : all)
        if (!baseline.count(f.key()))
            fresh.push_back(f);
    return fresh;
}

} // namespace redsoc::lint

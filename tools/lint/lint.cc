/**
 * @file
 * redsoc_lint driver: file discovery, rule orchestration, baseline
 * load/compare.
 */

#include "symtab.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

namespace fs = std::filesystem;

namespace redsoc::lint {

namespace {

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp";
}

bool
excluded(const std::string &rel, const Options &opt)
{
    for (const std::string &s : opt.exclude_substrings)
        if (rel.find(s) != std::string::npos)
            return true;
    return false;
}

std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    return (ec ? p : rel).generic_string();
}

/** Per-file rules against a given (possibly tree-merged) symbol
 *  table. R11 edges accumulate into @p edges for the caller to run
 *  the cycle check at the right granularity. */
std::vector<Finding>
lintFileWith(const SourceFile &sf, const Options &opt,
             const ScopeTree &tree, const SymbolTable &symtab,
             const SymbolTable &local_tab,
             std::vector<LockEdge> &edges)
{
    std::vector<Finding> out;
    ruleInitField(sf, out);
    ruleNondetApi(sf, out);
    ruleNondetIter(sf, out);
    rulePtrKeyOrder(sf, out);
    ruleCycleNarrow(sf, out);
    ruleFloatAccum(sf, opt.float_accum_exempt, out);
    ruleHotAlloc(sf, opt.hot_alloc_paths, opt.hot_functions, out);
    ruleGuardedBy(sf, tree, symtab, local_tab,
                  opt.guarded_coverage_paths, out, &edges);
    ruleNondetTaint(sf, tree, symtab, opt.taint_sink_suffixes,
                    opt.taint_sink_structs, opt.taint_exempt_fields,
                    out);
    return out;
}

} // namespace

std::string
Finding::pretty() const
{
    return path + ":" + std::to_string(line) + ": [" + rule + "] " +
           message;
}

std::string
Finding::key() const
{
    return path + " [" + rule + "] " + message;
}

std::vector<Finding>
lintFile(const SourceFile &sf, const Options &opt)
{
    // Standalone mode: the file's own declarations are all the
    // context there is, and lock-order runs over the file's own
    // acquisition graph.
    const ScopeTree tree = buildScopeTree(sf);
    const SymbolTable tab = buildSymbolTable(sf, tree);
    std::vector<LockEdge> edges;
    std::vector<Finding> out =
        lintFileWith(sf, opt, tree, tab, tab, edges);
    ruleLockOrder(edges, out);
    return out;
}

std::vector<Finding>
lintTree(const Options &opt)
{
    const fs::path root(opt.root);
    std::vector<std::string> files;
    for (const std::string &p : opt.paths) {
        const fs::path base = root / p;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(relPath(base, root));
            continue;
        }
        for (auto it = fs::recursive_directory_iterator(base, ec);
             !ec && it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (!it->is_regular_file() ||
                !lintableExtension(it->path()))
                continue;
            const std::string rel = relPath(it->path(), root);
            if (!excluded(rel, opt))
                files.push_back(rel);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Phase 1: lex everything (parallel, order-independent) and
    // build per-file scope trees + symbol tables.
    const size_t n = files.size();
    std::vector<SourceFile> sources(n);
    std::vector<ScopeTree> trees(n);
    std::vector<SymbolTable> local_tabs(n);
    const unsigned jobs = std::max(1u, opt.jobs);
    auto parallelFor = [&](auto &&body) {
        if (jobs <= 1 || n <= 1) {
            for (size_t i = 0; i < n; ++i)
                body(i);
            return;
        }
        std::atomic<size_t> next{0};
        std::vector<std::thread> pool;
        const unsigned count =
            std::min<unsigned>(jobs, static_cast<unsigned>(n));
        pool.reserve(count);
        for (unsigned w = 0; w < count; ++w)
            pool.emplace_back([&] {
                for (size_t i = next.fetch_add(1); i < n;
                     i = next.fetch_add(1))
                    body(i);
            });
        for (std::thread &th : pool)
            th.join();
    };
    parallelFor([&](size_t i) {
        sources[i] = lexFile((root / files[i]).string(), files[i]);
        trees[i] = buildScopeTree(sources[i]);
        local_tabs[i] = buildSymbolTable(sources[i], trees[i]);
    });

    // Phase 2: merge the symbol tables in sorted file order
    // (deterministic; class bodies live in headers, so collisions —
    // first declaration wins — only arise for same-named local
    // structs), so every file's walk resolves annotations declared
    // elsewhere.
    SymbolTable merged;
    for (size_t i = 0; i < n; ++i)
        merged.addFile(sources[i], trees[i]);

    // Phase 3: per-file rules (parallel), results and lock edges
    // kept per file index and merged in file order — findings are
    // byte-identical for every --jobs value.
    std::vector<std::vector<Finding>> results(n);
    std::vector<std::vector<LockEdge>> edge_slots(n);
    parallelFor([&](size_t i) {
        results[i] = lintFileWith(sources[i], opt, trees[i], merged,
                                  local_tabs[i], edge_slots[i]);
    });

    std::vector<Finding> out;
    std::vector<LockEdge> edges;
    for (size_t i = 0; i < n; ++i) {
        out.insert(out.end(), results[i].begin(), results[i].end());
        edges.insert(edges.end(), edge_slots[i].begin(),
                     edge_slots[i].end());
    }

    // R11 runs once over the merged acquisition graph.
    ruleLockOrder(edges, out);

    // R4 runs once per wired stats block: the CoreStats triple plus
    // the multi-core LLC/Processor blocks.
    std::error_code ec;
    std::vector<Options::StatBlock> stat_blocks;
    stat_blocks.push_back({opt.stats_struct, opt.stats_header,
                           opt.serializer, opt.comparator});
    stat_blocks.insert(stat_blocks.end(), opt.extra_stat_blocks.begin(),
                       opt.extra_stat_blocks.end());
    for (const Options::StatBlock &blk : stat_blocks) {
        if (!fs::exists(root / blk.header, ec) ||
            !fs::exists(root / blk.serializer, ec) ||
            !fs::exists(root / blk.comparator, ec))
            continue;
        SourceFile header =
            lexFile((root / blk.header).string(), blk.header);
        SourceFile ser =
            lexFile((root / blk.serializer).string(), blk.serializer);
        SourceFile cmp =
            lexFile((root / blk.comparator).string(), blk.comparator);
        ruleStatComplete(header, blk.struct_name, ser, cmp, out);
    }

    // R5 runs once over the trace-event schema and its exporters.
    if (fs::exists(root / opt.trace_header, ec) &&
        fs::exists(root / opt.trace_exporter, ec)) {
        SourceFile header = lexFile((root / opt.trace_header).string(),
                                    opt.trace_header);
        SourceFile exp = lexFile((root / opt.trace_exporter).string(),
                                 opt.trace_exporter);
        ruleTraceComplete(header, opt.trace_enum, exp, out);
    }

    // R6 runs once over the invariant catalogue and its test suite.
    if (fs::exists(root / opt.audit_header, ec) &&
        fs::exists(root / opt.audit_tests, ec)) {
        SourceFile header = lexFile((root / opt.audit_header).string(),
                                    opt.audit_header);
        SourceFile tst = lexFile((root / opt.audit_tests).string(),
                                 opt.audit_tests);
        ruleAuditComplete(header, opt.audit_enum, tst, out);
    }

    // R9 runs once over the trace-event schema and the critpath
    // dependence-graph builder.
    if (fs::exists(root / opt.critpath_header, ec) &&
        fs::exists(root / opt.critpath_builder, ec)) {
        SourceFile header = lexFile(
            (root / opt.critpath_header).string(), opt.critpath_header);
        SourceFile bld = lexFile(
            (root / opt.critpath_builder).string(),
            opt.critpath_builder);
        ruleCritpathComplete(header, opt.critpath_enum, bld, out);
    }

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.message < b.message;
              });
    return out;
}

std::set<std::string>
loadBaseline(const std::string &path)
{
    std::set<std::string> keys;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        // Trim trailing CR / whitespace.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' ' ||
                line.back() == '\t'))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        keys.insert(line);
    }
    return keys;
}

std::vector<Finding>
newFindings(const std::vector<Finding> &all,
            const std::set<std::string> &baseline)
{
    std::vector<Finding> fresh;
    for (const Finding &f : all)
        if (!baseline.count(f.key()))
            fresh.push_back(f);
    return fresh;
}

} // namespace redsoc::lint

/**
 * @file
 * redsoc_lint — simulator-specific static analysis.
 *
 * The simulator's correctness story (the Scan/Event differential
 * suite, the run-cache checksum, cross-process result reuse) depends
 * on bit-identical reproducibility, so classes of latent
 * nondeterminism and UB that would merely perturb a figure in an
 * ordinary codebase silently invalidate results here. This tool
 * enforces the determinism rules mechanically over src/, tools/ and
 * tests/:
 *
 *   init-field    (R1) every field of a struct named *Config / *Stats
 *                 carries an in-class initializer.
 *   nondet-api    (R2) banned wall-clock / seedless-randomness APIs
 *                 (rand, srand, time(), std::random_device, ...).
 *   nondet-iter   (R2) range-for iteration over a std::unordered_map /
 *                 unordered_set declared in the same file: iteration
 *                 order is unspecified and varies across libstdc++
 *                 versions, ASLR and insertion history.
 *   ptr-key-order (R2) std::map / std::set (or unordered_*) keyed by a
 *                 pointer type: ordering/hashing follows allocation
 *                 addresses.
 *   cycle-narrow  (R3) 64-bit cycle/tick quantities narrowed (cast or
 *                 implicit) to 32-bit-or-smaller integer types.
 *   float-accum   (R3) floating-point accumulation (+=) inside a loop
 *                 whose header mentions cycles/ticks, outside
 *                 src/power.
 *   stat-complete (R4) every field of each wired stats block —
 *                 CoreStats plus the multi-core LlcCoreStats /
 *                 LlcStats / ProcStats blocks — appears in both its
 *                 run-cache serializer/deserializer and its
 *                 equivalence comparator, so "added a stat, forgot
 *                 the cache format" cannot recur.
 *   trace-complete (R5) every PipeEventKind enumerator (NUM sentinel
 *                 excluded) appears at least twice in the trace
 *                 exporter translation unit — once per exporter
 *                 switch — so "added an event kind, forgot an
 *                 exporter" cannot recur either.
 *   audit-complete (R6) every InvariantAudit enumerator (NUM sentinel
 *                 excluded) appears at least once in the fuzzing
 *                 regression suite, so every runtime invariant check
 *                 keeps a unit test proving it fires on corrupted
 *                 state.
 *   critpath-complete (R9) every PipeEventKind enumerator (NUM
 *                 sentinel excluded) appears at least once in the
 *                 critpath DepGraphBuilder translation unit — its
 *                 event switch must consume or explicitly ignore
 *                 every kind — so "added an event kind, forgot the
 *                 dependence graph" cannot recur.
 *   hot-alloc     (R8) heap allocation inside the per-cycle scheduler
 *                 functions (the bodies the simulator executes every
 *                 simulated cycle): 'new', push_back/emplace_back on
 *                 a vector never reserve()d/resize()d in the same
 *                 file, and std::function construction. The SoA
 *                 scheduler pre-sizes every per-op lane at run()
 *                 start precisely so the hot loops stay
 *                 allocation-free; an allocation that sneaks back in
 *                 is a silent throughput regression the differential
 *                 tests cannot catch.
 *   guarded-by    (R10) lock-discipline enforcement over the
 *                 src/common/thread_annotations.h macros: every
 *                 read/write of a REDSOC_GUARDED_BY(mu) field must
 *                 happen in a scope holding mu — a live
 *                 lock_guard/unique_lock/scoped_lock (manual
 *                 .unlock()/.lock() windows modeled), a direct
 *                 mu.lock() region, or a REDSOC_REQUIRES(mu)
 *                 function; calls of REQUIRES methods need the lock
 *                 held, calls of EXCLUDES methods need it free. A
 *                 coverage arm keeps the annotations honest: in a
 *                 mutex-owning class under src/ or tools/, every
 *                 plain field must carry REDSOC_GUARDED_BY or an
 *                 explicit REDSOC_NOT_GUARDED.
 *   lock-order    (R11) the global mutex-acquisition graph (an edge
 *                 A->B per site acquiring B while holding A, merged
 *                 across every linted file) must be acyclic; any
 *                 cycle — including a self-edge, i.e. re-acquiring a
 *                 held non-recursive mutex — is a deadlock the test
 *                 schedule merely hasn't hit yet. Reported
 *                 canonically: one finding per strongly connected
 *                 component, anchored at its lexicographically
 *                 smallest site, edges listed sorted.
 *   nondet-taint  (R12) flow-sensitive generalization of R2/R5:
 *                 values assigned from nondeterministic sources
 *                 (wall clocks, random/pid/thread-id APIs,
 *                 pointer-to-integer casts, range-for over unordered
 *                 containers, reads of the wall-clock-derived
 *                 sim_seconds stat) taint the local they are stored
 *                 in, propagate through further assignments, and
 *                 must never reach a determinism sink: a field of
 *                 any *Stats struct (sim_seconds itself exempt — it
 *                 is the one designated wall-clock stat), of
 *                 PipeEvent, or of Finding. Intra-procedural and
 *                 assignment-based by design; see DESIGN.md for the
 *                 soundness boundary.
 *
 * Findings print as "file:line: [rule-id] message". A finding is
 * suppressed by a comment "// redsoc-lint: allow(rule-id)" (or
 * allow(all), comma-separated ids accepted) on the same or the
 * immediately preceding line. A committed baseline file (line format:
 * "path [rule-id] message", '#' comments allowed) grandfathers known
 * findings; the tool exits nonzero only on findings not in the
 * baseline.
 *
 * Parsing is a deliberate tokenizer, not a full C++ front end (the
 * container ships no libclang development headers): rules are scoped
 * to constructs the lexer classifies reliably, and every rule is
 * suppressible where the heuristic is wrong.
 */

#ifndef REDSOC_TOOLS_LINT_LINT_H
#define REDSOC_TOOLS_LINT_LINT_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace redsoc::lint {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class TokKind {
    Ident,  ///< identifier or keyword
    Number, ///< numeric literal
    String, ///< string or char literal (text excludes quotes' content)
    Punct,  ///< operator / punctuation (multi-char only for :: -> +=
            ///< -= == != && ||)
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 1;
};

/** One lexed source file plus its suppression comments. */
struct SourceFile
{
    std::string path; ///< as reported in findings (root-relative)
    std::vector<Token> toks;
    /** line -> rule-ids allowed there ("all" allows everything). */
    std::map<int, std::set<std::string>> allows;

    bool allowed(int line, const std::string &rule) const;
};

/** Lex @p text (suppression comments recorded, comments dropped). */
SourceFile lex(std::string path, const std::string &text);

/** Load + lex a file from disk; throws std::runtime_error on I/O. */
SourceFile lexFile(const std::string &fs_path,
                   const std::string &report_path);

// ---------------------------------------------------------------------
// Struct-field model (shared by init-field and stat-complete)
// ---------------------------------------------------------------------

struct FieldInfo
{
    std::string name;
    int line = 0;
    bool initialized = false;
};

struct StructInfo
{
    std::string name;
    int line = 0;
    std::vector<FieldInfo> fields;
};

/** Every struct/class definition in the file (nested ones included,
 *  flattened). Instance data members only: functions, static members,
 *  using-declarations and nested types are excluded. */
std::vector<StructInfo> parseStructs(const SourceFile &sf);

// ---------------------------------------------------------------------
// Enum model (trace-complete)
// ---------------------------------------------------------------------

struct EnumeratorInfo
{
    std::string name;
    int line = 0;
};

struct EnumInfo
{
    std::string name;
    int line = 0;
    std::vector<EnumeratorInfo> enumerators;
};

/** Every named enum / enum class definition in the file (forward
 *  declarations skipped; initializer expressions ignored). */
std::vector<EnumInfo> parseEnums(const SourceFile &sf);

// ---------------------------------------------------------------------
// Findings and rules
// ---------------------------------------------------------------------

struct Finding
{
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;

    /** "path:line: [rule] message" (the printed form). */
    std::string pretty() const;
    /** Line-number-free identity used for baseline matching. */
    std::string key() const;
};

void ruleInitField(const SourceFile &sf, std::vector<Finding> &out);
void ruleNondetApi(const SourceFile &sf, std::vector<Finding> &out);
void ruleNondetIter(const SourceFile &sf, std::vector<Finding> &out);
void rulePtrKeyOrder(const SourceFile &sf, std::vector<Finding> &out);
void ruleCycleNarrow(const SourceFile &sf, std::vector<Finding> &out);
/** @p exempt: skip files whose path starts with any of these
 *  prefixes (the power model legitimately integrates energy). */
void ruleFloatAccum(const SourceFile &sf,
                    const std::vector<std::string> &exempt,
                    std::vector<Finding> &out);

/** R4: every non-suppressed field of @p struct_name in @p header must
 *  appear >= 2 times in @p serializer (serialize + deserialize) and
 *  >= 1 time in @p comparator. */
void ruleStatComplete(const SourceFile &header,
                      const std::string &struct_name,
                      const SourceFile &serializer,
                      const SourceFile &comparator,
                      std::vector<Finding> &out);

/** R5: every enumerator of @p enum_name in @p header — except the
 *  NUM count sentinel — must appear >= 2 times in @p exporter (the
 *  Chrome and Konata exporter switches live in one file; a kind
 *  missing from either cannot reach two mentions). */
void ruleTraceComplete(const SourceFile &header,
                       const std::string &enum_name,
                       const SourceFile &exporter,
                       std::vector<Finding> &out);

/** R6: every enumerator of @p enum_name in @p header — except the
 *  NUM count sentinel — must appear >= 1 time in @p tests (each
 *  runtime invariant check needs a unit test that corrupts the
 *  checked state and proves the violation fires). */
void ruleAuditComplete(const SourceFile &header,
                       const std::string &enum_name,
                       const SourceFile &tests,
                       std::vector<Finding> &out);

/** R9: every enumerator of @p enum_name in @p header — except the
 *  NUM count sentinel — must appear >= 1 time in @p builder (the
 *  critpath DepGraphBuilder event switch must consume or explicitly
 *  ignore every event kind; a kind it never mentions is pipeline
 *  behavior the re-timer silently cannot see). */
void ruleCritpathComplete(const SourceFile &header,
                          const std::string &enum_name,
                          const SourceFile &builder,
                          std::vector<Finding> &out);

// Semantic rules (R10-R12). ScopeTree and SymbolTable are defined in
// scopes.h / symtab.h; the driver builds them once per file and the
// symbol table is additionally merged across the whole tree so .cc
// walks see their header's annotations.
struct ScopeTree;
struct SymbolTable;

/** One observed nested acquisition: @p second was locked while
 *  @p first was held, at @p path:@p line. first == second records a
 *  double-acquire. Mutex names are class-qualified ("C::mu_"). */
struct LockEdge
{
    std::string first;
    std::string second;
    std::string path;
    int line = 0;
};

/**
 * R10: guarded-by enforcement + annotation coverage for one file.
 * @p symtab resolves fields/contracts (tree-merged in tree mode);
 * @p coverage_tab restricts the coverage arm to classes declared in
 * this file; @p coverage_paths gates coverage to real code (path
 * prefixes). When @p edges is non-null the walk also records every
 * nested acquisition for R11.
 */
void ruleGuardedBy(const SourceFile &sf, const ScopeTree &tree,
                   const SymbolTable &symtab,
                   const SymbolTable &coverage_tab,
                   const std::vector<std::string> &coverage_paths,
                   std::vector<Finding> &out,
                   std::vector<LockEdge> *edges);

/** R11: cycle check over the merged acquisition graph. Findings are
 *  deterministic: one per SCC, smallest site first, edges sorted. */
void ruleLockOrder(const std::vector<LockEdge> &edges,
                   std::vector<Finding> &out);

/**
 * R12: nondeterminism taint tracking for one file. Sink fields come
 * from @p symtab: every field of a class whose name ends in one of
 * @p sink_suffixes or equals one of @p sink_structs, minus
 * @p exempt_fields (whose *reads* are instead taint sources).
 */
void ruleNondetTaint(const SourceFile &sf, const ScopeTree &tree,
                     const SymbolTable &symtab,
                     const std::vector<std::string> &sink_suffixes,
                     const std::vector<std::string> &sink_structs,
                     const std::vector<std::string> &exempt_fields,
                     std::vector<Finding> &out);

/** R8: no heap allocation inside the bodies of the per-cycle
 *  scheduler functions. @p hot_paths gates the rule to the scheduler
 *  sources; @p hot_functions names the function definitions whose
 *  bodies run every simulated cycle. Flags 'new',
 *  push_back/emplace_back on a container with no reserve()/resize()
 *  call anywhere in the same file, and std::function construction.
 *  Tokenizer heuristics, so allow(hot-alloc) where a flagged site is
 *  genuinely cold (e.g. a once-per-run slow path). */
void ruleHotAlloc(const SourceFile &sf,
                  const std::vector<std::string> &hot_paths,
                  const std::vector<std::string> &hot_functions,
                  std::vector<Finding> &out);

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

struct Options
{
    std::string root = ".";              ///< repo root (paths relative)
    std::vector<std::string> paths = {"src", "tools", "tests"};
    std::vector<std::string> exclude_substrings = {
        "lint_fixtures", "/build", ".git"};
    std::vector<std::string> float_accum_exempt = {"src/power"};

    // R4 wiring (relative to root; rule skipped if header missing).
    std::string stats_struct = "CoreStats";
    std::string stats_header = "src/core/ooo_core.h";
    std::string serializer = "src/sim/run_cache.cc";
    std::string comparator = "tests/test_sched_equiv.cc";

    /** One additional R4 block: @p struct_name in @p header must be
     *  fully mentioned in @p serializer (>= 2, serialize +
     *  deserialize) and @p comparator (>= 1). */
    struct StatBlock
    {
        std::string struct_name;
        std::string header;
        std::string serializer;
        std::string comparator;
    };

    /** The multi-core stats blocks R4 guards beyond the CoreStats
     *  triple: the per-core LLC slices, the LLC totals, and the
     *  Processor roll-up (DESIGN.md §14). Their serializer is the
     *  run-cache ProcStats codec; their comparator is the multi-core
     *  equivalence suite's field-by-field expectations. */
    std::vector<StatBlock> extra_stat_blocks = {
        {"LlcCoreStats", "src/proc/llc.h", "src/sim/run_cache.cc",
         "tests/test_proc_equiv.cc"},
        {"LlcStats", "src/proc/llc.h", "src/sim/run_cache.cc",
         "tests/test_proc_equiv.cc"},
        {"ProcStats", "src/proc/processor.h", "src/sim/run_cache.cc",
         "tests/test_proc_equiv.cc"},
    };

    // R5 wiring (relative to root; rule skipped if header missing).
    std::string trace_enum = "PipeEventKind";
    std::string trace_header = "src/trace/trace_events.h";
    std::string trace_exporter = "src/trace/exporters.cc";

    // R6 wiring (relative to root; rule skipped if header missing).
    std::string audit_enum = "InvariantAudit";
    std::string audit_header = "src/core/invariant_audit.h";
    std::string audit_tests = "tests/test_fuzz_regress.cc";

    // R9 wiring (relative to root; rule skipped if either file is
    // missing). Reuses the R5 trace-event schema header.
    std::string critpath_enum = "PipeEventKind";
    std::string critpath_header = "src/trace/trace_events.h";
    std::string critpath_builder = "src/critpath/dep_graph_builder.cc";

    // R8 wiring: files (path prefixes) and function definitions the
    // hot-alloc rule scans. The list is the per-cycle call graph of
    // OooCore::run() plus the ReadySet fast paths it leans on.
    std::vector<std::string> hot_alloc_paths = {"src/core/"};
    std::vector<std::string> hot_functions = {
        "issuePhase",       "dispatchPhase", "commitPhase",
        "phaseAEntry",      "evalConventional", "evalEager",
        "broadcastWakeup",  "drainWakeQueue", "scheduleEval",
        "armAt",            "issueOp",       "nextAtOrAfter",
        "popAtOrAfter",     "fastForward"};

    // R10 coverage gate: the "every field states its discipline"
    // arm only applies to real code, not fixtures lexed under test
    // paths.
    std::vector<std::string> guarded_coverage_paths = {"src/",
                                                       "tools/"};

    // R12 sink configuration. sim_seconds is the one stat defined as
    // wall-clock time; writing it from a clock is its purpose, and
    // reading it back is itself a taint source.
    std::vector<std::string> taint_sink_suffixes = {"Stats"};
    std::vector<std::string> taint_sink_structs = {"PipeEvent",
                                                   "Finding"};
    std::vector<std::string> taint_exempt_fields = {"sim_seconds"};

    /** Worker threads for the tree scan (1 = serial). Findings are
     *  deterministic regardless: per-file results merge in file
     *  order before the global sort. */
    unsigned jobs = 1;

    std::string baseline_path;           ///< empty = no baseline
};

/** All findings for one lexed file (per-file rules: R1-R3, R8,
 *  R10-R12 with a file-local symbol table, lock-order over the
 *  file's own acquisition graph; suppressions applied). */
std::vector<Finding> lintFile(const SourceFile &sf, const Options &opt);

/** Walk opt.paths under opt.root, run every rule — per-file rules
 *  with the tree-merged symbol table (opt.jobs workers), the global
 *  R11 acquisition graph, and the multi-file completeness rules
 *  (R4/R5/R6/R9) — and return findings sorted by path/line. */
std::vector<Finding> lintTree(const Options &opt);

/** Baseline keys loaded from @p path (empty set if unreadable). */
std::set<std::string> loadBaseline(const std::string &path);

/** Findings whose key is not in @p baseline. */
std::vector<Finding> newFindings(const std::vector<Finding> &all,
                                 const std::set<std::string> &baseline);

} // namespace redsoc::lint

#endif // REDSOC_TOOLS_LINT_LINT_H

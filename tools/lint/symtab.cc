/**
 * @file
 * Symbol-table construction: a statement walk over each Class scope
 * of the scope tree, annotation-aware where rules.cc's field parser
 * (which predates the thread-safety macros) is not.
 */

#include "symtab.h"

#include <algorithm>

namespace redsoc::lint {

namespace {

bool
isPunct(const Token &t, const char *s)
{
    return t.kind == TokKind::Punct && t.text == s;
}

bool
isIdent(const Token &t, const char *s)
{
    return t.kind == TokKind::Ident && t.text == s;
}

bool
isAnnotationIdent(const Token &t)
{
    return t.kind == TokKind::Ident &&
           t.text.rfind("REDSOC_", 0) == 0;
}

size_t
matchForward(const std::vector<Token> &t, size_t open, const char *o,
             const char *c, size_t end)
{
    int depth = 0;
    for (size_t i = open; i < end; ++i) {
        if (isPunct(t[i], o))
            ++depth;
        else if (isPunct(t[i], c) && --depth == 0)
            return i;
    }
    return end;
}

bool
mutexType(const std::string &s)
{
    return s == "mutex" || s == "shared_mutex" ||
           s == "recursive_mutex" || s == "timed_mutex" ||
           s == "recursive_timed_mutex" || s == "shared_timed_mutex";
}

bool
cvType(const std::string &s)
{
    return s == "condition_variable" || s == "condition_variable_any";
}

/** Member statements that declare no instance field or method. */
bool
skipLeader(const std::string &s)
{
    return s == "static" || s == "using" || s == "typedef" ||
           s == "friend" || s == "static_assert" || s == "template" ||
           s == "operator";
}

} // namespace

const FieldSym *
ClassSym::field(const std::string &n) const
{
    for (const FieldSym &f : fields)
        if (f.name == n)
            return &f;
    return nullptr;
}

const MethodSym *
ClassSym::method(const std::string &n) const
{
    const MethodSym *found = nullptr;
    for (const MethodSym &m : methods) {
        if (m.name != n)
            continue;
        // Prefer the declaration carrying a lock contract: the
        // header's annotated declaration over a bare redeclaration.
        if (!m.requires_.empty() || !m.excludes_.empty())
            return &m;
        if (!found)
            found = &m;
    }
    return found;
}

bool
ClassSym::ownsMutex() const
{
    return std::any_of(fields.begin(), fields.end(),
                       [](const FieldSym &f) { return f.is_mutex; });
}

void
SymbolTable::addFile(const SourceFile &sf, const ScopeTree &tree)
{
    const auto &t = sf.toks;
    for (const Scope &sc : tree.scopes) {
        if (sc.kind != ScopeKind::Class || sc.name.empty())
            continue;
        ClassSym &cls = classes[sc.name];
        cls.name = sc.name;

        const size_t close = std::min(sc.close_tok, t.size());
        size_t i = sc.open_tok + 1;
        while (i < close) {
            const Token &tok = t[i];
            if (isPunct(tok, ";")) {
                ++i;
                continue;
            }
            // Access specifiers are two-token separators, not
            // statement leaders.
            if ((isIdent(tok, "public") || isIdent(tok, "private") ||
                 isIdent(tok, "protected")) &&
                i + 1 < close && isPunct(t[i + 1], ":")) {
                i += 2;
                continue;
            }
            // Nested types and non-member statements: skip to the
            // statement's ';', jumping over any body.
            if (isIdent(tok, "struct") || isIdent(tok, "class") ||
                isIdent(tok, "union") || isIdent(tok, "enum") ||
                (tok.kind == TokKind::Ident && skipLeader(tok.text))) {
                size_t j = i;
                while (j < close && !isPunct(t[j], ";")) {
                    if (isPunct(t[j], "{"))
                        j = matchForward(t, j, "{", "}", close);
                    ++j;
                }
                i = j + 1;
                continue;
            }
            if (isPunct(tok, "~")) { // destructor
                size_t j = i;
                while (j < close && !isPunct(t[j], "{") &&
                       !isPunct(t[j], ";"))
                    ++j;
                if (j < close && isPunct(t[j], "{"))
                    j = matchForward(t, j, "{", "}", close);
                i = j + 1;
                continue;
            }

            // One member statement: classify by the first structural
            // token, collecting annotation macros along the way.
            size_t j = i;
            size_t name_end = close; ///< terminator index (fields)
            bool is_function = false;
            std::string guarded_by;
            bool not_guarded = false;
            MethodSym method;
            int angle = 0;
            while (j < close) {
                const Token &c = t[j];
                if (isAnnotationIdent(c)) {
                    const bool has_args =
                        j + 1 < close && isPunct(t[j + 1], "(");
                    if (c.text == "REDSOC_NOT_GUARDED")
                        not_guarded = true;
                    if (has_args) {
                        if (c.text == "REDSOC_GUARDED_BY") {
                            auto args = parseMutexArgs(t, j + 1);
                            if (!args.empty())
                                guarded_by = args.front();
                        }
                        j = matchForward(t, j + 1, "(", ")", close);
                    }
                    ++j;
                    continue;
                }
                if (isIdent(c, "operator")) {
                    // Operator member ("T &operator=(...) = delete"):
                    // the '=' in the name would otherwise classify it
                    // as an initialized field.
                    is_function = true;
                    while (j < close && !isPunct(t[j], ";")) {
                        if (isPunct(t[j], "{"))
                            j = matchForward(t, j, "{", "}", close);
                        ++j;
                    }
                    ++j;
                    break;
                }
                if (isPunct(c, "<")) {
                    ++angle;
                } else if (isPunct(c, ">") && angle > 0) {
                    --angle;
                } else if (angle == 0 && isPunct(c, "(")) {
                    is_function = true;
                    if (j > i && t[j - 1].kind == TokKind::Ident) {
                        method.name = t[j - 1].text;
                        method.line = t[j - 1].line;
                    }
                    j = matchForward(t, j, "(", ")", close) + 1;
                    // Specifiers + annotations, then body / ';' /
                    // '= default'.
                    while (j < close && !isPunct(t[j], "{") &&
                           !isPunct(t[j], ";") && !isPunct(t[j], "=")) {
                        if (isAnnotationIdent(t[j]) && j + 1 < close &&
                            isPunct(t[j + 1], "(")) {
                            auto args = parseMutexArgs(t, j + 1);
                            if (t[j].text == "REDSOC_REQUIRES")
                                method.requires_ = std::move(args);
                            else if (t[j].text == "REDSOC_EXCLUDES")
                                method.excludes_ = std::move(args);
                            j = matchForward(t, j + 1, "(", ")",
                                             close);
                        }
                        ++j;
                    }
                    if (j < close && isPunct(t[j], "="))
                        while (j < close && !isPunct(t[j], ";"))
                            ++j;
                    if (j < close && isPunct(t[j], "{"))
                        j = matchForward(t, j, "{", "}", close);
                    ++j;
                    break;
                } else if (angle == 0 &&
                           (isPunct(c, "=") || isPunct(c, "{"))) {
                    name_end = j;
                    while (j < close && !isPunct(t[j], ";")) {
                        if (isPunct(t[j], "{"))
                            j = matchForward(t, j, "{", "}", close);
                        ++j;
                    }
                    ++j;
                    break;
                } else if (angle == 0 && isPunct(c, ";")) {
                    name_end = j;
                    ++j;
                    break;
                }
                ++j;
            }

            if (is_function) {
                if (!method.name.empty() &&
                    (!cls.method(method.name) ||
                     !method.requires_.empty() ||
                     !method.excludes_.empty()))
                    cls.methods.push_back(std::move(method));
            } else if (name_end > i && name_end < close) {
                // Field name: last plain identifier before the
                // terminator, skipping annotation groups, array
                // extents and bitfield widths.
                size_t k = name_end;
                FieldSym field;
                while (k > i) {
                    --k;
                    if (isPunct(t[k], ")") || isPunct(t[k], "]")) {
                        const char *open =
                            isPunct(t[k], ")") ? "(" : "[";
                        const char *cl = isPunct(t[k], ")") ? ")" : "]";
                        int depth = 1;
                        while (k > i && depth > 0) {
                            --k;
                            if (isPunct(t[k], cl))
                                ++depth;
                            else if (isPunct(t[k], open))
                                --depth;
                        }
                        continue;
                    }
                    if (isAnnotationIdent(t[k]))
                        continue;
                    if (t[k].kind == TokKind::Ident &&
                        t[k].text != "const" &&
                        t[k].text != "mutable") {
                        field.name = t[k].text;
                        field.line = t[k].line;
                        break;
                    }
                }
                if (!field.name.empty() && !cls.field(field.name)) {
                    field.guarded_by = std::move(guarded_by);
                    field.not_guarded = not_guarded;
                    for (size_t m = i; m < name_end; ++m) {
                        if (t[m].kind != TokKind::Ident)
                            continue;
                        if (mutexType(t[m].text))
                            field.is_mutex = true;
                        else if (cvType(t[m].text))
                            field.is_cv = true;
                    }
                    cls.fields.push_back(std::move(field));
                }
            }
            i = (j > i) ? j : i + 1;
        }
    }
}

const ClassSym *
SymbolTable::find(const std::string &name) const
{
    auto it = classes.find(name);
    return it == classes.end() ? nullptr : &it->second;
}

SymbolTable
buildSymbolTable(const SourceFile &sf, const ScopeTree &tree)
{
    SymbolTable tab;
    tab.addFile(sf, tree);
    return tab;
}

} // namespace redsoc::lint

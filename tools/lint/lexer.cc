/**
 * @file
 * Tokenizer for redsoc_lint: identifiers, numbers, string/char
 * literals (raw strings included), punctuation, line tracking, and
 * "// redsoc-lint: allow(rule,...)" suppression comments.
 */

#include "lint.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace redsoc::lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Record any "redsoc-lint: allow(a,b)" directives in @p comment. */
void
recordAllows(const std::string &comment, int line, SourceFile &sf)
{
    const std::string marker = "redsoc-lint:";
    size_t at = comment.find(marker);
    while (at != std::string::npos) {
        size_t open = comment.find("allow(", at);
        if (open == std::string::npos)
            break;
        size_t close = comment.find(')', open);
        if (close == std::string::npos)
            break;
        std::string list =
            comment.substr(open + 6, close - (open + 6));
        std::string id;
        std::istringstream ids(list);
        while (std::getline(ids, id, ',')) {
            // Trim surrounding whitespace.
            size_t b = id.find_first_not_of(" \t");
            size_t e = id.find_last_not_of(" \t");
            if (b != std::string::npos)
                sf.allows[line].insert(id.substr(b, e - b + 1));
        }
        at = comment.find(marker, close);
    }
}

/** Two-char operators the rules care about (kept minimal so '<'/'>'
 *  stay single tokens for template-depth tracking). */
bool
isTwoCharOp(char a, char b)
{
    return (a == ':' && b == ':') || (a == '-' && b == '>') ||
           (a == '+' && b == '=') || (a == '-' && b == '=') ||
           (a == '=' && b == '=') || (a == '!' && b == '=') ||
           (a == '&' && b == '&') || (a == '|' && b == '|');
}

} // namespace

bool
SourceFile::allowed(int line, const std::string &rule) const
{
    for (int l : {line, line - 1}) {
        auto it = allows.find(l);
        if (it == allows.end())
            continue;
        if (it->second.count(rule) || it->second.count("all"))
            return true;
    }
    return false;
}

SourceFile
lex(std::string path, const std::string &text)
{
    SourceFile sf;
    sf.path = std::move(path);

    const size_t n = text.size();
    size_t i = 0;
    int line = 1;

    auto push = [&](TokKind k, std::string t) {
        sf.toks.push_back(Token{k, std::move(t), line});
    };

    while (i < n) {
        char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            size_t end = text.find('\n', i);
            if (end == std::string::npos)
                end = n;
            recordAllows(text.substr(i, end - i), line, sf);
            i = end;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            size_t end = text.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            const std::string body = text.substr(i, end - i);
            recordAllows(body, line, sf);
            for (char bc : body)
                if (bc == '\n')
                    ++line;
            i = end;
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            size_t open = text.find('(', i + 2);
            if (open != std::string::npos) {
                const std::string delim =
                    ")" + text.substr(i + 2, open - (i + 2)) + "\"";
                size_t end = text.find(delim, open + 1);
                if (end == std::string::npos)
                    end = n;
                else
                    end += delim.size();
                for (size_t k = i; k < end && k < n; ++k)
                    if (text[k] == '\n')
                        ++line;
                push(TokKind::String, "\"\"");
                i = end;
                continue;
            }
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            size_t j = i + 1;
            while (j < n && text[j] != quote) {
                if (text[j] == '\\')
                    ++j;
                ++j;
            }
            push(TokKind::String, std::string(1, quote) + quote);
            i = (j < n) ? j + 1 : n;
            continue;
        }
        if (identStart(c)) {
            size_t j = i;
            while (j < n && identChar(text[j]))
                ++j;
            push(TokKind::Ident, text.substr(i, j - i));
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            // Good enough for C++ numeric literals incl. hex, digit
            // separators, suffixes and exponents.
            while (j < n && (identChar(text[j]) || text[j] == '\'' ||
                             ((text[j] == '+' || text[j] == '-') &&
                              j > i &&
                              (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                               text[j - 1] == 'p' || text[j - 1] == 'P'))))
                ++j;
            push(TokKind::Number, text.substr(i, j - i));
            i = j;
            continue;
        }
        if (i + 1 < n && isTwoCharOp(c, text[i + 1])) {
            push(TokKind::Punct, text.substr(i, 2));
            i += 2;
            continue;
        }
        push(TokKind::Punct, std::string(1, c));
        ++i;
    }
    return sf;
}

SourceFile
lexFile(const std::string &fs_path, const std::string &report_path)
{
    std::ifstream in(fs_path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + fs_path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return lex(report_path, ss.str());
}

} // namespace redsoc::lint

/**
 * @file
 * The semantic concurrency rules (R10-R12). All three share the same
 * substrate: the scope tree locates function bodies and their lock
 * contracts, the symbol tables resolve fields/annotations across
 * files, and an intra-procedural forward walk tracks state — held
 * mutexes for R10/R11, tainted locals for R12.
 *
 * The walks are deliberately intra-procedural and flow-forward (no
 * joins: state at a token is the state the straight-line walk carries
 * into it). The resulting soundness boundary is documented in
 * DESIGN.md §9; every rule stays suppressible with
 * "// redsoc-lint: allow(rule-id)" where the approximation is wrong.
 */

#include "symtab.h"

#include <algorithm>
#include <map>
#include <set>

namespace redsoc::lint {

namespace {

bool
isPunct(const Token &t, const char *s)
{
    return t.kind == TokKind::Punct && t.text == s;
}

bool
isIdent(const Token &t, const char *s)
{
    return t.kind == TokKind::Ident && t.text == s;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

size_t
matchForward(const std::vector<Token> &t, size_t open, const char *o,
             const char *c, size_t end)
{
    int depth = 0;
    for (size_t i = open; i < end; ++i) {
        if (isPunct(t[i], o))
            ++depth;
        else if (isPunct(t[i], c) && --depth == 0)
            return i;
    }
    return end;
}

void
emit(const SourceFile &sf, int line, const char *rule,
     std::string message, std::vector<Finding> &out)
{
    if (sf.allowed(line, rule))
        return;
    out.push_back(Finding{sf.path, line, rule, std::move(message)});
}

// -------------------------------------------------------------------
// R10 guarded-by  (+ acquisition edges for R11)
// -------------------------------------------------------------------

bool
guardType(const std::string &s)
{
    return s == "lock_guard" || s == "unique_lock" ||
           s == "scoped_lock" || s == "shared_lock";
}

/** A live RAII guard (or an anonymous entry for a direct
 *  mu.lock()). */
struct Guard
{
    std::string var; ///< "" for direct mu.lock() regions
    std::vector<std::string> mutexes;
    int depth = 0;   ///< brace depth of the declaration
    bool engaged = true;
};

struct Walker
{
    const SourceFile &sf;
    std::vector<LockEdge> *edges;

    const ClassSym *cls = nullptr; ///< enclosing class (may be null)
    std::string cls_name;
    std::vector<std::string> base_held; ///< REQUIRES at entry
    std::vector<Guard> guards;
    int depth = 1;

    /** Class-qualify a mutex identifier: fields of the enclosing
     *  class get "C::" so edges and REQUIRES sets line up across
     *  methods and files. */
    std::string qualify(const std::string &m) const
    {
        if (cls) {
            const FieldSym *f = cls->field(m);
            if (f && f->is_mutex)
                return cls_name + "::" + m;
        }
        return m;
    }

    bool held(const std::string &qualified) const
    {
        for (const std::string &m : base_held)
            if (m == qualified)
                return true;
        for (const Guard &g : guards)
            if (g.engaged)
                for (const std::string &m : g.mutexes)
                    if (m == qualified)
                        return true;
        return false;
    }

    std::vector<std::string> heldSet() const
    {
        std::vector<std::string> all = base_held;
        for (const Guard &g : guards)
            if (g.engaged)
                all.insert(all.end(), g.mutexes.begin(),
                           g.mutexes.end());
        return all;
    }

    /** Record the R11 edges of acquiring @p acquired (one atomic
     *  group) while @p prior was held. A mutex already in @p prior
     *  re-acquired here is a self-edge (double-acquire). */
    void recordAcquire(const std::vector<std::string> &prior,
                       const std::vector<std::string> &acquired,
                       int line)
    {
        if (!edges || sf.allowed(line, "lock-order"))
            return;
        for (const std::string &m : acquired) {
            bool dup = false;
            for (const std::string &h : prior)
                if (h == m)
                    dup = true;
            if (dup)
                edges->push_back(LockEdge{m, m, sf.path, line});
            else
                for (const std::string &h : prior)
                    edges->push_back(LockEdge{h, m, sf.path, line});
        }
    }
};

/** Walk one function body [open+1, close) checking guarded accesses
 *  and collecting acquisitions. Nested lambdas/blocks are walked
 *  inline: held state at the definition site flows in (the soundness
 *  caveat for deferred callbacks — see DESIGN.md). */
void
walkFunction(const SourceFile &sf, const Scope &fn,
             const SymbolTable &symtab, std::vector<Finding> &out,
             std::vector<LockEdge> *edges)
{
    const auto &t = sf.toks;
    const size_t open = fn.open_tok;
    const size_t close = std::min(fn.close_tok, t.size());

    Walker w{sf, edges, nullptr, {}, {}, {}, 1};
    w.cls_name = fn.class_name;
    w.cls = fn.class_name.empty() ? nullptr
                                  : symtab.find(fn.class_name);

    // Held on entry: REQUIRES from the definition signature plus the
    // in-class declaration's contract.
    std::vector<std::string> entry = fn.requires_;
    if (w.cls) {
        const MethodSym *m = w.cls->method(fn.name);
        if (m)
            entry.insert(entry.end(), m->requires_.begin(),
                         m->requires_.end());
    }
    for (const std::string &m : entry) {
        const std::string q = w.qualify(m);
        if (!w.held(q))
            w.base_held.push_back(q);
    }

    for (size_t i = open + 1; i < close; ++i) {
        const Token &tok = t[i];
        if (isPunct(tok, "{")) {
            ++w.depth;
            continue;
        }
        if (isPunct(tok, "}")) {
            --w.depth;
            std::erase_if(w.guards, [&](const Guard &g) {
                return g.depth > w.depth;
            });
            continue;
        }
        if (tok.kind != TokKind::Ident)
            continue;

        // RAII guard declaration:
        //   [std::] lock_guard[<...>] var(mu[, tag]...);
        if (guardType(tok.text)) {
            size_t j = i + 1;
            if (j < close && isPunct(t[j], "<")) {
                int ad = 0;
                for (; j < close; ++j) {
                    if (isPunct(t[j], "<"))
                        ++ad;
                    else if (isPunct(t[j], ">") && --ad == 0)
                        break;
                }
                ++j;
            }
            if (j + 1 < close && t[j].kind == TokKind::Ident &&
                isPunct(t[j + 1], "(")) {
                Guard g;
                g.var = t[j].text;
                g.depth = w.depth;
                bool adopt = false;
                for (const std::string &a :
                     parseMutexArgs(t, j + 1)) {
                    if (a == "defer_lock") {
                        g.engaged = false;
                    } else if (a == "adopt_lock") {
                        adopt = true; // already acquired via .lock()
                    } else if (a == "try_to_lock" || a == "this") {
                        // try_to_lock approximated as acquired
                    } else {
                        g.mutexes.push_back(w.qualify(a));
                    }
                }
                if (g.engaged && !adopt)
                    w.recordAcquire(w.heldSet(), g.mutexes,
                                    t[j].line);
                if (adopt) {
                    // Ownership transfer: drop the matching direct-
                    // lock entries so unlock bookkeeping follows the
                    // guard from here on.
                    std::erase_if(w.guards, [&](const Guard &d) {
                        return d.var.empty() &&
                               d.mutexes == g.mutexes;
                    });
                }
                const size_t end =
                    matchForward(t, j + 1, "(", ")", close);
                w.guards.push_back(std::move(g));
                i = end;
                continue;
            }
        }

        // var.lock() / var.unlock() on a guard object, and direct
        // mu.lock() / mu.unlock() on a known mutex (this-> allowed).
        if ((tok.text == "lock" || tok.text == "unlock") && i > 0 &&
            (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->")) &&
            i + 1 < close && isPunct(t[i + 1], "(") && i >= 2 &&
            t[i - 2].kind == TokKind::Ident) {
            const std::string &obj = t[i - 2].text;
            const bool locking = tok.text == "lock";
            Guard *g = nullptr;
            for (size_t k = w.guards.size(); k-- > 0;)
                if (w.guards[k].var == obj) {
                    g = &w.guards[k];
                    break;
                }
            if (g) {
                if (locking && !g->engaged)
                    w.recordAcquire(w.heldSet(), g->mutexes,
                                    tok.line);
                g->engaged = locking;
                i += 1;
                continue;
            }
            const std::string q = w.qualify(obj);
            const bool known_mutex =
                w.cls && w.cls->field(obj) &&
                w.cls->field(obj)->is_mutex;
            if (known_mutex) {
                if (locking) {
                    Guard direct;
                    direct.mutexes = {q};
                    direct.depth = w.depth;
                    w.recordAcquire(w.heldSet(), direct.mutexes,
                                    tok.line);
                    w.guards.push_back(std::move(direct));
                } else {
                    for (size_t k = w.guards.size(); k-- > 0;) {
                        Guard &d = w.guards[k];
                        if (d.var.empty() && d.engaged &&
                            d.mutexes ==
                                std::vector<std::string>{q}) {
                            w.guards.erase(w.guards.begin() +
                                           static_cast<long>(k));
                            break;
                        }
                    }
                }
                i += 1;
                continue;
            }
        }

        if (!w.cls)
            continue;

        // Member access through another object is out of scope for
        // the intra-procedural walk (we cannot resolve its type).
        const bool via_this =
            i >= 2 &&
            (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->")) &&
            isIdent(t[i - 2], "this");
        const bool via_other =
            i >= 2 &&
            (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->")) &&
            !isIdent(t[i - 2], "this");
        if (via_other)
            continue;

        // Guarded-field access.
        const FieldSym *f = w.cls->field(tok.text);
        if (f && !f->guarded_by.empty()) {
            const std::string need = w.qualify(f->guarded_by);
            if (!w.held(need)) {
                emit(sf, tok.line, "guarded-by",
                     "access to '" + w.cls_name + "::" + tok.text +
                         "' without holding its "
                         "REDSOC_GUARDED_BY mutex '" +
                         f->guarded_by + "'",
                     out);
            }
            continue;
        }

        // Call-site contract of an own-class method.
        if (i + 1 < close && isPunct(t[i + 1], "(") &&
            (via_this || i == 0 ||
             (!isPunct(t[i - 1], ".") && !isPunct(t[i - 1], "->") &&
              !isPunct(t[i - 1], "::")))) {
            const MethodSym *m = w.cls->method(tok.text);
            if (m) {
                for (const std::string &r : m->requires_)
                    if (!w.held(w.qualify(r)))
                        emit(sf, tok.line, "guarded-by",
                             "call to '" + w.cls_name +
                                 "::" + tok.text +
                                 "' which REDSOC_REQUIRES('" + r +
                                 "') without holding it",
                             out);
                for (const std::string &e : m->excludes_)
                    if (w.held(w.qualify(e)))
                        emit(sf, tok.line, "guarded-by",
                             "call to '" + w.cls_name +
                                 "::" + tok.text +
                                 "' which REDSOC_EXCLUDES('" + e +
                                 "') while holding it "
                                 "(self-deadlock)",
                             out);
            }
        }
    }
}

/** Function scopes nested inside another Function (a local class's
 *  methods) are already covered by the enclosing walk's linear token
 *  scan; walking them separately would double-report. */
bool
nestedInFunction(const ScopeTree &tree, const Scope &sc)
{
    for (int p = sc.parent; p >= 0;
         p = tree.scopes[static_cast<size_t>(p)].parent)
        if (tree.scopes[static_cast<size_t>(p)].kind ==
            ScopeKind::Function)
            return true;
    return false;
}

} // namespace

void
ruleGuardedBy(const SourceFile &sf, const ScopeTree &tree,
              const SymbolTable &symtab,
              const SymbolTable &coverage_tab,
              const std::vector<std::string> &coverage_paths,
              std::vector<Finding> &out, std::vector<LockEdge> *edges)
{
    // Enforcement arm: walk every top-level function body.
    for (const Scope &sc : tree.scopes)
        if (sc.kind == ScopeKind::Function &&
            !nestedInFunction(tree, sc))
            walkFunction(sf, sc, symtab, out, edges);

    // Coverage arm: annotations must be complete where they matter,
    // so that *removing* one is itself a finding rather than a
    // silent loss of enforcement.
    bool covered = false;
    for (const std::string &p : coverage_paths)
        if (sf.path.rfind(p, 0) == 0)
            covered = true;
    if (!covered)
        return;
    for (const auto &[name, cls] : coverage_tab.classes) {
        if (!cls.ownsMutex())
            continue;
        for (const FieldSym &f : cls.fields) {
            if (f.is_mutex || f.is_cv || !f.guarded_by.empty() ||
                f.not_guarded)
                continue;
            emit(sf, f.line, "guarded-by",
                 "field '" + name + "::" + f.name +
                     "' of a mutex-owning class declares no "
                     "discipline: add REDSOC_GUARDED_BY(mu) or an "
                     "explicit REDSOC_NOT_GUARDED",
                 out);
        }
    }
}

// -------------------------------------------------------------------
// R11 lock-order
// -------------------------------------------------------------------

void
ruleLockOrder(const std::vector<LockEdge> &edges,
              std::vector<Finding> &out)
{
    // Canonical graph: sorted nodes, sorted deduplicated adjacency,
    // each edge remembering its lexicographically smallest site.
    struct Site
    {
        std::string path;
        int line = 0;
    };
    std::map<std::string, std::map<std::string, Site>> graph;
    for (const LockEdge &e : edges) {
        auto [it, fresh] = graph[e.first].try_emplace(
            e.second, Site{e.path, e.line});
        if (!fresh) {
            Site &s = it->second;
            if (e.path < s.path ||
                (e.path == s.path && e.line < s.line))
                s = Site{e.path, e.line};
        }
        graph.try_emplace(e.second); // ensure the node exists
    }

    // Self-edges are deadlocks on their own (non-recursive mutexes).
    for (const auto &[a, adj] : graph) {
        auto it = adj.find(a);
        if (it == adj.end())
            continue;
        out.push_back(Finding{
            it->second.path, it->second.line, "lock-order",
            "mutex '" + a +
                "' acquired while already held (self-deadlock on a "
                "non-recursive mutex)"});
    }

    // Tarjan SCC over the deterministic adjacency.
    std::map<std::string, int> index, low;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    std::vector<std::vector<std::string>> sccs;
    int next = 0;

    struct Frame
    {
        std::string node;
        std::map<std::string, Site>::const_iterator it, end;
    };
    for (const auto &[root, _] : graph) {
        if (index.count(root))
            continue;
        std::vector<Frame> call;
        call.push_back(Frame{root, graph.at(root).begin(),
                             graph.at(root).end()});
        index[root] = low[root] = next++;
        stack.push_back(root);
        on_stack.insert(root);
        while (!call.empty()) {
            Frame &fr = call.back();
            if (fr.it != fr.end) {
                const std::string child = fr.it->first;
                ++fr.it;
                if (!index.count(child)) {
                    index[child] = low[child] = next++;
                    stack.push_back(child);
                    on_stack.insert(child);
                    call.push_back(Frame{child,
                                         graph.at(child).begin(),
                                         graph.at(child).end()});
                } else if (on_stack.count(child)) {
                    low[fr.node] =
                        std::min(low[fr.node], index[child]);
                }
                continue;
            }
            if (low[fr.node] == index[fr.node]) {
                std::vector<std::string> scc;
                for (;;) {
                    std::string n = stack.back();
                    stack.pop_back();
                    on_stack.erase(n);
                    scc.push_back(std::move(n));
                    if (scc.back() == fr.node)
                        break;
                }
                if (scc.size() > 1) {
                    std::sort(scc.begin(), scc.end());
                    sccs.push_back(std::move(scc));
                }
            }
            const std::string done = fr.node;
            call.pop_back();
            if (!call.empty())
                low[call.back().node] =
                    std::min(low[call.back().node], low[done]);
        }
    }

    std::sort(sccs.begin(), sccs.end());
    for (const auto &scc : sccs) {
        const std::set<std::string> members(scc.begin(), scc.end());
        std::string detail;
        Site anchor;
        for (const std::string &a : scc) {
            for (const auto &[b, site] : graph.at(a)) {
                if (!members.count(b) || a == b)
                    continue;
                if (!detail.empty())
                    detail += ", ";
                detail += a + " -> " + b + " (" + site.path + ":" +
                          std::to_string(site.line) + ")";
                if (anchor.path.empty() || site.path < anchor.path ||
                    (site.path == anchor.path &&
                     site.line < anchor.line))
                    anchor = site;
            }
        }
        out.push_back(Finding{
            anchor.path, anchor.line, "lock-order",
            "lock-order cycle (deadlock with the right thread "
            "interleaving): " +
                detail +
                "; acquire these mutexes in one fixed global order "
                "or collapse them into a std::scoped_lock"});
    }
}

// -------------------------------------------------------------------
// R12 nondet-taint
// -------------------------------------------------------------------

namespace {

bool
integralTypeName(const std::string &s)
{
    static const std::set<std::string> kIntegral = {
        "int",       "long",      "short",    "unsigned",  "size_t",
        "u8",        "u16",       "u32",      "u64",       "s8",
        "s16",       "s32",       "s64",      "uint8_t",   "uint16_t",
        "uint32_t",  "uint64_t",  "int8_t",   "int16_t",   "int32_t",
        "int64_t",   "uintptr_t", "intptr_t", "ptrdiff_t", "SeqNum",
        "Cycle"};
    return kIntegral.count(s) != 0;
}

/** Variables declared in this file with an unordered container type
 *  (range-for over them yields values in unspecified order). */
std::set<std::string>
unorderedContainerVars(const SourceFile &sf)
{
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::set<std::string> vars;
    const auto &t = sf.toks;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            !kUnordered.count(t[i].text))
            continue;
        size_t j = i + 1;
        if (j < t.size() && isPunct(t[j], "<")) {
            int ad = 0;
            for (; j < t.size(); ++j) {
                if (isPunct(t[j], "<"))
                    ++ad;
                else if (isPunct(t[j], ">") && --ad == 0)
                    break;
            }
            ++j;
        }
        if (j < t.size() && isPunct(t[j], "&"))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident &&
            (j + 1 >= t.size() || !isPunct(t[j + 1], "(")))
            vars.insert(t[j].text);
    }
    return vars;
}

/** Does [a, b) mention a nondeterministic source? Returns the source
 *  description, or "" if clean. */
std::string
findSource(const std::vector<Token> &t, size_t a, size_t b,
           const std::vector<std::string> &exempt_fields)
{
    static const std::set<std::string> kSourceCalls = {
        "rand",   "srand",    "rand_r",        "drand48",
        "lrand48", "random",  "time",          "clock",
        "gettimeofday", "clock_gettime", "getrandom", "getpid",
        "get_id"};
    for (size_t i = a; i < b; ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &s = t[i].text;
        if (s == "random_device")
            return "std::random_device";
        if (kSourceCalls.count(s) && i + 1 < b &&
            isPunct(t[i + 1], "(")) {
            // Mirror R2's guards: member calls, declarations and
            // non-std qualification are not the banned C API.
            const bool member_or_decl =
                i > a && (isPunct(t[i - 1], ".") ||
                          isPunct(t[i - 1], "->") ||
                          t[i - 1].kind == TokKind::Ident ||
                          isPunct(t[i - 1], "&") ||
                          isPunct(t[i - 1], "*") ||
                          isPunct(t[i - 1], ":"));
            const bool foreign_scope =
                i >= 2 && isPunct(t[i - 1], "::") &&
                t[i - 2].kind == TokKind::Ident &&
                t[i - 2].text != "std" &&
                t[i - 2].text != "this_thread";
            if (!member_or_decl && !foreign_scope)
                return "'" + s + "()'";
            continue;
        }
        if (s == "now" && i >= 2 && isPunct(t[i - 1], "::") &&
            t[i - 2].kind == TokKind::Ident &&
            endsWith(t[i - 2].text, "_clock"))
            return "'" + t[i - 2].text + "::now()'";
        for (const std::string &e : exempt_fields)
            if (s == e)
                return "wall-clock stat '" + e + "'";
        if (s == "reinterpret_cast" && i + 1 < b &&
            isPunct(t[i + 1], "<")) {
            // Pointer-to-integer cast: integral target type with no
            // '*' in the template argument.
            size_t j = i + 1;
            int ad = 0;
            bool has_ptr = false;
            std::string last_ident;
            for (; j < b; ++j) {
                if (isPunct(t[j], "<"))
                    ++ad;
                else if (isPunct(t[j], ">") && --ad == 0)
                    break;
                else if (isPunct(t[j], "*"))
                    has_ptr = true;
                else if (t[j].kind == TokKind::Ident)
                    last_ident = t[j].text;
            }
            if (!has_ptr && integralTypeName(last_ident))
                return "pointer-to-integer reinterpret_cast";
        }
    }
    return "";
}

} // namespace

void
ruleNondetTaint(const SourceFile &sf, const ScopeTree &tree,
                const SymbolTable &symtab,
                const std::vector<std::string> &sink_suffixes,
                const std::vector<std::string> &sink_structs,
                const std::vector<std::string> &exempt_fields,
                std::vector<Finding> &out)
{
    // Sink field set: field name -> owning sink struct (for the
    // message). Exempt fields are excluded — they are the designated
    // wall-clock carriers, and reading them is a *source* instead.
    std::map<std::string, std::string> sinks;
    for (const auto &[name, cls] : symtab.classes) {
        bool is_sink = false;
        for (const std::string &suf : sink_suffixes)
            if (endsWith(name, suf))
                is_sink = true;
        for (const std::string &sn : sink_structs)
            if (name == sn)
                is_sink = true;
        if (!is_sink)
            continue;
        for (const FieldSym &f : cls.fields) {
            bool exempt = false;
            for (const std::string &e : exempt_fields)
                if (f.name == e)
                    exempt = true;
            if (!exempt)
                sinks.try_emplace(f.name, name);
        }
    }
    if (sinks.empty())
        return;

    const std::set<std::string> unordered =
        unorderedContainerVars(sf);
    const auto &t = sf.toks;

    for (const Scope &fn : tree.scopes) {
        if (fn.kind != ScopeKind::Function ||
            nestedInFunction(tree, fn))
            continue;
        const size_t open = fn.open_tok;
        const size_t close = std::min(fn.close_tok, t.size());
        /** tainted local -> description of its original source. */
        std::map<std::string, std::string> tainted;

        for (size_t i = open + 1; i < close; ++i) {
            // Range-for over an unordered container taints the loop
            // variable(s): their sequence is nondeterministic even
            // though each value is not.
            if (isIdent(t[i], "for") && i + 1 < close &&
                isPunct(t[i + 1], "(")) {
                const size_t po = i + 1;
                const size_t pc =
                    matchForward(t, po, "(", ")", close);
                size_t colon = 0;
                int depth = 0;
                for (size_t j = po; j < pc; ++j) {
                    if (isPunct(t[j], "(") || isPunct(t[j], "[") ||
                        isPunct(t[j], "{"))
                        ++depth;
                    else if (isPunct(t[j], ")") ||
                             isPunct(t[j], "]") ||
                             isPunct(t[j], "}"))
                        --depth;
                    else if (isPunct(t[j], ":") && depth == 1) {
                        colon = j;
                        break;
                    }
                }
                bool over_unordered = false;
                if (colon)
                    for (size_t j = colon + 1; j < pc; ++j)
                        if (t[j].kind == TokKind::Ident &&
                            unordered.count(t[j].text))
                            over_unordered = true;
                if (over_unordered) {
                    // Loop vars: a structured binding's idents, or
                    // the last ident before the ':'.
                    std::string desc =
                        "range-for over an unordered container";
                    bool binding = false;
                    for (size_t j = po + 1; j < colon; ++j) {
                        if (isPunct(t[j], "["))
                            binding = true;
                        else if (isPunct(t[j], "]"))
                            binding = false;
                        else if (binding &&
                                 t[j].kind == TokKind::Ident)
                            tainted[t[j].text] = desc;
                    }
                    for (size_t j = colon; j-- > po + 1;)
                        if (t[j].kind == TokKind::Ident) {
                            tainted[t[j].text] = desc;
                            break;
                        }
                }
                continue;
            }

            // Assignment forms. The lexer merges += and -= but not
            // *=, /=, %=, |=, &=, ^=, <<=, >>=; a lone '=' after '<'
            // or '>' is the comparison <= / >=.
            bool compound = false;
            size_t target = 0; ///< token index of the assignee
            if (isPunct(t[i], "+=") || isPunct(t[i], "-=")) {
                compound = true;
                target = i - 1;
            } else if (isPunct(t[i], "=") && i > open + 1) {
                const Token &p = t[i - 1];
                if (isPunct(p, "*") || isPunct(p, "/") ||
                    isPunct(p, "%") || isPunct(p, "|") ||
                    isPunct(p, "&") || isPunct(p, "^")) {
                    compound = true;
                    target = i - 2;
                } else if (isPunct(p, "<") || isPunct(p, ">")) {
                    if (i > open + 2 &&
                        isPunct(t[i - 2], p.text.c_str())) {
                        compound = true; // <<= / >>=
                        target = i - 3;
                    } else {
                        continue; // <= / >= comparison
                    }
                } else if (p.kind == TokKind::Punct &&
                           p.text == "=") {
                    continue; // defensive: should not occur
                } else {
                    target = i - 1;
                }
            } else {
                continue;
            }
            if (target <= open || t[target].kind != TokKind::Ident)
                continue;

            // RHS: up to the statement's ';' at this nesting level.
            size_t rhs_end = i + 1;
            int depth = 0;
            while (rhs_end < close) {
                const Token &c = t[rhs_end];
                if (isPunct(c, "(") || isPunct(c, "[") ||
                    isPunct(c, "{"))
                    ++depth;
                else if (isPunct(c, ")") || isPunct(c, "]") ||
                         isPunct(c, "}")) {
                    if (depth == 0)
                        break;
                    --depth;
                } else if (depth == 0 && isPunct(c, ";"))
                    break;
                ++rhs_end;
            }

            std::string source =
                findSource(t, i + 1, rhs_end, exempt_fields);
            if (source.empty())
                for (size_t j = i + 1; j < rhs_end; ++j)
                    if (t[j].kind == TokKind::Ident &&
                        tainted.count(t[j].text)) {
                        source = tainted[t[j].text] +
                                 " (through local '" + t[j].text +
                                 "')";
                        break;
                    }

            const bool member =
                target > open + 1 &&
                (isPunct(t[target - 1], ".") ||
                 isPunct(t[target - 1], "->"));
            const std::string &name = t[target].text;
            if (member) {
                auto sink = sinks.find(name);
                if (sink != sinks.end() && !source.empty())
                    emit(sf, t[target].line, "nondet-taint",
                         "nondeterministic value from " + source +
                             " reaches determinism sink '" +
                             sink->second + "::" + name + "'",
                         out);
            } else if (!source.empty()) {
                tainted[name] = source;
            } else if (!compound) {
                tainted.erase(name); // clean overwrite kills taint
            }
        }
    }
}

} // namespace redsoc::lint
